"""Golden step counts: exact charges for fixed inputs.

The cost model is the instrument every benchmark reads; these pins make
any accidental change to a charge formula fail loudly and reviewably
(update the constant *with* the cost-model document, or not at all).

Scope note: this file pins *primitive and composite-operation* charges.
Whole-algorithm step totals are pinned by the golden-profile harness
(``tests/test_profile_baselines.py`` over the committed
``baselines/*.json``), which superseded the end-to-end constants that
used to live here — only algorithms without a profile workload keep an
inline pin below.
"""
import numpy as np
import pytest

from repro import Machine
from repro.core import ops, scans, segmented


def _v(model="scan", n=64):
    m = Machine(model)
    return m, m.vector(np.arange(n))


class TestPrimitivePins:
    def test_scan_charges(self):
        for model, expected in (("scan", 1), ("erew", 12), ("crcw", 12)):
            m, v = _v(model)
            scans.plus_scan(v)
            assert m.steps == expected, model

    def test_elementwise_and_permute(self):
        m, v = _v()
        _ = v + 1
        v.reverse()
        assert m.counter.by_kind == {"elementwise": 1, "permute": 1}

    def test_backward_scan(self):
        m, v = _v()
        scans.back_plus_scan(v)
        assert dict(m.counter.by_kind) == {"scan": 1, "permute": 2}

    def test_distribute(self):
        m, v = _v()
        scans.plus_distribute(v)
        assert dict(m.counter.by_kind) == {"reduce": 1, "broadcast": 1}

    def test_long_vector_scan(self):
        m = Machine("scan", num_processors=8)
        scans.plus_scan(m.vector(np.arange(64)))
        assert m.steps == 2 * 8 + 1


class TestCompositePins:
    def test_split(self):
        m, v = _v()
        ops.split(v, v.bit(0))
        assert m.steps == 11
        assert dict(m.counter.by_kind) == {
            "elementwise": 6, "scan": 2, "permute": 3}

    def test_pack(self):
        m, v = _v()
        ops.pack(v, v.bit(0))
        assert m.steps == 6  # bit + enumerate + count + permute glue

    def test_seg_plus_scan(self):
        m, v = _v()
        sf_arr = np.zeros(64, dtype=bool)
        sf_arr[::8] = True
        segmented.seg_plus_scan(v, m.flags(sf_arr))
        assert m.steps == 7  # 3 scans + 4 elementwise

    def test_seg_distribute_scan_vs_crcw(self):
        for model, expected in (("scan", 9), ("crcw", 3)):
            m = Machine(model)
            v = m.vector(np.arange(64))
            sf_arr = np.zeros(64, dtype=bool)
            sf_arr[::8] = True
            segmented.seg_plus_distribute(v, m.flags(sf_arr))
            assert m.steps == expected, model

    def test_allocate(self):
        m = Machine("scan")
        ops.allocate(m, m.vector([3, 0, 2, 5]))
        assert dict(m.counter.by_kind) == {"scan": 1, "reduce": 1, "permute": 1}


class TestAlgorithmPins:
    """Inline pins for algorithms *without* a golden-profile workload.

    Sorting, merging, line drawing, the graph algorithms, list ranking
    and tree contraction are pinned — with their full primitive mixes —
    by ``tests/test_profile_baselines.py``; re-pinning their totals here
    would just be a second constant to forget to update.
    """

    def test_visibility_is_nine_steps(self):
        from repro.algorithms import visibility
        m = Machine("scan")
        alt = m.vector(np.arange(64, dtype=float), dtype=float)
        sf_arr = np.zeros(64, dtype=bool)
        sf_arr[::16] = True
        dist = m.vector(np.arange(1.0, 65.0), dtype=float)
        with m.measure() as r:
            visibility(alt, m.flags(sf_arr), dist, 0.0)
        assert r.delta.steps == 7

    def test_big_add_is_fourteen_steps(self):
        from repro.algorithms import big_add
        m = Machine("scan")
        big_add(m, (1 << 100) - 1, 12345)
        assert m.steps == 14
