"""The step tracer / profiler."""
import numpy as np
import pytest

from repro import Machine
from repro.algorithms import split_radix_sort
from repro.core import scans
from repro.machine import trace


class TestTrace:
    def test_totals_match_machine(self, rng):
        m = Machine("scan")
        data = rng.integers(0, 1000, 100)
        with trace(m) as t:
            split_radix_sort(m.vector(data))
        assert t.total_steps == m.steps

    def test_phases(self):
        m = Machine("scan")
        with trace(m) as t:
            with t.phase("one"):
                scans.plus_scan(m.vector(range(8)))
            with t.phase("two"):
                scans.plus_scan(m.vector(range(8)))
                scans.plus_scan(m.vector(range(8)))
        assert t.by_phase() == {"one": 1, "two": 2}

    def test_nested_phases_innermost_wins(self):
        m = Machine("scan")
        with trace(m) as t:
            with t.phase("outer"):
                scans.plus_scan(m.vector(range(4)))
                with t.phase("inner"):
                    scans.plus_scan(m.vector(range(4)))
        assert t.by_phase() == {"outer": 1, "inner": 1}

    def test_untagged_charges(self):
        m = Machine("scan")
        with trace(m) as t:
            scans.plus_scan(m.vector(range(4)))
        assert t.by_phase() == {"(untagged)": 1}

    def test_by_kind(self):
        m = Machine("scan")
        with trace(m) as t:
            v = m.vector(range(8))
            _ = v + 1
            scans.plus_scan(v)
        assert t.by_kind() == {"elementwise": 1, "scan": 1}

    def test_detaches_after_block(self):
        m = Machine("scan")
        with trace(m) as t:
            scans.plus_scan(m.vector(range(4)))
        scans.plus_scan(m.vector(range(4)))  # after the trace
        assert t.total_steps == 1
        assert m.steps == 2
        assert not m.counter.listeners

    def test_report_mentions_phases_and_percentages(self):
        m = Machine("scan")
        with trace(m) as t:
            with t.phase("alpha"):
                scans.plus_scan(m.vector(range(16)))
        rep = t.report()
        assert "alpha" in rep
        assert "100.0%" in rep
        assert "scan=1" in rep

    def test_two_traces_stack(self):
        m = Machine("scan")
        with trace(m) as outer:
            scans.plus_scan(m.vector(range(4)))
            with trace(m) as inner:
                scans.plus_scan(m.vector(range(4)))
            assert inner.total_steps == 1
        assert outer.total_steps == 2

    def test_events_record_costs_on_erew(self):
        m = Machine("erew")
        with trace(m) as t:
            scans.plus_scan(m.vector(range(256)))
        assert t.events[0].cost == 16  # 2 lg 256
        assert t.events[0].kind == "scan"


class TestTraceEdgeCases:
    """Lock-in tests for the legacy surface: the back-compat shim over
    :mod:`repro.observe` must preserve every one of these behaviors."""

    def test_empty_report(self):
        m = Machine("scan")
        with trace(m) as t:
            pass
        assert t.events == []
        assert t.total_steps == 0
        assert t.by_kind() == {}
        assert t.by_phase() == {}
        assert t.phase_kind_matrix() == {}
        rep = t.report()
        assert "total: 0 steps in 0" in rep  # no ZeroDivisionError

    def test_machine_reset_during_open_phase(self):
        # resetting the machine zeroes its counters but never rewrites
        # history: events already recorded stay, the phase stays open,
        # and later charges keep landing under it
        m = Machine("scan")
        with trace(m) as t:
            with t.phase("work"):
                scans.plus_scan(m.vector(range(8)))
                m.reset()
                assert t.total_steps == 1
                scans.plus_scan(m.vector(range(8)))
        assert m.steps == 1          # only the post-reset charge
        assert t.total_steps == 2    # the trace saw both
        assert t.by_phase() == {"work": 2}

    def test_deeply_nested_phases_unwind_in_order(self):
        m = Machine("scan")
        with trace(m) as t:
            with t.phase("a"):
                with t.phase("b"):
                    with t.phase("c"):
                        scans.plus_scan(m.vector(range(4)))
                    assert t.current_phase == "b"
                    scans.plus_scan(m.vector(range(4)))
                assert t.current_phase == "a"
            assert t.current_phase == "(untagged)"
        assert t.by_phase() == {"c": 1, "b": 1}

    def test_same_phase_name_reentered_accumulates(self):
        m = Machine("scan")
        with trace(m) as t:
            for _ in range(3):
                with t.phase("loop"):
                    scans.plus_scan(m.vector(range(4)))
        assert t.by_phase() == {"loop": 3}
        assert len(t.events) == 3

    def test_phase_exited_on_exception(self):
        m = Machine("scan")
        with trace(m) as t:
            with pytest.raises(RuntimeError):
                with t.phase("doomed"):
                    raise RuntimeError("boom")
            scans.plus_scan(m.vector(range(4)))
        assert t.by_phase() == {"(untagged)": 1}

    def test_trace_detaches_on_exception(self):
        m = Machine("scan")
        with pytest.raises(RuntimeError):
            with trace(m):
                raise RuntimeError("boom")
        assert not m.counter.listeners

    def test_zero_cost_charges_are_recorded_as_ops(self):
        m = Machine("scan")
        with trace(m) as t:
            scans.plus_scan(m.vector([]))  # n = 0 charges 0 steps
        assert t.total_steps == 0
        assert len(t.events) == 1
        assert t.events[0] == type(t.events[0])(kind="scan", cost=0,
                                                phase="(untagged)")

    def test_phase_kind_matrix_shape(self):
        m = Machine("scan")
        with trace(m) as t:
            with t.phase("p"):
                v = m.vector(range(8))
                _ = v + 1
                scans.plus_scan(v)
        assert t.phase_kind_matrix() == {"p": {"elementwise": 1, "scan": 1}}

    def test_report_orders_phases_by_steps_descending(self):
        m = Machine("erew")
        with trace(m) as t:
            with t.phase("cheap"):
                scans.plus_scan(m.vector(range(4)))
            with t.phase("dear"):
                scans.plus_scan(m.vector(range(256)))
        rep = t.report()
        assert rep.index("dear") < rep.index("cheap")
