"""The step tracer / profiler."""
import numpy as np
import pytest

from repro import Machine
from repro.algorithms import split_radix_sort
from repro.core import scans
from repro.machine import trace


class TestTrace:
    def test_totals_match_machine(self, rng):
        m = Machine("scan")
        data = rng.integers(0, 1000, 100)
        with trace(m) as t:
            split_radix_sort(m.vector(data))
        assert t.total_steps == m.steps

    def test_phases(self):
        m = Machine("scan")
        with trace(m) as t:
            with t.phase("one"):
                scans.plus_scan(m.vector(range(8)))
            with t.phase("two"):
                scans.plus_scan(m.vector(range(8)))
                scans.plus_scan(m.vector(range(8)))
        assert t.by_phase() == {"one": 1, "two": 2}

    def test_nested_phases_innermost_wins(self):
        m = Machine("scan")
        with trace(m) as t:
            with t.phase("outer"):
                scans.plus_scan(m.vector(range(4)))
                with t.phase("inner"):
                    scans.plus_scan(m.vector(range(4)))
        assert t.by_phase() == {"outer": 1, "inner": 1}

    def test_untagged_charges(self):
        m = Machine("scan")
        with trace(m) as t:
            scans.plus_scan(m.vector(range(4)))
        assert t.by_phase() == {"(untagged)": 1}

    def test_by_kind(self):
        m = Machine("scan")
        with trace(m) as t:
            v = m.vector(range(8))
            _ = v + 1
            scans.plus_scan(v)
        assert t.by_kind() == {"elementwise": 1, "scan": 1}

    def test_detaches_after_block(self):
        m = Machine("scan")
        with trace(m) as t:
            scans.plus_scan(m.vector(range(4)))
        scans.plus_scan(m.vector(range(4)))  # after the trace
        assert t.total_steps == 1
        assert m.steps == 2
        assert not m.counter.listeners

    def test_report_mentions_phases_and_percentages(self):
        m = Machine("scan")
        with trace(m) as t:
            with t.phase("alpha"):
                scans.plus_scan(m.vector(range(16)))
        rep = t.report()
        assert "alpha" in rep
        assert "100.0%" in rep
        assert "scan=1" in rep

    def test_two_traces_stack(self):
        m = Machine("scan")
        with trace(m) as outer:
            scans.plus_scan(m.vector(range(4)))
            with trace(m) as inner:
                scans.plus_scan(m.vector(range(4)))
            assert inner.total_steps == 1
        assert outer.total_steps == 2

    def test_events_record_costs_on_erew(self):
        m = Machine("erew")
        with trace(m) as t:
            scans.plus_scan(m.vector(range(256)))
        assert t.events[0].cost == 16  # 2 lg 256
        assert t.events[0].kind == "scan"
