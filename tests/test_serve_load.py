"""The serve load test: a thousand concurrent clients, zero divergence.

The server's whole claim is that coalescing concurrent requests into
segmented mega-ops is *invisible*: every response is bit-identical to a
serial one-request machine run, while the batcher actually does batch
(mean occupancy > 1 under concurrent load).  Pinned here:

* 1024 concurrent small requests across 16 pipelined connections — mixed
  integer ops — every response equals the serial machine, occupancy > 1;
* the acceptance workload: 64 concurrent 1k-element plus-scans ->
  mean batch occupancy >= 4, all bit-identical;
* responses pipeline out of order on one connection and still match;
* float requests ride the solo path (never batched) and stay
  bit-identical;
* the SLO snapshot's accounting reconciles with the traffic sent.

Everything runs in-process on an ephemeral port with the default
(``REPRO_BACKEND``-resolved) backend, so the CI matrix exercises the
server over every engine, distributed included.
"""
import asyncio

import numpy as np

from repro.core import scans
from repro.machine.model import Machine
from repro.serve import ScanServer, ServeClient, ServeConfig

OPS = {
    "plus_scan": scans.plus_scan,
    "max_scan": scans.max_scan,
    "min_scan": scans.min_scan,
    "or_scan": scans.or_scan,
    "plus_distribute": scans.plus_distribute,
}


def serial(op: str, values: np.ndarray) -> np.ndarray:
    """The one-request serial machine run every response must equal."""
    m = Machine("scan")
    return np.asarray(OPS[op](m.vector(values)).data)


async def _run_server(config: ServeConfig):
    server = ScanServer(config)
    await server.start()
    return server


def test_thousand_concurrent_small_requests():
    """16 connections x 64 pipelined requests: 1024 in flight at once,
    every response bit-identical, the batcher visibly batching."""
    rng = np.random.default_rng(42)
    ops = sorted(OPS)
    jobs = []  # (op, values)
    for i in range(1024):
        op = ops[i % len(ops)]
        n = int(rng.integers(1, 64))
        jobs.append((op, rng.integers(-1000, 1000, size=n,
                                      dtype=np.int64)))

    async def main():
        server = await _run_server(ServeConfig(
            port=0, batch_window=0.01, max_pending=4096,
            cache_entries=0))
        try:
            clients = [await ServeClient.connect("127.0.0.1", server.port)
                       for _ in range(16)]
            outs = await asyncio.gather(*[
                clients[i % 16].scan(op, vals)
                for i, (op, vals) in enumerate(jobs)])
            for c in clients:
                await c.close()
            return server, outs
        finally:
            await server.shutdown()

    server, outs = asyncio.run(main())

    for (op, vals), out in zip(jobs, outs):
        expected = serial(op, vals)
        assert out.dtype == expected.dtype, (op, out.dtype, expected.dtype)
        assert np.array_equal(out, expected), op

    snap = server.stats.snapshot()
    assert snap["ok"] == 1024
    assert snap["errors"] == 0
    assert snap["mean_batch_occupancy"] > 1.0, snap
    assert snap["mega_ops"] >= 1
    assert server.pending_count == 0


def test_acceptance_64_concurrent_1k_plus_scans():
    """The issue's acceptance bar: >=64 concurrent 1k-element plus-scans,
    mean batch occupancy >= 4, every result bit-identical."""
    rng = np.random.default_rng(7)
    vecs = [rng.integers(-(1 << 40), 1 << 40, size=1000, dtype=np.int64)
            for _ in range(64)]

    async def main():
        # a generous window so all 64 arrivals pile into the same drain
        server = await _run_server(ServeConfig(
            port=0, batch_window=0.05, max_batch=64, cache_entries=0))
        try:
            clients = [await ServeClient.connect("127.0.0.1", server.port)
                       for _ in range(64)]
            outs = await asyncio.gather(*[
                c.scan("plus_scan", v) for c, v in zip(clients, vecs)])
            for c in clients:
                await c.close()
            return server, outs
        finally:
            await server.shutdown()

    server, outs = asyncio.run(main())

    for v, out in zip(vecs, outs):
        assert np.array_equal(out, serial("plus_scan", v))

    snap = server.stats.snapshot()
    assert snap["ok"] == 64 and snap["errors"] == 0
    assert snap["mean_batch_occupancy"] >= 4.0, snap


def test_pipelined_out_of_order_responses_match():
    """One connection, many requests in flight: ids route every response
    to its caller even when the server answers out of order."""
    rng = np.random.default_rng(3)
    vecs = [rng.integers(-50, 50, size=int(rng.integers(1, 40)),
                         dtype=np.int64) for _ in range(100)]

    async def main():
        server = await _run_server(ServeConfig(port=0, batch_window=0.01,
                                               cache_entries=0))
        try:
            client = await ServeClient.connect("127.0.0.1", server.port)
            outs = await asyncio.gather(*[
                client.scan("plus_scan", v) for v in vecs])
            await client.close()
            return outs
        finally:
            await server.shutdown()

    outs = asyncio.run(main())
    for v, out in zip(vecs, outs):
        assert np.array_equal(out, serial("plus_scan", v))


def test_floats_never_batch_and_stay_bit_identical():
    """Float vectors take the solo path (association and NaN semantics
    forbid fusing them), so their bits match the serial run exactly."""
    rng = np.random.default_rng(11)
    vecs = [rng.standard_normal(257) * 10.0 ** float(rng.integers(-3, 4))
            for _ in range(32)]

    async def main():
        server = await _run_server(ServeConfig(port=0, batch_window=0.02,
                                               cache_entries=0))
        try:
            clients = [await ServeClient.connect("127.0.0.1", server.port)
                       for _ in range(8)]
            outs = await asyncio.gather(*[
                clients[i % 8].scan("plus_scan", v)
                for i, v in enumerate(vecs)])
            for c in clients:
                await c.close()
            return server, outs
        finally:
            await server.shutdown()

    server, outs = asyncio.run(main())
    for v, out in zip(vecs, outs):
        expected = serial("plus_scan", v)
        assert out.dtype == np.float64
        assert np.array_equal(out, expected)  # bit-identical, no tolerance
    # every float execution unit carried exactly one request
    assert server.stats.mega_ops == 0
    assert server.stats.batches == 32
