"""Vector semantics: elementwise ops, permute/gather, immutability."""
import numpy as np
import pytest

from repro import CapabilityError, Machine, Vector


class TestBasics:
    def test_vector_is_one_dimensional(self, scan_machine):
        with pytest.raises(ValueError, match="1-D"):
            Vector(scan_machine, np.zeros((2, 2)))

    def test_data_is_read_only(self, scan_machine):
        v = scan_machine.vector([1, 2, 3])
        with pytest.raises(ValueError):
            v.data[0] = 9

    def test_to_array_is_a_copy(self, scan_machine):
        v = scan_machine.vector([1, 2, 3])
        a = v.to_array()
        a[0] = 99
        assert v.to_list() == [1, 2, 3]

    def test_unhashable(self, scan_machine):
        with pytest.raises(TypeError):
            hash(scan_machine.vector([1]))

    def test_mixed_machines_rejected(self):
        a = Machine("scan").vector([1, 2])
        b = Machine("scan").vector([3, 4])
        with pytest.raises(ValueError, match="different machines"):
            _ = a + b

    def test_length_mismatch_rejected(self, scan_machine):
        with pytest.raises(ValueError, match="length mismatch"):
            _ = scan_machine.vector([1, 2]) + scan_machine.vector([1, 2, 3])


class TestElementwise:
    def test_paper_addition_example(self, scan_machine):
        a = scan_machine.vector([5, 1, 3, 4, 3, 9, 2, 6])
        b = scan_machine.vector([2, 5, 3, 8, 1, 3, 6, 2])
        assert (a + b).to_list() == [7, 6, 6, 12, 4, 12, 8, 8]

    @pytest.mark.parametrize("op,expected", [
        (lambda a, b: a - b, [3, -4]),
        (lambda a, b: a * b, [10, 5]),
        (lambda a, b: a // b, [2, 0]),
        (lambda a, b: a % b, [1, 1]),
        (lambda a, b: a.minimum(b), [2, 1]),
        (lambda a, b: a.maximum(b), [5, 5]),
    ])
    def test_arithmetic(self, scan_machine, op, expected):
        a = scan_machine.vector([5, 1])
        b = scan_machine.vector([2, 5])
        assert op(a, b).to_list() == expected

    def test_scalar_operands(self, scan_machine):
        v = scan_machine.vector([1, 2, 3])
        assert (v + 10).to_list() == [11, 12, 13]
        assert (10 - v).to_list() == [9, 8, 7]
        assert (v * 2).to_list() == [2, 4, 6]
        assert (2 * v).to_list() == [2, 4, 6]

    def test_comparisons_produce_flags(self, scan_machine):
        v = scan_machine.vector([1, 5, 3])
        lt = v < 3
        assert lt.dtype == np.bool_
        assert lt.to_list() == [True, False, False]
        assert (v == 5).to_list() == [False, True, False]
        assert (v != 5).to_list() == [True, False, True]
        assert (v >= 3).to_list() == [False, True, True]

    def test_boolean_logic(self, scan_machine):
        a = scan_machine.flags([1, 1, 0, 0])
        b = scan_machine.flags([1, 0, 1, 0])
        assert (a & b).to_list() == [True, False, False, False]
        assert (a | b).to_list() == [True, True, True, False]
        assert (a ^ b).to_list() == [False, True, True, False]
        assert (~a).to_list() == [False, False, True, True]

    def test_bitwise_on_integers(self, scan_machine):
        v = scan_machine.vector([0b110, 0b011])
        assert (v & 0b010).to_list() == [0b010, 0b010]
        assert (v | 0b001).to_list() == [0b111, 0b011]
        assert (v >> 1).to_list() == [0b11, 0b01]
        assert (v << 1).to_list() == [0b1100, 0b0110]

    def test_bit_extraction(self, scan_machine):
        v = scan_machine.vector([5, 7, 3, 1, 4, 2, 7, 2])
        assert v.bit(0).to_list() == [True, True, True, True, False, False, True, False]

    def test_where_requires_flags(self, scan_machine):
        v = scan_machine.vector([1, 2])
        with pytest.raises(TypeError, match="boolean"):
            v.where(1, 0)

    def test_where(self, scan_machine):
        f = scan_machine.flags([1, 0, 1])
        a = scan_machine.vector([10, 20, 30])
        assert f.where(a, 0).to_list() == [10, 0, 30]
        assert f.where(1, a).to_list() == [1, 20, 1]

    def test_neg_abs(self, scan_machine):
        v = scan_machine.vector([3, -4])
        assert (-v).to_list() == [-3, 4]
        assert abs(v).to_list() == [3, 4]


class TestReflectedOperators:
    """scalar <op> vector for the division family, including the dtype
    boundaries NumPy promotion dictates."""

    def test_rtruediv_promotes_ints_to_float(self, scan_machine):
        v = scan_machine.vector([1, 2, 4])
        out = 10 / v
        assert out.dtype == np.float64
        assert out.to_list() == [10.0, 5.0, 2.5]

    def test_rtruediv_on_floats(self, scan_machine):
        v = scan_machine.vector([0.5, 2.0])
        assert (1.0 / v).to_list() == [2.0, 0.5]

    def test_rfloordiv_keeps_integer_dtype(self, scan_machine):
        v = scan_machine.vector(np.array([3, 4, 7], dtype=np.uint8))
        out = 10 // v
        assert out.dtype == np.uint8
        assert out.to_list() == [3, 2, 1]

    def test_rfloordiv_negative_rounds_toward_minus_inf(self, scan_machine):
        v = scan_machine.vector([3, -3])
        assert (10 // v).to_list() == [3, -4]

    def test_rmod_follows_divisor_sign(self, scan_machine):
        v = scan_machine.vector([3, -3, 7])
        out = 10 % v
        assert out.dtype == np.int64
        assert out.to_list() == [1, -2, 3]

    def test_rmod_float_promotion(self, scan_machine):
        v = scan_machine.vector([2.5, 4.0])
        out = 10 % v
        assert out.dtype == np.float64
        assert out.to_list() == [0.0, 2.0]

    def test_reflected_matches_eager_machine(self, scan_machine):
        """The deferred reflected ops agree with a fusion-off machine."""
        from repro import Machine
        eager = Machine("scan", fusion=False)
        for xs in ([2, 3, 6], np.array([7, 8], dtype=np.int16)):
            lazy_out = (100 // (10 % (1 + scan_machine.vector(xs))))
            eager_out = (100 // (10 % (1 + eager.vector(xs))))
            assert lazy_out.dtype == eager_out.dtype
            assert lazy_out.to_list() == eager_out.to_list()

    def test_narrow_dtype_scalar_boundary(self, scan_machine):
        # NEP 50: an in-range python-int scalar adopts the vector dtype;
        # an out-of-range one is rejected at build, same as eager NumPy
        v = scan_machine.vector(np.array([100, 200], dtype=np.uint8))
        out = 250 - v
        assert out.dtype == np.uint8
        assert out.to_list() == [150, 50]
        with pytest.raises(OverflowError):
            300 - v


class TestPermute:
    def test_paper_permute_example(self, scan_machine):
        a = scan_machine.vector([10, 11, 12, 13, 14, 15, 16, 17])
        i = scan_machine.vector([2, 5, 4, 3, 1, 6, 0, 7])
        out = a.permute(i)
        assert out.to_list() == [16, 14, 10, 13, 12, 11, 15, 17]

    def test_duplicate_indices_rejected(self, scan_machine):
        v = scan_machine.vector([1, 2, 3])
        with pytest.raises(CapabilityError, match="unique"):
            v.permute(scan_machine.vector([0, 0, 1]))

    def test_out_of_range_rejected(self, scan_machine):
        v = scan_machine.vector([1, 2])
        with pytest.raises(IndexError):
            v.permute(scan_machine.vector([0, 5]))

    def test_permute_into_longer_vector(self, scan_machine):
        v = scan_machine.vector([7, 8])
        out = v.permute(scan_machine.vector([3, 0]), length=5, default=-1)
        assert out.to_list() == [8, -1, -1, 7, -1]

    def test_reverse(self, scan_machine):
        v = scan_machine.vector([1, 2, 3])
        assert v.reverse().to_list() == [3, 2, 1]

    def test_shift_up(self, scan_machine):
        v = scan_machine.vector([1, 2, 3, 4])
        assert v.shift(1).to_list() == [0, 1, 2, 3]
        assert v.shift(2, fill=-1).to_list() == [-1, -1, 1, 2]

    def test_shift_down(self, scan_machine):
        v = scan_machine.vector([1, 2, 3, 4])
        assert v.shift(-1).to_list() == [2, 3, 4, 0]

    def test_shift_past_length(self, scan_machine):
        v = scan_machine.vector([1, 2])
        assert v.shift(5, fill=9).to_list() == [9, 9]
        assert v.shift(-5, fill=9).to_list() == [9, 9]

    def test_shift_zero(self, scan_machine):
        v = scan_machine.vector([1, 2])
        assert v.shift(0).to_list() == [1, 2]

    def test_shift_charges_one_permute(self, scan_machine):
        scan_machine.vector([1, 2, 3]).shift(1)
        assert scan_machine.counter.by_kind["permute"] == 1

    def test_gather_unique(self, scan_machine):
        v = scan_machine.vector([10, 20, 30])
        assert v.gather(scan_machine.vector([2, 0, 1])).to_list() == [30, 10, 20]

    def test_single_cell_access(self, scan_machine):
        v = scan_machine.vector([4, 5, 6])
        assert v.first() == 4
        assert v.last() == 6
        assert v.get(1) == 5
        assert scan_machine.counter.by_kind["memory"] == 3


class TestCombineWrite:
    @pytest.mark.parametrize("op,expected", [
        ("min", [1, 5, 0]),
        ("max", [3, 5, 0]),
        ("sum", [4, 5, 0]),
    ])
    def test_combining_ops(self, crcw_machine, op, expected):
        v = crcw_machine.vector([3, 1, 5])
        idx = crcw_machine.vector([0, 0, 1])
        out = v.combine_write(idx, length=3, op=op, default=0)
        assert out.to_list() == expected

    def test_any_takes_some_value(self, crcw_machine):
        v = crcw_machine.vector([3, 1, 5])
        idx = crcw_machine.vector([0, 0, 1])
        out = v.combine_write(idx, length=2, op="any")
        assert out.to_list()[0] in (1, 3)
        assert out.to_list()[1] == 5

    def test_unknown_op_rejected(self, crcw_machine):
        v = crcw_machine.vector([1])
        with pytest.raises(ValueError, match="unknown combine op"):
            v.combine_write(crcw_machine.vector([0]), length=1, op="xor")
