"""Connected components and the Euler-tour rootfix behind it."""
import numpy as np
import pytest

from repro import Machine
from repro.algorithms.connected_components import connected_components
from repro.algorithms.forest import rootfix
from repro.baselines import union_find_components


def _same_partition(a, b):
    """Two labelings describe the same partition."""
    a, b = np.asarray(a), np.asarray(b)
    seen = {}
    for x, y in zip(a, b):
        if x in seen:
            if seen[x] != y:
                return False
        else:
            seen[x] = y
    return len(set(seen.values())) == len(seen)


class TestRootfix:
    def test_single_tree(self):
        m = Machine("scan")
        parent = np.array([0, 0, 0, 1, 1, 2])
        assert rootfix(m, parent).tolist() == [0] * 6

    def test_forest(self):
        m = Machine("scan")
        parent = np.array([0, 0, 1, 3, 3, 4, 6])
        assert rootfix(m, parent).tolist() == [0, 0, 0, 3, 3, 3, 6]

    def test_all_roots(self):
        m = Machine("scan")
        assert rootfix(m, np.arange(5)).tolist() == list(range(5))

    def test_deep_chain(self):
        m = Machine("scan")
        n = 300
        parent = np.maximum(np.arange(n) - 1, 0)
        assert rootfix(m, parent).tolist() == [0] * n

    @pytest.mark.parametrize("seed", range(6))
    def test_random_forests(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 200))
        parent = np.arange(n)
        for v in range(1, n):
            if rng.random() < 0.8:
                parent[v] = rng.integers(0, v)  # acyclic by construction
        m = Machine("scan", seed=seed)
        labels = rootfix(m, parent)
        # oracle: iterate to fixpoint
        expect = parent.copy()
        for _ in range(n):
            expect = expect[expect]
        assert labels.tolist() == expect.tolist()

    def test_step_complexity_logarithmic(self):
        """Rootfix is O(lg n) steps on the scan model; quadrupling n should
        far less than quadruple the steps."""
        def steps_for(n):
            parent = np.maximum(np.arange(n) - 1, 0)
            m = Machine("scan")
            rootfix(m, parent)
            return m.steps

        s1, s2 = steps_for(256), steps_for(1024)
        assert s2 < 2 * s1


class TestComponents:
    def test_basic(self):
        m = Machine("scan", seed=0)
        edges = [[0, 1], [1, 2], [3, 4], [5, 6], [6, 7], [7, 5]]
        res = connected_components(m, 10, edges)
        assert res.num_components == 5  # {0,1,2} {3,4} {5,6,7} {8} {9}
        expect = union_find_components(10, edges)
        assert _same_partition(res.labels, expect)

    def test_no_edges(self):
        m = Machine("scan")
        res = connected_components(m, 4, np.empty((0, 2), dtype=int))
        assert res.num_components == 4
        assert res.labels.tolist() == [0, 1, 2, 3]

    def test_single_component(self):
        m = Machine("scan", seed=1)
        edges = [(i, i + 1) for i in range(49)]
        res = connected_components(m, 50, edges)
        assert res.num_components == 1

    @pytest.mark.parametrize("seed", range(8))
    def test_random_graphs_match_union_find(self, seed):
        rng = np.random.default_rng(seed + 100)
        n = int(rng.integers(5, 120))
        n_edges = int(rng.integers(1, 2 * n))
        edges = rng.integers(0, n, (n_edges, 2))
        edges = edges[edges[:, 0] != edges[:, 1]]
        if len(edges) == 0:
            edges = np.array([[0, min(1, n - 1)]])
            if n == 1:
                return
        # dedupe for the representation
        edges = np.unique(np.sort(edges, axis=1), axis=0)
        m = Machine("scan", seed=seed)
        res = connected_components(m, n, edges)
        expect = union_find_components(n, edges)
        assert _same_partition(res.labels, expect), seed
        assert res.num_components == len(set(expect.tolist()))

    def test_scan_beats_erew(self):
        rng = np.random.default_rng(9)
        n = 256
        edges = np.unique(np.sort(rng.integers(0, n, (3 * n, 2)), axis=1), axis=0)
        edges = edges[edges[:, 0] != edges[:, 1]]
        ms = Machine("scan", seed=9)
        connected_components(ms, n, edges)
        me = Machine("erew", seed=9)
        connected_components(me, n, edges)
        assert me.steps > 2.5 * ms.steps
