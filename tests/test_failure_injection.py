"""Failure injection: corrupt structures must be *detected*, not silently
computed over — the representation invariants are load-bearing."""
import numpy as np
import pytest

from repro import Machine, Vector
from repro.graph import SegmentedGraph, from_edges


def _fresh_graph():
    m = Machine("scan")
    g = from_edges(m, 4, [(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)],
                   weights=[5, 1, 7, 3, 2])
    return m, g


class TestGraphValidateCatchesCorruption:
    def test_clean_graph_validates(self):
        _, g = _fresh_graph()
        g.validate()

    def test_non_involution_pointers(self):
        m, g = _fresh_graph()
        cp = g.cross_pointers.to_array()
        cp[0], cp[1] = cp[1], cp[0]  # break cp[cp[i]] == i for some i
        g.cross_pointers = Vector(m, cp)
        with pytest.raises(AssertionError):
            g.validate()

    def test_non_permutation_pointers(self):
        m, g = _fresh_graph()
        cp = g.cross_pointers.to_array()
        cp[0] = cp[1]
        g.cross_pointers = Vector(m, cp)
        with pytest.raises(AssertionError, match="permutation"):
            g.validate()

    def test_self_pointing_slot(self):
        m, g = _fresh_graph()
        cp = g.cross_pointers.to_array()
        a = cp[0]
        cp[0] = 0
        cp[a] = a
        g.cross_pointers = Vector(m, cp)
        with pytest.raises(AssertionError):
            g.validate()

    def test_intra_segment_edge(self):
        m, g = _fresh_graph()
        # rewire two slots of the same segment at each other
        sf = g.seg_flags.data
        seg_id = np.cumsum(sf) - 1
        # find a segment with two slots
        seg, counts = np.unique(seg_id, return_counts=True)
        target = seg[counts >= 2][0]
        slots = np.flatnonzero(seg_id == target)[:2]
        cp = g.cross_pointers.to_array()
        a, b = cp[slots[0]], cp[slots[1]]
        cp[slots[0]], cp[slots[1]] = slots[1], slots[0]
        cp[a], cp[b] = b, a
        g.cross_pointers = Vector(m, cp)
        with pytest.raises(AssertionError, match="self-loop|intra"):
            g.validate()

    def test_first_slot_must_start_segment(self):
        m, g = _fresh_graph()
        sf = g.seg_flags.to_array()
        sf[0] = False
        g.seg_flags = Vector(m, sf)
        with pytest.raises(AssertionError, match="segment"):
            g.validate()

    def test_asymmetric_payload(self):
        m, g = _fresh_graph()
        w = g.slot_data["weight"].to_array()
        w[0] += 1  # its partner keeps the old weight
        g.slot_data["weight"] = Vector(m, w)
        with pytest.raises(AssertionError, match="weight"):
            g.validate()

    def test_payload_length_mismatch(self):
        m, g = _fresh_graph()
        g.slot_data["weight"] = Vector(m, g.slot_data["weight"].data[:-1])
        with pytest.raises(AssertionError, match="length"):
            g.validate()

    def test_vertex_reps_length_mismatch(self):
        _, g = _fresh_graph()
        g.vertex_reps = g.vertex_reps[:-1]
        with pytest.raises(AssertionError, match="reps"):
            g.validate()


class TestVectorGuards:
    def test_permute_rejects_partial_coverage_gaps_have_default(self):
        m = Machine("scan")
        out = m.vector([9, 8]).permute(m.vector([0, 3]), length=4, default=-1)
        assert out.to_list() == [9, -1, -1, 8]

    def test_gather_out_of_range(self):
        m = Machine("scan")
        with pytest.raises(IndexError):
            m.vector([1, 2]).gather(m.vector([0, 2]))

    def test_combine_write_length_mismatch(self):
        m = Machine("crcw")
        with pytest.raises(ValueError, match="match"):
            m.vector([1, 2]).combine_write(m.vector([0]), length=2)

    def test_where_machine_mismatch(self):
        a, b = Machine("scan"), Machine("scan")
        f = a.flags([1, 0])
        with pytest.raises(ValueError, match="machines"):
            f.where(b.vector([1, 2]), 0)


class TestSegmentedVectorDescriptorCorruption:
    """A corrupted segment descriptor must fail at construction, before
    any segmented operation silently mis-segments over it."""

    def test_clean_descriptor_accepted(self):
        from repro.core.nested import SegmentedVector

        m = Machine("scan")
        sv = SegmentedVector.from_lengths(m.vector([1, 2, 3, 4, 5]), [2, 3])
        assert sv.to_nested() == [[1, 2], [3, 4, 5]]

    def test_negative_length_rejected(self):
        from repro.core.nested import SegmentedVector

        m = Machine("scan")
        with pytest.raises(ValueError, match="positive"):
            SegmentedVector.from_lengths(m.vector([1, 2, 3]), [4, -1])

    def test_zero_length_rejected(self):
        from repro.core.nested import SegmentedVector

        m = Machine("scan")
        with pytest.raises(ValueError, match="positive"):
            SegmentedVector.from_lengths(m.vector([1, 2, 3]), [2, 0, 1])

    def test_sum_mismatch_rejected(self):
        from repro.core.nested import SegmentedVector

        m = Machine("scan")
        with pytest.raises(ValueError, match="sum to 4"):
            SegmentedVector.from_lengths(m.vector([1, 2, 3]), [2, 2])

    def test_bitflipped_length_rejected(self):
        from repro.core.nested import SegmentedVector

        m = Machine("scan")
        lengths = np.array([2, 3], dtype=np.int64)
        lengths[1] ^= np.int64(1) << 62  # a single stuck bit in the descriptor
        with pytest.raises(ValueError):
            SegmentedVector.from_lengths(m.vector([1, 2, 3, 4, 5]), lengths)

    def test_flag_vector_mismatch_rejected(self):
        from repro.core.nested import SegmentedVector

        m = Machine("scan")
        with pytest.raises(ValueError):
            SegmentedVector(m.vector([1, 2, 3]), m.flags([False, True, False]))


class TestAlgorithmInputGuards:
    def test_mst_rejects_isolated_vertex(self):
        from repro.algorithms import minimum_spanning_tree

        m = Machine("scan")
        with pytest.raises(ValueError, match="degree"):
            minimum_spanning_tree(m, 3, [(0, 1)], [1])

    def test_halving_merge_catches_unsorted_second_arg(self):
        from repro.algorithms import halving_merge

        m = Machine("scan")
        with pytest.raises(ValueError, match="b must be sorted"):
            halving_merge(m.vector([1, 2]), m.vector([3, 1]))

    def test_treefix_detects_cycle(self):
        from repro.algorithms import build_rooted_tree

        m = Machine("scan")
        # 1 -> 2 -> 1 cycle with root 0 disconnected from it
        with pytest.raises((ValueError, RuntimeError, IndexError)):
            build_rooted_tree(m, [0, 2, 1])

    def test_max_flow_guards(self):
        from repro.algorithms import max_flow

        m = Machine("scan")
        with pytest.raises(ValueError):
            max_flow(m, 3, [(0, 1), (1, 2)], [1, 2, 3], 0, 2)
