"""Valiant's O(lg lg n) merge (Table 1 merging row, CREW/CRCW column)."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CapabilityError, Machine
from repro.baselines import serial_merge, valiant_merge

sorted_lists = st.lists(st.integers(0, 10**4), max_size=150).map(sorted)


class TestCorrectness:
    @given(sorted_lists, sorted_lists)
    @settings(max_examples=80, deadline=None)
    def test_matches_serial_merge(self, a, b):
        m = Machine("crew")
        out = valiant_merge(m.vector(a), m.vector(b))
        assert out.to_list() == serial_merge(a, b).tolist()

    def test_empty_sides(self):
        m = Machine("crew")
        assert valiant_merge(m.vector([]), m.vector([1, 2])).to_list() == [1, 2]
        assert valiant_merge(m.vector([3]), m.vector([])).to_list() == [3]

    def test_heavy_duplicates(self):
        m = Machine("crew")
        out = valiant_merge(m.vector([5] * 40), m.vector([5] * 25))
        assert out.to_list() == [5] * 65

    def test_asymmetric_sizes(self, rng):
        a = np.sort(rng.integers(0, 10**5, 2000))
        b = np.sort(rng.integers(0, 10**5, 3))
        m = Machine("crew")
        out = valiant_merge(m.vector(a), m.vector(b))
        assert np.array_equal(out.data, serial_merge(a, b))

    def test_unsorted_rejected(self):
        m = Machine("crew")
        with pytest.raises(ValueError, match="sorted"):
            valiant_merge(m.vector([2, 1]), m.vector([3]))


class TestCapabilities:
    def test_requires_concurrent_read(self):
        for model in ("erew", "scan"):
            m = Machine(model)
            with pytest.raises(CapabilityError, match="concurrent read"):
                valiant_merge(m.vector([1]), m.vector([2]))

    def test_runs_on_crcw(self, rng):
        m = Machine("crcw")
        a = np.sort(rng.integers(0, 100, 50))
        b = np.sort(rng.integers(0, 100, 50))
        out = valiant_merge(m.vector(a), m.vector(b))
        assert np.array_equal(out.data, serial_merge(a, b))


class TestComplexity:
    def test_doubly_logarithmic_steps(self, rng):
        """Table 1: merging is O(lg lg n) on CREW — going from 2^8 to 2^16
        elements adds at most one recursion level of charges."""
        def steps(n):
            a = np.sort(rng.integers(0, 10**6, n))
            b = np.sort(rng.integers(0, 10**6, n))
            m = Machine("crew")
            valiant_merge(m.vector(a), m.vector(b))
            return m.steps

        s8, s16 = steps(256), steps(65536)
        assert s16 <= s8 + 4

    def test_beats_erew_halving_merge_in_steps(self, rng):
        """The lg lg n vs lg n gap of Table 1's merging row (on the models
        where each is at home)."""
        from repro.algorithms import halving_merge

        n = 4096
        a = np.sort(rng.integers(0, 10**6, n))
        b = np.sort(rng.integers(0, 10**6, n))
        mc = Machine("crew")
        valiant_merge(mc.vector(a), mc.vector(b))
        me = Machine("erew")
        halving_merge(me.vector(a), me.vector(b))
        assert mc.steps * 10 < me.steps
