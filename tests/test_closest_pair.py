"""Closest pair of points (Table 1)."""
import numpy as np
import pytest

from repro import Machine
from repro.algorithms.closest_pair import closest_pair
from repro.baselines import brute_closest_pair


class TestCorrectness:
    def test_two_points(self):
        res = closest_pair(Machine("scan"), [(0, 0), (3, 4)])
        assert res.distance_sq == 25
        assert res.pair == (0, 1)

    def test_three_points(self):
        res = closest_pair(Machine("scan"), [(0, 0), (10, 0), (1, 1)])
        assert res.distance_sq == 2
        assert res.pair == (0, 2)

    def test_duplicate_points(self):
        res = closest_pair(Machine("scan"), [(5, 5), (1, 2), (5, 5)])
        assert res.distance_sq == 0
        assert res.pair == (0, 2)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            closest_pair(Machine("scan"), [(0, 0)])

    def test_pair_straddling_the_divider(self):
        """The closest pair crosses the x-median: the strip probe must find
        it."""
        pts = [(0, 0), (1, 50), (2, 1), (3, 51), (100, 0), (101, 50),
               (49, 25), (51, 25)]
        res = closest_pair(Machine("scan"), pts)
        assert res.distance_sq == 4
        assert res.pair == (6, 7)

    def test_negative_coordinates(self):
        res = closest_pair(Machine("scan"), [(-5, -5), (-4, -5), (10, 10)])
        assert res.distance_sq == 1

    @pytest.mark.parametrize("seed", range(20))
    def test_random_against_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 250))
        pts = rng.integers(-500, 500, (n, 2))
        res = closest_pair(Machine("scan"), pts)
        assert res.distance_sq == brute_closest_pair(pts)
        i, j = res.pair
        assert i != j
        assert int(((pts[i] - pts[j]) ** 2).sum()) == res.distance_sq

    def test_clustered_points(self):
        rng = np.random.default_rng(99)
        centers = rng.integers(-10**4, 10**4, (8, 2))
        pts = np.concatenate([c + rng.integers(-5, 6, (20, 2)) for c in centers])
        res = closest_pair(Machine("scan"), pts)
        assert res.distance_sq == brute_closest_pair(pts)


class TestComplexity:
    def test_steps_scale_like_log(self):
        rng = np.random.default_rng(0)

        def steps(n):
            m = Machine("scan")
            closest_pair(m, rng.integers(0, 2**14, (n, 2)))
            return m.steps

        s1, s2 = steps(256), steps(2048)
        assert s2 < 2.5 * s1  # 8x points, far less than 8x steps

    def test_scan_beats_erew(self):
        rng = np.random.default_rng(1)
        pts = rng.integers(0, 2**10, (512, 2))
        ms = Machine("scan")
        closest_pair(ms, pts)
        me = Machine("erew")
        closest_pair(me, pts)
        assert me.steps > 2 * ms.steps
