"""Baselines: P-RAM bitonic sort, explicit EREW tree scans, serial oracles."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Machine
from repro._util import ceil_log2
from repro.baselines import (
    bitonic_sort,
    bitonic_stage_count,
    dda_line,
    erew_max_scan,
    erew_plus_scan,
    erew_scan_steps,
    kruskal_mst,
    monotone_chain_hull,
    serial_merge,
    serial_sort,
    union_find_components,
)
from repro.core import scans


class TestBitonicSortPram:
    @given(st.lists(st.integers(-10**6, 10**6), max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_sorts(self, xs):
        m = Machine("erew")
        assert bitonic_sort(m.vector(xs)).to_list() == sorted(xs)

    def test_floats(self, rng):
        m = Machine("erew")
        data = rng.standard_normal(60)
        assert bitonic_sort(m.vector(data, dtype=float)).to_list() == \
            sorted(data.tolist())

    def test_non_power_of_two_padding(self):
        m = Machine("erew")
        assert bitonic_sort(m.vector([3, 1, 2])).to_list() == [1, 2, 3]

    def test_step_complexity_is_log_squared(self):
        """Bitonic costs Θ(lg² n) steps: 2 charges per stage."""
        m = Machine("erew")
        bitonic_sort(m.vector(list(range(256, 0, -1))))
        stages = bitonic_stage_count(256)
        assert m.steps == 2 * stages

    def test_same_cost_on_scan_model(self):
        """Bitonic gains nothing from scans — the point of Table 4."""
        a, b = Machine("erew"), Machine("scan")
        bitonic_sort(a.vector(list(range(64))))
        bitonic_sort(b.vector(list(range(64))))
        assert a.steps == b.steps

    def test_stage_count(self):
        assert bitonic_stage_count(2) == 1
        assert bitonic_stage_count(1024) == 55


class TestErewTreeScan:
    @given(st.lists(st.integers(-10**5, 10**5), min_size=1, max_size=150))
    @settings(max_examples=40, deadline=None)
    def test_plus_scan_matches_primitive(self, xs):
        m = Machine("erew")
        a = erew_plus_scan(m.vector(xs)).to_list()
        b = scans.plus_scan(Machine("scan").vector(xs)).to_list()
        assert a == b

    @given(st.lists(st.integers(-10**5, 10**5), min_size=1, max_size=150))
    @settings(max_examples=40, deadline=None)
    def test_max_scan_matches_primitive(self, xs):
        m = Machine("erew")
        a = erew_max_scan(m.vector(xs)).to_list()
        b = scans.max_scan(Machine("scan").vector(xs)).to_list()
        assert a == b

    def test_explicit_cost_matches_charged_cost(self):
        """The Machine charges non-scan models 2·lg n per scan; the explicit
        tree implementation pays exactly that."""
        n = 512
        m = Machine("erew")
        erew_plus_scan(m.vector(range(n)))
        assert m.steps == erew_scan_steps(n) == 2 * ceil_log2(n)

    def test_bool_input(self):
        m = Machine("erew")
        out = erew_plus_scan(m.flags([1, 0, 1, 1]))
        assert out.to_list() == [0, 1, 1, 2]


class TestSerialOracles:
    def test_serial_merge(self):
        out = serial_merge([1, 3, 5], [2, 3, 4])
        assert out.tolist() == [1, 2, 3, 3, 4, 5]

    def test_serial_sort_stable(self):
        assert serial_sort([3, 1, 2]).tolist() == [1, 2, 3]

    def test_kruskal(self):
        edges = [(0, 1), (1, 2), (0, 2)]
        chosen, total = kruskal_mst(3, edges, [5, 1, 3])
        assert total == 4
        assert chosen.tolist() == [1, 2]

    def test_union_find(self):
        labels = union_find_components(5, [(0, 1), (2, 3)])
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert len(set(labels.tolist())) == 3

    def test_dda_line_endpoints(self):
        pts = dda_line(0, 0, 5, 3)
        assert pts[0] == (0, 0) and pts[-1] == (5, 3)
        assert len(pts) == 6

    def test_dda_point(self):
        assert dda_line(2, 2, 2, 2) == [(2, 2)]

    def test_monotone_chain(self):
        hull = monotone_chain_hull([(0, 0), (2, 0), (1, 1), (1, 3)])
        assert hull == {(0, 0), (2, 0), (1, 3)}
