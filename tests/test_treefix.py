"""Treefix operations: Euler-tour tree quantities in O(lg n) steps."""
import numpy as np
import pytest

from repro import Machine
from repro.algorithms.treefix import build_rooted_tree, root_tree_edges


def _random_parent(rng, n):
    parent = np.arange(n)
    for v in range(1, n):
        parent[v] = rng.integers(0, v)
    return parent


def _oracles(parent, values):
    n = len(parent)
    depth = np.zeros(n, dtype=np.int64)
    for v in range(1, n):
        depth[v] = depth[parent[v]] + 1
    sizes = np.ones(n, dtype=np.int64)
    ssum = values.copy()
    smin = values.copy()
    smax = values.copy()
    for v in range(n - 1, 0, -1):
        p = parent[v]
        sizes[p] += sizes[v]
        ssum[p] += ssum[v]
        smin[p] = min(smin[p], smin[v])
        smax[p] = max(smax[p], smax[v])
    psum = values.copy()
    for v in range(1, n):
        psum[v] = psum[parent[v]] + values[v]
    return depth, sizes, ssum, smin, smax, psum


class TestTreefixOperations:
    @pytest.mark.parametrize("seed", range(10))
    def test_all_quantities_match_oracles(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 250))
        parent = _random_parent(rng, n)
        values = rng.integers(-100, 100, n)
        depth, sizes, ssum, smin, smax, psum = _oracles(parent, values)

        m = Machine("scan")
        t = build_rooted_tree(m, parent)
        assert np.array_equal(t.depths(), depth)
        assert np.array_equal(t.subtree_sizes(), sizes)
        assert np.array_equal(t.subtree_sums(values), ssum)
        assert np.array_equal(t.subtree_min(values), smin)
        assert np.array_equal(t.subtree_max(values), smax)
        assert np.array_equal(t.path_sums(values), psum)

    def test_pre_and_postorder_are_permutations(self):
        rng = np.random.default_rng(1)
        parent = _random_parent(rng, 100)
        t = build_rooted_tree(Machine("scan"), parent)
        pre, post = t.preorder(), t.postorder()
        assert sorted(pre.tolist()) == list(range(100))
        assert sorted(post.tolist()) == list(range(100))
        for v in range(1, 100):
            u = parent[v]
            assert pre[u] < pre[v]
            assert post[u] > post[v]

    def test_preorder_subtree_interval(self):
        """pre(v) .. pre(v)+size(v) is exactly v's subtree — the property
        Tarjan-Vishkin leans on."""
        rng = np.random.default_rng(2)
        parent = _random_parent(rng, 80)
        t = build_rooted_tree(Machine("scan"), parent)
        pre, size = t.preorder(), t.subtree_sizes()
        anc = np.zeros((80, 80), dtype=bool)
        for v in range(80):
            u = v
            while True:
                anc[u, v] = True
                if parent[u] == u:
                    break
                u = parent[u]
        for u in range(80):
            for v in range(80):
                interval = pre[u] <= pre[v] < pre[u] + size[u]
                assert interval == anc[u, v]

    def test_single_vertex(self):
        t = build_rooted_tree(Machine("scan"), [0])
        assert t.depths().tolist() == [0]
        assert t.subtree_sizes().tolist() == [1]
        assert t.subtree_min([7]).tolist() == [7]

    def test_vine(self):
        n = 200
        parent = np.maximum(np.arange(n) - 1, 0)
        t = build_rooted_tree(Machine("scan"), parent)
        assert np.array_equal(t.depths(), np.arange(n))
        assert np.array_equal(t.subtree_sizes(), n - np.arange(n))

    def test_multiple_roots_rejected(self):
        with pytest.raises(ValueError, match="exactly one root"):
            build_rooted_tree(Machine("scan"), [0, 1, 0])

    def test_value_length_checked(self):
        t = build_rooted_tree(Machine("scan"), [0, 0, 1])
        with pytest.raises(ValueError):
            t.subtree_sums([1, 2])


class TestRootTreeEdges:
    @pytest.mark.parametrize("seed", range(8))
    def test_orientation_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 150))
        parent = _random_parent(rng, n)
        edges = np.column_stack((np.arange(1, n), parent[1:]))
        rng.shuffle(edges)  # orientation and order must not matter
        flip = rng.random(len(edges)) < 0.5
        edges[flip] = edges[flip][:, ::-1]
        got = root_tree_edges(Machine("scan"), n, edges, root=0)
        assert np.array_equal(got, parent)

    def test_rerooting(self):
        """The same tree rooted elsewhere: parents flip along the path."""
        edges = [(0, 1), (1, 2), (2, 3)]
        got = root_tree_edges(Machine("scan"), 4, edges, root=3)
        assert got.tolist() == [1, 2, 3, 3]

    def test_wrong_edge_count_rejected(self):
        with pytest.raises(ValueError, match="tree"):
            root_tree_edges(Machine("scan"), 4, [(0, 1)])


class TestStepComplexity:
    def test_build_is_polylog(self):
        def steps(n):
            parent = np.maximum(np.arange(n) - 1, 0)
            m = Machine("scan")
            t = build_rooted_tree(m, parent)
            t.subtree_sums(np.ones(n, dtype=np.int64))
            return m.steps

        s1, s2 = steps(256), steps(2048)
        assert s2 < 2 * s1

    def test_each_plus_query_is_one_scan(self):
        parent = np.maximum(np.arange(64) - 1, 0)
        m = Machine("scan")
        t = build_rooted_tree(m, parent)
        with m.measure() as r:
            t.depths()
        assert r.delta.by_kind.get("scan", 0) == 1
