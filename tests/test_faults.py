"""The fault-injection and fault-tolerance layer (repro.faults).

Covers the three layers of the subsystem: deterministic injection
(plans, replay), detection and masking (checksum, TMR, machine-level
cross-verification), and recovery (retry, EREW degradation) — plus the
zero-overhead guarantee: with nothing attached, step and cycle counts
are bit-identical to the plain simulators.
"""
import numpy as np
import pytest

from repro import Machine
from repro.core import scans
from repro.core.simulate import sim_verify_max_scan, sim_verify_plus_scan
from repro.faults import (
    CircuitFault,
    FaultInjector,
    FaultPlan,
    PrimitiveFault,
    ReliabilityPolicy,
    RouterFault,
    ScanVerificationError,
    random_tree_fault_plan,
    run_circuit_campaign,
    run_machine_campaign,
    tree_fifo_length,
)
from repro.hardware import (
    MAX,
    PLUS,
    ChecksumTreeScanCircuit,
    HypercubeRouter,
    SegmentedTreeScanCircuit,
    TMRTreeScanCircuit,
    TreeScanCircuit,
    checksum_scan_cycles,
    tmr_scan_cycles,
    tree_scan_cycles,
)
from repro.machine.counters import FaultCounters


def _exclusive_plus(vals, width):
    out = np.zeros(len(vals), dtype=np.int64)
    np.cumsum(np.asarray(vals)[:-1], out=out[1:])
    return out & ((1 << width) - 1)


class TestFaultPlan:
    def test_empty_plan(self):
        assert FaultPlan().empty
        assert not FaultPlan(probability=0.5).empty

    def test_rejects_unknown_circuit_field(self):
        with pytest.raises(ValueError, match="field"):
            FaultPlan(circuit_faults=(CircuitFault(0, 1, "bogus"),))

    def test_rejects_unknown_primitive_kind(self):
        with pytest.raises(ValueError, match="kind"):
            FaultPlan(primitive_faults=(PrimitiveFault(0, kind="gather"),))

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError, match="probability"):
            FaultPlan(probability=1.5)

    def test_rejects_bad_router_kind(self):
        with pytest.raises(ValueError, match="drop"):
            RouterFault(dimension=0, message=0, kind="explode")

    def test_policy_rejects_negative_retries(self):
        with pytest.raises(ValueError, match="retries"):
            ReliabilityPolicy(max_retries=-1)

    def test_random_plan_deterministic(self):
        a = random_tree_fault_plan(42, n_leaves=16, width=8)
        b = random_tree_fault_plan(42, n_leaves=16, width=8)
        assert a == b
        assert len(a.circuit_faults) == 1
        f = a.circuit_faults[0]
        assert 1 <= f.unit < 16
        assert 0 <= f.cycle < tree_scan_cycles(16, 8)

    def test_random_plans_cover_sites(self):
        fields = {random_tree_fault_plan(s, n_leaves=8, width=8)
                  .circuit_faults[0].field for s in range(200)}
        assert len(fields) >= 6  # nearly every addressable field drawn

    def test_fifo_length_helper(self):
        assert tree_fifo_length(1) == 0          # root
        assert tree_fifo_length(2) == 2
        assert tree_fifo_length(7) == 4


class TestZeroOverhead:
    """Injection disabled must cost nothing and change nothing."""

    def _run_program(self, m):
        v = m.vector([3, 1, 4, 1, 5, 9, 2, 6])
        out = scans.plus_scan(v)
        out = scans.max_scan(out + v)
        out = out.permute(m.vector([7, 6, 5, 4, 3, 2, 1, 0]))
        return out, m.snapshot()

    def test_machine_counts_identical_with_empty_plan(self):
        plain_out, plain_snap = self._run_program(Machine("scan"))
        inj = FaultInjector(FaultPlan())
        faulty_out, faulty_snap = self._run_program(
            Machine("scan", fault_injector=inj))
        assert plain_out.to_list() == faulty_out.to_list()
        assert plain_snap.by_kind == faulty_snap.by_kind
        assert inj.counters.injected == 0

    def test_default_machine_has_clean_fault_state(self):
        m = Machine("scan")
        assert m.fault_injector is None and m.reliability is None
        assert not m.scan_unit_failed
        assert m.fault_counters.injected == 0
        _, snap = self._run_program(m)
        assert not snap.degraded

    def test_circuit_cycles_identical_with_empty_plan(self):
        vals = np.arange(8) * 31 % 256
        plain = TreeScanCircuit(8, 8, PLUS)
        faulty = TreeScanCircuit(8, 8, PLUS, injector=FaultInjector(FaultPlan()))
        po, pc = plain.scan(vals)
        fo, fc = faulty.scan(vals)
        assert np.array_equal(po, fo) and pc == fc

    def test_erew_model_unchanged(self):
        m = Machine("erew")
        scans.plus_scan(m.vector(range(1024)))
        assert m.steps == 2 * 10  # the seed's 2 lg n costing


class TestCircuitInjection:
    def test_up_s_flip_corrupts_output(self):
        vals = np.array([1, 2, 3, 4, 5, 6, 7, 8])
        plan = FaultPlan(circuit_faults=(CircuitFault(
            cycle=0, unit=4, field="up_s"),))
        inj = FaultInjector(plan)
        c = TreeScanCircuit(8, 8, PLUS, injector=inj)
        out, _ = c.scan(vals)
        assert not np.array_equal(out, _exclusive_plus(vals, 8))
        assert inj.counters.injected == 1

    def test_faults_reapply_every_scan(self):
        plan = FaultPlan(circuit_faults=(CircuitFault(
            cycle=0, unit=4, field="up_s"),))
        inj = FaultInjector(plan)
        c = TreeScanCircuit(8, 8, PLUS, injector=inj)
        vals = np.arange(8)
        o1, _ = c.scan(vals)
        o2, _ = c.scan(vals)
        assert np.array_equal(o1, o2)  # the schedule replays per run
        assert inj.counters.injected == 2

    def test_replay_is_deterministic(self):
        for seed in range(20):
            plan = random_tree_fault_plan(seed, n_leaves=8, width=8)
            vals = np.random.default_rng(seed).integers(0, 256, 8)
            o1, _ = TreeScanCircuit(8, 8, PLUS,
                                    injector=FaultInjector(plan)).scan(vals)
            o2, _ = TreeScanCircuit(8, 8, PLUS,
                                    injector=FaultInjector(plan)).scan(vals)
            assert np.array_equal(o1, o2)

    def test_out_of_range_unit_raises(self):
        plan = FaultPlan(circuit_faults=(CircuitFault(
            cycle=0, unit=99, field="up_s"),))
        c = TreeScanCircuit(8, 8, PLUS, injector=FaultInjector(plan))
        with pytest.raises(ValueError, match="unit"):
            c.scan(np.zeros(8, dtype=np.int64))

    def test_fault_on_other_replica_ignored(self):
        vals = np.arange(8)
        plan = FaultPlan(circuit_faults=(CircuitFault(
            cycle=0, unit=4, field="up_s", replica=2),))
        c = TreeScanCircuit(8, 8, PLUS, injector=FaultInjector(plan))
        out, _ = c.scan(vals)
        assert np.array_equal(out, _exclusive_plus(vals, 8))

    def test_segmented_carry_flip(self):
        plan = FaultPlan(circuit_faults=(CircuitFault(
            cycle=0, unit=9, field="seg_carry", bit=0),))
        inj = FaultInjector(plan)
        c = SegmentedTreeScanCircuit(8, 8, "plus", injector=inj)
        flags = [True] + [False] * 7
        out, _ = c.scan([1] * 8, flags)
        clean, _ = SegmentedTreeScanCircuit(8, 8, "plus").scan([1] * 8, flags)
        assert not np.array_equal(out, clean)
        assert inj.counters.injected == 1

    def test_segmented_rejects_bad_unit(self):
        plan = FaultPlan(circuit_faults=(CircuitFault(
            cycle=0, unit=16, field="seg_up"),))
        c = SegmentedTreeScanCircuit(8, 8, "plus", injector=FaultInjector(plan))
        with pytest.raises(ValueError, match="unit"):
            c.scan([1] * 8, [True] + [False] * 7)


class TestChecksum:
    def test_clean_scan_passes(self):
        c = ChecksumTreeScanCircuit(8, 8, PLUS)
        vals = np.arange(8) * 5 % 256
        out, cycles, ok = c.scan(vals)
        assert ok and cycles == checksum_scan_cycles(8, 8)
        assert np.array_equal(out, _exclusive_plus(vals, 8))

    def test_up_sweep_fault_detected(self):
        # a flip feeding the root total breaks out[-1] + in[-1] == total
        plan = FaultPlan(circuit_faults=(CircuitFault(
            cycle=2, unit=1, field="up_s"),))
        inj = FaultInjector(plan)
        c = ChecksumTreeScanCircuit(8, 8, PLUS, injector=inj)
        _, _, ok = c.scan(np.arange(8))
        assert not ok
        assert inj.counters.detected == 1

    def test_max_scan_checksum(self):
        c = ChecksumTreeScanCircuit(8, 8, MAX)
        vals = np.array([3, 1, 200, 4, 17, 9, 250, 6])
        out, _, ok = c.scan(vals)
        assert ok
        expected = np.zeros(8, dtype=np.int64)
        np.maximum.accumulate(vals[:-1], out=expected[1:])
        assert np.array_equal(out, expected)


class TestTMR:
    def test_single_replica_fault_masked(self):
        vals = np.arange(8) + 1
        plan = FaultPlan(circuit_faults=(CircuitFault(
            cycle=1, unit=4, field="up_s", replica=1),))
        inj = FaultInjector(plan)
        t = TMRTreeScanCircuit(8, 8, PLUS, injector=inj)
        voted, cycles, stats = t.scan(vals)
        assert np.array_equal(voted, _exclusive_plus(vals, 8))
        assert stats.disagreements > 0 and stats.flagged
        assert cycles == tmr_scan_cycles(8, 8)
        assert inj.counters.masked == 1

    def test_clean_scan_unanimous(self):
        t = TMRTreeScanCircuit(8, 8, PLUS)
        voted, _, stats = t.scan(np.arange(8))
        assert stats.unanimous and not stats.flagged
        assert np.array_equal(voted, _exclusive_plus(np.arange(8), 8))

    def test_campaign_tmr_checksum_has_no_silent_faults(self):
        r = run_circuit_campaign("tmr+checksum", trials=120)
        assert r.silent == 0
        assert r.coverage >= 0.99

    def test_campaign_lattice_ordering(self):
        unchecked = run_circuit_campaign("unchecked", trials=120)
        checksum = run_circuit_campaign("checksum", trials=120)
        assert unchecked.silent > 0  # faults do land
        assert checksum.silent < unchecked.silent
        assert checksum.coverage > unchecked.coverage


class TestRouterInjection:
    def test_clean_route_delivers_all(self):
        r = HypercubeRouter(8, 8)
        st = r.route(np.arange(8)[::-1].copy())
        assert st.delivered == st.messages == 8
        assert st.dropped == st.misrouted == 0

    def test_drop_and_corrupt(self):
        plan = FaultPlan(router_faults=(
            RouterFault(dimension=0, message=3, kind="drop"),
            RouterFault(dimension=1, message=5, kind="corrupt", bit=2)))
        inj = FaultInjector(plan)
        r = HypercubeRouter(8, 8, injector=inj)
        st = r.route(np.arange(8)[::-1].copy())
        assert st.dropped == 1 and st.misrouted == 1
        assert st.delivered + st.dropped + st.misrouted == st.messages
        assert inj.counters.injected == 2

    def test_corrupt_pending_bit_misroutes(self):
        # bit 2 is still unrouted at dimension 0, so its corruption steers
        # the message to the wrong node and e-cube never repairs it
        plan = FaultPlan(router_faults=(
            RouterFault(dimension=0, message=0, kind="corrupt", bit=2),))
        r = HypercubeRouter(8, 8, injector=FaultInjector(plan))
        st = r.route(np.full(8, 7))  # everyone heads for node 7
        assert st.misrouted == 1
        assert st.delivered == 7

    def test_corrupt_routed_bit_is_harmless(self):
        # bit 0 was already routed by dimension 2; flipping it changes the
        # address register but not the remaining path
        plan = FaultPlan(router_faults=(
            RouterFault(dimension=2, message=0, kind="corrupt", bit=0),))
        inj = FaultInjector(plan)
        r = HypercubeRouter(8, 8, injector=inj)
        st = r.route(np.full(8, 7))
        assert st.delivered == 8 and st.misrouted == 0
        assert inj.counters.injected == 1  # the flip did happen


class TestVerifiers:
    def test_plus_verifier_accepts_and_rejects(self):
        m = Machine("scan")
        v = m.vector([2, 1, 2, 3, 5, 8])
        good = scans.plus_scan(v)
        assert sim_verify_plus_scan(v, good)
        for i in range(len(v)):
            bad = good.to_array()
            bad[i] ^= 4
            assert not sim_verify_plus_scan(v, m.vector(bad))

    def test_max_verifier_complete(self):
        m = Machine("scan")
        v = m.vector([3, 1, 4, 1, 5, 9, 2, 6])
        good = scans.max_scan(v, identity=0)
        assert sim_verify_max_scan(v, good, identity=0)
        for i in range(len(v)):
            bad = good.to_array()
            bad[i] += 1
            assert not sim_verify_max_scan(v, m.vector(bad), identity=0)

    def test_float_verifier_tolerates_rounding(self):
        m = Machine("scan")
        rng = np.random.default_rng(0)
        v = m.vector(rng.random(512))
        out = scans.plus_scan(v)
        assert sim_verify_plus_scan(v, out)

    def test_verification_charges_steps(self):
        m = Machine("scan")
        v = m.vector([1, 2, 3, 4])
        out = scans.plus_scan(v)
        before = m.steps
        sim_verify_plus_scan(v, out)
        assert m.steps > before


class TestCheckedMachine:
    def test_detect_retry_correct(self):
        plan = FaultPlan(primitive_faults=(PrimitiveFault(
            op_index=0, kind="scan", element=2, bit=5),))
        m = Machine("scan", reliability=True,
                    fault_injector=FaultInjector(plan))
        out = scans.plus_scan(m.vector([1, 2, 3, 4, 5, 6, 7, 8]))
        assert out.to_list() == [0, 1, 3, 6, 10, 15, 21, 28]
        fc = m.fault_counters
        assert fc.injected == fc.detected == fc.retried == fc.corrected == 1
        assert fc.undetected == 0 and fc.reconciles()
        assert not m.scan_unit_failed

    def test_checked_max_scan(self):
        plan = FaultPlan(primitive_faults=(PrimitiveFault(
            op_index=0, kind="scan", element=4, bit=3),))
        m = Machine("scan", reliability=True,
                    fault_injector=FaultInjector(plan))
        out = scans.max_scan(m.vector([3, 1, 4, 1, 5, 9, 2, 6]), identity=0)
        assert out.to_list() == [0, 3, 3, 4, 4, 5, 9, 9]
        assert m.fault_counters.corrected == 1

    def test_persistent_fault_degrades_to_erew(self):
        plan = FaultPlan(probability=1.0, probability_kinds=("scan",), seed=1)
        m = Machine("scan", reliability=True,
                    fault_injector=FaultInjector(plan))
        n = 64
        out = scans.plus_scan(m.vector(np.arange(n)))
        expected = np.zeros(n, dtype=np.int64)
        np.cumsum(np.arange(n - 1), out=expected[1:])
        assert np.array_equal(out.data, expected)  # degraded but correct
        assert m.scan_unit_failed
        assert m.fault_counters.degraded_scans == 1
        snap = m.snapshot()
        assert snap.degraded
        # one degraded scan costs the EREW 2 lg n, visible under its own kind
        before = m.steps
        scans.plus_scan(m.vector(np.arange(n)))
        assert m.steps - before == 12  # 2 * lg 64
        assert m.snapshot().by_kind["scan_degraded"] >= 12

    def test_policy_can_forbid_degrading(self):
        plan = FaultPlan(probability=1.0, probability_kinds=("scan",), seed=2)
        m = Machine("scan",
                    reliability=ReliabilityPolicy(max_retries=1,
                                                  degrade_on_failure=False),
                    fault_injector=FaultInjector(plan))
        with pytest.raises(ScanVerificationError, match="forbids"):
            scans.plus_scan(m.vector(np.arange(16)))

    def test_retry_recharges_steps(self):
        clean = Machine("scan", reliability=True)
        scans.plus_scan(clean.vector(np.arange(8)))
        faulty = Machine("scan", reliability=True,
                         fault_injector=FaultInjector(FaultPlan(
                             primitive_faults=(PrimitiveFault(
                                 op_index=0, kind="scan", element=1, bit=1),))))
        scans.plus_scan(faulty.vector(np.arange(8)))
        assert faulty.steps > clean.steps  # the failed attempt was paid for

    def test_fail_scan_unit_direct(self):
        m = Machine("scan")
        m.fail_scan_unit()
        out = scans.plus_scan(m.vector([5, 5, 5, 5]))
        assert out.to_list() == [0, 5, 10, 15]
        assert m.snapshot().degraded

    def test_reset_clears_degradation(self):
        m = Machine("scan")
        m.fail_scan_unit()
        m.reset()
        assert not m.scan_unit_failed
        scans.plus_scan(m.vector([1, 2]))
        assert not m.snapshot().degraded

    def test_derived_scans_ride_checked_primitives(self):
        plan = FaultPlan(primitive_faults=(PrimitiveFault(
            op_index=0, kind="scan", element=1, bit=2),))
        m = Machine("scan", reliability=True,
                    fault_injector=FaultInjector(plan))
        flags = scans.or_scan(m.flags([False, True, False, False]))
        assert flags.to_list() == [False, False, True, True]

    def test_machine_campaign_reconciles(self):
        res = run_machine_campaign(trials=25, n=32)
        assert res.all_correct and res.all_reconciled
        assert res.totals.undetected == 0


class TestPrimitiveCorruption:
    def test_elementwise_and_permute_faults(self):
        plan = FaultPlan(primitive_faults=(
            PrimitiveFault(op_index=0, kind="elementwise", element=1, bit=0),
            PrimitiveFault(op_index=0, kind="permute", element=0, bit=1)))
        inj = FaultInjector(plan)
        m = Machine("scan", fault_injector=inj)
        v = m.vector([10, 20, 30])
        w = v + 1  # elementwise invocation 0: element 1 bit 0 flipped
        assert w.to_list() == [11, 20, 31]
        p = w.permute(m.vector([0, 1, 2]))  # permute 0: element 0 bit 1
        assert p.to_list() == [9, 20, 31]
        assert inj.counters.injected == 2

    def test_probabilistic_corruption_replays(self):
        plan = FaultPlan(probability=0.5, probability_kinds=("scan",), seed=9)
        runs = []
        for _ in range(2):
            inj = FaultInjector(plan)
            m = Machine("scan", fault_injector=inj)
            outs = [scans.plus_scan(m.vector(np.arange(16))).to_list()
                    for _ in range(6)]
            runs.append(outs)
        assert runs[0] == runs[1]  # same seed, same corruption pattern
        flat = [o for outs in runs for o in outs]
        clean = list(np.concatenate(([0], np.cumsum(np.arange(15)))))
        assert any(o != clean for o in flat)  # p=0.5 over 6 scans: some hit

    def test_injector_reset_rewinds_schedule(self):
        plan = FaultPlan(primitive_faults=(PrimitiveFault(
            op_index=0, kind="scan", element=3, bit=4),))
        inj = FaultInjector(plan)
        m = Machine("scan", fault_injector=inj)
        first = scans.plus_scan(m.vector(np.arange(8))).to_list()
        second = scans.plus_scan(m.vector(np.arange(8))).to_list()
        inj.reset()
        third = scans.plus_scan(m.vector(np.arange(8))).to_list()
        assert first == third  # op index rewound: fault re-fires
        assert first != second


class TestFaultCounters:
    def test_reconciliation_and_summary(self):
        fc = FaultCounters(injected=5, detected=3, masked=2)
        assert fc.undetected == 0 and fc.reconciles()
        fc.detected = 6
        assert fc.undetected == -3 and not fc.reconciles()
        assert "injected=5" in FaultCounters(injected=5).summary()

    def test_reset(self):
        fc = FaultCounters(injected=2, detected=1, retried=1)
        fc.reset()
        assert fc.injected == fc.detected == fc.retried == 0
