"""The distributed backend: sharded multi-process scans, done right.

The contract under test is the same one every backend signs — **bit-identical
results and identical step charges** — except this backend computes across
OS worker processes with shared memory and a carry exchange, so the tests
additionally pin:

* shard-kernel correctness for every carry-bearing primitive across dtypes,
  shard-count edge cases (n smaller than the pool, n == 1, carry-free
  shards), and a million-element vector;
* the round-efficient exclusive carry exchange (``ceil(lg p)`` rounds,
  order-correct for non-commutative combines);
* spec parsing (``distributed[:<workers>[:<min_n>]]``) and the helpful
  registry error (satellite: a typo'd backend name must teach the fix);
* Machine integration: step charges never depend on where the bytes were
  computed, even when chaos kills a worker mid-scan (the acceptance test);
* conformance-fuzzer parity against the numpy oracle.

Chaos recovery paths get their own file (``test_distributed_chaos.py``),
as does teardown hygiene (``test_distributed_teardown.py``).
"""
import math

import numpy as np
import pytest

from repro import Machine
from repro.backends import get_backend
from repro.backends.distributed import DistributedBackend
from repro.backends.numpy_backend import NumPyBackend
from repro.cluster import (ChaosAction, ChaosPlan, RetryPolicy,
                           exchange_rounds, exclusive_exchange)
from repro.cluster import shardops
from repro.core import scans, segmented

# fast-failing policy for tests: generous deadline (the suite must pass on
# a loaded 1-CPU container), near-zero backoff so retries don't stall
QUICK = RetryPolicy(op_deadline=15.0, backoff_base=0.01, backoff_cap=0.05)


@pytest.fixture(scope="module")
def dist():
    """One pool for the whole module's correctness tests (3 workers so a
    middle shard sees a non-trivial carry on both sides)."""
    backend = DistributedBackend(workers=3, min_distribute=1, policy=QUICK)
    yield backend
    backend.shutdown()


def _rng(seed=0):
    return np.random.default_rng(seed)


# --------------------------------------------------------------------------- #
# sharded correctness vs the in-process oracle
# --------------------------------------------------------------------------- #


class TestShardedCorrectness:
    oracle = NumPyBackend()

    @pytest.mark.parametrize("dtype", ["int64", "int32", "uint8", "float64"])
    @pytest.mark.parametrize("n", [1, 2, 3, 7, 100, 4097])
    def test_plus_scan(self, dist, dtype, n):
        values = _rng(n).integers(0, 50, size=n).astype(dtype)
        got = dist.plus_scan(values)
        want = self.oracle.plus_scan(values)
        assert got.dtype == want.dtype
        np.testing.assert_array_equal(got, want)

    def test_plus_scan_uint8_wraps_like_the_oracle(self, dist):
        # the carry must wrap in the vector's dtype, not promote
        values = np.full(1000, 200, dtype=np.uint8)
        np.testing.assert_array_equal(dist.plus_scan(values),
                                      self.oracle.plus_scan(values))

    @pytest.mark.parametrize("n", [1, 3, 100, 4097])
    def test_max_scan(self, dist, n):
        values = _rng(n + 1).integers(-1000, 1000, size=n)
        identity = scans.max_identity(values.dtype)
        got = dist.max_scan(values, identity)
        np.testing.assert_array_equal(got,
                                      self.oracle.max_scan(values, identity))

    def test_max_scan_carry_free_shards(self, dist):
        # strictly decreasing: every incoming carry dominates; and strictly
        # increasing: every incoming carry is beaten — both must round-trip
        for values in (np.arange(999, -1, -1), np.arange(1000)):
            identity = scans.max_identity(values.dtype)
            np.testing.assert_array_equal(
                dist.max_scan(values, identity),
                self.oracle.max_scan(values, identity))

    @pytest.mark.parametrize("n", [1, 2, 7, 100, 4097])
    def test_seg_plus_scan(self, dist, n):
        r = _rng(n + 2)
        values = r.integers(0, 100, size=n)
        flags = r.random(n) < 0.1
        flags[0] = True
        got = dist.seg_plus_scan(values, flags)
        np.testing.assert_array_equal(
            got, self.oracle.seg_plus_scan(values, flags))

    def test_seg_plus_scan_one_giant_segment(self, dist):
        # no interior heads: the segmented carry must flow across every
        # shard boundary exactly like the unsegmented one
        n = 3000
        values = _rng(5).integers(0, 100, size=n)
        flags = np.zeros(n, dtype=bool)
        flags[0] = True
        np.testing.assert_array_equal(
            dist.seg_plus_scan(values, flags),
            self.oracle.seg_plus_scan(values, flags))

    @pytest.mark.parametrize("is_max", [True, False])
    @pytest.mark.parametrize("n", [1, 7, 100, 4097])
    def test_seg_extreme_scan(self, dist, is_max, n):
        r = _rng(n + 3)
        values = r.integers(-500, 500, size=n)
        flags = r.random(n) < 0.07
        flags[0] = True
        identity = (scans.max_identity(values.dtype) if is_max
                    else scans.min_identity(values.dtype))
        got = dist.seg_extreme_scan(values, flags, identity, is_max=is_max)
        want = self.oracle.seg_extreme_scan(values, flags, identity,
                                            is_max=is_max)
        np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("op", ["sum", "max", "min"])
    def test_reduce(self, dist, op):
        values = _rng(11).integers(-1000, 1000, size=5000)
        assert dist.reduce(values, op) == self.oracle.reduce(values, op)

    def test_million_element_scan(self, dist):
        values = _rng(42).integers(0, 1000, size=1_000_003)
        np.testing.assert_array_equal(dist.plus_scan(values),
                                      self.oracle.plus_scan(values))

    def test_inputs_are_not_mutated(self, dist):
        values = _rng(1).integers(0, 100, size=10_000)
        before = values.copy()
        dist.plus_scan(values)
        np.testing.assert_array_equal(values, before)

    def test_small_vectors_stay_local(self):
        backend = DistributedBackend(workers=2, min_distribute=1000,
                                     policy=QUICK)
        try:
            backend.plus_scan(np.arange(10))
            # below the threshold no pool is ever spawned
            assert backend._pool is None
        finally:
            backend.shutdown()


# --------------------------------------------------------------------------- #
# the exclusive carry exchange
# --------------------------------------------------------------------------- #


class TestCarryExchange:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 8, 16, 33])
    def test_round_count_matches_traff_bound(self, p):
        carries = list(range(p))
        _, rounds = exclusive_exchange(carries, lambda a, b: a + b, 0)
        expected = math.ceil(math.log2(p)) if p > 1 else 0
        assert rounds == expected
        assert exchange_rounds(p) == expected

    @pytest.mark.parametrize("p", [1, 2, 3, 7, 16, 31])
    def test_matches_serial_exclusive_fold(self, p):
        carries = list(_rng(p).integers(-100, 100, size=p))
        exclusive, _ = exclusive_exchange(carries, lambda a, b: a + b, 0)
        acc, want = 0, []
        for c in carries:
            want.append(acc)
            acc += c
        assert exclusive == want

    def test_order_correct_for_non_commutative_combine(self):
        # string concatenation is associative but not commutative: any
        # operand-order mistake in the doubling schedule shows up here
        carries = list("abcdefg")
        exclusive, _ = exclusive_exchange(carries, lambda a, b: a + b, "")
        assert exclusive == ["", "a", "ab", "abc", "abcd", "abcde", "abcdef"]


# --------------------------------------------------------------------------- #
# shard kernels and checksums
# --------------------------------------------------------------------------- #


class TestShardOps:
    def test_plus_scan_shard_is_exclusive_with_total_carry(self):
        values = np.array([3, 1, 4, 1, 5], dtype=np.int64)
        out, carry = shardops.plus_scan_shard(values)
        np.testing.assert_array_equal(out, [0, 3, 4, 8, 9])
        assert carry == 14 and carry.dtype == np.int64

    def test_plus_scan_shard_carry_wraps_in_dtype(self):
        values = np.full(3, 200, dtype=np.uint8)
        _, carry = shardops.plus_scan_shard(values)
        assert carry == np.uint8(600 % 256)

    def test_checksum_distinguishes_out_carry_and_none(self):
        out = np.arange(8)
        base = shardops.shard_checksum(out, np.int64(5))
        assert shardops.shard_checksum(out, np.int64(6)) != base
        assert shardops.shard_checksum(out, None) != base
        flipped = out.copy()
        flipped[3] ^= 1
        assert shardops.shard_checksum(flipped, np.int64(5)) != base

    def test_carry_bytes_tags_shapes_apart(self):
        # a scalar carry, a pair carry, and None must never collide just
        # because their payload bytes happen to match
        assert shardops.carry_bytes(None) != shardops.carry_bytes(np.int64(0))
        assert (shardops.carry_bytes((np.int64(1), True))
                != shardops.carry_bytes(np.int64(1)))


# --------------------------------------------------------------------------- #
# spec parsing and the helpful registry error (satellite)
# --------------------------------------------------------------------------- #


class TestSpec:
    def test_bare_and_full_specs(self):
        assert get_backend("distributed").workers == 4
        b = get_backend("distributed:8")
        assert (b.workers, b.min_distribute) == (8, 65536)
        b = get_backend("distributed:2:1")
        assert (b.workers, b.min_distribute) == (2, 1)

    @pytest.mark.parametrize("spec, match", [
        ("distributed:0", "worker count"),
        ("distributed:2:0", "min_distribute"),
        ("distributed:two", "must be integers"),
        ("distributed:2:1:0", "at most two"),
    ])
    def test_bad_specs_explain_themselves(self, spec, match):
        with pytest.raises(ValueError, match=match):
            get_backend(spec)
        # every spec error repeats the syntax or the offending value
        with pytest.raises(ValueError) as err:
            get_backend(spec)
        assert ("distributed" in str(err.value))


# --------------------------------------------------------------------------- #
# Machine integration: identical steps, chaos or not
# --------------------------------------------------------------------------- #


def _program(m: Machine):
    """A small mixed program touching every distributed primitive."""
    r = _rng(99)
    data = r.integers(0, 100, size=5000).tolist()
    flags = (r.random(5000) < 0.05)
    flags[0] = True
    v = m.vector(data)
    f = m.vector(flags.tolist())
    outs = [
        scans.plus_scan(v).to_list(),
        scans.max_scan(v).to_list(),
        segmented.seg_plus_scan(v, f).to_list(),
        segmented.seg_max_scan(v, f).to_list(),
        scans.plus_reduce(v),
    ]
    return outs, m.steps


class TestMachineIntegration:
    def test_results_and_steps_match_numpy(self, dist):
        got, got_steps = _program(Machine("scan", backend=dist))
        want, want_steps = _program(Machine("scan", backend="numpy"))
        assert got == want
        assert got_steps == want_steps

    def test_env_var_selects_distributed(self, monkeypatch, dist):
        monkeypatch.setenv("REPRO_BACKEND", "distributed:2:1")
        m = Machine("scan")
        assert isinstance(m.backend, DistributedBackend)
        assert (m.backend.workers, m.backend.min_distribute) == (2, 1)


class TestAcceptance:
    """ISSUE acceptance: a seeded ChaosPlan kills a worker mid-scan of a
    million-element vector; results and step charges stay bit-identical to
    numpy and the ledger shows the retry/respawn that saved the op."""

    def test_chaos_kill_mid_million_element_scan(self):
        chaos = ChaosPlan(actions=(
            ChaosAction(op_id=0, worker=1, kind="kill", phase=1),), seed=7)
        backend = DistributedBackend(workers=3, min_distribute=1,
                                     policy=QUICK, chaos=chaos)
        try:
            n = 1_000_003
            data = _rng(7).integers(0, 1000, size=n)

            m = Machine("scan", backend=backend)
            v = m.vector(data.tolist())
            got = np.asarray(scans.plus_scan(v).data)

            oracle = Machine("scan", backend="numpy")
            want = np.asarray(scans.plus_scan(oracle.vector(data.tolist())).data)

            np.testing.assert_array_equal(got, want)
            assert m.steps == oracle.steps

            led = backend.ledger
            assert led.chaos_kills == 1
            assert led.crashes == 1
            assert led.retries == 1
            assert led.respawns == 1
            assert led.degraded_shards == 0
            assert led.reconciles()
        finally:
            backend.shutdown()


# --------------------------------------------------------------------------- #
# conformance-fuzzer parity (the cross-backend differential harness)
# --------------------------------------------------------------------------- #


class TestFuzzerConformance:
    def test_seeded_corpus_agrees_with_numpy(self):
        from repro.verify import generate_cases, run_cases

        outcomes = run_cases(generate_cases(5, 40),
                             engines=("numpy", "distributed:2:1"))
        bad = [d for o in outcomes for d in o.divergences]
        assert not bad, "\n".join(d.describe() for d in bad)
