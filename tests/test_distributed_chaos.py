"""Chaos recovery: every failure mode, recovered, with exact bookkeeping.

A :class:`ChaosPlan` scripts real worker failures (``os._exit`` kills,
deadline-busting hangs, post-checksum bit flips) into specific distributed
ops, so these tests can assert three things chaos-free tests cannot:

* **results stay bit-identical** to the in-process oracle through kills,
  hangs, and corruptions, in phase 1 and phase 2;
* **the ledger tells the exact story** — which failure was classified as
  what, how many retries and respawns answered it, and the reconciliation
  invariant ``failures == retries + degraded_shards`` holds after every op;
* **degradation is a last resort** — host-side fallback happens only after
  the retry budget is spent (sticky failures), never before, and a fully
  retired pool flips to permanent in-process compute rather than failing.

Plans are frozen and seeded, so every count asserted here is deterministic.
"""
import numpy as np
import pytest

from repro.backends.distributed import DistributedBackend
from repro.backends.numpy_backend import NumPyBackend
from repro.cluster import ChaosAction, ChaosPlan, RetryPolicy

ORACLE = NumPyBackend()

#: short deadline so hang tests classify fast; near-zero backoff; a large
#: heartbeat interval so liveness pings never perturb the asserted counts
POLICY = RetryPolicy(op_deadline=1.5, backoff_base=0.01, backoff_cap=0.05,
                     heartbeat_interval=1000.0, max_worker_failures=10)


def make_backend(actions=(), policy=POLICY, workers=2, **plan_kw):
    chaos = ChaosPlan(actions=tuple(actions), **plan_kw)
    return DistributedBackend(workers=workers, min_distribute=1,
                              policy=policy, chaos=chaos)


def data(n=50_000, seed=0):
    return np.random.default_rng(seed).integers(0, 100, size=n)


class TestSingleFailureRecovery:
    """One scripted failure → one retry → one respawn → zero degradation."""

    @pytest.mark.parametrize("kind, classified_as", [
        ("kill", "crashes"),
        ("hang", "timeouts"),
        ("corrupt", "corrupt_replies"),
    ])
    def test_phase1_failure_recovers_bit_identically(self, kind,
                                                     classified_as):
        backend = make_backend([ChaosAction(op_id=0, worker=0, kind=kind)])
        try:
            values = data()
            got = backend.plus_scan(values)
            np.testing.assert_array_equal(got, ORACLE.plus_scan(values))

            led = backend.ledger
            assert getattr(led, classified_as) == 1
            assert led.failures == 1          # and nothing misclassified
            assert led.retries == 1
            assert led.respawns == 1
            assert led.degraded_shards == 0   # budget was never exhausted
            assert led.reconciles()
        finally:
            backend.shutdown()

    def test_phase2_kill_recovers_via_recompute(self):
        # phase 2 applies carries in place, so its retry must recompute the
        # shard rather than re-apply; all-ones input guarantees shard 1's
        # incoming carry is nonzero and phase 2 actually dispatches
        backend = make_backend(
            [ChaosAction(op_id=0, worker=0, kind="kill", phase=2)])
        try:
            values = np.ones(50_000, dtype=np.int64)
            got = backend.plus_scan(values)
            np.testing.assert_array_equal(got, ORACLE.plus_scan(values))

            led = backend.ledger
            assert led.chaos_kills == 1
            assert led.crashes == 1
            assert led.retries == 1
            assert led.degraded_shards == 0
            assert led.reconciles()
        finally:
            backend.shutdown()

    def test_corruption_is_caught_by_checksum_not_luck(self):
        # the corrupted shard's bytes really were flipped in shared memory;
        # only the checksum verification stands between that and a wrong
        # answer, so the recovered result doubling as the oracle's proves
        # the retry overwrote the damage
        backend = make_backend(
            [ChaosAction(op_id=0, worker=1, kind="corrupt")])
        try:
            values = data(seed=3)
            np.testing.assert_array_equal(backend.plus_scan(values),
                                          ORACLE.plus_scan(values))
            assert backend.ledger.corrupt_replies == 1
            assert backend.ledger.reconciles()
        finally:
            backend.shutdown()

    def test_one_shot_actions_fire_once(self):
        # the same plan entry must not re-fire on the retry dispatch or on
        # the next op — two ops, one scripted kill, one total failure
        backend = make_backend([ChaosAction(op_id=0, worker=0, kind="kill")])
        try:
            values = data(seed=4)
            for _ in range(2):
                np.testing.assert_array_equal(backend.plus_scan(values),
                                              ORACLE.plus_scan(values))
            led = backend.ledger
            assert led.chaos_kills == 1
            assert led.failures == 1
            assert led.ops_distributed == 2
            assert led.reconciles()
        finally:
            backend.shutdown()


class TestDegradationLadder:
    """Host-side fallback only after the retry budget, never before."""

    def test_sticky_failure_degrades_after_exact_budget(self):
        # both workers die on every dispatch of op 0; with max_retries=1
        # each shard gets its one retry (also killed) and then degrades
        policy = RetryPolicy(op_deadline=1.5, backoff_base=0.01,
                             backoff_cap=0.05, heartbeat_interval=1000.0,
                             max_retries=1, max_worker_failures=10)
        backend = make_backend(
            [ChaosAction(op_id=0, worker=0, kind="kill", sticky=True),
             ChaosAction(op_id=0, worker=1, kind="kill", sticky=True)],
            policy=policy)
        try:
            values = data(seed=5)
            np.testing.assert_array_equal(backend.plus_scan(values),
                                          ORACLE.plus_scan(values))
            led = backend.ledger
            # 2 initial kills + 2 retry kills, every one classified
            assert led.chaos_kills == 4
            assert led.crashes == 4
            assert led.retries == 2           # exactly the budget, no more
            assert led.degraded_shards == 2   # then, and only then, degrade
            assert led.respawns == 4
            assert led.reconciles()
        finally:
            backend.shutdown()

    def test_retired_pool_degrades_to_permanent_local_compute(self):
        # max_worker_failures=1 retires a slot on its first failure; with
        # both slots sticky-killed the pool is declared broken, the op
        # completes host-side, and the *next* op never leaves the process
        policy = RetryPolicy(op_deadline=1.5, backoff_base=0.01,
                             heartbeat_interval=1000.0,
                             max_worker_failures=1)
        backend = make_backend(
            [ChaosAction(op_id=0, worker=0, kind="kill", sticky=True),
             ChaosAction(op_id=0, worker=1, kind="kill", sticky=True)],
            policy=policy)
        try:
            values = data(seed=6)
            np.testing.assert_array_equal(backend.plus_scan(values),
                                          ORACLE.plus_scan(values))
            led = backend.ledger
            assert led.dead_workers == 2
            assert led.pool_degradations == 1
            assert led.degraded_shards == 2
            assert led.retries == 0           # nobody left to retry on
            assert led.reconciles()
            assert backend.pool.broken and not backend.pool.available

            # the backend keeps answering — locally
            np.testing.assert_array_equal(backend.plus_scan(values),
                                          ORACLE.plus_scan(values))
            assert led.ops_local == 1
        finally:
            backend.shutdown()


class TestSeededRandomChaos:
    def test_same_seed_same_story(self):
        # kill_probability chaos is seeded: two fresh pools running the
        # same ops must log byte-for-byte the same campaign
        stories = []
        for _ in range(2):
            backend = make_backend([], kill_probability=0.5, seed=123)
            try:
                for s in range(3):
                    values = data(seed=s)
                    np.testing.assert_array_equal(
                        backend.plus_scan(values), ORACLE.plus_scan(values))
                led = backend.ledger
                assert led.reconciles()
                stories.append((led.chaos_kills, led.crashes, led.retries,
                                led.respawns, led.degraded_shards))
            finally:
                backend.shutdown()
        assert stories[0] == stories[1]
        assert stories[0][0] > 0  # the campaign actually killed someone


class TestPlanValidation:
    def test_rejects_unknown_kind_phase_and_negatives(self):
        with pytest.raises(ValueError, match="chaos kind"):
            ChaosAction(op_id=0, worker=0, kind="meteor")
        with pytest.raises(ValueError, match="phase"):
            ChaosAction(op_id=0, worker=0, kind="kill", phase=3)
        with pytest.raises(ValueError, match="non-negative"):
            ChaosAction(op_id=-1, worker=0, kind="kill")
        with pytest.raises(ValueError, match="kill_probability"):
            ChaosPlan(kill_probability=1.5)
