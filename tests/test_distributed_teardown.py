"""Teardown hygiene: no leaked shared memory, no orphaned processes.

A pool is N OS processes plus shared-memory segments per op; sloppy
teardown shows up as ``/dev/shm`` junk, resource-tracker leak warnings, and
zombie workers — none of which a test suite should leave behind.  Pinned
here:

* a pool's shared-memory footprint is zero between ops (segments are
  unlinked in the op's ``finally``, even when chaos degraded shards);
* ``shutdown()`` reaps every worker (no zombies, no survivors) and is
  idempotent;
* abrupt host death — SIGKILL, the one signal ``atexit`` cannot catch —
  still converges to a clean machine: workers exit on pipe EOF and the
  resource tracker unlinks the registered segments;
* a ``KeyboardInterrupt`` escaping the test runner (the "pytest
  interrupted" case) tears down through the ``atexit`` hook.
"""
import json
import os
import subprocess
import sys
import time

import numpy as np
import pytest

import repro
from repro.backends.distributed import DistributedBackend
from repro.cluster import ChaosAction, ChaosPlan, RetryPolicy

POLICY = RetryPolicy(op_deadline=5.0, backoff_base=0.01,
                     heartbeat_interval=1000.0)

SHM_DIR = "/dev/shm"


def shm_segments() -> set:
    """Live POSIX shared-memory names (the multiprocessing ``psm_`` ones)."""
    try:
        return {f for f in os.listdir(SHM_DIR) if f.startswith("psm_")}
    except FileNotFoundError:  # pragma: no cover - non-tmpfs platforms
        return set()


def proc_gone(pid: int) -> bool:
    """Fully gone or reaped: a zombie counts as *not* gone."""
    try:
        with open(f"/proc/{pid}/stat") as f:
            state = f.read().rpartition(")")[2].split()[0]
    except (FileNotFoundError, ProcessLookupError):
        return True
    return state in ("X", "x")


def wait_until(predicate, timeout=10.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return predicate()


class TestInProcessTeardown:
    def test_normal_lifecycle_leaves_nothing(self):
        baseline = shm_segments()
        backend = DistributedBackend(workers=2, min_distribute=1,
                                     policy=POLICY)
        values = np.arange(20_000)
        backend.plus_scan(values)
        flags = np.zeros(20_000, dtype=bool)
        flags[0] = True
        backend.seg_plus_scan(values, flags)

        # between ops every segment is already unlinked
        assert shm_segments() == baseline

        pids = backend.pool.worker_pids()
        assert len(pids) == 2
        backend.shutdown()
        assert all(wait_until(lambda p=p: proc_gone(p)) for p in pids)
        assert shm_segments() == baseline
        backend.shutdown()  # idempotent

    def test_chaos_degraded_op_still_unlinks_segments(self):
        # sticky corruption on every worker exhausts the retry budget: the
        # op ends through retries AND degradations, and the finally-block
        # must still tear the segments down
        baseline = shm_segments()
        policy = RetryPolicy(op_deadline=5.0, backoff_base=0.01,
                             heartbeat_interval=1000.0, max_retries=1,
                             max_worker_failures=10)
        chaos = ChaosPlan(actions=(
            ChaosAction(op_id=0, worker=0, kind="corrupt", sticky=True),
            ChaosAction(op_id=0, worker=1, kind="corrupt", sticky=True),
        ))
        backend = DistributedBackend(workers=2, min_distribute=1,
                                     policy=policy, chaos=chaos)
        values = np.arange(20_000)
        out = backend.plus_scan(values)
        np.testing.assert_array_equal(out, np.concatenate(([0],
                                      np.cumsum(values[:-1]))))
        assert backend.ledger.degraded_shards >= 1  # the ladder really ran
        assert shm_segments() == baseline

        pids = backend.pool.worker_pids()
        backend.shutdown()
        assert all(wait_until(lambda p=p: proc_gone(p)) for p in pids)
        assert shm_segments() == baseline


def _run_script(body: str, timeout=60.0):
    """Run a snippet in a fresh interpreter with repro importable; returns
    the completed process (stdout carries a JSON handshake)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.dirname(os.path.dirname(repro.__file__))
    return subprocess.run([sys.executable, "-c", body], env=env,
                          capture_output=True, text=True, timeout=timeout)


class TestHostDeathTeardown:
    def test_sigkilled_host_converges_to_clean_machine(self):
        # SIGKILL skips atexit entirely: the workers must notice pipe EOF
        # and exit, and the resource tracker must unlink the segments the
        # dead host never got to
        script = """\
import json, os, signal
import numpy as np
from repro.cluster.pool import WorkerPool, _ShmJob, RetryPolicy

pool = WorkerPool(2, policy=RetryPolicy(op_deadline=5.0))
job = _ShmJob({"values": np.arange(50_000), "flags": None,
               "out": np.empty(50_000, dtype=np.int64)})
print(json.dumps({"pids": pool.worker_pids(),
                  "segments": [n for n in job.names.values() if n]}),
      flush=True)
os.kill(os.getpid(), signal.SIGKILL)
"""
        proc = _run_script(script)
        assert proc.returncode == -9, proc.stderr
        info = json.loads(proc.stdout)
        assert len(info["pids"]) == 2 and len(info["segments"]) == 2

        for pid in info["pids"]:
            assert wait_until(lambda: proc_gone(pid)), (
                f"worker {pid} survived its supervisor")
        for name in info["segments"]:
            path = os.path.join(SHM_DIR, name)
            assert wait_until(lambda: not os.path.exists(path)), (
                f"segment {name} leaked past host death")

    def test_keyboard_interrupt_tears_down_via_atexit(self):
        # the "pytest interrupted" case: an uncaught KeyboardInterrupt
        # unwinds the interpreter, which must run shutdown_all_pools
        script = """\
import json
import numpy as np
from repro.backends.distributed import DistributedBackend
from repro.cluster import RetryPolicy

backend = DistributedBackend(workers=2, min_distribute=1,
                             policy=RetryPolicy(op_deadline=5.0))
backend.plus_scan(np.arange(20_000))
print(json.dumps({"pids": backend.pool.worker_pids()}), flush=True)
raise KeyboardInterrupt
"""
        proc = _run_script(script)
        assert proc.returncode != 0
        assert "KeyboardInterrupt" in proc.stderr
        # no resource-tracker leak warnings on the way out
        assert "leaked" not in proc.stderr
        info = json.loads(proc.stdout)
        for pid in info["pids"]:
            assert wait_until(lambda: proc_gone(pid)), (
                f"worker {pid} survived the interrupt")
