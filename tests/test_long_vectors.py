"""Long-vector simulation (Figure 10): processor count changes charges,
never results — and the charged costs follow the block formula."""
import numpy as np
import pytest

from repro import Machine
from repro._util import ceil_div, ceil_log2
from repro.algorithms import (
    connected_components,
    convex_hull,
    halving_merge,
    minimum_spanning_tree,
    quicksort,
    split_radix_sort,
)
from repro.core import ops, scans, segmented
from repro.graph import random_connected_graph

PROCESSOR_COUNTS = (1, 3, 16, 10**9)


class TestResultsIndependentOfP:
    @pytest.mark.parametrize("p", PROCESSOR_COUNTS)
    def test_radix_sort(self, p, rng):
        data = rng.integers(0, 10**4, 200)
        m = Machine("scan", num_processors=p)
        assert split_radix_sort(m.vector(data)).to_list() == sorted(data.tolist())

    @pytest.mark.parametrize("p", PROCESSOR_COUNTS)
    def test_quicksort(self, p, rng):
        data = rng.integers(0, 10**4, 150)
        m = Machine("scan", num_processors=p, seed=1)
        assert quicksort(m.vector(data)).to_list() == sorted(data.tolist())

    @pytest.mark.parametrize("p", PROCESSOR_COUNTS)
    def test_halving_merge(self, p, rng):
        a = np.sort(rng.integers(0, 10**4, 120))
        b = np.sort(rng.integers(0, 10**4, 80))
        m = Machine("scan", num_processors=p)
        merged, _ = halving_merge(m.vector(a), m.vector(b))
        assert merged.to_list() == np.sort(np.concatenate((a, b))).tolist()

    @pytest.mark.parametrize("p", (2, 32))
    def test_mst(self, p, rng):
        edges, weights = random_connected_graph(rng, 60, 80)
        m = Machine("scan", num_processors=p, seed=2)
        m_full = Machine("scan", seed=2)
        assert (minimum_spanning_tree(m, 60, edges, weights).total_weight
                == minimum_spanning_tree(m_full, 60, edges, weights).total_weight)

    @pytest.mark.parametrize("p", (2, 32))
    def test_connected_components(self, p, rng):
        edges, _ = random_connected_graph(rng, 50, 60)
        keep = rng.random(len(edges)) < 0.5
        m = Machine("scan", num_processors=p, seed=3)
        m_full = Machine("scan", seed=3)
        assert (connected_components(m, 50, edges[keep]).labels.tolist()
                == connected_components(m_full, 50, edges[keep]).labels.tolist())

    @pytest.mark.parametrize("p", (2, 32))
    def test_convex_hull(self, p, rng):
        pts = rng.integers(-100, 100, (80, 2))
        m = Machine("scan", num_processors=p)
        m_full = Machine("scan")
        assert (sorted(convex_hull(m, pts).hull_indices.tolist())
                == sorted(convex_hull(m_full, pts).hull_indices.tolist()))


class TestBlockCostFormulas:
    @pytest.mark.parametrize("n,p", [(16, 4), (100, 7), (64, 64), (50, 200)])
    def test_elementwise(self, n, p):
        m = Machine("scan", num_processors=p)
        _ = m.vector(range(n)) + 1
        assert m.steps == ceil_div(n, min(p, n))

    @pytest.mark.parametrize("n,p", [(16, 4), (100, 7), (1024, 32)])
    def test_scan_formula(self, n, p):
        m = Machine("scan", num_processors=p)
        scans.plus_scan(m.vector(range(n)))
        block = ceil_div(n, p)
        assert m.steps == (2 * block + 1 if block > 1 else 1)

    @pytest.mark.parametrize("n,p", [(64, 4), (100, 10)])
    def test_erew_scan_formula(self, n, p):
        m = Machine("erew", num_processors=p)
        scans.plus_scan(m.vector(range(n)))
        assert m.steps == 2 * ceil_div(n, p) + 2 * ceil_log2(p)

    def test_segmented_ops_scale_with_blocks(self):
        n = 1024
        steps = {}
        for p in (n, n // 8):
            m = Machine("scan", num_processors=p)
            v = m.vector(np.arange(n))
            sf_arr = np.zeros(n, dtype=bool)
            sf_arr[:: 16] = True
            sf_arr[0] = True
            segmented.seg_plus_scan(v, m.flags(sf_arr))
            steps[p] = m.steps
        assert steps[n // 8] > 4 * steps[n]

    def test_pack_scales_with_blocks(self, rng):
        n = 4096
        data = rng.integers(0, 100, n)
        keep = rng.random(n) < 0.5
        m_few = Machine("scan", num_processors=n // 16)
        ops.pack(m_few.vector(data), m_few.flags(keep))
        m_full = Machine("scan")
        ops.pack(m_full.vector(data), m_full.flags(keep))
        assert m_few.steps > 8 * m_full.steps


class TestWorkTradeoffs:
    def test_steps_decrease_monotonically_with_more_processors(self, rng):
        data = rng.integers(0, 2**10, 2048)
        prev = None
        for p in (16, 64, 256, 2048):
            m = Machine("scan", num_processors=p)
            split_radix_sort(m.vector(data), number_of_bits=10)
            if prev is not None:
                assert m.steps <= prev
            prev = m.steps

    def test_work_grows_with_more_processors_for_fixed_n(self, rng):
        """Past the work-optimal point, extra processors only add work."""
        a = np.sort(rng.integers(0, 10**6, 4096))
        b = np.sort(rng.integers(0, 10**6, 4096))
        works = []
        for p in (64, 512, 8192):
            m = Machine("scan", num_processors=p)
            halving_merge(m.vector(a), m.vector(b))
            works.append(p * m.steps)
        assert works[2] > works[0]
