"""Property suite: the server is indistinguishable from the oracle.

Two layers of properties:

* **Round trip** — hundreds of fuzzer-generated cases (the same
  :func:`repro.verify.corpus.generate_cases` grid the conformance
  fuzzer uses: every servable op, adversarial dtypes, empty vectors,
  dtype-boundary values, float specials) fired *concurrently* through
  one in-process server, every response compared to the serial oracle
  under the fuzzer's own :func:`~repro.verify.runner.results_equal`
  contract.  Concurrency means the batcher actually coalesces many of
  these, so the comparison covers the batched path, not just solo runs.

* **Engine level** (Hypothesis, no sockets) — for arbitrary groups of
  integer vectors, :meth:`BatchEngine.run_group` is bit-identical to
  per-request :meth:`BatchEngine.run_solo`; value encoding survives the
  JSON round trip including specials; the quota meter never admits a
  tenant at non-positive balance and always reconciles its accounting.
"""
import asyncio

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import SERVABLE_OPS, BatchEngine, ScanServer, ServeClient, \
    ServeConfig
from repro.serve.batching import proportional_shares
from repro.serve.cache import ResultCache
from repro.serve.protocol import decode_values, encode_values
from repro.serve.quota import QuotaManager, QuotaPolicy
from repro.verify.corpus import generate_cases
from repro.verify.opset import OPS
from repro.verify.runner import results_equal

#: ops on both the fuzzer's and the server's surface, whose inputs the
#: wire protocol can carry (values + optional segment layout)
ROUND_TRIP_OPS = sorted(
    name for name, spec in OPS.items()
    if name in SERVABLE_OPS and spec.n_flags == 0)


def test_round_trip_ops_cover_the_servable_surface():
    """The shared surface is broad: plain scans, distributes, and the
    whole segmented family all round-trip through the server."""
    assert len(ROUND_TRIP_OPS) >= 25
    assert "plus_scan" in ROUND_TRIP_OPS
    assert "seg_back_plus_scan" in ROUND_TRIP_OPS
    assert "seg_max_distribute" in ROUND_TRIP_OPS


def test_generated_cases_round_trip_concurrently():
    """300 fuzzer cases -> concurrent server calls -> oracle equality
    under the fuzzer's comparison contract (bit-exact integers,
    tolerance only for additive floats)."""
    cases = generate_cases(seed=2026, count=300, ops=ROUND_TRIP_OPS)

    async def main():
        server = ScanServer(ServeConfig(
            port=0, batch_window=0.01, max_pending=4096,
            cache_entries=256))
        await server.start()
        try:
            clients = [await ServeClient.connect("127.0.0.1", server.port)
                       for _ in range(12)]
            outs = await asyncio.gather(*[
                clients[i % len(clients)].scan(
                    case.op, case.materialize().values,
                    seg_lengths=case.seg_lengths)
                for i, case in enumerate(cases)])
            for c in clients:
                await c.close()
            return server, outs
        finally:
            await server.shutdown()

    server, outs = asyncio.run(main())

    bad = []
    for case, out in zip(cases, outs):
        spec = OPS[case.op]
        expected = spec.oracle(case.materialize())
        if not results_equal(spec, expected, out):
            bad.append(case.describe() if hasattr(case, "describe")
                       else (case.op, case.dtype))
    assert not bad, f"{len(bad)} divergences, first: {bad[0]}"
    assert server.stats.snapshot()["errors"] == 0


# --------------------------------------------------------------------- #
# Engine-level properties (Hypothesis)
# --------------------------------------------------------------------- #

_ENGINE = BatchEngine("numpy")

group_strategy = st.lists(
    st.lists(st.integers(-10**9, 10**9), min_size=1, max_size=40),
    min_size=1, max_size=12)


@given(group_strategy, st.sampled_from(["plus_scan", "max_scan",
                                        "min_scan", "plus_distribute"]))
@settings(max_examples=60, deadline=None)
def test_batched_group_equals_solo_runs(group, op_name):
    """run_group == per-request run_solo, bit for bit, any group shape."""
    spec = SERVABLE_OPS[op_name]
    parts = [(np.asarray(vals, dtype=np.int64), None) for vals in group]
    results, steps, total_n = _ENGINE.run_group(spec, parts)
    assert total_n == sum(len(v) for v, _ in parts)
    assert steps >= 0
    for (vals, _), got in zip(parts, results):
        want, _ = _ENGINE.run_solo(spec, vals, None)
        assert got.dtype == want.dtype
        assert np.array_equal(got, want)


@given(st.lists(st.lists(st.integers(0, 50), min_size=1, max_size=20),
                min_size=2, max_size=8))
@settings(max_examples=40, deadline=None)
def test_batched_segmented_group_equals_solo(group):
    """Segmented requests with heterogeneous layouts fuse losslessly."""
    spec = SERVABLE_OPS["seg_plus_scan"]
    rng = np.random.default_rng(sum(map(len, group)))
    parts = []
    for vals in group:
        flags = rng.random(len(vals)) < 0.3
        flags[0] = True
        parts.append((np.asarray(vals, dtype=np.int64), flags))
    results, _, _ = _ENGINE.run_group(spec, parts)
    for (vals, flags), got in zip(parts, results):
        want, _ = _ENGINE.run_solo(spec, vals, flags)
        assert np.array_equal(got, want)


@given(st.lists(st.one_of(
    st.floats(allow_nan=True, allow_infinity=True),
    st.just(-0.0)), max_size=50))
@settings(max_examples=80, deadline=None)
def test_float64_values_survive_the_wire(xs):
    """encode -> JSON-safe -> decode is the identity, bits included."""
    arr = np.asarray(xs, dtype=np.float64)
    back = decode_values(encode_values(arr), "float64")
    assert np.array_equal(arr, back, equal_nan=True)
    # -0.0 keeps its sign through the string escape; NaNs are exempt —
    # the wire spells every NaN as the canonical "nan" (payload and sign
    # bits are not semantic anywhere in the engines)
    finite_sign = ~np.isnan(arr)
    assert np.array_equal(np.signbit(arr)[finite_sign],
                          np.signbit(back)[finite_sign])


# --------------------------------------------------------------------- #
# Cache keys (regression: adjacent fields must not trade characters)
# --------------------------------------------------------------------- #

def test_cache_key_separates_adjacent_fields():
    """Before length-prefixing, ``"x"+"uint8"`` and ``"xu"+"int8"``
    digested identically and a colliding request was served the other
    op's wrong-dtype result."""
    a = ResultCache.key("x", np.array([7], dtype=np.uint8), None)
    b = ResultCache.key("xu", np.array([7], dtype=np.int8), None)
    assert a != b


def test_cache_key_binds_segment_layout_and_backend():
    v = np.array([1, 2, 3], dtype=np.int64)
    flat = ResultCache.key("plus_scan", v, None)
    seg_a = ResultCache.key("seg_plus_scan", v, (1, 2))
    seg_b = ResultCache.key("seg_plus_scan", v, (2, 1))
    assert len({flat, seg_a, seg_b}) == 3
    # a restart onto another engine must not inherit old digests: float
    # +-carries legitimately re-associate per chunk schedule
    assert (ResultCache.key("plus_scan", v, None, backend="NumPyBackend()")
            != ResultCache.key("plus_scan", v, None,
                               backend="BlockedBackend(chunk=7)"))


# --------------------------------------------------------------------- #
# Billing (regression: shares must partition the mega-op's cost)
# --------------------------------------------------------------------- #

@given(st.integers(0, 10**6),
       st.lists(st.integers(0, 10**4), min_size=1, max_size=64))
@settings(max_examples=120, deadline=None)
def test_proportional_shares_partition_exactly(total, weights):
    """sum(shares) == total always; every share within one step of its
    exact proportion; the split is deterministic."""
    shares = proportional_shares(total, weights)
    assert len(shares) == len(weights)
    assert sum(shares) == total
    assert all(s >= 0 for s in shares)
    w = weights if sum(weights) else [1] * len(weights)
    denom = sum(w)
    for share, weight in zip(shares, w):
        assert abs(share - total * weight / denom) < 1.0
    assert proportional_shares(total, weights) == shares


def test_mega_op_billing_partitions_cost():
    """64 coalesced requests are billed the *mega-op's* cost, split
    proportionally — not >= 1 step each (the old ``max(1, round(...))``
    debited a 64-request, few-step batch as 64 steps, silently draining
    tenant budgets ~20x too fast)."""
    vecs = [np.array([i], dtype=np.int64) for i in range(64)]

    async def main():
        server = ScanServer(ServeConfig(
            port=0, batch_window=0.05, max_batch=64, cache_entries=0))
        await server.start()
        try:
            clients = [await ServeClient.connect("127.0.0.1", server.port)
                       for _ in range(8)]
            frames = await asyncio.gather(*[
                clients[i % 8].request("plus_scan", v)
                for i, v in enumerate(vecs)])
            for c in clients:
                await c.close()
            return frames
        finally:
            await server.shutdown()

    frames = asyncio.run(main())
    assert all(f["ok"] for f in frames)
    billed = [f["steps"] for f in frames]
    # the old floor of one step per member makes this sum >= 64 no
    # matter how the batcher composed the groups
    assert sum(billed) < len(vecs), billed
    if all(f["batched"] == len(vecs) for f in frames):
        # single mega-op: the bill must equal its cost exactly
        _, steps, _ = BatchEngine("numpy").run_group(
            SERVABLE_OPS["plus_scan"], [(v, None) for v in vecs])
        assert sum(billed) == steps, (sum(billed), steps)


@given(st.lists(st.tuples(st.sampled_from(["a", "b"]),
                          st.integers(0, 40)), max_size=40),
       st.integers(1, 100))
@settings(max_examples=60, deadline=None)
def test_quota_meter_reconciles(events, budget):
    """Admission only at positive balance; debits add up exactly."""
    quota = QuotaManager(QuotaPolicy(budget=budget), clock=lambda: 0.0)
    charged = {"a": 0, "b": 0}
    for tenant, steps in events:
        balance_before = quota._meter(tenant).balance
        denial = quota.admit(tenant)
        if balance_before <= 0:
            assert denial is not None
            continue
        assert denial is None
        quota.debit(tenant, steps)
        charged[tenant] += steps
    snap = quota.snapshot()
    for tenant, total in charged.items():
        if tenant in snap:
            assert snap[tenant]["charged_steps"] == total
            assert snap[tenant]["balance"] == budget - total
