"""Simple operations (Section 2.2), allocation (2.4), load balancing (2.5)."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Machine
from repro.core import ops, scans


def _m():
    return Machine("scan")


class TestEnumerate:
    def test_paper_figure1(self):
        f = _m().flags([1, 0, 0, 1, 0, 1, 1, 0])
        assert ops.enumerate_(f).to_list() == [0, 1, 1, 1, 2, 2, 3, 4]

    @given(st.lists(st.booleans(), max_size=150))
    @settings(max_examples=50, deadline=None)
    def test_enumerate_numbers_true_elements(self, xs):
        out = ops.enumerate_(_m().flags(xs)).to_list()
        count = 0
        for i, x in enumerate(xs):
            assert out[i] == count
            count += x

    def test_back_enumerate(self):
        f = _m().flags([1, 0, 1, 1])
        assert ops.back_enumerate(f).to_list() == [2, 2, 1, 0]

    def test_count(self):
        assert ops.count(_m().flags([1, 0, 1, 1])) == 3


class TestCopy:
    def test_paper_figure1(self):
        v = _m().vector([5, 1, 3, 4, 3, 9, 2, 6])
        assert ops.copy_(v).to_list() == [5] * 8

    def test_copy_empty(self):
        assert ops.copy_(_m().vector([])).to_list() == []

    def test_copy_is_one_step_on_scan_model(self):
        m = _m()
        ops.copy_(m.vector(range(1024)))
        assert m.steps == 1


class TestSplit:
    def test_paper_figure3(self):
        m = _m()
        a = m.vector([5, 7, 3, 1, 4, 2, 7, 2])
        f = m.flags([1, 1, 1, 1, 0, 0, 1, 0])
        assert ops.split(a, f).to_list() == [4, 2, 2, 5, 7, 3, 1, 7]

    @given(st.lists(st.integers(0, 100), max_size=120))
    @settings(max_examples=50, deadline=None)
    def test_split_stability(self, xs):
        m = _m()
        v = m.vector(xs)
        flags = (v % 2) == 1
        out = ops.split(v, flags).to_list()
        expect = [x for x in xs if x % 2 == 0] + [x for x in xs if x % 2 == 1]
        assert out == expect

    def test_split_requires_boolean_flags(self):
        m = _m()
        with pytest.raises(TypeError):
            ops.split(m.vector([1, 2]), m.vector([1, 0]))

    def test_split3(self):
        m = _m()
        v = m.vector([5, 1, 9, 3, 7, 0])
        lesser = v < 3
        equal = (v >= 3) & (v < 7)
        out = ops.split3(v, lesser, equal).to_list()
        assert out == [1, 0, 5, 3, 9, 7]


class TestPack:
    def test_pack_basic(self):
        m = _m()
        v = m.vector([10, 20, 30, 40])
        f = m.flags([1, 0, 1, 0])
        assert ops.pack(v, f).to_list() == [10, 30]

    def test_pack_none(self):
        m = _m()
        assert ops.pack(m.vector([1, 2]), m.flags([0, 0])).to_list() == []

    def test_pack_preserves_order(self, rng):
        m = _m()
        data = rng.integers(0, 1000, 200)
        keep = rng.random(200) < 0.3
        out = ops.pack(m.vector(data), m.flags(keep))
        assert out.to_list() == data[keep].tolist()

    def test_load_balance_is_pack(self, rng):
        m = Machine("scan", num_processors=8)
        data = rng.integers(0, 100, 64)
        keep = rng.random(64) < 0.5
        out = ops.load_balance(m.vector(data), m.flags(keep))
        assert out.to_list() == data[keep].tolist()


class TestAllocate:
    def test_paper_figure8(self):
        m = _m()
        counts = m.vector([4, 1, 3])
        seg_flags, hpointers = ops.allocate(m, counts)
        assert hpointers.to_list() == [0, 4, 5]
        assert seg_flags.to_list() == [True, False, False, False, True,
                                       True, False, False]

    def test_allocate_with_zero_counts(self):
        m = _m()
        seg_flags, hpointers = ops.allocate(m, m.vector([2, 0, 1]))
        assert seg_flags.to_list() == [True, False, True]

    def test_allocate_rejects_negative(self):
        m = _m()
        with pytest.raises(ValueError):
            ops.allocate(m, m.vector([1, -1]))

    def test_distribute_to_segments_figure8(self):
        m = _m()
        values = m.vector([11, 22, 33])
        counts = m.vector([4, 1, 3])
        dist, seg_flags = ops.distribute_to_segments(values, counts)
        assert dist.to_list() == [11, 11, 11, 11, 22, 33, 33, 33]

    @given(st.lists(st.integers(0, 6), min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_distribute_property(self, counts):
        m = _m()
        values = m.vector(np.arange(len(counts)) * 10)
        dist, _ = ops.distribute_to_segments(values, m.vector(counts))
        expect = [i * 10 for i, c in enumerate(counts) for _ in range(c)]
        assert dist.to_list() == expect

    def test_allocation_cost_constant(self):
        """Allocation is O(1) steps on the scan model (vs Θ(lg n) EREW)."""
        m = _m()
        ops.allocate(m, m.vector([3] * 1000))
        scan_steps = m.steps
        e = Machine("erew")
        ops.allocate(e, e.vector([3] * 1000))
        assert scan_steps < e.steps


class TestConcat:
    def test_concat(self):
        m = _m()
        out = ops.concat(m.vector([1, 2]), m.vector([3]))
        assert out.to_list() == [1, 2, 3]

    def test_concat_free(self):
        m = _m()
        ops.concat(m.vector([1]), m.vector([2]))
        assert m.steps == 0

    def test_concat_across_machines_rejected(self):
        with pytest.raises(ValueError):
            ops.concat(Machine("scan").vector([1]), Machine("scan").vector([2]))
