"""Biconnected components (Tarjan-Vishkin), against Hopcroft-Tarjan."""
import numpy as np
import pytest

from repro import Machine
from repro.algorithms.biconnected import biconnected_components
from repro.baselines.serial import biconnected_edge_blocks
from repro.graph import random_connected_graph


def _canon_labels(labels):
    d = {}
    for e, lab in enumerate(labels):
        d.setdefault(int(lab), set()).add(e)
    return frozenset(frozenset(s) for s in d.values())


def _canon_blocks(blocks):
    return frozenset(frozenset(b) for b in blocks)


class TestFixedCases:
    def test_triangle_with_pendant(self):
        edges = np.array([(0, 1), (1, 2), (0, 2), (2, 3)])
        res = biconnected_components(Machine("scan", seed=0), 4, edges)
        assert res.num_components == 2
        assert res.articulation_points.tolist() == [2]
        assert res.bridges.tolist() == [3]

    def test_single_edge(self):
        res = biconnected_components(Machine("scan", seed=0), 2, [(0, 1)])
        assert res.num_components == 1
        assert res.bridges.tolist() == [0]
        assert len(res.articulation_points) == 0

    def test_path_graph_every_edge_a_bridge(self):
        edges = [(i, i + 1) for i in range(5)]
        res = biconnected_components(Machine("scan", seed=1), 6, edges)
        assert res.num_components == 5
        assert res.bridges.tolist() == list(range(5))
        assert res.articulation_points.tolist() == [1, 2, 3, 4]

    def test_cycle_is_one_block(self):
        n = 8
        edges = [(i, (i + 1) % n) for i in range(n)]
        res = biconnected_components(Machine("scan", seed=2), n, edges)
        assert res.num_components == 1
        assert len(res.articulation_points) == 0
        assert len(res.bridges) == 0

    def test_two_triangles_sharing_a_vertex(self):
        edges = [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]
        res = biconnected_components(Machine("scan", seed=3), 5, edges)
        assert res.num_components == 2
        assert res.articulation_points.tolist() == [2]
        assert len(res.bridges) == 0

    def test_barbell(self):
        """Two cycles joined by a bridge."""
        edges = [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)]
        res = biconnected_components(Machine("scan", seed=4), 6, edges)
        assert res.num_components == 3
        assert res.bridges.tolist() == [3]
        assert res.articulation_points.tolist() == [2, 3]

    def test_disconnected_rejected(self):
        with pytest.raises(ValueError, match="connected"):
            biconnected_components(Machine("scan", seed=0), 4,
                                   [(0, 1), (2, 3)])

    def test_trivial_rejected(self):
        with pytest.raises(ValueError):
            biconnected_components(Machine("scan"), 1,
                                   np.empty((0, 2), dtype=int))


class TestAgainstHopcroftTarjan:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_graphs(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 100))
        edges, _ = random_connected_graph(rng, n, int(rng.integers(0, 2 * n)))
        res = biconnected_components(Machine("scan", seed=seed), n, edges)
        assert (_canon_labels(res.edge_labels)
                == _canon_blocks(biconnected_edge_blocks(n, edges)))

    def test_tree_input_every_edge_its_own_block(self):
        rng = np.random.default_rng(5)
        n = 40
        parent = np.arange(n)
        for v in range(1, n):
            parent[v] = rng.integers(0, v)
        edges = np.column_stack((np.arange(1, n), parent[1:]))
        res = biconnected_components(Machine("scan", seed=5), n, edges)
        assert res.num_components == n - 1
        assert len(res.bridges) == n - 1

    def test_dense_graph_single_block(self):
        n = 12
        edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
        res = biconnected_components(Machine("scan", seed=6), n, edges)
        assert res.num_components == 1


class TestStepComplexity:
    def test_polylog_growth(self):
        def steps(n):
            rng = np.random.default_rng(0)
            edges, _ = random_connected_graph(rng, n, 2 * n)
            m = Machine("scan", seed=0)
            biconnected_components(m, n, edges)
            return m.steps

        s1, s2 = steps(128), steps(512)
        assert s2 < 2.2 * s1

    def test_scan_beats_erew(self):
        rng = np.random.default_rng(1)
        edges, _ = random_connected_graph(rng, 128, 256)
        ms = Machine("scan", seed=1)
        biconnected_components(ms, 128, edges)
        me = Machine("erew", seed=1)
        biconnected_components(me, 128, edges)
        assert me.steps > 2 * ms.steps
