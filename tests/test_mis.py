"""Maximal independent set (Table 1)."""
import numpy as np
import pytest

from repro import Machine
from repro.algorithms.maximal_independent_set import maximal_independent_set


def _check_mis(n, edges, in_set):
    adj = {v: set() for v in range(n)}
    for u, v in edges:
        adj[int(u)].add(int(v))
        adj[int(v)].add(int(u))
    chosen = {v for v in range(n) if in_set[v]}
    for v in chosen:  # independence
        assert not (adj[v] & chosen), f"vertex {v} has a chosen neighbor"
    for v in range(n):  # maximality
        if v not in chosen:
            assert adj[v] & chosen, f"vertex {v} could be added"


class TestCorrectness:
    def test_path_graph(self):
        m = Machine("scan", seed=0)
        edges = [(i, i + 1) for i in range(9)]
        res = maximal_independent_set(m, 10, edges)
        _check_mis(10, edges, res.in_set)

    def test_star_graph(self):
        m = Machine("scan", seed=1)
        edges = [(0, i) for i in range(1, 8)]
        res = maximal_independent_set(m, 8, edges)
        _check_mis(8, edges, res.in_set)

    def test_complete_graph(self):
        m = Machine("scan", seed=2)
        edges = [(i, j) for i in range(6) for j in range(i + 1, 6)]
        res = maximal_independent_set(m, 6, edges)
        assert res.in_set.sum() == 1
        _check_mis(6, edges, res.in_set)

    def test_no_edges_takes_everything(self):
        m = Machine("scan")
        res = maximal_independent_set(m, 5, np.empty((0, 2), dtype=int))
        assert res.in_set.all()

    def test_isolated_vertices_included(self):
        m = Machine("scan", seed=3)
        res = maximal_independent_set(m, 5, [(0, 1)])
        assert res.in_set[2] and res.in_set[3] and res.in_set[4]
        _check_mis(5, [(0, 1)], res.in_set)

    @pytest.mark.parametrize("seed", range(10))
    def test_random_graphs(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 120))
        edges = rng.integers(0, n, (int(rng.integers(1, 3 * n)), 2))
        edges = edges[edges[:, 0] != edges[:, 1]]
        edges = np.unique(np.sort(edges, axis=1), axis=0)
        if len(edges) == 0:
            return
        m = Machine("scan", seed=seed)
        res = maximal_independent_set(m, n, edges)
        _check_mis(n, edges, res.in_set)


class TestComplexity:
    def test_rounds_logarithmic(self):
        rng = np.random.default_rng(0)
        n = 512
        edges = rng.integers(0, n, (4 * n, 2))
        edges = edges[edges[:, 0] != edges[:, 1]]
        edges = np.unique(np.sort(edges, axis=1), axis=0)
        m = Machine("scan", seed=0)
        res = maximal_independent_set(m, n, edges)
        assert res.rounds <= 25

    def test_scan_beats_erew(self):
        rng = np.random.default_rng(1)
        n = 256
        edges = rng.integers(0, n, (3 * n, 2))
        edges = edges[edges[:, 0] != edges[:, 1]]
        edges = np.unique(np.sort(edges, axis=1), axis=0)
        ms = Machine("scan", seed=1)
        maximal_independent_set(ms, n, edges)
        me = Machine("erew", seed=1)
        maximal_independent_set(me, n, edges)
        assert me.steps > 2 * ms.steps
