"""Line of sight (Table 1's O(1) row)."""
import numpy as np
import pytest

from repro import CapabilityError, Machine
from repro.algorithms.line_of_sight import line_of_sight_grid, visibility
from repro.baselines import serial_line_of_sight


class TestVisibilityCore:
    def test_single_ray_rising(self):
        m = Machine("scan")
        alt = m.vector([1.0, 2.0, 3.0], dtype=float)
        sf = m.flags([1, 0, 0])
        dist = m.vector([1.0, 2.0, 3.0], dtype=float)
        vis = visibility(alt, sf, dist, observer_altitude=0.0)
        assert vis.to_list() == [True, False, False]  # same slope afterwards

    def test_peak_blocks(self):
        m = Machine("scan")
        alt = m.vector([1.0, 10.0, 2.0, 3.0], dtype=float)
        sf = m.flags([1, 0, 0, 0])
        dist = m.vector([1.0, 2.0, 3.0, 4.0], dtype=float)
        vis = visibility(alt, sf, dist, 0.0)
        assert vis.to_list() == [True, True, False, False]

    def test_multiple_rays_independent(self):
        m = Machine("scan")
        alt = m.vector([5.0, 1.0, 1.0, 9.0], dtype=float)
        sf = m.flags([1, 0, 1, 0])
        dist = m.vector([1.0, 2.0, 1.0, 2.0], dtype=float)
        vis = visibility(alt, sf, dist, 0.0)
        assert vis.to_list() == [True, False, True, True]

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_serial_oracle(self, seed):
        rng = np.random.default_rng(seed)
        m = Machine("scan")
        rays = []
        alts, dists, flags = [], [], []
        for _ in range(int(rng.integers(1, 6))):
            k = int(rng.integers(1, 30))
            a = rng.uniform(0, 100, k).tolist()
            d = np.cumsum(rng.uniform(0.5, 2.0, k)).tolist()
            rays.append((a, d))
            alts.extend(a)
            dists.extend(d)
            flags.extend([True] + [False] * (k - 1))
        vis = visibility(m.vector(alts, dtype=float), m.flags(flags),
                         m.vector(dists, dtype=float), 10.0)
        expect = [b for ray in serial_line_of_sight(None, rays, 10.0) for b in ray]
        assert vis.to_list() == expect

    def test_is_constant_steps(self):
        """The Table 1 headline: O(1) program steps regardless of size."""
        def steps(k):
            m = Machine("scan")
            alt = m.vector(np.arange(k, dtype=float), dtype=float)
            sf = m.flags([True] + [False] * (k - 1))
            dist = m.vector(np.arange(1, k + 1, dtype=float), dtype=float)
            with m.measure() as r:
                visibility(alt, sf, dist, 0.0)
            return r.delta.steps

        assert steps(64) == steps(4096)


class TestGridWrapper:
    def test_wall_blocks(self):
        alt = np.zeros((17, 17))
        alt[:, 8] = 5.0
        m = Machine("scan", allow_concurrent_write=True)
        vis = line_of_sight_grid(m, alt, (2, 8), observer_height=1.0)
        assert vis[8, 2]          # observer sees itself
        assert vis[8, 5]          # open ground before the wall
        assert vis[8, 8]          # the wall crest
        assert not vis[8, 12]     # shadowed behind the wall

    def test_flat_terrain_all_visible(self):
        alt = np.zeros((9, 9))
        m = Machine("scan", allow_concurrent_write=True)
        vis = line_of_sight_grid(m, alt, (4, 4), observer_height=2.0)
        assert vis.all()

    def test_requires_concurrent_write(self):
        m = Machine("scan")
        with pytest.raises(CapabilityError):
            line_of_sight_grid(m, np.zeros((5, 5)), (2, 2))

    def test_observer_must_be_inside(self):
        m = Machine("scan", allow_concurrent_write=True)
        with pytest.raises(ValueError, match="observer"):
            line_of_sight_grid(m, np.zeros((5, 5)), (9, 2))

    def test_hill_shadow_shape(self):
        """A single hill column casts a shadow growing with distance."""
        alt = np.zeros((1, 20))
        alt[0, 5] = 10.0
        m = Machine("scan", allow_concurrent_write=True)
        vis = line_of_sight_grid(m, alt, (0, 0), observer_height=1.0)
        assert vis[0, 5]
        assert not vis[0, 6:].any()
