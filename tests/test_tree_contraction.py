"""Tree contraction (rake & compress; Table 5)."""
import numpy as np
import pytest

from repro import Machine
from repro.algorithms.tree_contraction import (
    DEFAULT_MODULUS,
    ExpressionTree,
    tree_contract,
)


def _leaf_tree(values, ops_):
    """Balanced-ish tree built from explicit arrays for tiny fixtures."""
    return ExpressionTree(
        left=np.asarray([1, -1, -1], dtype=np.int64),
        right=np.asarray([2, -1, -1], dtype=np.int64),
        op=np.asarray(ops_, dtype=np.int64),
        value=np.asarray(values, dtype=np.int64),
        root=0,
    )


class TestBasics:
    def test_single_add(self):
        t = _leaf_tree([0, 3, 4], [0, 0, 0])
        val, rounds = tree_contract(Machine("scan"), t)
        assert val == 7

    def test_single_mul(self):
        t = _leaf_tree([0, 3, 4], [1, 0, 0])
        val, _ = tree_contract(Machine("scan"), t)
        assert val == 12

    def test_serial_oracle_agrees(self):
        t = _leaf_tree([0, 3, 4], [1, 0, 0])
        assert t.eval_serial() == 12

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("skew", [0.05, 0.5, 0.95])
    def test_random_trees(self, seed, skew):
        rng = np.random.default_rng(seed)
        t = ExpressionTree.random(rng, int(rng.integers(2, 200)), skew=skew)
        m = Machine("scan", seed=seed)
        val, rounds = tree_contract(m, t)
        assert val == t.eval_serial()

    def test_exact_small_tree_without_modulus(self):
        rng = np.random.default_rng(1)
        t = ExpressionTree.random(rng, 8, max_value=5)
        val, _ = tree_contract(Machine("scan"), t, modulus=None)
        assert val == t.eval_serial(modulus=None)

    def test_round_cap_raises(self):
        rng = np.random.default_rng(2)
        t = ExpressionTree.random(rng, 64)
        with pytest.raises(RuntimeError, match="rounds"):
            tree_contract(Machine("scan"), t, max_rounds=1)


class TestComplexity:
    def test_vine_contracts_in_log_rounds(self):
        """A fully skewed (vine) tree exercises compress: rounds stay
        logarithmic, not linear."""
        rng = np.random.default_rng(3)
        t = ExpressionTree.random(rng, 512, skew=1.0)
        m = Machine("scan", seed=3)
        val, rounds = tree_contract(m, t)
        assert val == t.eval_serial()
        assert rounds <= 40

    def test_balanced_contracts_in_log_rounds(self):
        rng = np.random.default_rng(4)
        t = ExpressionTree.random(rng, 512, skew=0.0)
        m = Machine("scan", seed=4)
        _, rounds = tree_contract(m, t)
        assert rounds <= 30

    def test_work_reduction_with_fewer_processors(self):
        """Table 5: p = n / lg n does less total work than p = n because
        each round shrinks the live set geometrically."""
        rng = np.random.default_rng(5)
        t = ExpressionTree.random(rng, 2048, skew=0.5)
        n = t.n
        m_full = Machine("scan", seed=5)
        tree_contract(m_full, t)
        work_full = n * m_full.steps

        p = n // 12
        m_few = Machine("scan", num_processors=p, seed=5)
        tree_contract(m_few, t)
        work_few = p * m_few.steps
        assert work_few < work_full / 2


class TestRandomTreeGenerator:
    def test_structure_is_a_binary_tree(self):
        rng = np.random.default_rng(6)
        t = ExpressionTree.random(rng, 50)
        internal = t.left >= 0
        assert internal.sum() == 49  # n_leaves - 1 internal nodes
        assert ((t.left >= 0) == (t.right >= 0)).all()
        # every non-root node has exactly one parent
        children = np.concatenate((t.left[internal], t.right[internal]))
        assert len(children) == len(set(children.tolist()))
        assert t.root not in children
