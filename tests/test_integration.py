"""Cross-module integration: realistic pipelines that chain several of the
paper's algorithms on one machine, with end-to-end step accounting."""
import numpy as np
import pytest

from repro import Machine
from repro.algorithms import (
    build_kd_tree,
    closest_pair,
    connected_components,
    convex_hull,
    draw_lines,
    halving_merge,
    minimum_spanning_tree,
    quicksort,
    render,
    split_radix_sort,
)
from repro.baselines import kruskal_mst
from repro.core import ops, scans
from repro.graph import random_connected_graph


class TestSortMergePipeline:
    def test_sort_two_ways_then_merge(self, rng):
        """Radix-sort two shards, halving-merge them, verify against one
        big sort — three algorithms sharing one machine."""
        m = Machine("scan", seed=0)
        a = rng.integers(0, 10**5, 700)
        b = rng.integers(0, 10**5, 300)
        sa = split_radix_sort(m.vector(a))
        sb = split_radix_sort(m.vector(b))
        merged, _ = halving_merge(sa, sb)
        assert merged.to_list() == sorted(np.concatenate((a, b)).tolist())
        assert m.steps > 0

    def test_quicksort_feeds_merge(self, rng):
        m = Machine("scan", seed=1)
        a = rng.integers(0, 5000, 256)
        b = rng.integers(0, 5000, 256)
        merged, _ = halving_merge(quicksort(m.vector(a)), quicksort(m.vector(b)))
        assert merged.to_list() == sorted(np.concatenate((a, b)).tolist())


class TestGeometryPipeline:
    def test_hull_of_kd_ordered_points(self, rng):
        """kd-tree ordering is just a permutation: the hull of the
        reordered points matches the hull of the originals."""
        pts = rng.integers(-1000, 1000, (300, 2))
        m = Machine("scan")
        tree = build_kd_tree(m, pts)
        h1 = convex_hull(m, pts)
        h2 = convex_hull(m, pts[tree.order])
        s1 = set(map(tuple, pts[h1.hull_indices].tolist()))
        s2 = set(map(tuple, pts[tree.order][h2.hull_indices].tolist()))
        assert s1 == s2

    def test_closest_pair_lies_inside_hull_or_on_it(self, rng):
        pts = rng.integers(-500, 500, (150, 2))
        m = Machine("scan")
        cp = closest_pair(m, pts)
        hull = convex_hull(m, pts)
        assert cp.distance_sq >= 0
        assert len(hull.hull_indices) >= 2

    def test_draw_the_mst_of_a_point_set(self, rng):
        """A tiny end-to-end 'application': closest-pair-ish graph -> MST
        -> rasterize the tree edges."""
        n = 24
        pts = rng.integers(2, 60, (n, 2))
        # complete-ish graph on the points with squared-distance weights
        edges, weights = [], []
        for i in range(n):
            for j in range(i + 1, n):
                if (i + j) % 3 == 0 or j == i + 1:  # sparse but connected
                    edges.append((i, j))
                    weights.append(int(((pts[i] - pts[j]) ** 2).sum()) + 1)
        m = Machine("scan", seed=3, allow_concurrent_write=True)
        res = minimum_spanning_tree(m, n, np.array(edges), np.array(weights))
        assert len(res.edge_ids) == n - 1
        segs = [[*pts[edges[e][0]], *pts[edges[e][1]]] for e in res.edge_ids]
        drawing = draw_lines(m, segs)
        grid = render(drawing, 64, 64)
        for x, y in pts:  # every vertex pixel is drawn
            assert grid[y, x]


class TestGraphPipeline:
    def test_mst_edges_form_one_component(self, rng):
        n = 200
        edges, weights = random_connected_graph(rng, n, 3 * n)
        m = Machine("scan", seed=4)
        mst = minimum_spanning_tree(m, n, edges, weights)
        cc = connected_components(m, n, edges[mst.edge_ids])
        assert cc.num_components == 1
        _, expect = kruskal_mst(n, edges, weights)
        assert mst.total_weight == expect

    def test_components_of_mst_minus_heaviest_edge(self, rng):
        """Cutting the heaviest MST edge leaves exactly two components —
        MST + CC cooperating on one machine."""
        n = 80
        edges, weights = random_connected_graph(rng, n, n)
        m = Machine("scan", seed=5)
        mst = minimum_spanning_tree(m, n, edges, weights)
        chosen = mst.edge_ids
        heaviest = chosen[np.argmax(weights[chosen])]
        remaining = np.array([e for e in chosen if e != heaviest])
        cc = connected_components(m, n, edges[remaining])
        assert cc.num_components == 2


class TestStepAccountingAcrossPipelines:
    def test_steps_accumulate_monotonically(self, rng):
        m = Machine("scan", seed=6)
        checkpoints = [m.steps]
        split_radix_sort(m.vector(rng.integers(0, 100, 64)))
        checkpoints.append(m.steps)
        scans.plus_scan(m.vector(range(10)))
        checkpoints.append(m.steps)
        ops.pack(m.vector(range(10)), m.flags([1, 0] * 5))
        checkpoints.append(m.steps)
        assert checkpoints == sorted(checkpoints)
        assert checkpoints[-1] > checkpoints[0]

    def test_measure_isolates_each_stage(self, rng):
        m = Machine("scan", seed=7)
        data = rng.integers(0, 1000, 128)
        with m.measure() as r1:
            split_radix_sort(m.vector(data))
        with m.measure() as r2:
            scans.plus_scan(m.vector(data))
        assert r2.delta.steps == 1
        assert r1.delta.steps > r2.delta.steps
        assert m.steps == r1.delta.steps + r2.delta.steps
