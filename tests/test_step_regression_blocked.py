"""The golden step pins, re-run on the blocked backend.

Backends execute; the cost model charges.  Every constant pinned in
``tests/test_step_regression.py`` must therefore hold bit-for-bit when the
machine computes through :class:`~repro.backends.BlockedBackend` — an odd
chunk size (17) guarantees vectors of the pinned sizes (64+) straddle
chunk boundaries, exercising every carry path while the charges stay
untouched.
"""
import pytest

from tests import test_step_regression as pins


@pytest.fixture(autouse=True)
def _blocked_backend(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "blocked:17")


class TestPrimitivePinsBlocked(pins.TestPrimitivePins):
    pass


class TestCompositePinsBlocked(pins.TestCompositePins):
    pass


class TestAlgorithmPinsBlocked(pins.TestAlgorithmPins):
    pass
