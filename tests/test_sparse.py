"""Sparse matrix-vector multiply by segmented sums."""
import numpy as np
import pytest

from repro import Machine
from repro.algorithms.sparse import SparseMatrix


def _m():
    return Machine("scan")


class TestConstruction:
    def test_from_dense_roundtrip(self, rng):
        d = rng.standard_normal((6, 8))
        d[rng.random((6, 8)) < 0.6] = 0.0
        sp = SparseMatrix(_m(), d)
        assert np.allclose(sp.to_dense(), d)
        assert sp.nnz == np.count_nonzero(d)

    def test_from_coo(self):
        sp = SparseMatrix(_m(), shape=(3, 4), rows=[0, 2, 2],
                          cols=[1, 0, 3], vals=[5.0, 2.0, 7.0])
        expect = np.zeros((3, 4))
        expect[0, 1], expect[2, 0], expect[2, 3] = 5, 2, 7
        assert np.allclose(sp.to_dense(), expect)

    def test_coo_requires_shape(self):
        with pytest.raises(ValueError, match="shape"):
            SparseMatrix(_m(), rows=[0], cols=[0], vals=[1.0])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="range"):
            SparseMatrix(_m(), shape=(2, 2), rows=[5], cols=[0], vals=[1.0])

    def test_empty_matrix(self):
        sp = SparseMatrix(_m(), np.zeros((3, 3)))
        assert sp.nnz == 0
        assert sp.matvec([1.0, 2.0, 3.0]).to_list() == [0.0, 0.0, 0.0]


class TestMatvec:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_dense(self, seed):
        rng = np.random.default_rng(seed)
        r, c = rng.integers(1, 30, 2)
        d = rng.standard_normal((r, c))
        d[rng.random((r, c)) < 0.7] = 0.0
        x = rng.standard_normal(c)
        sp = SparseMatrix(_m(), d)
        assert np.allclose(sp.matvec(x).data, d @ x)

    def test_rows_without_nonzeros(self):
        d = np.zeros((4, 3))
        d[1, 2] = 5.0
        sp = SparseMatrix(_m(), d)
        assert np.allclose(sp.matvec([1, 1, 1.0]).data, [0, 5, 0, 0])

    def test_length_mismatch(self):
        sp = SparseMatrix(_m(), np.eye(3))
        with pytest.raises(ValueError, match="mismatch"):
            sp.matvec([1.0, 2.0])

    def test_constant_steps_on_scan_model(self, rng):
        """O(1) steps per multiply regardless of nnz or shape."""
        def steps(n):
            d = (rng.random((n, n)) < 4.0 / n).astype(float)
            sp_m = _m()
            sp = SparseMatrix(sp_m, d * rng.standard_normal((n, n)))
            x = rng.standard_normal(n)
            with sp_m.measure() as r:
                sp.matvec(x)
            return r.delta.steps

        a, b = steps(32), steps(256)
        assert abs(a - b) <= 12  # the duplicate-gather lg term only

    def test_erew_pays_more(self, rng):
        n = 64
        d = (rng.random((n, n)) < 0.1) * rng.standard_normal((n, n))
        x = rng.standard_normal(n)
        ms = Machine("scan")
        SparseMatrix(ms, d).matvec(x)
        me = Machine("erew")
        SparseMatrix(me, d).matvec(x)
        assert me.steps > 1.5 * ms.steps


class TestRowOperations:
    def test_row_sums(self, rng):
        d = rng.standard_normal((5, 7))
        d[rng.random((5, 7)) < 0.5] = 0.0
        sp = SparseMatrix(_m(), d)
        assert np.allclose(sp.row_sums().data, d.sum(axis=1))

    def test_scale_rows(self, rng):
        d = rng.standard_normal((5, 5))
        d[rng.random((5, 5)) < 0.5] = 0.0
        f = rng.standard_normal(5)
        sp = SparseMatrix(_m(), d).scale_rows(f)
        assert np.allclose(sp.to_dense(), d * f[:, None])

    def test_scale_rows_length_checked(self):
        sp = SparseMatrix(_m(), np.eye(3))
        with pytest.raises(ValueError):
            sp.scale_rows([1.0, 2.0])


class TestIterativeSolver:
    def test_jacobi_iteration_converges(self, rng):
        """A realistic consumer: Jacobi iterations built from matvec."""
        n = 40
        off = (rng.random((n, n)) < 0.1) * rng.standard_normal((n, n)) * 0.05
        np.fill_diagonal(off, 0.0)
        a = off + np.eye(n)
        b = rng.standard_normal(n)
        m = _m()
        sp_off = SparseMatrix(m, off)
        x = np.zeros(n)
        for _ in range(60):
            x = b - sp_off.matvec(x).data  # D = I
        assert np.allclose(a @ x, b, atol=1e-8)
