"""List ranking (pointer jumping + work-efficient splicing; Table 5)."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Machine
from repro.algorithms.list_ranking import (
    list_rank,
    list_rank_and_tail,
    list_rank_sampled,
)


def _random_lists(rng, n, n_lists):
    """Successor array for n nodes arranged into n_lists disjoint lists;
    returns (next, expected_rank, expected_tail)."""
    perm = rng.permutation(n)
    cuts = sorted(rng.choice(np.arange(1, n), size=min(n_lists - 1, n - 1),
                             replace=False).tolist()) if n_lists > 1 and n > 1 else []
    pieces = np.split(perm, cuts)
    nxt = np.full(n, -1, dtype=np.int64)
    rank = np.zeros(n, dtype=np.int64)
    tail = np.zeros(n, dtype=np.int64)
    for piece in pieces:
        for i, node in enumerate(piece):
            if i + 1 < len(piece):
                nxt[node] = piece[i + 1]
            rank[node] = len(piece) - 1 - i
            tail[node] = piece[-1]
    return nxt, rank, tail


class TestPointerJumping:
    def test_simple_chain(self):
        m = Machine("scan")
        nxt = m.vector([1, 2, 3, -1])
        assert list_rank(nxt).to_list() == [3, 2, 1, 0]

    def test_single_node(self):
        m = Machine("scan")
        assert list_rank(m.vector([-1])).to_list() == [0]

    def test_empty(self):
        m = Machine("scan")
        assert list_rank(m.vector([])).to_list() == []

    def test_tail_reporting(self):
        m = Machine("scan")
        rank, tail = list_rank_and_tail(m.vector([1, 2, -1, 4, -1]))
        assert rank.to_list() == [2, 1, 0, 1, 0]
        assert tail.to_list() == [2, 2, 2, 4, 4]

    def test_bad_successor_rejected(self):
        m = Machine("scan")
        with pytest.raises(IndexError):
            list_rank(m.vector([5]))

    @pytest.mark.parametrize("seed", range(8))
    def test_random_lists(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 300))
        nxt, rank, tail = _random_lists(rng, n, int(rng.integers(1, 6)))
        m = Machine("scan")
        got_rank, got_tail = list_rank_and_tail(m.vector(nxt))
        assert got_rank.to_list() == rank.tolist()
        assert got_tail.to_list() == tail.tolist()

    def test_log_step_complexity(self):
        def steps(n):
            m = Machine("scan")
            list_rank(m.vector(np.append(np.arange(1, n), -1)))
            return m.steps

        assert steps(4096) <= steps(1024) + 8  # only +2 rounds of 3 charges


class TestSampledRanking:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_pointer_jumping(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 400))
        nxt, rank, _ = _random_lists(rng, n, int(rng.integers(1, 5)))
        m = Machine("scan", seed=seed)
        got = list_rank_sampled(m.vector(nxt))
        assert got.to_list() == rank.tolist()

    def test_all_tails(self):
        m = Machine("scan", seed=0)
        got = list_rank_sampled(m.vector([-1] * 20))
        assert got.to_list() == [0] * 20

    def test_work_efficiency(self):
        """Table 5's list-ranking row: pointer jumping with p = n
        processors does Θ(n lg n) work, while splicing with p = n / lg n
        does O(n) — the processor-step product drops."""
        n = 65536
        lg = 16
        nxt = np.append(np.arange(1, n), -1)

        m_jump = Machine("scan", seed=1)  # p = n
        list_rank(m_jump.vector(nxt))
        work_jump = n * m_jump.steps

        p = n // lg
        m_sample = Machine("scan", num_processors=p, seed=1)
        list_rank_sampled(m_sample.vector(nxt))
        work_sample = p * m_sample.steps

        assert work_sample < work_jump
