"""The ``python -m repro`` command-line interface."""
import subprocess
import sys

import pytest

from repro.cli import main


class TestInProcess:
    @pytest.mark.parametrize("argv", [
        ["demo"],
        ["table1", "cc"],
        ["table1", "radix"],
        ["table2", "--n", "1024"],
        ["table4", "--n", "1024"],
        ["table5", "--n", "512"],
        ["figure9"],
        ["backends"],
    ])
    def test_commands_run(self, argv, capsys):
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert out.strip()

    def test_backends_lists_and_self_checks_all(self, capsys):
        main(["backends"])
        out = capsys.readouterr().out
        for name in ("numpy", "blocked", "reference"):
            assert name in out
        assert out.count("self-check ok") == 4  # 3 backends + blocked:4 demo
        assert "FAILED" not in out

    def test_table1_shows_all_models(self, capsys):
        main(["table1", "mis"])
        out = capsys.readouterr().out
        for model in ("erew", "crcw", "scan"):
            assert model in out

    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            main(["table1", "bogus"])


def test_module_entry_point():
    proc = subprocess.run([sys.executable, "-m", "repro", "demo"],
                          capture_output=True, text=True, timeout=120)
    assert proc.returncode == 0
    assert "+-scan(A) = [0, 2, 3, 5, 8, 13, 21, 34]" in proc.stdout
