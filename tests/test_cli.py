"""The ``python -m repro`` command-line interface."""
import subprocess
import sys

import pytest

from repro.cli import main


class TestInProcess:
    @pytest.mark.parametrize("argv", [
        ["demo"],
        ["table1", "cc"],
        ["table1", "radix"],
        ["table2", "--n", "1024"],
        ["table4", "--n", "1024"],
        ["table5", "--n", "512"],
        ["figure9"],
        ["backends"],
        ["cluster", "--workers", "2", "--n", "4096", "--deadline", "5.0"],
        ["cluster", "--workers", "2", "--n", "4096", "--deadline", "5.0",
         "--chaos"],
    ])
    def test_commands_run(self, argv, capsys):
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert out.strip()

    def test_backends_lists_and_self_checks_all(self, capsys):
        main(["backends"])
        out = capsys.readouterr().out
        for name in ("numpy", "blocked", "distributed", "native",
                     "reference"):
            assert name in out
        # 5 backends + blocked:4 + distributed:2:1 demos
        assert out.count("self-check ok") == 7
        assert "FAILED" not in out

    def test_cluster_reports_ledger_and_matching_steps(self, capsys):
        assert main(["cluster", "--workers", "2", "--n", "4096",
                     "--deadline", "5.0"]) == 0
        out = capsys.readouterr().out
        assert "ledger" in out.lower()
        assert "bit-identical" in out
        assert "FAILED" not in out

    def test_cluster_chaos_recovers(self, capsys):
        assert main(["cluster", "--workers", "2", "--n", "4096",
                     "--deadline", "2.0", "--chaos"]) == 0
        out = capsys.readouterr().out
        assert "bit-identical" in out
        assert "FAILED" not in out

    def test_table1_shows_all_models(self, capsys):
        main(["table1", "mis"])
        out = capsys.readouterr().out
        for model in ("erew", "crcw", "scan"):
            assert model in out

    def test_profile_table_export(self, capsys):
        assert main(["profile", "radix_sort"]) == 0
        out = capsys.readouterr().out
        assert "radix_sort" in out
        assert "88 steps" in out or "steps" in out
        assert "bit[0]" in out  # the span tree is rendered

    def test_profile_chrome_export_is_valid_trace_json(self, capsys):
        """Acceptance: `repro profile radix_sort --backend numpy --export
        chrome` emits a valid Chrome Trace Event JSON document."""
        import json

        assert main(["profile", "radix_sort", "--backend", "numpy",
                     "--export", "chrome"]) == 0
        doc = json.loads(capsys.readouterr().out)
        events = doc["traceEvents"]
        assert isinstance(events, list) and events
        complete = [e for e in events if e["ph"] == "X"]
        assert complete, "expected at least one complete ('X') event"
        for e in complete:
            assert {"name", "ph", "ts", "dur", "pid", "tid"} <= e.keys()
        names = {e["name"] for e in complete}
        assert "sort" in names and "bit[0]" in names
        root = next(e for e in complete if e["name"] == "(root)")
        assert root["args"]["steps"] == 88

    def test_profile_json_export_to_file(self, tmp_path, capsys):
        import json

        out_file = tmp_path / "profile.json"
        assert main(["profile", "list_ranking", "--export", "json",
                     "-o", str(out_file)]) == 0
        summary = capsys.readouterr().out
        assert str(out_file) in summary
        doc = json.loads(out_file.read_text())
        assert doc["algorithm"] == "list_ranking"
        assert doc["steps"] == 30

    def test_profile_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            main(["profile", "nonesuch"])

    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            main(["table1", "bogus"])


def test_module_entry_point():
    proc = subprocess.run([sys.executable, "-m", "repro", "demo"],
                          capture_output=True, text=True, timeout=120)
    assert proc.returncode == 0
    assert "+-scan(A) = [0, 2, 3, 5, 8, 13, 21, 34]" in proc.stdout
