"""Shared fixtures for the test suite."""
from __future__ import annotations

import numpy as np
import pytest

from repro import Machine


@pytest.fixture
def scan_machine() -> Machine:
    return Machine("scan", seed=12345)


@pytest.fixture
def erew_machine() -> Machine:
    return Machine("erew", seed=12345)


@pytest.fixture
def crcw_machine() -> Machine:
    return Machine("crcw", seed=12345)


@pytest.fixture(params=["erew", "crew", "crcw", "scan"])
def any_machine(request) -> Machine:
    return Machine(request.param, seed=999)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20260705)
