"""Scale tests: realistic input sizes run end to end (vectorized NumPy
keeps them fast), confirming the library is usable beyond toy sizes."""
import numpy as np
import pytest

from repro import Machine
from repro.algorithms import (
    closest_pair,
    connected_components,
    convex_hull,
    draw_lines,
    halving_merge,
    minimum_spanning_tree,
    split_radix_sort,
)
from repro.baselines import kruskal_mst, union_find_components
from repro.core import scans
from repro.graph import random_connected_graph


class TestLargeInputs:
    def test_million_element_scan(self):
        m = Machine("scan")
        v = m.vector(np.arange(1 << 20))
        out = scans.plus_scan(v)
        assert out.data[-1] == (1 << 20) * ((1 << 20) - 1) // 2 - (1 << 20) + 1
        assert m.steps == 1

    def test_radix_sort_quarter_million(self, rng):
        data = rng.integers(0, 1 << 20, 1 << 18)
        m = Machine("scan")
        out = split_radix_sort(m.vector(data))
        assert np.array_equal(out.data, np.sort(data))
        assert m.steps < 300  # 20 bits x O(1)

    def test_merge_quarter_million(self, rng):
        a = np.sort(rng.integers(0, 10**9, 1 << 17))
        b = np.sort(rng.integers(0, 10**9, 1 << 17))
        m = Machine("scan")
        merged, _ = halving_merge(m.vector(a), m.vector(b))
        assert np.array_equal(merged.data, np.sort(np.concatenate((a, b))))

    def test_mst_ten_thousand_vertices(self):
        rng = np.random.default_rng(0)
        n = 10_000
        edges, weights = random_connected_graph(rng, n, n)
        m = Machine("scan", seed=0)
        res = minimum_spanning_tree(m, n, edges, weights)
        _, expect = kruskal_mst(n, edges, weights)
        assert res.total_weight == expect
        assert res.rounds < 60

    def test_components_ten_thousand_vertices(self):
        rng = np.random.default_rng(1)
        n = 10_000
        edges, _ = random_connected_graph(rng, n, n // 2)
        keep = rng.random(len(edges)) < 0.6
        m = Machine("scan", seed=1)
        res = connected_components(m, n, edges[keep])
        expect = union_find_components(n, edges[keep])
        assert res.num_components == len(set(expect.tolist()))

    def test_hull_of_fifty_thousand_points(self):
        rng = np.random.default_rng(2)
        pts = rng.integers(-10**6, 10**6, (50_000, 2))
        m = Machine("scan")
        res = convex_hull(m, pts)
        from repro.baselines import monotone_chain_hull

        got = set(map(tuple, pts[res.hull_indices].tolist()))
        assert got == monotone_chain_hull(pts)

    def test_closest_pair_twenty_thousand_points(self):
        rng = np.random.default_rng(3)
        pts = rng.integers(0, 10**6, (20_000, 2))
        # brute force on a sample region confirms the global answer bound
        m = Machine("scan")
        res = closest_pair(m, pts)
        i, j = res.pair
        assert int(((pts[i] - pts[j]) ** 2).sum()) == res.distance_sq
        # oracle via a grid sweep on the nearest bucket
        from scipy.spatial import cKDTree

        d, _ = cKDTree(pts).query(pts, k=2)
        assert res.distance_sq == int(round(d[:, 1].min() ** 2))

    def test_hundred_thousand_pixels(self):
        rng = np.random.default_rng(4)
        lines = rng.integers(0, 1000, (500, 4))
        m = Machine("scan")
        d = draw_lines(m, lines)
        assert len(d.x) == sum(
            max(abs(int(x1) - int(x0)), abs(int(y1) - int(y0))) + 1
            for x0, y0, x1, y1 in lines)
        assert m.steps < 150  # O(1): the same ~100 steps as three lines
