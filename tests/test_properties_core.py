"""Algebraic laws of the core operations, property-tested.

These are the identities the paper's constructions silently rely on;
each is stated as a law over arbitrary inputs rather than an example.
"""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Machine
from repro.core import ops, scans, segmented

ints = st.lists(st.integers(-10**6, 10**6), max_size=120)
nonempty_ints = st.lists(st.integers(-10**6, 10**6), min_size=1, max_size=120)


def _m():
    return Machine("scan")


@st.composite
def seg_case(draw):
    n = draw(st.integers(1, 80))
    values = draw(st.lists(st.integers(-10**4, 10**4), min_size=n, max_size=n))
    flags = [True] + [draw(st.booleans()) for _ in range(n - 1)]
    return values, flags


class TestScanLaws:
    @given(ints)
    @settings(max_examples=40, deadline=None)
    def test_scan_then_add_self_is_inclusive(self, xs):
        """exclusive scan + input = inclusive scan."""
        m = _m()
        v = m.vector(xs)
        incl = (scans.plus_scan(v) + v).to_list()
        assert incl == list(np.cumsum(xs)) if xs else incl == []

    @given(ints)
    @settings(max_examples=40, deadline=None)
    def test_backward_is_reverse_conjugate(self, xs):
        """back-scan == reverse ∘ scan ∘ reverse."""
        m = _m()
        v = m.vector(xs)
        direct = scans.back_plus_scan(v).to_list()
        conj = scans.plus_scan(m.vector(xs).reverse()).reverse().to_list()
        assert direct == conj

    @given(nonempty_ints)
    @settings(max_examples=40, deadline=None)
    def test_distribute_is_broadcast_of_reduce(self, xs):
        m = _m()
        v = m.vector(xs)
        assert scans.plus_distribute(v).to_list() == [sum(xs)] * len(xs)
        assert scans.max_distribute(v).to_list() == [max(xs)] * len(xs)

    @given(ints, ints)
    @settings(max_examples=40, deadline=None)
    def test_scan_is_linear(self, xs, ys):
        """plus_scan(a + b) == plus_scan(a) + plus_scan(b)."""
        n = min(len(xs), len(ys))
        xs, ys = xs[:n], ys[:n]
        m = _m()
        a, b = m.vector(xs), m.vector(ys)
        lhs = scans.plus_scan(a + b).to_list()
        rhs = (scans.plus_scan(a) + scans.plus_scan(b)).to_list()
        assert lhs == rhs

    @given(ints)
    @settings(max_examples=40, deadline=None)
    def test_max_scan_is_monotone(self, xs):
        out = [int(x) for x in scans.max_scan(_m().vector(xs)).data]
        assert all(a <= b for a, b in zip(out, out[1:]))


class TestPermuteLaws:
    @given(st.permutations(list(range(40))))
    @settings(max_examples=30, deadline=None)
    def test_permute_roundtrip(self, perm):
        """permuting by p then by argsort(p) is the identity."""
        m = _m()
        v = m.vector(range(40))
        p = m.vector(perm)
        inv = m.vector(np.argsort(perm))
        # result[p[i]] = v[i]; applying the same construction with the
        # inverse permutation undoes it
        out = v.permute(p).permute(inv)
        assert np.array_equal(np.sort(out.data), np.arange(40))

    @given(st.permutations(list(range(30))))
    @settings(max_examples=30, deadline=None)
    def test_gather_inverts_scatter(self, perm):
        m = _m()
        v = m.vector(np.arange(30) * 7)
        p = m.vector(perm)
        assert v.permute(p).gather(p).to_list() == v.to_list()


class TestSplitPackLaws:
    @given(st.lists(st.integers(0, 255), max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_split_twice_sorts_two_bits(self, xs):
        """split by bit0 then bit1 sorts values < 4 (radix sort's
        induction step)."""
        vals = [x % 4 for x in xs]
        m = _m()
        v = m.vector(vals)
        v = ops.split(v, v.bit(0))
        v = ops.split(v, v.bit(1))
        assert v.to_list() == sorted(vals)

    @given(st.lists(st.integers(0, 100), max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_split_is_a_permutation(self, xs):
        m = _m()
        v = m.vector(xs)
        out = ops.split(v, (v % 3) == 0)
        assert sorted(out.to_list()) == sorted(xs)

    @given(st.lists(st.tuples(st.integers(0, 1000), st.booleans()), max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_pack_of_conjunction_is_pack_of_pack(self, pairs):
        """pack(v, a&b) == pack(pack(v, a), b restricted to a)."""
        if not pairs:
            return
        vals = [p[0] for p in pairs]
        a = [p[1] for p in pairs]
        rng = np.random.default_rng(sum(vals) + 1)
        b = rng.random(len(vals)) < 0.5
        m = _m()
        v = m.vector(vals)
        both = ops.pack(v, m.flags(np.array(a) & b)).to_list()
        first = ops.pack(v, m.flags(a))
        b_restricted = ops.pack(m.flags(b), m.flags(a))
        nested = ops.pack(first, b_restricted).to_list()
        assert both == nested

    @given(st.lists(st.booleans(), max_size=120))
    @settings(max_examples=40, deadline=None)
    def test_enumerate_counts_prefix_trues(self, flags):
        m = _m()
        out = ops.enumerate_(m.flags(flags)).to_list()
        total = ops.count(m.flags(flags))
        assert total == sum(flags)
        if flags:
            assert out[-1] + flags[-1] == total


class TestAllocationLaws:
    @given(st.lists(st.integers(0, 8), min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_allocate_lengths_roundtrip(self, counts):
        """the segments allocated for `counts` have exactly those lengths
        (zero-count positions vanish)."""
        m = _m()
        seg_flags, hp = ops.allocate(m, m.vector(counts))
        got = segmented.segment_lengths(seg_flags).tolist()
        assert got == [c for c in counts if c > 0]
        assert hp.to_list() == list(np.cumsum([0] + counts[:-1]))

    @given(st.lists(st.integers(0, 8), min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_distribute_then_heads_recovers_values(self, counts):
        m = _m()
        values = m.vector(np.arange(len(counts)) * 3 + 1)
        dist, seg_flags = ops.distribute_to_segments(values, m.vector(counts))
        heads = ops.pack(dist, seg_flags).to_list()
        assert heads == [v for v, c in zip(values.to_list(), counts) if c > 0]


class TestSegmentedGenericLaw:
    @given(seg_case())
    @settings(max_examples=40, deadline=None)
    def test_segmented_equals_per_segment_unsegmented(self, case):
        """THE segmented-scan law: running the segmented op equals running
        the unsegmented op on each segment independently."""
        values, flags = case
        m = _m()
        seg_out = segmented.seg_plus_scan(m.vector(values), m.flags(flags)).to_list()
        heads = [i for i, f in enumerate(flags) if f] + [len(flags)]
        for a, b in zip(heads, heads[1:]):
            m2 = _m()
            expect = scans.plus_scan(m2.vector(values[a:b])).to_list()
            assert seg_out[a:b] == expect

    @given(seg_case())
    @settings(max_examples=40, deadline=None)
    def test_single_segment_degenerates_to_unsegmented(self, case):
        values, _ = case
        m = _m()
        one_seg = [True] + [False] * (len(values) - 1)
        a = segmented.seg_max_scan(m.vector(values), m.flags(one_seg)).to_list()
        b = scans.max_scan(_m().vector(values)).to_list()
        assert a == b
