"""The Figure 15 sum state machine and the FIFO, exhaustively."""
import itertools

import pytest

from repro.hardware.unit import (
    MAX,
    PLUS,
    GateLevelSumStateMachine,
    ShiftRegister,
    SumStateMachine,
)


def _serial_add(sm, a, b, width):
    """Feed two integers LSB first; collect the sum bits."""
    out = 0
    for i in range(width):
        bit = sm.step((a >> i) & 1, (b >> i) & 1)
        out |= bit << i
    return out


def _serial_max(sm, a, b, width):
    """Feed two integers MSB first; collect the max bits."""
    out = 0
    for i in range(width - 1, -1, -1):
        bit = sm.step((a >> i) & 1, (b >> i) & 1)
        out |= bit << i
    return out


class TestSerialAdder:
    def test_exhaustive_6bit(self):
        for a in range(64):
            for b in range(64):
                sm = SumStateMachine(PLUS)
                assert _serial_add(sm, a, b, 7) == a + b, (a, b)

    def test_carry_chain(self):
        sm = SumStateMachine(PLUS)
        assert _serial_add(sm, 0b1111, 0b0001, 5) == 16

    def test_clear_resets_carry(self):
        sm = SumStateMachine(PLUS)
        _serial_add(sm, 3, 3, 2)  # leaves a carry pending
        sm.clear()
        assert _serial_add(sm, 1, 1, 2) == 2


class TestSerialMax:
    def test_exhaustive_6bit(self):
        for a in range(64):
            for b in range(64):
                sm = SumStateMachine(MAX)
                assert _serial_max(sm, a, b, 6) == max(a, b), (a, b)

    def test_equal_values(self):
        sm = SumStateMachine(MAX)
        assert _serial_max(sm, 42, 42, 6) == 42

    def test_decision_latches(self):
        """Once one operand wins, later bits come only from the winner."""
        sm = SumStateMachine(MAX)
        # 100 vs 011: a wins on the first bit
        bits = [sm.step(a, b) for a, b in [(1, 0), (0, 1), (0, 1)]]
        assert bits == [1, 0, 0]

    def test_invalid_op(self):
        with pytest.raises(ValueError):
            SumStateMachine(7)


class TestGateLevelEquivalence:
    @pytest.mark.parametrize("op", [PLUS, MAX])
    def test_exhaustive_state_equivalence(self, op):
        """Every (Q1, Q2, A, B) combination: the gate-level circuit and the
        behavioral model produce the same output bit and next state."""
        for q1, q2, a, b in itertools.product((0, 1), repeat=4):
            if op == PLUS and q2:
                continue  # the adder never sets Q2
            if op == MAX and q1 and q2:
                continue  # mutually exclusive by construction
            beh = SumStateMachine(op)
            beh.q1, beh.q2 = q1, q2
            gate = GateLevelSumStateMachine(op)
            gate.q1, gate.q2 = q1, q2
            s_b = beh.step(a, b)
            s_g = gate.step(a, b)
            assert s_g == int(s_b), (op, q1, q2, a, b)
            assert gate.q1 == int(beh.q1)
            assert gate.q2 == int(beh.q2)

    @pytest.mark.parametrize("op", [PLUS, MAX])
    def test_serial_words_agree(self, op):
        """Whole 6-bit words through both machines, all operand pairs."""
        for a in range(0, 64, 7):
            for b in range(64):
                beh, gate = SumStateMachine(op), GateLevelSumStateMachine(op)
                bits = range(7) if op == PLUS else range(5, -1, -1)
                for i in bits:
                    x, y = (a >> i) & 1, (b >> i) & 1
                    assert gate.step(x, y) == beh.step(x, y), (a, b, i)

    def test_gate_count_documented(self):
        assert GateLevelSumStateMachine.GATE_COUNT < 30  # "quite easy to build"

    def test_invalid_op(self):
        with pytest.raises(ValueError):
            GateLevelSumStateMachine(5)


class TestShiftRegister:
    def test_zero_length_is_a_wire(self):
        sr = ShiftRegister(0)
        assert [sr.shift(b) for b in (1, 0, 1)] == [1, 0, 1]

    def test_delays_by_length(self):
        sr = ShiftRegister(3)
        seq = [1, 0, 1, 1, 0, 0, 1]
        out = [sr.shift(b) for b in seq]
        assert out == [0, 0, 0] + seq[:4]

    def test_clear(self):
        sr = ShiftRegister(2)
        sr.shift(1)
        sr.shift(1)
        sr.clear()
        assert sr.shift(0) == 0

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            ShiftRegister(-1)
