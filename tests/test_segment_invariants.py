"""Segment-descriptor invariants: one error type on every entry point.

Every segmented operation must reject malformed descriptors — non-boolean
flags, a flag vector of the wrong length, a first element that does not
begin a segment — with :class:`repro.core.segmented.SegmentError` before
charging any steps.  SegmentError subclasses both ValueError and
TypeError, so callers written against either keep working.
"""
import numpy as np
import pytest

from repro import Machine
from repro.core import segmented
from repro.core.segmented import SegmentError

#: (name, callable(m, values, seg_flags)) for every values+flags entry point
VALUES_AND_FLAGS = [
    ("seg_plus_scan", segmented.seg_plus_scan),
    ("seg_max_scan", segmented.seg_max_scan),
    ("seg_min_scan", segmented.seg_min_scan),
    ("seg_or_scan", segmented.seg_or_scan),
    ("seg_and_scan", segmented.seg_and_scan),
    ("seg_back_plus_scan", segmented.seg_back_plus_scan),
    ("seg_back_max_scan", segmented.seg_back_max_scan),
    ("seg_back_min_scan", segmented.seg_back_min_scan),
    ("seg_copy", segmented.seg_copy),
    ("seg_back_copy", segmented.seg_back_copy),
    ("seg_enumerate", segmented.seg_enumerate),
    ("seg_plus_distribute", segmented.seg_plus_distribute),
    ("seg_max_distribute", segmented.seg_max_distribute),
    ("seg_min_distribute", segmented.seg_min_distribute),
    ("seg_or_distribute", segmented.seg_or_distribute),
    ("seg_and_distribute", segmented.seg_and_distribute),
    ("seg_flag_from_neighbor_change",
     segmented.seg_flag_from_neighbor_change),
]

FLAGS_ONLY = [
    ("segment_ids", segmented.segment_ids),
    ("segment_heads", segmented.segment_heads),
    ("segment_lengths", segmented.segment_lengths),
    ("seg_index", segmented.seg_index),
]


@pytest.fixture
def m():
    return Machine("scan")


@pytest.mark.parametrize("name,fn", VALUES_AND_FLAGS,
                         ids=[n for n, _ in VALUES_AND_FLAGS])
class TestValuesAndFlagsEntryPoints:
    def test_nonboolean_flags_rejected(self, m, name, fn):
        with pytest.raises(SegmentError, match="boolean"):
            fn(m.vector([1, 2, 3]), m.vector([1, 0, 1]))

    def test_length_mismatch_rejected(self, m, name, fn):
        with pytest.raises(SegmentError, match="length"):
            fn(m.vector([1, 2, 3]), m.flags([True, False]))

    def test_headless_first_element_rejected(self, m, name, fn):
        with pytest.raises(SegmentError, match="first element"):
            fn(m.vector([1, 2, 3]), m.flags([False, False, True]))

    def test_no_steps_charged_on_rejection(self, m, name, fn):
        with pytest.raises(SegmentError):
            fn(m.vector([1, 2, 3]), m.flags([False, True, False]))
        assert m.steps == 0


@pytest.mark.parametrize("name,fn", FLAGS_ONLY,
                         ids=[n for n, _ in FLAGS_ONLY])
class TestFlagsOnlyEntryPoints:
    def test_nonboolean_flags_rejected(self, m, name, fn):
        with pytest.raises(SegmentError, match="boolean"):
            fn(m.vector([1, 0, 1]))

    def test_headless_first_element_rejected(self, m, name, fn):
        with pytest.raises(SegmentError, match="first element"):
            fn(m.flags([False, True]))


class TestSplitEntryPoints:
    def test_seg_split_checks_descriptor(self, m):
        with pytest.raises(SegmentError):
            segmented.seg_split(m.vector([1, 2]), m.flags([True, False]),
                                m.flags([False, False]))

    def test_seg_split3_checks_descriptor(self, m):
        with pytest.raises(SegmentError):
            segmented.seg_split3(m.vector([1, 2]), m.flags([True, False]),
                                 m.flags([False, True]),
                                 m.vector([1, 0]))


class TestErrorType:
    def test_segment_error_is_value_and_type_error(self):
        assert issubclass(SegmentError, ValueError)
        assert issubclass(SegmentError, TypeError)

    def test_catchable_as_valueerror(self, m):
        with pytest.raises(ValueError):
            segmented.segment_ids(m.flags([False, True]))

    def test_catchable_as_typeerror(self, m):
        with pytest.raises(TypeError):
            segmented.seg_copy(m.vector([1, 2]), m.vector([1, 1]))

    def test_empty_flags_accepted(self, m):
        # zero-length descriptors are valid (zero segments)
        assert segmented.segment_ids(m.flags([])).to_list() == []

    def test_different_machines_rejected(self, m):
        other = Machine("scan")
        with pytest.raises(SegmentError, match="machines"):
            segmented.seg_copy(m.vector([1, 2]),
                               other.flags([True, False]))
