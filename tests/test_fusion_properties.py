"""Property-based eager-vs-lazy differential suite.

For arbitrary generated vectors and operator chains, running under
``fusion=True`` must be indistinguishable from ``fusion=False`` on every
backend: bit-identical results (dtype included) **and** bit-identical
step charges.  This is the property the whole refactor hangs on — the
lazy DAG is an execution strategy, never an observable.
"""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Machine
from repro.core import scans

BACKENDS = ("numpy", "blocked", "blocked:7", "reference")

ints = st.lists(st.integers(-10**6, 10**6), max_size=120)
small_ints = st.lists(st.integers(-100, 100), max_size=60)
floats = st.lists(
    st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
    max_size=120)

DTYPES = (np.int8, np.int16, np.uint8, np.uint32, np.int64, np.float64)


def _pair(backend, xs, dtype=None):
    """Two fresh machines on the same backend, fused and eager, plus the
    shared input array."""
    arr = np.asarray(xs, dtype=dtype)
    return (Machine("scan", backend=backend, fusion=True),
            Machine("scan", backend=backend, fusion=False), arr)


def _assert_same(spec_fused, spec_eager, out_fused, out_eager):
    assert out_fused.dtype == out_eager.dtype
    assert np.array_equal(out_fused, out_eager)
    assert spec_fused.steps == spec_eager.steps
    assert spec_fused.ops == spec_eager.ops
    assert spec_fused.by_kind == spec_eager.by_kind


def _differential(backend, xs, chain, dtype=None):
    mf, me, arr = _pair(backend, xs, dtype)
    out_f = chain(mf, mf.vector(arr))
    out_e = chain(me, me.vector(arr))
    _assert_same(mf.snapshot(), me.snapshot(), out_f.data, out_e.data)


class TestElementwiseChains:
    @pytest.mark.parametrize("backend", BACKENDS)
    @given(ints)
    @settings(max_examples=25, deadline=None)
    def test_arithmetic_chain(self, backend, xs):
        _differential(backend, xs,
                      lambda m, v: (v * 3 + 7) - (v // 2),
                      dtype=np.int64)

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(ints)
    @settings(max_examples=25, deadline=None)
    def test_reflected_chain(self, backend, xs):
        _differential(backend, xs,
                      lambda m, v: (1000 - v) + (3 * v) - (7 % (v | 1)),
                      dtype=np.int64)

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(floats)
    @settings(max_examples=25, deadline=None)
    def test_float_division_chain(self, backend, xs):
        _differential(backend, xs,
                      lambda m, v: 1.0 / (v * v + 1.0) + v,
                      dtype=np.float64)

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(ints)
    @settings(max_examples=25, deadline=None)
    def test_bool_coercion_chain(self, backend, xs):
        # comparisons produce bool vectors; & and | stay bool; where
        # re-enters the numeric domain
        _differential(backend, xs,
                      lambda m, v: ((v > 0) & (v % 3 != 1)).where(v, -v),
                      dtype=np.int64)

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(small_ints, st.sampled_from(DTYPES), st.sampled_from(DTYPES))
    @settings(max_examples=25, deadline=None)
    def test_mixed_dtype_chain(self, backend, xs, dt_a, dt_b):
        """Chains that cross dtype boundaries mid-stream promote the same
        way deferred as eager (NumPy promotion probed on empty slices)."""
        mf, me, arr = _pair(backend, xs, np.int64)
        def chain(m, v):
            return (v.astype(dt_a) + 1).astype(dt_b) * 2 - v.astype(dt_b)
        out_f = chain(mf, mf.vector(arr))
        out_e = chain(me, me.vector(arr))
        _assert_same(mf.snapshot(), me.snapshot(), out_f.data, out_e.data)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_vector_chain(self, backend):
        _differential(backend, [],
                      lambda m, v: ((v + 1) * 2 > 0).where(v, v - 1),
                      dtype=np.int64)


class TestTerminalScans:
    @pytest.mark.parametrize("backend", BACKENDS)
    @given(ints)
    @settings(max_examples=25, deadline=None)
    def test_plus_scan_of_chain(self, backend, xs):
        _differential(backend, xs,
                      lambda m, v: scans.plus_scan(v * 2 - 1),
                      dtype=np.int64)

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(ints)
    @settings(max_examples=25, deadline=None)
    def test_max_scan_of_chain(self, backend, xs):
        _differential(backend, xs,
                      lambda m, v: scans.max_scan((v | 1) * v),
                      dtype=np.int64)

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(ints)
    @settings(max_examples=25, deadline=None)
    def test_bool_plus_scan_widens(self, backend, xs):
        # plus_scan over a pending bool chain must widen to int64
        # exactly as the eager path does
        _differential(backend, xs,
                      lambda m, v: scans.plus_scan(v != 0),
                      dtype=np.int64)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_terminal(self, backend):
        _differential(backend, [],
                      lambda m, v: scans.plus_scan(v + 1),
                      dtype=np.int64)


class TestDistributedBackend:
    """The sharded backend is slow to spin up, so it gets a smaller
    example budget but the same contract."""

    @given(small_ints)
    @settings(max_examples=5, deadline=None)
    def test_chain_and_scan(self, xs):
        _differential("distributed:2:1", xs,
                      lambda m, v: scans.plus_scan((v * v + 1) - (v // 2)),
                      dtype=np.int64)

    @given(small_ints)
    @settings(max_examples=5, deadline=None)
    def test_bool_chain(self, xs):
        _differential("distributed:2:1", xs,
                      lambda m, v: ((v > 0) & (v != 7)).where(v, 0),
                      dtype=np.int64)
