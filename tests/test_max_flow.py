"""Maximum flow by parallel push-relabel (Table 1's last row)."""
import numpy as np
import pytest

from repro import Machine
from repro.algorithms.max_flow import max_flow
from repro.baselines import dinic_max_flow
from repro.graph import random_connected_graph


def _oracle(n, edges, caps, s, t):
    arcs = [(u, v, int(c)) for (u, v), c in zip(edges, caps)]
    arcs += [(v, u, int(c)) for (u, v), c in zip(edges, caps)]
    return dinic_max_flow(n, arcs, s, t)


class TestFixedCases:
    def test_single_edge(self):
        res = max_flow(Machine("scan"), 2, [(0, 1)], [7], 0, 1)
        assert res.value == 7

    def test_two_parallel_paths(self):
        edges = [(0, 1), (1, 3), (0, 2), (2, 3)]
        caps = [3, 5, 4, 2]
        res = max_flow(Machine("scan"), 4, edges, caps, 0, 3)
        assert res.value == 5  # min(3,5) + min(4,2)

    def test_bottleneck(self):
        edges = [(0, 1), (1, 2), (2, 3)]
        res = max_flow(Machine("scan"), 4, edges, [10, 1, 10], 0, 3)
        assert res.value == 1

    def test_diamond_with_cross_edge(self):
        edges = [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]
        caps = [10, 10, 1, 4, 9]
        res = max_flow(Machine("scan"), 4, edges, caps, 0, 3)
        assert res.value == _oracle(4, edges, caps, 0, 3)

    def test_zero_capacity(self):
        res = max_flow(Machine("scan"), 3, [(0, 1), (1, 2)], [0, 5], 0, 2)
        assert res.value == 0

    def test_validation(self):
        m = Machine("scan")
        with pytest.raises(ValueError):
            max_flow(m, 2, [(0, 1)], [1, 2], 0, 1)
        with pytest.raises(ValueError):
            max_flow(m, 2, [(0, 1)], [-1], 0, 1)
        with pytest.raises(ValueError):
            max_flow(m, 2, [(0, 1)], [1], 1, 1)


class TestAgainstDinic:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_graphs(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 50))
        edges, _ = random_connected_graph(rng, n, int(rng.integers(0, 2 * n)))
        caps = rng.integers(0, 25, len(edges))
        s, t = 0, n - 1
        res = max_flow(Machine("scan", seed=seed), n, edges, caps, s, t)
        assert res.value == _oracle(n, edges, caps, s, t)

    def test_arbitrary_source_sink(self):
        rng = np.random.default_rng(77)
        n = 30
        edges, _ = random_connected_graph(rng, n, 40)
        caps = rng.integers(1, 15, len(edges))
        s, t = 7, 19
        res = max_flow(Machine("scan", seed=7), n, edges, caps, s, t)
        assert res.value == _oracle(n, edges, caps, s, t)

    def test_flow_bounded_by_cut_degree(self):
        rng = np.random.default_rng(5)
        n = 25
        edges, _ = random_connected_graph(rng, n, 30)
        caps = rng.integers(1, 10, len(edges))
        res = max_flow(Machine("scan", seed=5), n, edges, caps, 0, n - 1)
        sink_cap = sum(int(c) for (u, v), c in zip(edges, caps)
                       if n - 1 in (int(u), int(v)))
        assert res.value <= sink_cap


class TestComplexity:
    def test_pulse_is_constant_steps_on_scan_model(self):
        """Each pulse is O(1) steps regardless of edge count — the source
        of the Table 1 O(n² lg n) -> O(n²) reduction."""
        def steps_per_pulse(n):
            rng = np.random.default_rng(1)
            edges, _ = random_connected_graph(rng, n, 3 * n)
            caps = rng.integers(1, 20, len(edges))
            m = Machine("scan", seed=1)
            res = max_flow(m, n, edges, caps, 0, n - 1)
            return m.steps / max(res.pulses, 1)

        small, big = steps_per_pulse(16), steps_per_pulse(64)
        assert big < small * 1.5

    def test_erew_pays_log_per_pulse(self):
        rng = np.random.default_rng(2)
        n = 48
        edges, _ = random_connected_graph(rng, n, 2 * n)
        caps = rng.integers(1, 20, len(edges))
        ms = Machine("scan", seed=2)
        r1 = max_flow(ms, n, edges, caps, 0, n - 1)
        me = Machine("erew", seed=2)
        r2 = max_flow(me, n, edges, caps, 0, n - 1)
        assert r1.value == r2.value
        assert me.steps > 2 * ms.steps
