"""Line drawing by processor allocation (Section 2.4.1, Figure 9)."""
import numpy as np
import pytest

from repro import CapabilityError, Machine
from repro.algorithms.line_drawing import draw_lines, render
from repro.baselines import dda_line


class TestFigure9:
    ENDPOINTS = [[11, 2, 23, 14], [2, 13, 13, 8], [16, 4, 31, 4]]

    def test_pixel_counts(self):
        """The paper says 12/11/16 pixels; including both endpoints the DDA
        step counts are 13/12/16 (the horizontal line's count matches
        because the paper counted it inclusively)."""
        m = Machine("scan")
        d = draw_lines(m, self.ENDPOINTS)
        assert d.counts.to_list() == [13, 12, 16]

    def test_pixels_match_serial_dda(self):
        m = Machine("scan")
        d = draw_lines(m, self.ENDPOINTS)
        got = d.pixels().tolist()
        expect = []
        for x0, y0, x1, y1 in self.ENDPOINTS:
            expect.extend(dda_line(x0, y0, x1, y1))
        assert [tuple(p) for p in got] == expect

    def test_render_requires_concurrent_write(self):
        m = Machine("scan")
        d = draw_lines(m, self.ENDPOINTS)
        with pytest.raises(CapabilityError):
            render(d, 32, 16)

    def test_render_on_permissive_machine(self):
        m = Machine("scan", allow_concurrent_write=True)
        d = draw_lines(m, self.ENDPOINTS)
        grid = render(d, 32, 16)
        assert grid.shape == (16, 32)
        assert grid.sum() == len({tuple(p) for p in d.pixels().tolist()})
        assert grid[2, 11] and grid[14, 23] and grid[4, 31]


class TestGeneral:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_lines_match_dda(self, seed):
        rng = np.random.default_rng(seed)
        lines = rng.integers(0, 64, (int(rng.integers(1, 12)), 4))
        m = Machine("scan")
        d = draw_lines(m, lines)
        expect = []
        for x0, y0, x1, y1 in lines:
            expect.extend(dda_line(int(x0), int(y0), int(x1), int(y1)))
        assert [tuple(p) for p in d.pixels().tolist()] == expect

    def test_degenerate_point(self):
        m = Machine("scan")
        d = draw_lines(m, [[5, 5, 5, 5]])
        assert d.counts.to_list() == [1]
        assert d.pixels().tolist() == [[5, 5]]

    def test_vertical_and_horizontal(self):
        m = Machine("scan")
        d = draw_lines(m, [[3, 0, 3, 4], [0, 2, 4, 2]])
        px = d.pixels().tolist()
        assert px[:5] == [[3, 0], [3, 1], [3, 2], [3, 3], [3, 4]]
        assert px[5:] == [[0, 2], [1, 2], [2, 2], [3, 2], [4, 2]]

    def test_negative_direction(self):
        m = Machine("scan")
        d = draw_lines(m, [[4, 4, 0, 0]])
        assert d.pixels().tolist() == [[4 - i, 4 - i] for i in range(5)]

    def test_endpoint_shape_checked(self):
        with pytest.raises(ValueError, match=r"\(L, 4\)"):
            draw_lines(Machine("scan"), [[1, 2, 3]])

    def test_render_bounds_checked(self):
        m = Machine("scan", allow_concurrent_write=True)
        d = draw_lines(m, [[0, 0, 10, 0]])
        with pytest.raises(ValueError, match="outside"):
            render(d, 5, 5)


class TestComplexity:
    def test_constant_steps(self):
        """O(1) steps regardless of the number of lines or pixels."""
        def steps(n_lines, length):
            m = Machine("scan")
            lines = [[0, i, length, i] for i in range(n_lines)]
            with m.measure() as r:
                draw_lines(m, lines)
            return r.delta.steps

        assert steps(2, 10) == steps(50, 200)

    def test_erew_pays_log_factor(self):
        lines = [[0, i, 100, i] for i in range(20)]
        ms = Machine("scan")
        draw_lines(ms, lines)
        me = Machine("erew")
        draw_lines(me, lines)
        assert me.steps > 2 * ms.steps
