"""The binary-forking cost model: spans, the fork ledger, and the two
BFGS algorithms (random permutation, list contraction).

The ledger claim is exact, not statistical: every primitive launched over
``p`` leaves spawns ``p - 1`` threads and joins all of them, so after any
quiescent point ``spawned == synced`` to the unit.  The algorithm claims
are sequential-equivalence claims: the parallel rounds must reproduce the
serial loop bit for bit, on *every* model.
"""
import numpy as np
import pytest

from repro import Machine
from repro._util import ceil_log2
from repro.algorithms import (
    list_contraction,
    random_permutation,
    serial_list_ranks,
    serial_random_permutation,
)
from repro.core import scans
from repro.machine import CAPABILITIES, MODEL_NAMES
from repro.machine.comparison import (
    COMPARISONS,
    render_models_table,
    run_comparison,
)


def _chain(rng, n):
    order = rng.permutation(n)
    nxt = np.full(n, -1, dtype=np.int64)
    nxt[order[:-1]] = order[1:]
    return nxt


class TestCosts:
    def test_elementwise_pays_fork_span(self):
        m = Machine("binary-forking")
        _ = m.vector(range(64)) + 1
        assert m.steps == 1 + 2 * ceil_log2(64)
        assert m.fork_counters.spawned == 63
        assert m.fork_counters.synced == 63

    def test_scan_cost_equals_erew(self):
        """The tree sweep rides the fork/join walk: same count as EREW,
        only the ledger differs."""
        for n in (1, 2, 17, 256):
            e, b = Machine("erew"), Machine("binary-forking")
            scans.plus_scan(e.vector(range(n)))
            scans.plus_scan(b.vector(range(n)))
            assert e.steps == b.steps, n
            assert b.fork_counters.reconciles()

    def test_broadcast_concurrent_read_does_not_skip_the_fork(self):
        m = Machine("binary-forking")
        m.charge_broadcast(256)
        assert m.counter.by_kind["broadcast"] == 2 * ceil_log2(256)

    def test_ledger_reconciles_per_primitive(self):
        m = Machine("binary-forking")
        m.charge_permute(100)
        m.charge_reduce(100)
        m.charge_scan(100)
        fc = m.fork_counters
        assert fc.spawned == fc.synced == 3 * 99
        assert fc.live == 0 and fc.reconciles()

    def test_reset_clears_ledger(self):
        m = Machine("binary-forking")
        m.charge_elementwise(10)
        m.reset()
        assert m.fork_counters.spawned == m.fork_counters.synced == 0

    def test_limited_processors_bound_the_tree(self):
        m = Machine("binary-forking", num_processors=4)
        m.charge_elementwise(64)
        # ceil(64/4) block + the 4-leaf fork tree's span
        assert m.steps == 16 + 2 * ceil_log2(4)
        assert m.fork_counters.spawned == 3

    def test_synchronous_models_never_touch_the_ledger(self):
        for model in MODEL_NAMES:
            if CAPABILITIES[model].forked:
                continue
            m = Machine(model)
            m.charge_elementwise(50)
            m.charge_scan(50)
            assert m.fork_counters.spawned == 0, model

    def test_test_and_set_native_vs_simulated(self):
        native = Machine("binary-forking")
        native.charge_test_and_set(64)
        assert native.counter.by_kind["test_and_set"] == 1 + 2 * ceil_log2(64)
        crcw = Machine("crcw")
        crcw.charge_test_and_set(64)
        assert crcw.counter.by_kind["test_and_set"] == 1
        erew = Machine("erew")
        erew.charge_test_and_set(64)
        assert erew.counter.by_kind["test_and_set"] == 1 + 2 * ceil_log2(64)

    def test_test_and_set_records_revokes(self):
        m = Machine("binary-forking")
        m.charge_test_and_set(8, revoked=3)
        assert m.fork_counters.revoked == 3
        assert m.fork_counters.reconciles()
        with pytest.raises(ValueError, match="negative revoke"):
            m.charge_test_and_set(8, revoked=-1)


class TestRandomPermutation:
    @pytest.mark.parametrize("model", MODEL_NAMES)
    def test_equals_serial_durstenfeld(self, model):
        m = Machine(model, seed=11)
        result = random_permutation(m, 300)
        assert np.array_equal(result.order,
                              serial_random_permutation(result.darts))
        assert m.fork_counters.reconciles()

    def test_is_a_permutation_and_attempts_reconcile(self):
        m = Machine("binary-forking", seed=5)
        r = random_permutation(m, 200)
        assert sorted(r.order.tolist()) == list(range(200))
        # every attempt either committed (n of them) or was revoked
        assert r.attempts == 200 + m.fork_counters.revoked

    def test_adversarial_darts_all_to_last_cell(self):
        """Every dart targets cell n-1: one winner per round, n rounds,
        maximum contention — and still sequentially equivalent."""
        n = 40
        darts = np.full(n, n - 1, dtype=np.int64)
        m = Machine("binary-forking")
        r = random_permutation(m, n, darts=darts)
        assert np.array_equal(r.order, serial_random_permutation(darts))
        assert r.rounds == n
        assert m.fork_counters.revoked == n * (n - 1) // 2

    def test_identity_darts_finish_in_one_round(self):
        n = 32
        darts = np.arange(n, dtype=np.int64)
        m = Machine("scan")
        r = random_permutation(m, n, darts=darts)
        assert r.rounds == 1
        assert np.array_equal(r.order, np.arange(n))

    def test_empty_and_singleton(self):
        assert random_permutation(Machine("binary-forking"), 0).order.size == 0
        r = random_permutation(Machine("binary-forking"), 1)
        assert r.order.tolist() == [0]

    def test_bad_darts_rejected(self):
        m = Machine("scan")
        with pytest.raises(ValueError, match=r"\[i, n\)"):
            random_permutation(m, 4, darts=np.array([0, 0, 2, 3]))
        with pytest.raises(ValueError, match="expected 4 darts"):
            random_permutation(m, 4, darts=np.array([0, 1]))


class TestListContraction:
    @pytest.mark.parametrize("model", MODEL_NAMES)
    def test_matches_serial_walk(self, model):
        rng = np.random.default_rng(3)
        nxt = _chain(rng, 257)
        m = Machine(model, seed=9)
        result = list_contraction(m, nxt)
        assert np.array_equal(result.ranks, serial_list_ranks(nxt))
        assert m.fork_counters.reconciles()

    def test_replayed_priorities_are_deterministic(self):
        nxt = _chain(np.random.default_rng(0), 100)
        pri = np.random.default_rng(1).permutation(100)
        a = list_contraction(Machine("scan"), nxt, priorities=pri)
        b = list_contraction(Machine("erew"), nxt, priorities=pri)
        assert np.array_equal(a.ranks, b.ranks)
        assert a.rounds == b.rounds

    def test_small_lists(self):
        m = Machine("binary-forking")
        assert list_contraction(m, np.empty(0, np.int64)).ranks.size == 0
        assert list_contraction(m, np.array([-1])).ranks.tolist() == [0]
        two = list_contraction(m, np.array([-1, 0]))
        assert two.ranks.tolist() == [1, 0]
        assert m.fork_counters.reconciles()

    def test_rejects_cycles_and_forests(self):
        m = Machine("scan")
        with pytest.raises(ValueError, match="cover every node"):
            list_contraction(m, np.array([1, 2, 0, -1]))  # cycle + tail
        with pytest.raises(ValueError, match="one tail"):
            list_contraction(m, np.array([-1, -1]))
        with pytest.raises(ValueError, match="at most one predecessor"):
            list_contraction(m, np.array([2, 2, -1]))

    def test_bad_priorities_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            list_contraction(Machine("scan"), np.array([1, -1]),
                             priorities=np.array([0, 0]))


class TestComparisonTable:
    def test_every_row_runs_on_every_model(self):
        for name in COMPARISONS:
            cells = run_comparison(name, n=64, seed=1)
            assert [c.model for c in cells] == list(MODEL_NAMES)
            for c in cells:
                assert c.steps > 0
                assert c.spawned == c.synced  # ledger-exact, per cell

    def test_forked_column_is_never_cheaper_than_scan(self):
        """The fork span is a surcharge: with p = n the binary-forking
        column dominates the scan column on every workload."""
        for name in COMPARISONS:
            cells = {c.model: c for c in run_comparison(name, n=32, seed=0)}
            assert cells["binary-forking"].steps >= cells["scan"].steps, name

    def test_render_includes_ledger_line(self):
        table = render_models_table(names=["plus_scan"], n=16)
        assert "binary-forking" in table
        assert "reconciled" in table
        assert "revoked" in table

    def test_render_rejects_unknown_names(self):
        with pytest.raises(KeyError, match="unknown comparison"):
            render_models_table(names=["mergesort"])


class TestWorkloadsOnForkedModel:
    """Tier-1 workloads run under model='binary-forking' with the ledger
    reconciling exactly — the acceptance criterion of the model port."""

    @pytest.mark.parametrize("algorithm", ["radix_sort", "list_ranking",
                                           "compression", "csv_split",
                                           "spmv"])
    def test_workload_reconciles(self, algorithm):
        from repro.observe.profiles import WORKLOADS

        workload = WORKLOADS[algorithm]
        m = Machine("binary-forking", seed=0, **workload.machine_kwargs)
        workload.run(m, workload.default_n, np.random.default_rng(0))
        fc = m.fork_counters
        assert fc.spawned > 0 and fc.reconciles(), fc.summary()
