"""Unit tests for the lazy expression DAG and fused scan pipelines.

The differential property suite (eager vs lazy on every backend) lives in
``test_fusion_properties.py``; this file pins the mechanics: when chains
defer, what forces them, how charges stay logical, how plans compile, and
how the toggles surface.
"""
import numpy as np
import pytest

from repro import Machine
from repro.backends.blocked import BlockedBackend
from repro.backends.plan import FusedPlan, PlanStep
from repro.core import scans, segmented
from repro.core.lazy import LazyNode, compile_plan, probe_dtype
from repro.faults import FaultInjector, FaultPlan
from repro.machine.model import FUSION_ENV_VAR


def fused(backend="numpy"):
    return Machine("scan", backend=backend, fusion=True)


def eager():
    return Machine("scan", fusion=False)


class TestLaziness:
    def test_elementwise_defers_until_observed(self):
        m = fused()
        w = m.vector([1, 2, 3]) + 1
        assert w._expr is not None          # pending
        assert m.steps == 1                 # but already charged
        assert w.to_list() == [2, 3, 4]
        assert w._expr is None              # materialized
        assert m.steps == 1                 # observation charged nothing

    def test_len_and_dtype_do_not_force(self):
        m = fused()
        w = (m.vector([1.5, 2.5]) + 1) < 4
        assert len(w) == 2
        assert w.dtype == np.bool_
        assert w._expr is not None

    def test_forcing_is_idempotent(self):
        m = fused()
        w = m.vector([1, 2]) * 3
        first = w.data
        assert w.data is first

    def test_chain_executes_as_one_backend_op(self):
        m = fused()
        events = []
        m.backend.observers.append(events.append)
        v = m.vector([1, 2, 3, 4])
        ((v * 2 + 1) - v).data
        assert [e.op for e in events] == ["fused_pipeline"]

    def test_long_chain_does_not_recurse(self):
        m = fused()
        v = m.vector([1, 2, 3])
        for _ in range(5000):
            v = v + 1
        assert v.to_list() == [5001, 5002, 5003]

    def test_diamond_dag_evaluates_shared_node_once(self):
        m = fused()
        a = m.vector([1, 2, 3]) + 1
        d = (a * 2) + (a * 3)
        plan = compile_plan(d._pending_node())
        # a+1 appears once, not once per consumer
        assert len(plan.steps) == 4
        assert d.to_list() == [10, 15, 20]

    def test_caller_array_snapshotted_at_build(self):
        m = fused()
        rhs = np.array([10, 20, 30])
        w = m.vector([1, 2, 3]) + rhs
        rhs[:] = 0  # mutated after build: must not change the deferred value
        assert w.to_list() == [11, 22, 33]

    def test_repr_shows_values(self):
        m = fused()
        assert "2" in repr(m.vector([1]) + 1)


class TestCharges:
    def _chain(self, m):
        v = m.vector([3, 1, 4, 1, 5, 9, 2, 6])
        s = scans.plus_scan((v * v + 1) - (v // 2))
        t = scans.max_scan(v.astype(np.int64))
        (s + t).data
        return m.snapshot()

    def test_charges_bit_identical_eager_vs_lazy(self):
        lazy_snap = self._chain(fused())
        eager_snap = self._chain(eager())
        assert lazy_snap.steps == eager_snap.steps
        assert lazy_snap.ops == eager_snap.ops
        assert lazy_snap.by_kind == eager_snap.by_kind

    def test_never_forced_chain_is_still_charged(self):
        m, me = fused(), eager()
        for mm in (m, me):
            v = mm.vector([1, 2, 3])
            (v + 1) * 2  # built, never observed
        assert m.steps == me.steps == 2

    def test_blocked_charges_match_numpy_charges(self):
        a = self._chain(fused())
        b = self._chain(Machine("scan", backend="blocked:3", fusion=True))
        assert a.by_kind == b.by_kind


class TestToggles:
    def test_env_off(self, monkeypatch):
        monkeypatch.setenv(FUSION_ENV_VAR, "0")
        m = Machine("scan")
        assert m.fusion is False
        assert (m.vector([1]) + 1)._expr is None

    def test_env_on(self, monkeypatch):
        monkeypatch.setenv(FUSION_ENV_VAR, "1")
        assert Machine("scan").fusion is True

    def test_default_is_on(self, monkeypatch):
        monkeypatch.delenv(FUSION_ENV_VAR, raising=False)
        assert Machine("scan").fusion is True

    def test_kwarg_beats_env(self, monkeypatch):
        monkeypatch.setenv(FUSION_ENV_VAR, "0")
        assert Machine("scan", fusion=True).fusion is True

    def test_bad_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv(FUSION_ENV_VAR, "maybe")
        with pytest.raises(ValueError, match=FUSION_ENV_VAR):
            Machine("scan")

    def test_repr_and_snapshot_surface_fusion(self):
        m = fused()
        assert "fusion=on" in repr(m)
        assert m.snapshot().fusion is True
        me = eager()
        assert "fusion=off" in repr(me)
        assert me.snapshot().fusion is False

    def test_snapshot_delta_keeps_fusion(self):
        m = fused()
        with m.measure() as r:
            (m.vector([1, 2]) + 1).data
        assert r.delta.fusion is True


class TestForcingBoundaries:
    def test_permute_and_gather_force(self):
        m = fused()
        w = m.vector([10, 20, 30]) + 1
        idx = m.vector([2, 0, 1])
        assert w.permute(idx).to_list() == [21, 31, 11]
        assert w.gather(idx).to_list() == [31, 11, 21]

    def test_single_cell_access_forces(self):
        m = fused()
        w = m.vector([5, 6]) * 10
        assert w.first() == 50 and w.last() == 60

    def test_segmented_ops_force(self):
        m = fused()
        w = m.vector([1, 2, 3, 4]) + 1
        sf = m.flags([True, False, True, False])
        assert segmented.seg_plus_scan(w, sf).to_list() == [0, 2, 0, 4]

    def test_reduce_forces(self):
        m = fused()
        assert scans.plus_reduce(m.vector([1, 2, 3]) * 2) == 12

    def test_lazy_operand_feeds_lazy_consumer(self):
        m = fused()
        v = m.vector([1, 2, 3])
        f = (v + 1) > 2
        w = f.where(v * 10, -1)
        assert w.to_list() == [-1, 20, 30]


class TestTerminalFusion:
    def test_scan_of_pending_chain_is_one_backend_op(self):
        m = fused()
        events = []
        m.backend.observers.append(events.append)
        v = m.vector([1, 2, 3, 4])
        out = scans.plus_scan(v * 2)
        assert out.to_list() == [0, 2, 6, 12]
        assert [e.op for e in events] == ["fused_pipeline"]

    def test_bool_chain_widens_like_eager(self):
        m, me = fused(), eager()
        for mm in (m, me):
            v = mm.vector([1, 0, 2, 0, 3])
            out = scans.plus_scan(v != 0)
            assert out.to_list() == [0, 1, 1, 2, 2]
            assert out.dtype == np.int64
        assert m.steps == me.steps

    def test_max_scan_identity_respected(self):
        m = fused()
        v = m.vector([3, 1, 4])
        assert scans.max_scan(v * 1, identity=0).to_list() == [0, 3, 3]

    def test_blocked_terminal_carries_match_whole_vector(self):
        n = 1000
        data = np.full(n, np.iinfo(np.int64).max // 5)
        m = Machine("scan", backend=BlockedBackend(chunk=17), fusion=True)
        out = scans.plus_scan(m.vector(data) * 2 + 1)
        w = data * 2 + 1
        expected = np.concatenate(([0], np.cumsum(w)[:-1]))
        assert np.array_equal(out.data, expected)

    def test_blocked_fused_temp_bytes_chunk_bounded(self):
        chunk = 64
        m = Machine("scan", backend=BlockedBackend(chunk=chunk), fusion=True)
        events = []
        m.backend.observers.append(events.append)
        v = m.vector(np.arange(100_000))
        scans.plus_scan((v * 2 + 1) - (v // 3)).data
        (event,) = [e for e in events if e.op == "fused_pipeline"]
        assert event.temp_bytes <= 4 * chunk * 8  # 4 steps, 8-byte elements
        assert event.out_bytes == 100_000 * 8


class TestFaultsAndReliability:
    def test_fault_injector_suspends_fusion(self):
        m = Machine("scan", fusion=True,
                    fault_injector=FaultInjector(FaultPlan()))
        assert m.fusion is True and m.fusion_enabled is False
        assert (m.vector([1]) + 1)._expr is None  # eager despite fusion=on

    def test_checked_scans_coexist_with_fusion(self):
        m = Machine("scan", reliability=True, fusion=True)
        v = m.vector([1, 2, 3, 4])
        assert scans.plus_scan(v + 1).to_list() == [0, 2, 5, 9]


class TestPlanStructures:
    def test_unknown_step_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown plan step kind"):
            PlanStep(kind="sort", fn=None, dtype=np.dtype(int), args=())

    def test_empty_plan_rejected(self):
        with pytest.raises(ValueError, match="at least one step"):
            FusedPlan(inputs=(), steps=(), n=0)

    def test_unknown_terminal_rejected(self):
        step = PlanStep(kind="cast", fn=None, dtype=np.dtype(int),
                        args=(("in", 0),))
        with pytest.raises(ValueError, match="unknown terminal"):
            FusedPlan(inputs=(np.arange(3),), steps=(step,), n=3,
                      terminal="sort_scan")

    def test_probe_matches_numpy_promotion(self):
        a = np.arange(3, dtype=np.int8)
        node = LazyNode("ufunc", np.add, (a, 1), 3,
                        probe_dtype("ufunc", np.add, (a, 1)))
        assert node.dtype == np.add(a, 1).dtype

    def test_describe_names_the_chain(self):
        m = fused()
        v = m.vector([1, 2])
        plan = compile_plan((v + 1)._pending_node(), terminal="plus_scan")
        assert "add" in plan.describe() and "plus_scan" in plan.describe()
