"""The halving merge (Section 2.5.1, Figure 12)."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Machine
from repro.algorithms.halving_merge import halving_merge, near_merge_fix
from repro.baselines import serial_merge

sorted_lists = st.lists(st.integers(0, 10**5), max_size=200).map(sorted)


def _m():
    return Machine("scan")


class TestNearMergeFix:
    def test_paper_figure12_vector(self):
        m = _m()
        near = m.vector([1, 7, 3, 4, 9, 22, 10, 13, 15, 20, 23, 26])
        out = near_merge_fix(near)
        assert out.to_list() == [1, 3, 4, 7, 9, 10, 13, 15, 20, 22, 23, 26]

    def test_single_rotation(self):
        m = _m()
        assert near_merge_fix(m.vector([2, 30, 7, 47])).to_list() == [2, 7, 30, 47]

    def test_sorted_input_unchanged(self):
        m = _m()
        assert near_merge_fix(m.vector([1, 2, 3, 4])).to_list() == [1, 2, 3, 4]


class TestCorrectness:
    def test_paper_figure12(self):
        m = _m()
        a = m.vector([1, 7, 10, 13, 15, 20])
        b = m.vector([3, 4, 9, 22, 23, 26])
        merged, flags = halving_merge(a, b)
        assert merged.to_list() == [1, 3, 4, 7, 9, 10, 13, 15, 20, 22, 23, 26]
        assert flags.to_list() == [False, True, True, False, True, False,
                                   False, False, False, True, True, True]

    @given(sorted_lists, sorted_lists)
    @settings(max_examples=80, deadline=None)
    def test_matches_serial_merge(self, a, b):
        m = _m()
        merged, flags = halving_merge(m.vector(a), m.vector(b))
        assert merged.to_list() == serial_merge(a, b).tolist()
        # the merge-flag vector recovers the origins exactly
        fa = flags.data
        assert merged.data[~fa].tolist() == list(a)
        assert merged.data[fa].tolist() == list(b)

    def test_empty_sides(self):
        m = _m()
        merged, flags = halving_merge(m.vector([]), m.vector([1, 2]))
        assert merged.to_list() == [1, 2]
        merged, flags = halving_merge(m.vector([1, 2]), m.vector([]))
        assert merged.to_list() == [1, 2]
        assert flags.to_list() == [False, False]

    def test_singletons(self):
        m = _m()
        merged, _ = halving_merge(m.vector([5]), m.vector([3]))
        assert merged.to_list() == [3, 5]

    def test_stability_on_ties(self):
        """a's elements precede equal b elements."""
        m = _m()
        merged, flags = halving_merge(m.vector([5, 5]), m.vector([5]))
        assert merged.to_list() == [5, 5, 5]
        assert flags.to_list() == [False, False, True]

    def test_interleaved(self):
        m = _m()
        a = list(range(0, 100, 2))
        b = list(range(1, 100, 2))
        merged, _ = halving_merge(m.vector(a), m.vector(b))
        assert merged.to_list() == list(range(100))


class TestValidation:
    def test_unsorted_rejected(self):
        m = _m()
        with pytest.raises(ValueError, match="sorted"):
            halving_merge(m.vector([2, 1]), m.vector([3]))

    def test_negative_rejected(self):
        m = _m()
        with pytest.raises(ValueError, match="non-negative"):
            halving_merge(m.vector([-1, 2]), m.vector([3]))

    def test_float_rejected(self):
        m = _m()
        with pytest.raises(TypeError):
            halving_merge(m.vector([1.0], dtype=float), m.vector([2.0], dtype=float))


class TestComplexity:
    def test_step_complexity_n_over_p_plus_log(self, rng):
        """Table 5: with p = n / lg n processors the work is O(n), an lg n
        factor below the p = n version's O(n lg n)."""
        n = 1024
        a = np.sort(rng.integers(0, 10**6, n))
        b = np.sort(rng.integers(0, 10**6, n))

        m_full = Machine("scan")  # p = n
        halving_merge(m_full.vector(a), m_full.vector(b))
        work_full = 2 * n * m_full.steps

        p = max(2 * n // 10, 1)  # p = n / lg n
        m_few = Machine("scan", num_processors=p)
        halving_merge(m_few.vector(a), m_few.vector(b))
        work_few = p * m_few.steps

        assert work_few < work_full / 2

    def test_log_steps_with_full_processors(self, rng):
        """Steps grow ~ lg n with p = n (each halving level is O(1))."""
        steps = []
        for n in (256, 1024, 4096):
            m = Machine("scan")
            a = np.sort(rng.integers(0, 10**6, n))
            b = np.sort(rng.integers(0, 10**6, n))
            halving_merge(m.vector(a), m.vector(b))
            steps.append(m.steps)
        # doubling n twice adds a constant number of levels' worth of steps
        assert steps[2] - steps[1] <= 2 * (steps[1] - steps[0]) + 8
        assert steps[2] < 1.8 * steps[0]
