"""The differential conformance fuzzer itself (repro.verify)."""
import dataclasses
import json

import numpy as np
import pytest

from repro.cli import main
from repro.observe.metrics import registry
from repro.verify import (DEFAULT_ENGINES, OPS, Case, ConformanceReport,
                          generate_cases, load_corpus, results_equal,
                          run_case, run_cases, shrink)


# --------------------------------------------------------------------- #
# Corpus generation and serialization
# --------------------------------------------------------------------- #

class TestGeneration:
    def test_same_seed_same_cases(self):
        # compare serialized: NaN payloads defeat dataclass == by design
        first = [c.to_json() for c in generate_cases(7, 60)]
        again = [c.to_json() for c in generate_cases(7, 60)]
        assert first == again

    def test_different_seeds_differ(self):
        a = [c.to_json() for c in generate_cases(1, 60)]
        b = [c.to_json() for c in generate_cases(2, 60)]
        assert a != b

    def test_round_robin_covers_every_op(self):
        combos = sum(len(spec.dtypes) for spec in OPS.values())
        cases = generate_cases(0, combos)
        assert {c.op for c in cases} == set(OPS)

    def test_op_restriction(self):
        cases = generate_cases(0, 10, ops=["plus_scan"])
        assert {c.op for c in cases} == {"plus_scan"}

    def test_dtype_restriction(self):
        cases = generate_cases(0, 10, ops=["min_scan"], dtypes=["uint8"])
        assert {c.dtype for c in cases} == {"uint8"}

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown operation"):
            generate_cases(0, 5, ops=["frobnicate_scan"])

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError, match="empty grid"):
            generate_cases(0, 5, ops=["segment_ids"], dtypes=["int64"])

    def test_segmented_cases_carry_layouts(self):
        cases = generate_cases(0, 400, ops=["seg_plus_scan"])
        assert all(c.seg_lengths is not None for c in cases)
        assert all(sum(c.seg_lengths) == len(c.values) for c in cases)

    def test_adversarial_shapes_present(self):
        cases = generate_cases(0, 400, ops=["plus_scan"], dtypes=["int64"])
        lengths = {len(c.values) for c in cases}
        assert 0 in lengths and 1 in lengths


class TestCaseSerialization:
    def test_round_trip_plain(self):
        c = Case(op="seg_split3", dtype="int8", values=(-128, 127, 0),
                 seg_lengths=(2, 1), flags=(True, False, False),
                 flags2=(False, True, False), note="x")
        assert Case.from_json_dict(json.loads(c.to_json())) == c

    def test_round_trip_float_specials(self):
        c = Case(op="max_scan", dtype="float64",
                 values=("nan", "inf", "-inf", "-0.0", 1.5))
        again = Case.from_json_dict(json.loads(c.to_json()))
        mat = again.materialize()
        assert np.isnan(mat.values[0])
        assert mat.values[1] == np.inf and mat.values[2] == -np.inf
        assert np.signbit(mat.values[3])

    def test_materialize_builds_flags_from_lengths(self):
        mat = Case(op="seg_plus_scan", dtype="int64", values=(1, 2, 3),
                   seg_lengths=(2, 1)).materialize()
        assert mat.seg_flags.tolist() == [True, False, True]

    def test_materialize_rejects_bad_lengths(self):
        bad = Case(op="seg_plus_scan", dtype="int64", values=(1, 2, 3),
                   seg_lengths=(2, 2))
        with pytest.raises(ValueError, match="seg_lengths"):
            bad.materialize()


# --------------------------------------------------------------------- #
# The comparison contract
# --------------------------------------------------------------------- #

class TestResultsEqual:
    def test_integers_bit_exact(self):
        spec = OPS["plus_scan"]
        assert results_equal(spec, np.array([1, 2]), np.array([1, 2]))
        assert not results_equal(spec, np.array([1, 2]), np.array([1, 3]))

    def test_bool_vector_must_stay_bool(self):
        spec = OPS["or_scan"]
        assert not results_equal(spec, np.array([False, True]),
                                 np.array([0, 1]))

    def test_float_nan_aware(self):
        spec = OPS["max_scan"]  # non-additive: bit equality, NaN == NaN
        a = np.array([np.nan, 1.0])
        assert results_equal(spec, a, a.copy())
        assert not results_equal(spec, a, np.array([np.nan, 1.0 + 1e-15]))

    def test_additive_float_tolerant(self):
        spec = OPS["plus_scan"]
        a = np.array([0.1, 0.30000000000000004])
        b = np.array([0.1, 0.3])
        assert results_equal(spec, a, b)
        assert not results_equal(spec, a, np.array([0.1, 0.4]))

    def test_shape_mismatch_fails(self):
        spec = OPS["plus_scan"]
        assert not results_equal(spec, np.array([1]), np.array([1, 2]))


# --------------------------------------------------------------------- #
# The differential runner
# --------------------------------------------------------------------- #

class TestRunner:
    def test_clean_case_has_no_divergences(self):
        out = run_case(Case(op="min_scan", dtype="int64",
                            values=(-(2**63), 5, -1)))
        assert out.ok

    def test_step_charges_identical_across_engines(self):
        # implied by run_case, but assert the mechanism directly
        from repro import Machine
        from repro.core import scans

        charges = []
        for engine in DEFAULT_ENGINES:
            m = Machine("scan", backend=engine)
            scans.min_scan(m.vector([3, 1, 2]))
            charges.append(dict(m.counter.by_kind))
        assert all(c == charges[0] for c in charges)

    def test_documented_nan_departure_held_cross_engine(self):
        # seg_min_scan's rank construction orders NaN as largest; the
        # serial oracle propagates it.  With NaN actually present the
        # oracle abstains (nan_ok=False) and every engine is held to
        # the first engine's answer instead — the documented departure
        # is not a conformance bug, while a chunk-boundary carry bug in
        # any one engine still diverges (the corpus' NaN
        # counterexamples rely on exactly this).
        out = run_case(Case(op="seg_min_scan", dtype="float64",
                            values=(1.0, "nan", 0.5), seg_lengths=(3,)))
        assert out.ok
        assert not OPS["seg_min_scan"].nan_ok

    def test_oracle_still_binds_without_nan(self):
        # the abstention is NaN-presence-gated, not op-gated: the same
        # op with finite floats is checked against the serial oracle
        out = run_case(Case(op="seg_min_scan", dtype="float64",
                            values=(1.0, "inf", 0.5), seg_lengths=(3,)))
        assert out.ok

    def test_unknown_op_raises(self):
        with pytest.raises(ValueError, match="unknown op"):
            run_case(Case(op="nope", dtype="int64", values=(1,)))

    def test_every_op_smoke_small(self):
        cases = generate_cases(11, sum(len(s.dtypes) for s in OPS.values()))
        outs = run_cases(cases)
        bad = [d for o in outs for d in o.divergences]
        assert bad == [], "\n".join(d.describe() for d in bad[:5])


# --------------------------------------------------------------------- #
# Shrinking
# --------------------------------------------------------------------- #

class TestShrink:
    def test_shrinks_to_minimal_witness(self):
        big = Case(op="plus_scan", dtype="int64",
                   values=tuple(range(40)) + (13,) + tuple(range(40)))
        small = shrink(big, still_fails=lambda c: 13 in c.values)
        assert small.values == (13,)

    def test_collapses_segment_layout(self):
        big = Case(op="seg_plus_scan", dtype="int64",
                   values=(5, 5, 5, 5), seg_lengths=(1, 1, 1, 1))
        small = shrink(big, still_fails=lambda c: len(c.values) >= 2)
        assert small.seg_lengths == (len(small.values),)
        assert sum(small.seg_lengths) == len(small.values)

    def test_simplifies_values_and_flags(self):
        big = Case(op="seg_split", dtype="int64", values=(7, 9),
                   seg_lengths=(2,), flags=(True, True))
        small = shrink(big, still_fails=lambda c: len(c.values) == 2)
        assert small.values == (0, 0)
        assert small.flags == (False, False)

    def test_shrunk_case_still_fails(self):
        pred = lambda c: sum(1 for v in c.values if v) >= 2
        big = Case(op="plus_scan", dtype="int64", values=tuple(range(30)))
        small = shrink(big, still_fails=pred)
        assert pred(small) and len(small.values) == 2

    def test_respects_eval_budget(self):
        calls = []

        def pred(c):
            calls.append(1)
            return True

        shrink(Case(op="plus_scan", dtype="int64",
                    values=tuple(range(100))), still_fails=pred,
               max_evals=25)
        assert len(calls) <= 25


# --------------------------------------------------------------------- #
# Reporting and metrics
# --------------------------------------------------------------------- #

class TestReport:
    def test_matrix_counts_and_render(self):
        rep = ConformanceReport(engines=DEFAULT_ENGINES)
        rep.record_all(run_cases(generate_cases(0, 12, ops=["plus_scan"])))
        assert rep.total_cases == 12
        assert rep.ok
        table = rep.render_table()
        assert "plus_scan" in table and "all engines agree" in table

    def test_divergence_counted_and_rendered(self, monkeypatch):
        # force a divergence by breaking the oracle: every engine then
        # disagrees with it, exercising the failure-reporting path
        spec = OPS["plus_scan"]
        monkeypatch.setitem(OPS, "plus_scan", dataclasses.replace(
            spec, oracle=lambda mat: spec.oracle(mat) + 1))
        rep = ConformanceReport(engines=DEFAULT_ENGINES)
        rep.record(run_case(Case(op="plus_scan", dtype="int64",
                                 values=(1, 2, 3))))
        assert not rep.ok and rep.total_failures == 1
        assert "divergent" in rep.render_table()
        d = rep.to_json_dict()
        assert d["ok"] is False and d["divergences"]

    def test_metrics_counters_flow(self):
        before = registry.counter("verify.cases").value
        rep = ConformanceReport(engines=DEFAULT_ENGINES)
        rep.record_all(run_cases(generate_cases(0, 3, ops=["or_scan"])))
        assert registry.counter("verify.cases").value == before + 3


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #

class TestVerifyCLI:
    def test_clean_run_exits_zero(self, capsys):
        rc = main(["verify", "--cases", "12", "--seed", "3", "--no-corpus"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "all engines agree" in out

    def test_restricted_run(self, capsys):
        rc = main(["verify", "--cases", "6", "--no-corpus",
                   "--ops", "min_scan,or_scan", "--dtypes", "int8,uint8"])
        assert rc == 0
        assert "min_scan" in capsys.readouterr().out

    def test_json_export(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        rc = main(["verify", "--cases", "6", "--no-corpus",
                   "--export", "json", "-o", str(out)])
        assert rc == 0
        assert json.loads(out.read_text())["ok"] is True

    def test_divergence_exits_nonzero_and_writes_artifact(self, tmp_path,
                                                          capsys,
                                                          monkeypatch):
        spec = OPS["plus_scan"]
        monkeypatch.setitem(OPS, "plus_scan", dataclasses.replace(
            spec, oracle=lambda mat: spec.oracle(mat) + 1))
        corpus = tmp_path / "corpus"
        corpus.mkdir()
        (corpus / "forced-divergence.json").write_text(json.dumps({
            "op": "plus_scan", "dtype": "int64", "values": [1, 2, 3]}))
        artifact = tmp_path / "counterexamples.json"
        rc = main(["verify", "--cases", "0",
                   "--corpus-dir", str(corpus),
                   "--artifact", str(artifact)])
        assert rc == 1
        payload = json.loads(artifact.read_text())
        assert payload["counterexamples"]
        assert payload["report"]["ok"] is False
        assert "shrinking" in capsys.readouterr().out

    def test_replays_committed_corpus(self, capsys):
        rc = main(["verify", "--cases", "0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "replaying" in out
        assert len(load_corpus()) >= 15
