"""The scan primitives and their derivatives, against NumPy oracles and the
paper's worked examples."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Machine
from repro.core import scans

int_lists = st.lists(st.integers(-10**6, 10**6), max_size=200)
nonneg_lists = st.lists(st.integers(0, 10**6), max_size=200)


def _m():
    return Machine("scan")


class TestPaperExamples:
    def test_plus_scan_figure(self):
        v = _m().vector([2, 1, 2, 3, 5, 8, 13, 21])
        assert scans.plus_scan(v).to_list() == [0, 2, 3, 5, 8, 13, 21, 34]

    def test_plus_distribute_figure1(self):
        v = _m().vector([1, 1, 2, 1, 1, 2, 1, 1])
        assert scans.plus_distribute(v).to_list() == [10] * 8


class TestPlusScan:
    @given(int_lists)
    @settings(max_examples=60, deadline=None)
    def test_matches_prefix_sums(self, xs):
        out = scans.plus_scan(_m().vector(xs)).to_list()
        expect = list(np.concatenate(([0], np.cumsum(xs)[:-1]))) if xs else []
        assert out == expect

    def test_empty(self):
        assert scans.plus_scan(_m().vector([])).to_list() == []

    def test_bool_input_promoted(self):
        out = scans.plus_scan(_m().flags([1, 0, 1, 1]))
        assert out.to_list() == [0, 1, 1, 2]
        assert out.dtype == np.int64


class TestMaxMinScans:
    @given(int_lists)
    @settings(max_examples=60, deadline=None)
    def test_max_scan(self, xs):
        out = scans.max_scan(_m().vector(xs)).to_list()
        run = np.iinfo(np.int64).min
        expect = []
        for x in xs:
            expect.append(run)
            run = max(run, x)
        assert out == expect

    @given(int_lists)
    @settings(max_examples=60, deadline=None)
    def test_min_scan(self, xs):
        out = scans.min_scan(_m().vector(xs)).to_list()
        run = np.iinfo(np.int64).max
        expect = []
        for x in xs:
            expect.append(run)
            run = min(run, x)
        assert out == expect

    def test_custom_identity(self):
        v = _m().vector([5, 1, 3])
        assert scans.max_scan(v, identity=0).to_list() == [0, 5, 5]

    def test_float_max_scan(self):
        v = _m().vector([1.5, -2.0, 3.0], dtype=float)
        out = scans.max_scan(v).to_list()
        assert out == [-np.inf, 1.5, 1.5]


class TestBooleanScans:
    @given(st.lists(st.booleans(), max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_or_scan(self, xs):
        out = scans.or_scan(_m().flags(xs)).to_list()
        run, expect = False, []
        for x in xs:
            expect.append(run)
            run = run or x
        assert out == expect

    @given(st.lists(st.booleans(), max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_and_scan(self, xs):
        out = scans.and_scan(_m().flags(xs)).to_list()
        run, expect = True, []
        for x in xs:
            expect.append(run)
            run = run and x
        assert out == expect


class TestBackwardScans:
    @given(int_lists)
    @settings(max_examples=40, deadline=None)
    def test_back_plus(self, xs):
        out = scans.back_plus_scan(_m().vector(xs)).to_list()
        expect = [sum(xs[i + 1:]) for i in range(len(xs))]
        assert out == expect

    def test_back_max(self):
        v = _m().vector([1, 9, 2, 5])
        out = scans.back_max_scan(v, identity=0).to_list()
        assert out == [9, 5, 5, 0]

    def test_back_min(self):
        v = _m().vector([4, 1, 9])
        assert scans.back_min_scan(v).to_list()[:2] == [1, 9]


class TestReductionsAndDistributes:
    @given(int_lists)
    @settings(max_examples=40, deadline=None)
    def test_plus_reduce(self, xs):
        assert scans.plus_reduce(_m().vector(xs)) == sum(xs)

    def test_min_max_reduce(self):
        v = _m().vector([3, 1, 4, 1, 5])
        assert scans.max_reduce(v) == 5
        assert scans.min_reduce(v) == 1

    def test_or_and_reduce(self):
        m = _m()
        assert scans.or_reduce(m.flags([0, 0, 1])) is True
        assert scans.or_reduce(m.flags([0, 0])) is False
        assert scans.and_reduce(m.flags([1, 1])) is True
        assert scans.and_reduce(m.flags([1, 0])) is False

    def test_empty_reductions(self):
        m = _m()
        assert scans.plus_reduce(m.vector([])) == 0
        assert scans.or_reduce(m.flags([])) is False
        assert scans.and_reduce(m.flags([])) is True

    def test_distributes(self):
        v = _m().vector([3, 1, 4])
        assert scans.plus_distribute(v).to_list() == [8, 8, 8]
        assert scans.max_distribute(v).to_list() == [4, 4, 4]
        assert scans.min_distribute(v).to_list() == [1, 1, 1]

    def test_distribute_costs_constant_on_scan_model(self):
        m = _m()
        scans.plus_distribute(m.vector(range(4096)))
        small = m.steps
        m2 = _m()
        scans.plus_distribute(m2.vector(range(8)))
        assert small == m2.steps  # O(1) regardless of n


class TestStepCounts:
    def test_primitive_scans_cost_one(self):
        m = _m()
        scans.plus_scan(m.vector(range(64)))
        assert m.counter.by_kind["scan"] == 1
        scans.max_scan(m.vector(range(64)))
        assert m.counter.by_kind["scan"] == 2

    def test_derived_scans_cost_constant_scans(self):
        for fn in (scans.min_scan, scans.or_scan, scans.and_scan):
            m = _m()
            fn(m.vector(np.arange(128)) > 3) if fn in (scans.or_scan, scans.and_scan) \
                else fn(m.vector(np.arange(128)))
            assert m.counter.by_kind["scan"] <= 2

    def test_backward_scan_adds_two_permutes(self):
        m = _m()
        scans.back_plus_scan(m.vector(range(32)))
        assert m.counter.by_kind["scan"] == 1
        assert m.counter.by_kind["permute"] == 2
