"""Machine models: cost accounting, capabilities, long-vector simulation."""
import re

import numpy as np
import pytest

from repro import CapabilityError, Machine
from repro._util import ceil_div, ceil_log2
from repro.core import scans
from repro.machine import CAPABILITIES, MODEL_NAMES, StepCounter


class TestConstruction:
    def test_models_available(self):
        assert set(MODEL_NAMES) == {"erew", "crew", "crcw", "scan",
                                    "binary-forking"}

    def test_every_documented_model_has_capabilities(self):
        """Every model name quoted in Machine's docstring `model:` section
        must have a CAPABILITIES row, and vice versa — the docstring is
        the user-facing contract, the table the enforcement."""
        doc = Machine.__doc__
        model_section = doc.split("model:", 1)[1].split("num_processors:")[0]
        documented = set(re.findall(r'"([a-z-]+)"', model_section))
        assert documented == set(CAPABILITIES), (
            f"Machine.__doc__ names {sorted(documented)} but CAPABILITIES "
            f"has {sorted(CAPABILITIES)}")

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown machine model"):
            Machine("pram")

    def test_bad_processor_count_rejected(self):
        with pytest.raises(ValueError):
            Machine("scan", num_processors=0)

    def test_capability_table(self):
        assert CAPABILITIES["scan"].unit_scan
        assert not CAPABILITIES["erew"].unit_scan
        assert CAPABILITIES["crcw"].combining_write
        assert CAPABILITIES["crew"].concurrent_read
        assert not CAPABILITIES["crew"].concurrent_write

    def test_repr_mentions_model(self):
        assert "scan" in repr(Machine("scan"))


class TestStepCharging:
    def test_scan_is_one_step_on_scan_model(self):
        m = Machine("scan")
        scans.plus_scan(m.vector(range(1024)))
        assert m.steps == 1

    def test_scan_is_tree_cost_on_erew(self):
        m = Machine("erew")
        scans.plus_scan(m.vector(range(1024)))
        assert m.steps == 2 * ceil_log2(1024)

    def test_scan_cost_on_crcw_matches_erew(self):
        a, b = Machine("erew"), Machine("crcw")
        scans.plus_scan(a.vector(range(100)))
        scans.plus_scan(b.vector(range(100)))
        assert a.steps == b.steps

    def test_elementwise_is_one_step_everywhere(self):
        """One step on every synchronous P-RAM; the binary-forking model
        additionally pays the 2*ceil(lg p) span of the fork/join tree that
        launches even an elementwise map."""
        for model in MODEL_NAMES:
            m = Machine(model)
            v = m.vector(range(50))
            _ = v + 1
            expected = 1 + (2 * ceil_log2(50)
                            if CAPABILITIES[model].forked else 0)
            assert m.steps == expected, model

    def test_broadcast_costs(self):
        e = Machine("erew")
        e.charge_broadcast(256)
        assert e.counter.by_kind["broadcast"] == ceil_log2(256)
        c = Machine("crcw")
        c.charge_broadcast(256)
        assert c.counter.by_kind["broadcast"] == 1
        s = Machine("scan")
        s.charge_broadcast(256)
        assert s.counter.by_kind["broadcast"] == 1

    def test_reduce_costs(self):
        e = Machine("erew")
        e.charge_reduce(256)
        assert e.counter.by_kind["reduce"] == ceil_log2(256)
        c = Machine("crcw")  # combining write: one step
        c.charge_reduce(256)
        assert c.counter.by_kind["reduce"] == 1

    def test_ops_counted_identically_across_models(self):
        """The same program issues the same primitive ops on every model;
        only the charge differs."""
        counts = {}
        for model in MODEL_NAMES:
            m = Machine(model, seed=7)
            v = m.vector(range(64))
            scans.plus_scan(v + 3)
            counts[model] = m.counter.ops
        assert len(set(counts.values())) == 1

    def test_reset(self):
        m = Machine("scan")
        scans.plus_scan(m.vector(range(8)))
        m.reset()
        assert m.steps == 0 and m.counter.ops == 0


class TestLongVectors:
    def test_elementwise_block_cost(self):
        m = Machine("scan", num_processors=4)
        _ = m.vector(range(16)) + 1
        assert m.steps == 4  # ceil(16/4)

    def test_scan_block_cost(self):
        m = Machine("scan", num_processors=4)
        scans.plus_scan(m.vector(range(16)))
        assert m.steps == 2 * 4 + 1  # serial blocks + one cross-scan

    def test_erew_long_vector_scan(self):
        m = Machine("erew", num_processors=4)
        scans.plus_scan(m.vector(range(16)))
        assert m.steps == 2 * 4 + 2 * ceil_log2(4)

    def test_more_processors_than_elements(self):
        m = Machine("scan", num_processors=1000)
        scans.plus_scan(m.vector(range(16)))
        assert m.steps == 1

    def test_work_accounting(self):
        m = Machine("scan", num_processors=8)
        _ = m.vector(range(64)) * 2
        assert m.processors == 8
        assert m.work == 8 * m.steps

    def test_processors_defaults_to_peak(self):
        m = Machine("scan")
        _ = m.vector(range(37)) + 1
        assert m.processors == 37

    def test_results_independent_of_processor_count(self, rng):
        data = rng.integers(0, 100, 33)
        full = scans.plus_scan(Machine("scan").vector(data)).to_list()
        for p in (1, 2, 5, 16, 33):
            m = Machine("scan", num_processors=p)
            assert scans.plus_scan(m.vector(data)).to_list() == full


class TestCapabilities:
    def test_gather_duplicates_rejected_on_scan(self):
        m = Machine("scan")
        v = m.vector(range(4))
        with pytest.raises(CapabilityError, match="concurrent read"):
            v.gather(m.vector([0, 0, 1, 2]))

    def test_gather_duplicates_ok_on_crew(self):
        m = Machine("crew")
        v = m.vector([10, 20, 30, 40])
        out = v.gather(m.vector([0, 0, 1, 2]))
        assert out.to_list() == [10, 10, 20, 30]

    def test_combine_write_rejected_on_erew(self):
        m = Machine("erew")
        v = m.vector([1, 2, 3])
        with pytest.raises(CapabilityError, match="concurrent write"):
            v.combine_write(m.vector([0, 0, 1]), length=2)

    def test_combine_write_allowed_when_opted_in(self):
        m = Machine("scan", allow_concurrent_write=True)
        v = m.vector([5, 3, 7])
        out = v.combine_write(m.vector([0, 0, 1]), length=2, op="min")
        assert out.to_list() == [3, 7]
        assert m.concurrent_writes_used == 1

    def test_combine_write_native_on_crcw(self):
        m = Machine("crcw")
        v = m.vector([5, 3, 7])
        out = v.combine_write(m.vector([0, 0, 1]), length=2, op="min")
        assert out.to_list() == [3, 7]
        assert m.concurrent_writes_used == 0


class TestStepCounter:
    def test_negative_charge_rejected(self):
        c = StepCounter()
        with pytest.raises(ValueError):
            c.charge("x", -1)

    def test_snapshot_subtraction(self):
        c = StepCounter()
        c.charge("a", 5)
        before = c.snapshot()
        c.charge("b", 3)
        delta = c.snapshot() - before
        assert delta.steps == 3
        assert delta.by_kind == {"b": 3}

    def test_measure_context(self):
        m = Machine("scan")
        with m.measure() as r:
            scans.plus_scan(m.vector(range(8)))
        assert r.delta.steps == 1
        assert r.delta.by_kind == {"scan": 1}
