"""The segmented graph representation (Section 2.3.2, Figure 6)."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CapabilityError, Machine
from repro.graph import from_edges, random_connected_graph


def _m():
    return Machine("scan", seed=0)


SQUARE = [(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)]


class TestBuild:
    def test_basic_shape(self):
        g = from_edges(_m(), 4, SQUARE)
        assert g.num_slots == 10
        assert g.num_vertices == 4
        assert g.num_edges == 5
        assert g.degrees().tolist() == [2, 3, 2, 3]
        g.validate()

    def test_edge_set_roundtrip(self):
        g = from_edges(_m(), 4, SQUARE)
        assert g.to_edge_set() == {(0, 1), (1, 2), (2, 3), (0, 3), (1, 3)}

    def test_weights_ride_both_ends(self):
        g = from_edges(_m(), 4, SQUARE, weights=[5, 1, 7, 3, 2])
        g.validate()  # validates weight symmetry across cross-pointers
        cp = g.cross_pointers.data
        w = g.slot_data["weight"].data
        assert np.array_equal(w[cp], w)

    def test_figure6_style_graph(self):
        """A 5-vertex graph with the paper's segment structure: degrees
        (1, 3, 3, 2, 3) over 6 edges = 12 slots."""
        edges = [(0, 1), (1, 2), (1, 4), (2, 3), (2, 4), (3, 4)]
        g = from_edges(_m(), 5, edges)
        assert g.num_slots == 12
        assert g.degrees().tolist() == [1, 3, 3, 2, 3]
        g.validate()

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="elf-loop"):
            from_edges(_m(), 2, [(0, 0), (0, 1)])

    def test_rejects_isolated_vertex(self):
        with pytest.raises(ValueError, match="degree"):
            from_edges(_m(), 3, [(0, 1)])

    def test_rejects_no_edges(self):
        with pytest.raises(ValueError):
            from_edges(_m(), 2, np.empty((0, 2), dtype=int))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="range"):
            from_edges(_m(), 2, [(0, 5)])

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_random_graphs_valid(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 40))
        edges, weights = random_connected_graph(rng, n, int(rng.integers(0, 30)))
        g = from_edges(_m(), n, edges, weights=weights)
        g.validate()
        assert g.num_vertices == n
        assert g.to_edge_set() == {tuple(sorted(e)) for e in edges.tolist()}


class TestChargedOperations:
    def test_neighbor_sum_of_ones_is_degree(self):
        m = _m()
        g = from_edges(m, 4, SQUARE)
        out = g.neighbor_reduce(m.vector([1, 1, 1, 1]), "sum")
        assert out.to_list() == [2, 3, 2, 3]

    def test_neighbor_sum_values(self):
        m = _m()
        g = from_edges(m, 4, SQUARE)
        out = g.neighbor_reduce(m.vector([1, 10, 100, 1000]), "sum")
        # v0 ~ {1,3}; v1 ~ {0,2,3}; v2 ~ {1,3}; v3 ~ {0,1,2}
        assert out.to_list() == [1010, 1101, 1010, 111]

    def test_neighbor_min_max(self):
        m = _m()
        g = from_edges(m, 4, SQUARE)
        vals = m.vector([4, 9, 2, 7])
        assert g.neighbor_reduce(vals, "min").to_list() == [7, 2, 7, 2]
        assert g.neighbor_reduce(vals, "max").to_list() == [9, 7, 9, 9]

    def test_neighbor_sum_is_constant_steps(self):
        """The paper's showcase: O(1) steps independent of graph size."""
        steps = []
        for n in (32, 256):
            m = _m()
            rng = np.random.default_rng(1)
            edges, _ = random_connected_graph(rng, n, n)
            g = from_edges(m, n, edges)
            with m.measure() as r:
                g.neighbor_reduce(m.vector(np.ones(n, dtype=np.int64)), "sum")
            steps.append(r.delta.steps)
        assert steps[0] == steps[1]

    def test_across_edges_roundtrip(self):
        m = _m()
        g = from_edges(m, 4, SQUARE)
        v = m.vector(np.arange(g.num_slots))
        out = g.across_edges(g.across_edges(v))
        assert out.to_list() == v.to_list()

    def test_vertex_to_slots_and_back(self):
        m = _m()
        g = from_edges(m, 4, SQUARE)
        per_vertex = m.vector([10, 20, 30, 40])
        per_slot = g.vertex_to_slots(per_vertex)
        assert g.slots_to_vertex(per_slot).to_list() == [10, 20, 30, 40]

    def test_vertex_to_slots_length_checked(self):
        m = _m()
        g = from_edges(m, 4, SQUARE)
        with pytest.raises(ValueError):
            g.vertex_to_slots(m.vector([1, 2]))


class TestSubgraph:
    def test_remove_one_vertex(self):
        m = _m()
        g = from_edges(m, 4, SQUARE)
        sub = g.subgraph(m.flags([1, 0, 1, 1]))
        sub.validate()
        assert sub.num_vertices == 3
        # surviving edges: (2,3), (3,0)
        assert len(sub.to_edge_set()) == 2
        assert set(sub.vertex_reps.tolist()) == {0, 2, 3}

    def test_remove_all(self):
        m = _m()
        g = from_edges(m, 4, SQUARE)
        sub = g.subgraph(m.flags([0, 0, 0, 0]))
        assert sub.num_slots == 0
        assert sub.num_vertices == 0

    def test_vertex_losing_all_edges_disappears(self):
        m = _m()
        g = from_edges(m, 3, [(0, 1), (1, 2)])
        sub = g.subgraph(m.flags([1, 0, 1]))  # drop the middle vertex
        assert sub.num_slots == 0  # 0 and 2 had edges only through 1
