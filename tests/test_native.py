"""The native two-phase backend (repro.backends.native).

Hypothesis-driven differential testing of the Blelloch upsweep/downsweep
schedule against the numpy and reference backends, across the dtype
boundaries where scan bugs live (unsigned wraparound, int64 overflow,
NaN ordering, empty float64 vectors), at adversarial block sizes so every
case crosses block boundaries.

Every test runs under **all execution tiers the host supports**: the
plain-Python kernels (the exact arithmetic Numba compiles, kept on the
fuzzer surface even without Numba), the vectorized per-block fallback,
and — when Numba is installed — the compiled kernels themselves.  The
suite is therefore meaningful both on bare NumPy containers and on CI
legs with Numba present.
"""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Machine
from repro.backends import NativeBackend, NumPyBackend, ReferenceBackend
from repro.backends import native as native_mod
from repro.backends.native import HAVE_NUMBA
from repro.core import scans

_NP = NumPyBackend()
_REF = ReferenceBackend()

#: (label, force_pure, _PY_KERNEL_MAX override) — one entry per
#: execution tier available on this host
MODES = [("pure-kernels", True, 1 << 30),
         ("pure-vectorized", True, -1)]
if HAVE_NUMBA:
    MODES.append(("numba", False, native_mod._PY_KERNEL_MAX))

BLOCKS = [1, 2, 3, 7, 64]


def _each_native(block):
    """Yield a fresh backend per execution tier, with the py-kernel
    cutoff pinned so the tier actually runs (restored after each)."""
    for label, force_pure, cutoff in MODES:
        old = native_mod._PY_KERNEL_MAX
        native_mod._PY_KERNEL_MAX = cutoff
        try:
            yield label, NativeBackend(block=block, force_pure=force_pure)
        finally:
            native_mod._PY_KERNEL_MAX = old


INT_DTYPES = ["int8", "int16", "uint8", "uint32", "int64"]


def _int_elements(dtype):
    info = np.iinfo(dtype)
    return st.one_of(st.integers(info.min, info.max),
                     st.sampled_from([info.min, info.max, 0, 1]))


FLOAT_ELEMENTS = st.sampled_from(
    [0.0, -0.0, 1.0, -1.5, 2.5, np.nan, np.inf, -np.inf, 1e300, -1e300])


# --------------------------------------------------------------------- #
# Unsegmented scans
# --------------------------------------------------------------------- #

@given(st.data())
@settings(max_examples=80, deadline=None)
def test_plus_scan_int_bit_identical(data):
    """Integer +-scans wrap modulo 2**width and must match numpy bit for
    bit in every tier, including sums that overflow many times over."""
    dtype = data.draw(st.sampled_from(INT_DTYPES))
    values = np.array(data.draw(st.lists(_int_elements(dtype), min_size=2,
                                         max_size=80)), dtype=dtype)
    block = data.draw(st.sampled_from(BLOCKS))
    with np.errstate(over="ignore"):
        want = _NP.plus_scan(values)
    for label, nat in _each_native(block):
        got = nat.plus_scan(values)
        assert got.dtype == want.dtype, label
        assert np.array_equal(got, want), (label, block)


@given(st.data())
@settings(max_examples=80, deadline=None)
def test_max_scan_bit_identical_including_nan(data):
    """max is exactly associative — even for floats with NaN, because the
    kernels' ``v > acc or v != v`` is np.maximum's NaN-absorbing order."""
    if data.draw(st.booleans()):
        dtype = data.draw(st.sampled_from(INT_DTYPES))
        elements = _int_elements(dtype)
    else:
        dtype, elements = "float64", FLOAT_ELEMENTS
    values = np.array(data.draw(st.lists(elements, min_size=2,
                                         max_size=80)), dtype=dtype)
    block = data.draw(st.sampled_from(BLOCKS))
    ident = values.min() if len(values) else np.asarray(0, dtype)[()]
    want = _NP.max_scan(values, ident)
    for label, nat in _each_native(block):
        got = nat.max_scan(values, ident)
        assert np.array_equal(got, want, equal_nan=True), (label, block)


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_float_plus_scan_within_additive_tolerance(data):
    """Float +-carries re-associate across blocks (the verifier's
    documented additive tolerance); magnitudes here are corpus-tame."""
    values = np.array(data.draw(st.lists(
        st.floats(-1e3, 1e3, allow_nan=False), min_size=2, max_size=80)),
        dtype=np.float64)
    block = data.draw(st.sampled_from(BLOCKS))
    want = _NP.plus_scan(values)
    for label, nat in _each_native(block):
        got = nat.plus_scan(values)
        assert np.allclose(got, want, rtol=1e-9, atol=1e-9), (label, block)


# --------------------------------------------------------------------- #
# Segmented scans (the Section 4 flag-carrying operator)
# --------------------------------------------------------------------- #

@given(st.data())
@settings(max_examples=80, deadline=None)
def test_seg_plus_scan_int_bit_identical(data):
    dtype = data.draw(st.sampled_from(INT_DTYPES))
    values = np.array(data.draw(st.lists(_int_elements(dtype), min_size=2,
                                         max_size=80)), dtype=dtype)
    flags = np.array(data.draw(st.lists(st.booleans(), min_size=len(values),
                                        max_size=len(values))), dtype=bool)
    flags[0] = True  # the machine always materializes a head at 0
    block = data.draw(st.sampled_from(BLOCKS))
    with np.errstate(over="ignore"):
        want = _NP.seg_plus_scan(values, flags)
        ref = _REF.seg_plus_scan(values, flags)
    assert np.array_equal(want, ref)
    for label, nat in _each_native(block):
        got = nat.seg_plus_scan(values, flags)
        assert np.array_equal(got, want), (label, block)


@given(st.data())
@settings(max_examples=80, deadline=None)
def test_seg_extreme_scan_bit_identical_including_nan(data):
    """Both directions, NaN-laced floats, non-bottom identities (the
    one-bit scans call seg_max_scan with identity=0): every tier matches
    numpy's rank-encoding answer exactly."""
    is_max = data.draw(st.booleans())
    if data.draw(st.booleans()):
        dtype = data.draw(st.sampled_from(INT_DTYPES))
        elements = _int_elements(dtype)
        info = np.iinfo(dtype)
        identity = data.draw(st.sampled_from(
            [info.min if is_max else info.max, 0, 1]))
    else:
        dtype, elements = "float64", FLOAT_ELEMENTS
        identity = data.draw(st.sampled_from(
            [-np.inf if is_max else np.inf, 0.0]))
    values = np.array(data.draw(st.lists(elements, min_size=2,
                                         max_size=80)), dtype=dtype)
    flags = np.array(data.draw(st.lists(st.booleans(), min_size=len(values),
                                        max_size=len(values))), dtype=bool)
    flags[0] = True  # the machine always materializes a head at 0
    block = data.draw(st.sampled_from(BLOCKS))
    want = _NP.seg_extreme_scan(values, flags, identity, is_max=is_max)
    ref = _REF.seg_extreme_scan(values, flags, identity, is_max=is_max)
    assert np.array_equal(want, ref, equal_nan=True)
    for label, nat in _each_native(block):
        got = nat.seg_extreme_scan(values, flags, identity, is_max=is_max)
        assert np.array_equal(got, want, equal_nan=True), (label, block)


# --------------------------------------------------------------------- #
# Dtype boundaries, pinned
# --------------------------------------------------------------------- #

class TestDtypeBoundaries:
    def test_uint32_wraps_not_promotes(self):
        values = np.array([2**32 - 1, 5, 2**32 - 2, 7], dtype=np.uint32)
        with np.errstate(over="ignore"):
            want = _NP.plus_scan(values)
        assert want.dtype == np.uint32  # no silent int64 promotion
        for label, nat in _each_native(2):
            got = nat.plus_scan(values)
            assert got.dtype == np.uint32, label
            assert np.array_equal(got, want), label

    def test_int64_overflow_wraps_like_numpy(self):
        values = np.full(9, np.iinfo(np.int64).max // 2, dtype=np.int64)
        with np.errstate(over="ignore"):
            want = _NP.plus_scan(values)
        for label, nat in _each_native(3):
            assert np.array_equal(nat.plus_scan(values), want), label

    def test_empty_and_single_float64_delegate(self):
        for values in (np.array([], dtype=np.float64),
                       np.array([3.5], dtype=np.float64)):
            want = _NP.plus_scan(values)
            for label, nat in _each_native(7):
                got = nat.plus_scan(values)
                assert got.dtype == np.float64, label
                assert np.array_equal(got, want), label

    def test_bool_vectors_delegate_to_numpy_semantics(self):
        nat = NativeBackend(force_pure=True)
        values = np.array([True, False, True, True])
        assert not nat._engaged(values)
        assert np.array_equal(nat.max_scan(values, False),
                              _NP.max_scan(values, False))


# --------------------------------------------------------------------- #
# Machine-level integration: selection, fusion, step parity
# --------------------------------------------------------------------- #

class TestMachineIntegration:
    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "native:0:128")
        m = Machine("scan")
        assert isinstance(m.backend, NativeBackend)
        assert m.backend.block == 128

    def test_bad_specs_raise(self):
        from repro.backends import get_backend
        with pytest.raises(ValueError, match="integer"):
            get_backend("native:fast")
        with pytest.raises(ValueError, match="at most two"):
            get_backend("native:1:2:3")
        with pytest.raises(ValueError, match="threads"):
            NativeBackend(threads=-1)
        with pytest.raises(ValueError, match="block"):
            NativeBackend(block=0)

    def test_fused_chain_matches_eager_and_numpy(self):
        data = (np.arange(500, dtype=np.int64) - 250).tolist()

        def run(backend, fusion):
            m = Machine("scan", backend=backend, fusion=fusion)
            v = m.vector(data)
            out = scans.plus_scan(v * v + 3)
            return out.to_list(), dict(m.counter.by_kind)

        want = run("numpy", False)
        for fusion in (False, True):
            got = run(NativeBackend(block=64, force_pure=True), fusion)
            assert got == want, fusion

    def test_step_charges_match_numpy(self):
        def charges(backend):
            m = Machine("scan", backend=backend)
            v = m.vector(list(range(100)))
            scans.plus_scan(v)
            scans.max_scan(v)
            return dict(m.counter.by_kind)

        assert (charges(NativeBackend(block=16, force_pure=True))
                == charges("numpy"))

    def test_metrics_count_fallback_and_launches(self):
        from repro.observe.metrics import registry

        nat = NativeBackend(block=8, force_pure=True)
        counter = registry.counter("native.fallback_ops")
        before = counter.value
        nat.plus_scan(np.arange(32, dtype=np.int64))
        assert counter.value == before + 1
        if HAVE_NUMBA:
            compiled = NativeBackend(block=8)
            launches = registry.counter("native.kernel_launches")
            b = launches.value
            compiled.plus_scan(np.arange(32, dtype=np.int64))
            assert launches.value == b + 1

    def test_temp_bytes_is_block_bounded(self):
        nat = NativeBackend(block=1024, force_pure=True)
        big = 10**8  # a 100 MB output must not imply 100 MB of temps
        assert nat.temp_bytes("plus_scan", big) < 64 * 1024 * 1024


# --------------------------------------------------------------------- #
# The shard hook (repro.cluster.shardops routing through native)
# --------------------------------------------------------------------- #

class TestShardNativeHook:
    def _arm(self, monkeypatch, mode):
        from repro.cluster import shardops

        monkeypatch.setenv("REPRO_SHARD_NATIVE", mode)
        monkeypatch.setattr(shardops, "_NATIVE_SHARD_MIN", 4)
        monkeypatch.setattr(shardops, "_native_cache", {})
        return shardops

    def test_forced_on_routes_and_stays_bit_identical(self, monkeypatch):
        shardops = self._arm(monkeypatch, "1")
        assert shardops._shard_native() is not None
        v = np.arange(100, dtype=np.int64) * 3 - 150
        out, carry = shardops.plus_scan_shard(v)
        assert np.array_equal(out, np.concatenate(([0], np.cumsum(v)[:-1])))
        assert carry == v.sum()
        fv = np.array([1.5, np.nan, 2.0, 0.5] * 25)
        out, carry = shardops.max_scan_shard(fv, -np.inf)
        want = np.empty_like(fv)
        want[0] = -np.inf
        np.maximum.accumulate(fv[:-1], out=want[1:])
        assert np.array_equal(out, want, equal_nan=True)
        assert np.isnan(carry)  # np.maximum carry propagates NaN

    def test_forced_off_disables(self, monkeypatch):
        shardops = self._arm(monkeypatch, "0")
        assert shardops._shard_native() is None

    def test_float_plus_shards_keep_the_serial_path(self, monkeypatch):
        """Solo float requests must never re-associate locally, so the
        +-shard routes only integer dtypes through the two-phase scan."""
        shardops = self._arm(monkeypatch, "1")
        fv = np.linspace(0.0, 1.0, 64) * 1e16 + 1.0
        out, _ = shardops.plus_scan_shard(fv)
        want = np.concatenate(([0.0], np.cumsum(fv)[:-1]))
        assert np.array_equal(out, want)  # bit-exact, not just close
