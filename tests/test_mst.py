"""Random-mate minimum spanning tree (Section 2.3.3)."""
import numpy as np
import pytest

from repro import Machine
from repro.algorithms.mst import minimum_spanning_tree
from repro.baselines import kruskal_mst
from repro.graph import random_connected_graph


class TestCorrectness:
    def test_tiny_triangle(self):
        m = Machine("scan", seed=0)
        res = minimum_spanning_tree(m, 3, [(0, 1), (1, 2), (0, 2)], [5, 1, 3])
        assert res.total_weight == 4
        assert sorted(res.edge_ids.tolist()) == [1, 2]

    def test_two_vertices(self):
        m = Machine("scan", seed=0)
        res = minimum_spanning_tree(m, 2, [(0, 1)], [7])
        assert res.total_weight == 7

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_kruskal(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(5, 80))
        edges, weights = random_connected_graph(rng, n, int(rng.integers(0, 2 * n)))
        m = Machine("scan", seed=seed)
        res = minimum_spanning_tree(m, n, edges, weights)
        _, expect = kruskal_mst(n, edges, weights)
        assert res.total_weight == expect
        assert len(res.edge_ids) == n - 1
        # the selected edges really span: union-find check
        from repro.baselines.serial import _DSU
        dsu = _DSU(n)
        for e in res.edge_ids:
            dsu.union(int(edges[e, 0]), int(edges[e, 1]))
        assert len({dsu.find(v) for v in range(n)}) == 1

    def test_duplicate_weights(self):
        """Ties broken by edge id still yield a minimum tree."""
        m = Machine("scan", seed=1)
        edges = [(0, 1), (1, 2), (2, 3), (3, 0)]
        weights = [1, 1, 1, 1]
        res = minimum_spanning_tree(m, 4, edges, weights)
        assert res.total_weight == 3
        assert len(res.edge_ids) == 3

    def test_spanning_forest_of_disconnected_graph(self):
        m = Machine("scan", seed=2)
        edges = [(0, 1), (1, 2), (3, 4)]
        res = minimum_spanning_tree(m, 5, edges, [4, 2, 9])
        assert res.total_weight == 15
        assert len(res.edge_ids) == 3

    def test_runs_on_all_machine_models(self, any_machine):
        rng = np.random.default_rng(5)
        edges, weights = random_connected_graph(rng, 20, 20)
        res = minimum_spanning_tree(any_machine, 20, edges, weights)
        _, expect = kruskal_mst(20, edges, weights)
        assert res.total_weight == expect


class TestComplexity:
    def test_rounds_logarithmic(self):
        """O(lg n) star-merge rounds with high probability."""
        rng = np.random.default_rng(0)
        edges, weights = random_connected_graph(rng, 512, 1024)
        m = Machine("scan", seed=0)
        res = minimum_spanning_tree(m, 512, edges, weights)
        assert res.rounds <= 40  # lg 512 = 9; generous slack for coin flips

    def test_scan_model_beats_erew_by_log_factor(self):
        rng = np.random.default_rng(1)
        edges, weights = random_connected_graph(rng, 256, 512)
        ms = Machine("scan", seed=1)
        minimum_spanning_tree(ms, 256, edges, weights)
        me = Machine("erew", seed=1)
        minimum_spanning_tree(me, 256, edges, weights)
        assert me.steps > 3 * ms.steps

    def test_round_cap_raises(self):
        rng = np.random.default_rng(2)
        edges, weights = random_connected_graph(rng, 40, 40)
        m = Machine("scan", seed=2)
        with pytest.raises(RuntimeError, match="rounds"):
            minimum_spanning_tree(m, 40, edges, weights, max_rounds=1)
