"""Segmented scans and segmented operations (Section 2.3)."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Machine
from repro.core import segmented
from repro.core.segmented import (
    flags_from_lengths,
    seg_and_scan,
    seg_back_copy,
    seg_back_max_scan,
    seg_back_min_scan,
    seg_back_plus_scan,
    seg_copy,
    seg_enumerate,
    seg_flag_from_neighbor_change,
    seg_index,
    seg_max_distribute,
    seg_max_scan,
    seg_min_distribute,
    seg_min_scan,
    seg_or_scan,
    seg_plus_distribute,
    seg_plus_scan,
    seg_split,
    seg_split3,
    segment_ids,
    segment_lengths,
)


def _m():
    return Machine("scan")


@st.composite
def segmented_vector(draw, elements=st.integers(-10**6, 10**6)):
    """(values, flags) with flags[0] True."""
    n = draw(st.integers(1, 120))
    values = draw(st.lists(elements, min_size=n, max_size=n))
    flags = [True] + [draw(st.booleans()) for _ in range(n - 1)]
    return values, flags


def _segments(flags):
    """Split indices into per-segment slices."""
    heads = [i for i, f in enumerate(flags) if f]
    return [slice(h, heads[i + 1] if i + 1 < len(heads) else len(flags))
            for i, h in enumerate(heads)]


class TestStructure:
    def test_first_flag_must_be_true(self):
        m = _m()
        with pytest.raises(ValueError, match="first element"):
            seg_plus_scan(m.vector([1, 2]), m.flags([0, 1]))

    def test_flag_length_checked(self):
        m = _m()
        with pytest.raises(ValueError, match="length"):
            seg_plus_scan(m.vector([1, 2]), m.flags([1]))

    def test_flags_must_be_boolean(self):
        m = _m()
        with pytest.raises(TypeError, match="boolean"):
            seg_plus_scan(m.vector([1, 2]), m.vector([1, 0]))

    def test_segment_ids(self):
        m = _m()
        out = segment_ids(m.flags([1, 0, 1, 0, 0, 1]))
        assert out.to_list() == [0, 0, 1, 1, 1, 2]

    def test_segment_lengths(self):
        m = _m()
        assert segment_lengths(m.flags([1, 0, 1, 0, 0, 1])).tolist() == [2, 3, 1]

    def test_flags_from_lengths(self):
        m = _m()
        f = flags_from_lengths(m, [2, 0, 3, 1])
        assert f.to_list() == [True, False, True, False, False, True]

    def test_flags_from_lengths_rejects_negative(self):
        with pytest.raises(ValueError):
            flags_from_lengths(_m(), [2, -1])


class TestPaperFigure4:
    def test_seg_plus_scan(self):
        m = _m()
        a = m.vector([5, 1, 3, 4, 3, 9, 2, 6])
        sb = m.flags([1, 0, 1, 0, 0, 0, 1, 0])
        assert seg_plus_scan(a, sb).to_list() == [0, 5, 0, 3, 7, 10, 0, 2]

    def test_seg_max_scan(self):
        m = _m()
        a = m.vector([5, 1, 3, 4, 3, 9, 2, 6])
        sb = m.flags([1, 0, 1, 0, 0, 0, 1, 0])
        assert seg_max_scan(a, sb, identity=0).to_list() == [0, 5, 0, 3, 4, 4, 0, 2]


class TestSegmentedScansProperty:
    @given(segmented_vector())
    @settings(max_examples=60, deadline=None)
    def test_seg_plus_scan_matches_per_segment(self, case):
        values, flags = case
        m = _m()
        out = seg_plus_scan(m.vector(values), m.flags(flags)).to_list()
        for s in _segments(flags):
            run = 0
            for i in range(s.start, s.stop):
                assert out[i] == run
                run += values[i]

    @given(segmented_vector())
    @settings(max_examples=60, deadline=None)
    def test_seg_max_scan_matches_per_segment(self, case):
        values, flags = case
        m = _m()
        ident = np.iinfo(np.int64).min
        out = seg_max_scan(m.vector(values), m.flags(flags)).to_list()
        for s in _segments(flags):
            run = ident
            for i in range(s.start, s.stop):
                assert out[i] == run
                run = max(run, values[i])

    @given(segmented_vector())
    @settings(max_examples=60, deadline=None)
    def test_seg_min_scan_matches_per_segment(self, case):
        values, flags = case
        m = _m()
        ident = np.iinfo(np.int64).max
        out = seg_min_scan(m.vector(values), m.flags(flags)).to_list()
        for s in _segments(flags):
            run = ident
            for i in range(s.start, s.stop):
                assert out[i] == run
                run = min(run, values[i])

    @given(segmented_vector(elements=st.integers(0, 1)))
    @settings(max_examples=40, deadline=None)
    def test_seg_or_and_scans(self, case):
        values, flags = case
        m = _m()
        bools = [bool(v) for v in values]
        out_or = seg_or_scan(m.flags(bools), m.flags(flags)).to_list()
        out_and = seg_and_scan(m.flags(bools), m.flags(flags)).to_list()
        for s in _segments(flags):
            run_or, run_and = False, True
            for i in range(s.start, s.stop):
                assert out_or[i] == run_or
                assert out_and[i] == run_and
                run_or = run_or or bools[i]
                run_and = run_and and bools[i]

    @given(segmented_vector())
    @settings(max_examples=40, deadline=None)
    def test_no_leakage_across_segments(self, case):
        """Changing values in one segment never changes another segment's
        scan output."""
        values, flags = case
        m = _m()
        base = seg_plus_scan(m.vector(values), m.flags(flags)).to_list()
        segs = _segments(flags)
        if len(segs) < 2:
            return
        tweaked = list(values)
        for i in range(segs[0].start, segs[0].stop):
            tweaked[i] += 1000
        m2 = _m()
        out = seg_plus_scan(m2.vector(tweaked), m2.flags(flags)).to_list()
        assert out[segs[1].start:] == base[segs[1].start:]


class TestBackwardSegmented:
    @given(segmented_vector())
    @settings(max_examples=40, deadline=None)
    def test_seg_back_plus(self, case):
        values, flags = case
        m = _m()
        out = seg_back_plus_scan(m.vector(values), m.flags(flags)).to_list()
        for s in _segments(flags):
            for i in range(s.start, s.stop):
                assert out[i] == sum(values[i + 1:s.stop])

    def test_seg_back_max(self):
        m = _m()
        v = m.vector([1, 9, 2, 7, 3])
        f = m.flags([1, 0, 0, 1, 0])
        out = seg_back_max_scan(v, f, identity=0).to_list()
        assert out == [9, 2, 0, 3, 0]

    def test_seg_back_min(self):
        m = _m()
        v = m.vector([1, 9, 2, 7, 3])
        f = m.flags([1, 0, 0, 1, 0])
        out = seg_back_min_scan(v, f, identity=100).to_list()
        assert out == [2, 2, 100, 3, 100]


class TestCopyEnumerateDistribute:
    def test_seg_copy(self):
        m = _m()
        v = m.vector([7, 1, 2, 9, 3])
        f = m.flags([1, 0, 0, 1, 0])
        assert seg_copy(v, f).to_list() == [7, 7, 7, 9, 9]

    def test_seg_back_copy(self):
        m = _m()
        v = m.vector([7, 1, 2, 9, 3])
        f = m.flags([1, 0, 0, 1, 0])
        assert seg_back_copy(v, f).to_list() == [2, 2, 2, 3, 3]

    def test_seg_enumerate(self):
        m = _m()
        flags = m.flags([1, 0, 1, 1, 0, 1])
        sf = m.flags([1, 0, 0, 1, 0, 0])
        assert seg_enumerate(flags, sf).to_list() == [0, 1, 1, 0, 1, 1]

    def test_seg_index(self):
        m = _m()
        sf = m.flags([1, 0, 0, 1, 0])
        assert seg_index(sf).to_list() == [0, 1, 2, 0, 1]

    @given(segmented_vector(elements=st.integers(-1000, 1000)))
    @settings(max_examples=40, deadline=None)
    def test_distributes(self, case):
        values, flags = case
        m = _m()
        v, f = m.vector(values), m.flags(flags)
        out_sum = seg_plus_distribute(v, f).to_list()
        out_max = seg_max_distribute(v, f).to_list()
        out_min = seg_min_distribute(v, f).to_list()
        for s in _segments(flags):
            seg_vals = values[s.start:s.stop]
            for i in range(s.start, s.stop):
                assert out_sum[i] == sum(seg_vals)
                assert out_max[i] == max(seg_vals)
                assert out_min[i] == min(seg_vals)


class TestSegmentedSplit:
    def test_seg_split_packs_within_segments(self):
        m = _m()
        v = m.vector([1, 2, 3, 4, 5, 6])
        f = m.flags([1, 0, 1, 1, 0, 0])
        flags = m.flags([1, 0, 0, 1, 0, 1])
        out = seg_split(v, flags, f)
        assert out.to_list() == [2, 1, 3, 5, 4, 6]

    @given(segmented_vector(elements=st.integers(0, 50)))
    @settings(max_examples=40, deadline=None)
    def test_seg_split_is_stable_permutation(self, case):
        values, flags = case
        m = _m()
        v = m.vector(values)
        sf = m.flags(flags)
        pick = (v % 2) == 1
        out = seg_split(v, pick, sf).to_list()
        for s in _segments(flags):
            seg_in = values[s.start:s.stop]
            expect = [x for x in seg_in if x % 2 == 0] + [x for x in seg_in if x % 2 == 1]
            assert out[s.start:s.stop] == expect

    @given(segmented_vector(elements=st.integers(0, 20)))
    @settings(max_examples=40, deadline=None)
    def test_seg_split3(self, case):
        values, flags = case
        m = _m()
        v = m.vector(values)
        sf = m.flags(flags)
        lesser = v < 7
        equal = (v >= 7) & (v < 14)
        out = seg_split3(v, lesser, equal, sf).to_list()
        for s in _segments(flags):
            seg_in = values[s.start:s.stop]
            expect = ([x for x in seg_in if x < 7]
                      + [x for x in seg_in if 7 <= x < 14]
                      + [x for x in seg_in if x >= 14])
            assert out[s.start:s.stop] == expect

    def test_flag_from_neighbor_change(self):
        m = _m()
        v = m.vector([1, 1, 2, 2, 2, 3])
        sf = m.flags([1, 0, 0, 0, 1, 0])
        out = seg_flag_from_neighbor_change(v, sf)
        assert out.to_list() == [True, False, True, False, True, True]


class TestCosts:
    def test_segmented_ops_cost_constant_scans(self):
        """Every segmented operation uses a bounded number of primitive
        scans regardless of n (Section 3.4: at most two per scan op)."""
        for fn in (seg_plus_scan, seg_max_scan, seg_min_scan):
            m = _m()
            n = 2048
            fn(m.vector(np.arange(n)), m.flags([True] + [False] * (n - 1)))
            assert m.counter.by_kind["scan"] <= 3, fn.__name__
