"""Branch-and-bound by allocation + load balancing (Sections 2.4-2.5)."""
import numpy as np
import pytest

from repro import Machine
from repro.algorithms.branch_and_bound import (
    knapsack_branch_and_bound,
    knapsack_dp,
)


class TestCorrectness:
    def test_tiny(self):
        m = Machine("scan")
        res = knapsack_branch_and_bound(m, [60, 100, 120], [10, 20, 30], 50)
        assert res.best_value == 220

    def test_nothing_fits(self):
        m = Machine("scan")
        res = knapsack_branch_and_bound(m, [10, 20], [100, 100], 5)
        assert res.best_value == 0

    def test_everything_fits(self):
        m = Machine("scan")
        res = knapsack_branch_and_bound(m, [1, 2, 3], [1, 1, 1], 10)
        assert res.best_value == 6

    def test_zero_capacity(self):
        m = Machine("scan")
        res = knapsack_branch_and_bound(m, [5], [1], 0)
        assert res.best_value == 0

    @pytest.mark.parametrize("seed", range(15))
    def test_random_against_dp(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 18))
        values = rng.integers(1, 100, n)
        weights = rng.integers(1, 40, n)
        cap = int(rng.integers(5, 150))
        m = Machine("scan", seed=seed)
        res = knapsack_branch_and_bound(m, values, weights, cap)
        assert res.best_value == knapsack_dp(values, weights, cap)

    def test_validation(self):
        m = Machine("scan")
        with pytest.raises(ValueError):
            knapsack_branch_and_bound(m, [1, 2], [1], 5)
        with pytest.raises(ValueError):
            knapsack_branch_and_bound(m, [1], [0], 5)
        with pytest.raises(ValueError):
            knapsack_branch_and_bound(m, [1], [1], -1)


class TestPruning:
    def test_bound_prunes_exponentially_many_nodes(self):
        """Without bounding the frontier is 2^n; the fractional bound keeps
        it polynomial-ish on random instances."""
        rng = np.random.default_rng(3)
        n = 22
        values = rng.integers(1, 100, n)
        weights = rng.integers(1, 30, n)
        m = Machine("scan", seed=3)
        res = knapsack_branch_and_bound(m, values, weights, 120)
        assert res.best_value == knapsack_dp(values, weights, 120)
        assert res.nodes_expanded < 2 ** 14  # far below 2^22

    def test_statistics_reported(self):
        m = Machine("scan")
        res = knapsack_branch_and_bound(m, [3, 4, 5], [2, 3, 4], 5)
        assert res.levels == 3
        assert res.max_frontier >= 1
        assert res.nodes_expanded >= 3

    def test_allocation_steps_independent_of_frontier_width(self):
        """Each level is O(1) steps no matter how many nodes expand: the
        per-level step delta stays flat as the frontier grows."""
        rng = np.random.default_rng(4)
        n = 14
        values = rng.integers(1, 100, n)
        weights = rng.integers(1, 10, n)
        m = Machine("scan", seed=4)
        res = knapsack_branch_and_bound(m, values, weights, 60)
        # total steps are O(levels), not O(nodes)
        assert m.steps < 80 * res.levels
