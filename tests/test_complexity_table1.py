"""Empirical Table 1: step-complexity growth rates across machine models.

These tests measure program steps at increasing n and assert the *shape*
the paper claims: an O(lg n) algorithm's steps grow by roughly a constant
per doubling, an O(lg² n) algorithm's by a growing increment, and the
scan/EREW ratio widens like lg n.
"""
import numpy as np
import pytest

from repro import Machine
from repro.algorithms import (
    build_kd_tree,
    closest_pair,
    connected_components,
    convex_hull,
    minimum_spanning_tree,
    quicksort,
    split_radix_sort,
)
from repro.graph import random_connected_graph


def _median_steps(fn, sizes, trials=3):
    out = []
    for n in sizes:
        runs = []
        for t in range(trials):
            runs.append(fn(n, t))
        out.append(int(np.median(runs)))
    return out


def _doubling_increments(steps):
    return [b - a for a, b in zip(steps, steps[1:])]


class TestLogGrowthOnScanModel:
    """O(lg n) algorithms: the per-doubling step increment stays bounded."""

    def test_mst(self):
        def run(n, t):
            rng = np.random.default_rng(t)
            edges, weights = random_connected_graph(rng, n, n)
            m = Machine("scan", seed=t)
            minimum_spanning_tree(m, n, edges, weights)
            return m.steps

        steps = _median_steps(run, [64, 256, 1024])
        inc = _doubling_increments(steps)
        # quadrupling n adds a bounded number of rounds' worth of steps
        assert inc[1] < 2.0 * max(inc[0], 60)

    def test_connected_components(self):
        def run(n, t):
            rng = np.random.default_rng(t)
            edges, _ = random_connected_graph(rng, n, n)
            m = Machine("scan", seed=t)
            connected_components(m, n, edges)
            return m.steps

        steps = _median_steps(run, [64, 256, 1024])
        assert steps[2] < 2.2 * steps[1]

    def test_quicksort(self):
        def run(n, t):
            m = Machine("scan", seed=t)
            rng = np.random.default_rng(t)
            quicksort(m.vector(rng.permutation(n)))
            return m.steps

        steps = _median_steps(run, [256, 1024, 4096])
        # lg n growth: 4x the data, ~(lg 4096 / lg 1024)x the steps
        assert steps[2] < 1.9 * steps[1]

    def test_radix_sort_with_fixed_bits(self):
        def run(n, t):
            m = Machine("scan")
            rng = np.random.default_rng(t)
            split_radix_sort(m.vector(rng.integers(0, 1024, n)),
                             number_of_bits=10)
            return m.steps

        steps = _median_steps(run, [256, 1024, 4096], trials=1)
        assert steps[0] == steps[1] == steps[2]  # independent of n entirely

    def test_convex_hull(self):
        def run(n, t):
            m = Machine("scan")
            rng = np.random.default_rng(t)
            convex_hull(m, rng.integers(-10**6, 10**6, (n, 2)))
            return m.steps

        steps = _median_steps(run, [256, 1024, 4096])
        assert steps[2] < 2.0 * steps[1]

    def test_kd_tree(self):
        def run(n, t):
            m = Machine("scan")
            rng = np.random.default_rng(t)
            build_kd_tree(m, rng.integers(0, 2**14, (n, 2)))
            return m.steps

        steps = _median_steps(run, [128, 512, 2048], trials=1)
        assert steps[2] < 2.2 * steps[1]

    def test_closest_pair(self):
        def run(n, t):
            m = Machine("scan")
            rng = np.random.default_rng(t)
            closest_pair(m, rng.integers(0, 2**14, (n, 2)))
            return m.steps

        steps = _median_steps(run, [128, 512, 2048], trials=1)
        assert steps[2] < 2.5 * steps[1]


class TestScanVsErewRatio:
    """The O(lg n)-factor gap between the scan model and EREW widens with
    n — Table 1's whole message."""

    @pytest.mark.parametrize("n_small,n_big", [(64, 1024)])
    def test_mst_ratio_widens(self, n_small, n_big):
        def ratio(n):
            rng = np.random.default_rng(0)
            edges, weights = random_connected_graph(rng, n, n)
            ms = Machine("scan", seed=0)
            minimum_spanning_tree(ms, n, edges, weights)
            me = Machine("erew", seed=0)
            minimum_spanning_tree(me, n, edges, weights)
            return me.steps / ms.steps

        assert ratio(n_big) > ratio(n_small)

    def test_quicksort_ratio_widens(self):
        def ratio(n):
            rng = np.random.default_rng(1)
            data = rng.permutation(n)
            ms = Machine("scan", seed=1)
            quicksort(ms.vector(data))
            me = Machine("erew", seed=1)
            quicksort(me.vector(data))
            return me.steps / ms.steps

        assert ratio(2048) > ratio(128)

    def test_crcw_between_erew_and_scan_for_mst(self):
        """Table 1's MST row: EREW O(lg² n), CRCW O(lg n) (combining
        write), scan O(lg n) — CRCW should sit at or below EREW and near
        the scan model."""
        n = 512
        rng = np.random.default_rng(2)
        edges, weights = random_connected_graph(rng, n, n)
        steps = {}
        for model in ("erew", "crcw", "scan"):
            m = Machine(model, seed=2)
            minimum_spanning_tree(m, n, edges, weights)
            steps[model] = m.steps
        assert steps["scan"] <= steps["crcw"] <= steps["erew"]
