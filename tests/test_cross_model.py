"""Cross-model invariance: the machine model changes *charges*, never
*results*.  Every algorithm must compute the same answer on erew, crew,
crcw and scan machines, and probabilistic algorithms must be reproducible
under a fixed seed."""
import numpy as np
import pytest

from repro import Machine
from repro.algorithms import (
    biconnected_components,
    build_kd_tree,
    closest_pair,
    connected_components,
    convex_hull,
    draw_lines,
    halving_merge,
    knapsack_branch_and_bound,
    list_rank,
    mat_vec,
    max_flow,
    maximal_independent_set,
    minimum_spanning_tree,
    quicksort,
    solve,
    split_radix_sort,
    tree_contract,
)
from repro.algorithms.tree_contraction import ExpressionTree
from repro.graph import random_connected_graph
from repro.machine import MODEL_NAMES


def _all_models(fn):
    return [fn(Machine(model, seed=42)) for model in MODEL_NAMES]


class TestDeterministicAlgorithmsAgree:
    def test_radix_sort(self, rng):
        data = rng.integers(0, 10**5, 300)
        outs = _all_models(lambda m: split_radix_sort(m.vector(data)).to_list())
        assert all(o == outs[0] for o in outs)

    def test_halving_merge(self, rng):
        a = np.sort(rng.integers(0, 10**5, 200))
        b = np.sort(rng.integers(0, 10**5, 150))
        outs = _all_models(
            lambda m: halving_merge(m.vector(a), m.vector(b))[0].to_list())
        assert all(o == outs[0] for o in outs)

    def test_line_drawing(self, rng):
        lines = rng.integers(0, 100, (10, 4))
        outs = _all_models(lambda m: draw_lines(m, lines).pixels().tolist())
        assert all(o == outs[0] for o in outs)

    def test_convex_hull(self, rng):
        pts = rng.integers(-200, 200, (150, 2))
        outs = _all_models(
            lambda m: sorted(convex_hull(m, pts).hull_indices.tolist()))
        assert all(o == outs[0] for o in outs)

    def test_kd_tree(self, rng):
        pts = rng.integers(0, 10**4, (90, 2))
        outs = _all_models(lambda m: build_kd_tree(m, pts).order.tolist())
        assert all(o == outs[0] for o in outs)

    def test_closest_pair(self, rng):
        pts = rng.integers(0, 10**4, (120, 2))
        outs = _all_models(lambda m: closest_pair(m, pts).distance_sq)
        assert all(o == outs[0] for o in outs)

    def test_linear_solver(self, rng):
        a = rng.standard_normal((10, 10)) + 10 * np.eye(10)
        b = rng.standard_normal(10)
        outs = _all_models(lambda m: solve(m, a, b).to_list())
        for o in outs:
            assert np.allclose(o, outs[0])

    def test_mat_vec(self, rng):
        a = rng.standard_normal((9, 9))
        x = rng.standard_normal(9)
        outs = _all_models(lambda m: mat_vec(m, a, x).to_list())
        for o in outs:
            assert np.allclose(o, outs[0])

    def test_list_rank(self, rng):
        n = 200
        nxt = np.append(rng.permutation(np.arange(1, n)), -1)
        nxt = np.append(np.arange(1, n), -1)
        outs = _all_models(lambda m: list_rank(m.vector(nxt)).to_list())
        assert all(o == outs[0] for o in outs)

    def test_max_flow(self, rng):
        n = 20
        edges, _ = random_connected_graph(rng, n, 25)
        caps = rng.integers(1, 15, len(edges))
        outs = _all_models(lambda m: max_flow(m, n, edges, caps, 0, n - 1).value)
        assert all(o == outs[0] for o in outs)


class TestSeededAlgorithmsAgreeAcrossModels:
    """Probabilistic algorithms draw randomness from the machine's seeded
    generator, so equal seeds give equal results on every model."""

    def test_quicksort(self, rng):
        data = rng.integers(0, 5000, 400)
        outs = _all_models(lambda m: quicksort(m.vector(data)).to_list())
        assert all(o == outs[0] for o in outs)

    def test_mst_weight(self, rng):
        edges, weights = random_connected_graph(rng, 100, 150)
        outs = _all_models(
            lambda m: minimum_spanning_tree(m, 100, edges, weights).total_weight)
        assert all(o == outs[0] for o in outs)

    def test_connected_components(self, rng):
        edges = rng.integers(0, 60, (80, 2))
        edges = edges[edges[:, 0] != edges[:, 1]]
        edges = np.unique(np.sort(edges, axis=1), axis=0)
        outs = _all_models(
            lambda m: connected_components(m, 60, edges).labels.tolist())
        assert all(o == outs[0] for o in outs)

    def test_mis(self, rng):
        edges, _ = random_connected_graph(rng, 50, 60)
        outs = _all_models(
            lambda m: maximal_independent_set(m, 50, edges).in_set.tolist())
        assert all(o == outs[0] for o in outs)

    def test_tree_contraction(self, rng):
        t = ExpressionTree.random(rng, 100)
        outs = _all_models(lambda m: tree_contract(m, t)[0])
        assert all(o == outs[0] for o in outs)

    def test_biconnected(self, rng):
        edges, _ = random_connected_graph(rng, 40, 50)
        def canon(m):
            labels = biconnected_components(m, 40, edges).edge_labels
            d = {}
            return [d.setdefault(int(l), len(d)) for l in labels]
        outs = _all_models(canon)
        assert all(o == outs[0] for o in outs)

    def test_knapsack(self, rng):
        values = rng.integers(1, 50, 12)
        weights = rng.integers(1, 20, 12)
        outs = _all_models(
            lambda m: knapsack_branch_and_bound(m, values, weights, 60).best_value)
        assert all(o == outs[0] for o in outs)


class TestSeedReproducibility:
    def test_same_seed_same_everything(self, rng):
        edges, weights = random_connected_graph(rng, 128, 200)
        runs = []
        for _ in range(2):
            m = Machine("scan", seed=123)
            res = minimum_spanning_tree(m, 128, edges, weights)
            runs.append((res.total_weight, res.rounds, m.steps,
                         res.edge_ids.tolist()))
        assert runs[0] == runs[1]

    def test_different_seeds_may_take_different_rounds(self, rng):
        edges, weights = random_connected_graph(rng, 256, 400)
        rounds = set()
        for seed in range(8):
            m = Machine("scan", seed=seed)
            rounds.add(minimum_spanning_tree(m, 256, edges, weights).rounds)
        assert len(rounds) > 1  # the coin flips really vary
