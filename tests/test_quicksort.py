"""Segmented parallel quicksort (Section 2.3.1)."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Machine
from repro.algorithms.quicksort import QuicksortTrace, quicksort


class TestCorrectness:
    @given(st.lists(st.integers(-10**6, 10**6), max_size=250))
    @settings(max_examples=40, deadline=None)
    def test_sorts(self, xs):
        m = Machine("scan", seed=1)
        assert quicksort(m.vector(xs)).to_list() == sorted(xs)

    def test_floats(self, rng):
        m = Machine("scan", seed=2)
        data = rng.standard_normal(200)
        out = quicksort(m.vector(data, dtype=np.float64))
        assert out.to_list() == sorted(data.tolist())

    def test_empty_and_singleton(self):
        m = Machine("scan")
        assert quicksort(m.vector([])).to_list() == []
        assert quicksort(m.vector([5])).to_list() == [5]

    def test_already_sorted_exits_immediately(self):
        m = Machine("scan", seed=3)
        with m.measure() as r:
            quicksort(m.vector(list(range(100))))
        # one sortedness check, no split work
        assert r.delta.by_kind.get("scan", 0) <= 1

    def test_all_equal(self):
        m = Machine("scan", seed=4)
        assert quicksort(m.vector([3] * 50)).to_list() == [3] * 50

    def test_reverse_sorted(self):
        m = Machine("scan", seed=5)
        assert quicksort(m.vector(list(range(100, 0, -1)))).to_list() == \
            list(range(1, 101))

    def test_first_pivot_rule(self):
        m = Machine("scan")
        data = [6, 2, 9, 1, 5, 5, 8]
        assert quicksort(m.vector(data), pivot="first").to_list() == sorted(data)

    def test_unknown_pivot_rule(self):
        m = Machine("scan")
        with pytest.raises(ValueError, match="pivot"):
            quicksort(m.vector([2, 1]), pivot="median")

    def test_nonconvergence_guard(self):
        m = Machine("scan", seed=6)
        with pytest.raises(RuntimeError, match="converge"):
            quicksort(m.vector([4, 3, 2, 1] * 10), max_iterations=1)


class TestFigure5:
    def test_trace_reproduces_paper(self):
        """Figure 5's first-pivot trace on the paper's keys."""
        m = Machine("scan")
        keys = [6.4, 9.2, 3.4, 1.6, 8.7, 4.1, 9.2, 3.4]
        trace = QuicksortTrace()
        out = quicksort(m.vector(keys, dtype=np.float64), pivot="first", trace=trace)
        assert out.to_list() == sorted(keys)
        # iteration 1: single segment, pivot 6.4 everywhere
        assert trace.pivots[0] == [6.4] * 8
        assert trace.seg_flags[0] == [True] + [False] * 7
        # iteration 2 operates on the split of Figure 5
        assert trace.keys[1] == [3.4, 1.6, 4.1, 3.4, 6.4, 9.2, 8.7, 9.2]
        assert trace.seg_flags[1] == [True, False, False, False, True,
                                      True, False, False]
        assert trace.pivots[1] == [3.4, 3.4, 3.4, 3.4, 6.4, 9.2, 9.2, 9.2]


class TestComplexity:
    def test_expected_log_iterations(self, rng):
        """Random pivots: iterations grow like lg n, not n."""
        m = Machine("scan", seed=7)
        trace = QuicksortTrace()
        data = rng.permutation(4096)
        quicksort(m.vector(data), trace=trace)
        assert trace.iterations <= 4 * 12  # 4 lg n is a generous bound

    def test_scan_model_beats_erew(self, rng):
        data = rng.permutation(512)
        ms = Machine("scan", seed=8)
        quicksort(ms.vector(data))
        me = Machine("erew", seed=8)
        quicksort(me.vector(data))
        assert me.steps > 2 * ms.steps
