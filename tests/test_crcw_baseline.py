"""Shiloach-Vishkin CRCW connected components (Table 1's cited CRCW
algorithm) as a baseline for the scan-model implementation."""
import numpy as np
import pytest

from repro import CapabilityError, Machine
from repro.algorithms import connected_components
from repro.baselines import shiloach_vishkin_components, union_find_components
from repro.graph import random_connected_graph


def _canon(labels):
    seen = {}
    return tuple(seen.setdefault(int(x), len(seen)) for x in labels)


class TestCorrectness:
    def test_basic(self):
        m = Machine("crcw")
        res = shiloach_vishkin_components(m, 6, [(0, 1), (1, 2), (3, 4)])
        assert res.num_components == 3
        assert _canon(res.labels) == _canon(union_find_components(
            6, [(0, 1), (1, 2), (3, 4)]))

    def test_no_edges(self):
        m = Machine("crcw")
        res = shiloach_vishkin_components(m, 4, np.empty((0, 2), dtype=int))
        assert res.num_components == 4

    @pytest.mark.parametrize("seed", range(12))
    def test_random_graphs(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 300))
        edges = rng.integers(0, n, (int(rng.integers(0, 3 * n)), 2))
        edges = edges[edges[:, 0] != edges[:, 1]]
        m = Machine("crcw")
        res = shiloach_vishkin_components(m, n, edges)
        assert _canon(res.labels) == _canon(union_find_components(n, edges))

    def test_long_path_converges_logarithmically(self):
        n = 4096
        edges = [(i, i + 1) for i in range(n - 1)]
        m = Machine("crcw")
        res = shiloach_vishkin_components(m, n, edges)
        assert res.num_components == 1
        assert res.iterations <= 20  # O(lg n)


class TestCapabilities:
    def test_refuses_weaker_models(self):
        for model in ("erew", "crew", "scan"):
            with pytest.raises(CapabilityError):
                shiloach_vishkin_components(Machine(model), 3, [(0, 1)])


class TestAgainstScanModel:
    def test_both_scale_logarithmically(self):
        """Table 1's CC row: CRCW (Shiloach-Vishkin) and scan-model CC are
        both O(lg n) — steps grow by a bounded increment per quadrupling —
        while their constants differ (SV leans on the stronger memory
        primitives, the scan version maintains a whole representation)."""
        def sv_steps(n):
            rng = np.random.default_rng(0)
            edges, _ = random_connected_graph(rng, n, 2 * n)
            m = Machine("crcw")
            shiloach_vishkin_components(m, n, edges)
            return m.steps

        def scan_steps(n):
            rng = np.random.default_rng(0)
            edges, _ = random_connected_graph(rng, n, 2 * n)
            m = Machine("scan", seed=0)
            connected_components(m, n, edges)
            return m.steps

        sv = [sv_steps(n) for n in (64, 256, 1024)]
        sc = [scan_steps(n) for n in (64, 256, 1024)]
        assert sv[2] < 2.5 * sv[1]
        assert sc[2] < 2.5 * sc[1]
