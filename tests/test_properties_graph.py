"""Hypothesis property suites for the graph layer: representation
invariants survive arbitrary builds, star merges, and subgraph filters."""
import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import Machine
from repro.baselines import union_find_components
from repro.graph import from_edges, star_merge


@st.composite
def graph_case(draw):
    """A random simple graph where every vertex has degree >= 1."""
    n = draw(st.integers(2, 24))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    k = draw(st.integers(1, min(len(possible), 40)))
    idx = draw(st.permutations(range(len(possible))))
    edges = sorted(possible[i] for i in idx[:k])
    covered = {v for e in edges for v in e}
    # attach any uncovered vertices
    for v in range(n):
        if v not in covered:
            other = (v + 1) % n if (v + 1) % n != v else 0
            e = (min(v, other), max(v, other))
            if e not in edges:
                edges.append(e)
    edges = sorted(set(edges))
    weights = draw(st.permutations(range(len(edges))))
    return n, np.array(edges, dtype=np.int64), np.array(weights, dtype=np.int64)


class TestRepresentationProperties:
    @given(graph_case())
    @settings(max_examples=40, deadline=None)
    def test_build_invariants(self, case):
        n, edges, weights = case
        g = from_edges(Machine("scan"), n, edges, weights=weights)
        g.validate()
        assert g.num_slots == 2 * len(edges)
        assert g.to_edge_set() == {tuple(e) for e in edges.tolist()}
        assert int(g.degrees().sum()) == 2 * len(edges)

    @given(graph_case())
    @settings(max_examples=30, deadline=None)
    def test_neighbor_sum_equals_adjacency_product(self, case):
        n, edges, weights = case
        m = Machine("scan")
        g = from_edges(m, n, edges, weights=weights)
        vals = np.arange(1, n + 1, dtype=np.int64)
        got = g.neighbor_reduce(m.vector(vals), "sum").data
        adj = np.zeros((n, n), dtype=np.int64)
        for u, v in edges:
            adj[u, v] += 1
            adj[v, u] += 1
        assert np.array_equal(got, adj @ vals)

    @given(graph_case(), st.integers(0, 2**30))
    @settings(max_examples=30, deadline=None)
    def test_subgraph_invariants(self, case, seed):
        n, edges, weights = case
        m = Machine("scan")
        g = from_edges(m, n, edges, weights=weights)
        keep = np.random.default_rng(seed).random(n) < 0.7
        sub = g.subgraph(m.flags(keep))
        sub.validate()
        expect = {tuple(e) for e in edges.tolist() if keep[e[0]] and keep[e[1]]}
        got = set()
        seg_id = np.cumsum(sub.seg_flags.data) - 1 if sub.num_slots else []
        for s in range(sub.num_slots):
            a = sub.vertex_reps[seg_id[s]]
            b = sub.vertex_reps[seg_id[sub.cross_pointers.data[s]]]
            got.add((min(int(a), int(b)), max(int(a), int(b))))
        assert got == expect


class TestStarMergeProperties:
    @given(graph_case(), st.integers(0, 2**30))
    @settings(max_examples=30, deadline=None)
    def test_merge_preserves_connectivity(self, case, seed):
        """Star merging never changes which original vertices are
        connected: contract, then compare the quotient connectivity."""
        n, edges, weights = case
        rng = np.random.default_rng(seed)
        m = Machine("scan")
        g = from_edges(m, n, edges, weights=weights)

        parent = rng.integers(0, 2, n).astype(bool)
        adj = {v: [] for v in range(n)}
        for ei, (u, v) in enumerate(edges):
            adj[int(u)].append((int(weights[ei]), ei, int(v)))
            adj[int(v)].append((int(weights[ei]), ei, int(u)))
        star_ids, child_of = [], {}
        for v in range(n):
            if parent[v] or not adj[v]:
                continue
            _, ei, other = min(adj[v])
            if parent[other]:
                star_ids.append(ei)
                child_of[v] = other
        effective = parent.copy()
        for v in range(n):
            if not parent[v] and v not in child_of:
                effective[v] = True

        eid = g.slot_data["edge_id"].data
        res = star_merge(g, m.flags(np.isin(eid, star_ids)), m.flags(effective))
        res.graph.validate()

        # quotient connectivity must match the original's
        rep = {v: child_of.get(v, v) for v in range(n)}
        orig = union_find_components(n, edges)
        quotient_edges = [(rep[int(u)], rep[int(v)]) for u, v in edges]
        quotient = union_find_components(n, quotient_edges)
        # two original vertices are in the same original component iff
        # their representatives share a quotient component
        for v in range(n):
            for w in range(v + 1, n):
                same_orig = orig[v] == orig[w]
                same_quot = quotient[rep[v]] == quotient[rep[w]]
                assert same_orig == same_quot
