"""Section 3.4: every scan from the two primitives alone.

These tests pin the *literal constructions* (bit appending, inversion,
reversal, float flipping) against both the direct implementations and
plain oracles — the paper's claim that a machine with only an integer
``+-scan`` and ``max-scan`` loses nothing.
"""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Machine
from repro.core import scans, segmented, simulate


def _m():
    return Machine("scan")


@st.composite
def seg_case(draw, lo=0, hi=200):
    n = draw(st.integers(1, 80))
    values = draw(st.lists(st.integers(lo, hi), min_size=n, max_size=n))
    flags = [True] + [draw(st.booleans()) for _ in range(n - 1)]
    return values, flags


class TestDerivedScans:
    @given(st.lists(st.integers(-10**6, 10**6), max_size=150))
    @settings(max_examples=50, deadline=None)
    def test_min_scan_construction_matches_direct(self, xs):
        a = simulate.sim_min_scan(_m().vector(xs)).to_list()
        b = scans.min_scan(_m().vector(xs)).to_list()
        assert a == b

    @given(st.lists(st.booleans(), max_size=120))
    @settings(max_examples=50, deadline=None)
    def test_or_scan_construction(self, xs):
        a = simulate.sim_or_scan(_m().flags(xs)).to_list()
        b = scans.or_scan(_m().flags(xs)).to_list()
        assert a == b

    @given(st.lists(st.booleans(), max_size=120))
    @settings(max_examples=50, deadline=None)
    def test_and_scan_construction(self, xs):
        a = simulate.sim_and_scan(_m().flags(xs)).to_list()
        b = scans.and_scan(_m().flags(xs)).to_list()
        assert a == b

    @given(st.lists(st.integers(0, 10**6), max_size=120))
    @settings(max_examples=50, deadline=None)
    def test_backward_constructions(self, xs):
        assert (simulate.sim_back_plus_scan(_m().vector(xs)).to_list()
                == scans.back_plus_scan(_m().vector(xs)).to_list())
        assert (simulate.sim_back_max_scan(_m().vector(xs), identity=0).to_list()
                == scans.back_max_scan(_m().vector(xs), identity=0).to_list())


class TestFigure16:
    def test_paper_example(self):
        m = _m()
        a = m.vector([5, 1, 3, 4, 3, 9, 2, 6])
        sflag = m.flags([1, 0, 1, 0, 0, 0, 1, 0])
        out = simulate.sim_seg_max_scan(a, sflag, bits=4)
        assert out.to_list() == [0, 5, 0, 3, 4, 4, 0, 2]

    @given(seg_case())
    @settings(max_examples=60, deadline=None)
    def test_seg_max_scan_construction_matches_direct(self, case):
        values, flags = case
        m1, m2 = _m(), _m()
        lit = simulate.sim_seg_max_scan(m1.vector(values), m1.flags(flags), bits=9)
        direct = segmented.seg_max_scan(m2.vector(values), m2.flags(flags), identity=0)
        assert lit.to_list() == direct.to_list()

    @given(seg_case())
    @settings(max_examples=60, deadline=None)
    def test_seg_plus_scan_construction_matches_direct(self, case):
        values, flags = case
        m1, m2 = _m(), _m()
        lit = simulate.sim_seg_plus_scan(m1.vector(values), m1.flags(flags))
        direct = segmented.seg_plus_scan(m2.vector(values), m2.flags(flags))
        assert lit.to_list() == direct.to_list()

    @given(seg_case())
    @settings(max_examples=40, deadline=None)
    def test_seg_min_scan_construction_matches_direct(self, case):
        values, flags = case
        m1, m2 = _m(), _m()
        lit = simulate.sim_seg_min_scan(m1.vector(values), m1.flags(flags), bits=9)
        direct = segmented.seg_min_scan(m2.vector(values), m2.flags(flags),
                                        identity=(1 << 9) - 1)
        assert lit.to_list() == direct.to_list()

    @given(seg_case(hi=100))
    @settings(max_examples=40, deadline=None)
    def test_seg_copy_construction(self, case):
        values, flags = case
        m1, m2 = _m(), _m()
        lit = simulate.sim_seg_copy(m1.vector(values), m1.flags(flags), bits=8)
        direct = segmented.seg_copy(m2.vector(values), m2.flags(flags))
        assert lit.to_list() == direct.to_list()

    def test_bit_bounds_enforced(self):
        m = _m()
        with pytest.raises(ValueError, match=r"2\^4"):
            simulate.sim_seg_max_scan(m.vector([16]), m.flags([1]), bits=4)
        with pytest.raises(ValueError):
            simulate.sim_seg_max_scan(m.vector([1]), m.flags([1]), bits=0)

    def test_negative_values_rejected(self):
        m = _m()
        with pytest.raises(ValueError):
            simulate.sim_seg_plus_scan(m.vector([-1]), m.flags([1]))

    def test_uses_only_primitive_scans(self):
        """The construction must issue only the two primitives: its cost is
        a handful of 'scan' charges and elementwise steps."""
        m = _m()
        n = 64
        simulate.sim_seg_max_scan(m.vector(np.arange(n)),
                                  m.flags([True] + [False] * (n - 1)), bits=8)
        kinds = set(m.counter.by_kind)
        assert kinds <= {"scan", "elementwise", "permute"}
        assert m.counter.by_kind["scan"] == 2  # enumerate + max-scan


class TestFloatScans:
    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                              width=32), max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_float_max_scan(self, xs):
        out = simulate.sim_float_max_scan(
            _m().vector(np.array(xs, dtype=np.float64), dtype=np.float64)).to_list()
        run = -np.inf
        for i, x in enumerate(xs):
            assert out[i] == run
            run = max(run, x)

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                              width=32), max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_float_min_scan(self, xs):
        out = simulate.sim_float_min_scan(
            _m().vector(np.array(xs, dtype=np.float64), dtype=np.float64)).to_list()
        run = np.inf
        for i, x in enumerate(xs):
            assert out[i] == run
            run = min(run, x)

    def test_float_scan_requires_floats(self):
        with pytest.raises(TypeError):
            simulate.sim_float_max_scan(_m().vector([1, 2]))

    def test_negative_zero_handled(self):
        out = simulate.sim_float_max_scan(
            _m().vector([-0.0, 1.0, 0.0], dtype=np.float64)).to_list()
        assert out[1] in (0.0, -0.0)
        assert out[2] == 1.0
