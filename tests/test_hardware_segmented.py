"""The direct segmented-scan circuit and its cost versus the two-primitive
simulation."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Machine
from repro.core import segmented
from repro.hardware.segmented_tree import (
    SegmentedTreeScanCircuit,
    segmented_scan_cycles,
    simulated_segmented_scan_cycles,
)


@st.composite
def circuit_case(draw):
    lg = draw(st.integers(1, 6))
    n = 1 << lg
    vals = draw(st.lists(st.integers(0, 255), min_size=n, max_size=n))
    flags = [True] + [draw(st.booleans()) for _ in range(n - 1)]
    return vals, flags


class TestCorrectness:
    @given(circuit_case())
    @settings(max_examples=60, deadline=None)
    def test_plus_matches_segmented_scan(self, case):
        vals, flags = case
        out, _ = SegmentedTreeScanCircuit(len(vals), 20, "plus").scan(vals, flags)
        m = Machine("scan")
        expect = segmented.seg_plus_scan(m.vector(vals), m.flags(flags)).data
        assert np.array_equal(out, expect)

    @given(circuit_case())
    @settings(max_examples=60, deadline=None)
    def test_max_matches_segmented_scan(self, case):
        vals, flags = case
        out, _ = SegmentedTreeScanCircuit(len(vals), 20, "max").scan(vals, flags)
        m = Machine("scan")
        expect = segmented.seg_max_scan(m.vector(vals), m.flags(flags),
                                        identity=0).data
        assert np.array_equal(out, expect)

    def test_single_segment_reduces_to_plain_scan(self):
        vals = [3, 1, 4, 1, 5, 9, 2, 6]
        flags = [True] + [False] * 7
        out, _ = SegmentedTreeScanCircuit(8, 16, "plus").scan(vals, flags)
        assert out.tolist() == [0, 3, 4, 8, 9, 14, 23, 25]

    def test_every_element_its_own_segment(self):
        out, _ = SegmentedTreeScanCircuit(4, 8, "plus").scan(
            [5, 6, 7, 8], [True] * 4)
        assert out.tolist() == [0, 0, 0, 0]

    def test_plus_truncates_mod_width(self):
        out, _ = SegmentedTreeScanCircuit(4, 4, "plus").scan(
            [15, 15, 15, 15], [True, False, False, False])
        assert out.tolist() == [0, 15, 30 % 16, 45 % 16]


class TestValidation:
    def test_power_of_two(self):
        with pytest.raises(ValueError):
            SegmentedTreeScanCircuit(6, 8)

    def test_first_flag(self):
        with pytest.raises(ValueError, match="first leaf"):
            SegmentedTreeScanCircuit(4, 8).scan([1, 2, 3, 4],
                                                [False, True, False, False])

    def test_value_range(self):
        with pytest.raises(ValueError):
            SegmentedTreeScanCircuit(4, 4).scan([16, 0, 0, 0], [True] * 4)

    def test_bad_op(self):
        with pytest.raises(ValueError):
            SegmentedTreeScanCircuit(4, 8, "xor")


class TestAblation:
    def test_direct_hardware_beats_two_primitive_simulation(self):
        """'Little additional hardware' buys roughly half the cycles: one
        pipeline pass with a flag bit versus two passes over widened
        operands."""
        for n in (256, 4096, 65536):
            direct = segmented_scan_cycles(n, 32)
            simulated = simulated_segmented_scan_cycles(n, 32)
            assert direct < simulated
            assert simulated < 3 * direct  # same order: the trick is cheap

    def test_reported_cycles(self):
        _, cycles = SegmentedTreeScanCircuit(16, 8, "plus").scan(
            list(range(16)), [True] + [False] * 15)
        assert cycles == segmented_scan_cycles(16, 8)
