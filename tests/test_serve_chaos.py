"""Chaos and robustness: the server under hostile and unlucky clients.

Mirrors the teardown-hygiene discipline of
``tests/test_distributed_teardown.py``: misbehavior must be *classified*
(a structured error code on the wire), never a crash, a hang, or a leak.
Pinned here:

* malformed JSON frames and non-object frames -> ``bad_request``, and
  the connection keeps serving;
* an oversized wire frame -> one ``too_large`` reply, then the server
  hangs up (framing is unrecoverable); an oversized *vector* in a valid
  frame -> ``too_large`` with the connection intact;
* unknown ops, bad segment layouts, NaN sorts -> ``bad_request``;
* quota exhaustion -> ``quota_exhausted``, and the token bucket refills
  on an injectable clock;
* admission past ``max_pending`` -> ``overloaded``; queued past
  ``request_timeout`` -> ``timeout``;
* a client that disconnects mid-stream leaves no wreckage: its work
  completes, the undeliverable reply is counted, other clients are
  unaffected;
* drain-on-shutdown resolves every pending future and leaves no asyncio
  task behind.
"""
import asyncio
import json

import numpy as np

from repro.serve import ScanServer, ServeClient, ServeConfig, ServeError

HOST = "127.0.0.1"


async def _raw_request(port: int, payload: bytes, *, limit: int = 1 << 20):
    """Write raw bytes, return (first response line or b'', eof_after)."""
    reader, writer = await asyncio.open_connection(HOST, port, limit=limit)
    writer.write(payload)
    await writer.drain()
    line = await reader.readline()
    follow_up = b""
    if line:
        try:
            follow_up = await asyncio.wait_for(reader.readline(), 1.0)
        except asyncio.TimeoutError:
            follow_up = b"open"
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionResetError, BrokenPipeError):
        pass
    return line, follow_up


def test_malformed_frames_get_structured_bad_request():
    async def main():
        server = ScanServer(ServeConfig(port=0, batch_window=0.001))
        await server.start()
        try:
            for garbage in (b"this is not json\n",
                            b'{"op": "plus_scan", unquoted}\n',
                            b"[1, 2, 3]\n",
                            b'"just a string"\n'):
                line, _ = await _raw_request(server.port, garbage)
                frame = json.loads(line)
                assert frame["ok"] is False
                assert frame["error"]["code"] == "bad_request", frame
            # a poisoned connection still serves the next valid frame
            reader, writer = await asyncio.open_connection(HOST, server.port)
            writer.write(b"garbage\n"
                         b'{"id": 1, "op": "plus_scan", "dtype": "int64",'
                         b' "values": [1, 2, 3]}\n')
            await writer.drain()
            first = json.loads(await reader.readline())
            second = json.loads(await reader.readline())
            assert first["ok"] is False
            assert second["ok"] is True and second["values"] == [0, 1, 3]
            writer.close()
            await writer.wait_closed()
        finally:
            await server.shutdown()

    asyncio.run(main())


def test_oversized_frame_rejected_then_disconnected():
    async def main():
        server = ScanServer(ServeConfig(port=0, max_frame_bytes=512))
        await server.start()
        try:
            big = b'{"op": "plus_scan", "values": [' \
                  + b"1," * 4096 + b"1]}\n"
            line, follow_up = await _raw_request(server.port, big)
            frame = json.loads(line)
            assert frame["ok"] is False
            assert frame["error"]["code"] == "too_large"
            assert frame["error"]["details"] == {"max_frame_bytes": 512}
            assert follow_up == b""  # server hung up: framing was lost
        finally:
            await server.shutdown()

    asyncio.run(main())


def test_oversized_vector_rejected_connection_survives():
    async def main():
        server = ScanServer(ServeConfig(port=0, max_elements=16,
                                        batch_window=0.001))
        await server.start()
        try:
            client = await ServeClient.connect(HOST, server.port)
            try:
                await client.scan("plus_scan", np.arange(32))
                raise AssertionError("expected ServeError")
            except ServeError as err:
                assert err.code == "too_large"
                # the error carries the limit in-band, so a client can
                # right-size its retry without a second round trip
                assert err.details == {"max_elements": 16, "got": 32}
            # ... and the stats op advertises the same limits up front
            limits = (await client.stats())["limits"]
            assert limits["max_elements"] == 16
            assert limits["max_frame_bytes"] == server.config.max_frame_bytes
            # same connection, conforming vector: served
            out = await client.scan("plus_scan", np.arange(8))
            assert np.array_equal(out, np.arange(8).cumsum() - np.arange(8))
            await client.close()
        finally:
            await server.shutdown()

    asyncio.run(main())


def test_bad_inputs_are_classified_not_crashes():
    async def main():
        server = ScanServer(ServeConfig(port=0, batch_window=0.001))
        await server.start()
        try:
            client = await ServeClient.connect(HOST, server.port)
            for kwargs in (
                dict(op="definitely_not_an_op", values=[1]),
                dict(op="plus_scan", values=[1, 2],
                     seg_lengths=[2]),              # not a segmented op
                dict(op="seg_plus_scan", values=[1, 2, 3]),  # layout missing
                dict(op="seg_plus_scan", values=[1, 2, 3],
                     seg_lengths=[2, 7]),           # layout sum mismatch
                dict(op="sort", values=[1.0, float("nan")]),  # NaN keys
            ):
                try:
                    await client.scan(**kwargs)
                    raise AssertionError(f"expected bad_request for {kwargs}")
                except ServeError as err:
                    assert err.code == "bad_request", (kwargs, err.code)
            await client.close()
        finally:
            await server.shutdown()

    asyncio.run(main())


def test_quota_exhaustion_and_clock_driven_refill():
    clock = {"now": 0.0}

    async def main():
        server = ScanServer(ServeConfig(
            port=0, batch_window=0.001, cache_entries=0,
            quota_budget=1, quota_refill_per_s=10.0,
            quota_clock=lambda: clock["now"]))
        await server.start()
        try:
            client = await ServeClient.connect(HOST, server.port)
            # first request admitted; its debit empties the budget
            out = await client.scan("plus_scan", [5, 6], tenant="t1")
            assert np.array_equal(out, [0, 5])
            try:
                await client.scan("plus_scan", [7, 8], tenant="t1")
                raise AssertionError("expected quota_exhausted")
            except ServeError as err:
                assert err.code == "quota_exhausted"
                assert "t1" in err.message
            # an unrelated tenant is not starved by t1's debt
            assert len(await client.scan("plus_scan", [1], tenant="t2")) == 1
            # advance the injectable clock far enough to refill t1
            clock["now"] += 1000.0
            out = await client.scan("plus_scan", [7, 8], tenant="t1")
            assert np.array_equal(out, [0, 7])
            await client.close()
        finally:
            await server.shutdown()

    asyncio.run(main())


def test_admission_backpressure_returns_overloaded():
    async def main():
        server = ScanServer(ServeConfig(
            port=0, batch_window=0.2, max_pending=1, cache_entries=0))
        await server.start()
        try:
            client = await ServeClient.connect(HOST, server.port)
            results = await asyncio.gather(*[
                client.request("plus_scan", [i, i + 1]) for i in range(6)])
            ok = [r for r in results if r.get("ok")]
            rejected = [r for r in results if not r.get("ok")]
            assert ok, results
            assert rejected, "expected at least one overloaded rejection"
            assert all(r["error"]["code"] == "overloaded"
                       for r in rejected), results
            await client.close()
        finally:
            await server.shutdown()

    asyncio.run(main())


def test_request_timeout_classified():
    async def main():
        # the deadline expires while the request sits in the 100ms window
        server = ScanServer(ServeConfig(
            port=0, batch_window=0.1, request_timeout=0.01,
            cache_entries=0))
        await server.start()
        try:
            client = await ServeClient.connect(HOST, server.port)
            try:
                await client.scan("plus_scan", [1, 2, 3])
                raise AssertionError("expected timeout")
            except ServeError as err:
                assert err.code == "timeout"
            await client.close()
        finally:
            await server.shutdown()

    asyncio.run(main())


def test_client_disconnect_mid_stream_leaves_no_wreckage():
    async def main():
        server = ScanServer(ServeConfig(port=0, batch_window=0.05,
                                        cache_entries=0))
        await server.start()
        dropped_before = server.metrics.dropped_replies.value
        try:
            # the deserter: sends work, hangs up before the answer
            _, writer = await asyncio.open_connection(HOST, server.port)
            writer.write(b'{"id": 1, "op": "plus_scan", "dtype": "int64",'
                         b' "values": [1, 2, 3]}\n')
            await writer.drain()
            writer.close()
            await writer.wait_closed()

            # a loyal client on another connection is unaffected
            client = await ServeClient.connect(HOST, server.port)
            out = await client.scan("plus_scan", [10, 20, 30])
            assert np.array_equal(out, [0, 10, 30])

            # the deserter's work still completed and was accounted
            deadline = asyncio.get_running_loop().time() + 5.0
            while (server.stats.ok < 2
                   and asyncio.get_running_loop().time() < deadline):
                await asyncio.sleep(0.01)
            assert server.stats.ok == 2
            assert (server.metrics.dropped_replies.value
                    > dropped_before)
            await client.close()
        finally:
            await server.shutdown()
        assert server.pending_count == 0

    asyncio.run(main())


def test_drain_on_shutdown_no_pending_futures_no_leaked_tasks():
    async def main():
        server = ScanServer(ServeConfig(port=0, batch_window=0.2,
                                        cache_entries=0))
        await server.start()
        client = await ServeClient.connect(HOST, server.port)
        # park 20 requests in the batch window, then shut down under them
        jobs = [asyncio.ensure_future(client.scan("plus_scan",
                                                  [i, i + 1, i + 2]))
                for i in range(20)]
        await asyncio.sleep(0.02)          # let them all be admitted
        assert server.pending_count > 0
        await server.shutdown(drain=True)

        outs = await asyncio.gather(*jobs)
        for i, out in enumerate(outs):
            assert np.array_equal(out, [0, i, 2 * i + 1])
        assert server.pending_count == 0
        await client.close()

        # nothing still running but this coroutine: no leaked tasks
        leaked = [t for t in asyncio.all_tasks()
                  if t is not asyncio.current_task() and not t.done()]
        assert not leaked, leaked

    asyncio.run(main())


def test_shutdown_without_drain_answers_queued_work_with_goodbye():
    async def main():
        server = ScanServer(ServeConfig(port=0, batch_window=5.0,
                                        cache_entries=0))
        await server.start()
        client = await ServeClient.connect(HOST, server.port)
        jobs = [asyncio.ensure_future(client.request("plus_scan", [i]))
                for i in range(5)]
        await asyncio.sleep(0.02)
        await server.shutdown(drain=False)
        frames = await asyncio.gather(*jobs)
        codes = {f["error"]["code"] for f in frames if not f.get("ok")}
        # abandoned work is told so, in so many words — never silence
        assert codes <= {"shutting_down"}, frames
        assert any(not f.get("ok") for f in frames)
        assert server.pending_count == 0
        await client.close()

    asyncio.run(main())
