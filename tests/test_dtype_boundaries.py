"""Every scan x every dtype x every backend, at the dtype's edges.

The satellite suite of the conformance fuzzer: a deterministic (non-
random) grid of the inputs where dtype handling breaks — ``iinfo.min`` /
``iinfo.max`` and neighbors, unsigned widths, bool, float64 — plus the
empty and length-1 vectors, checked against the serial oracle on all
three execution backends.  The fuzzer explores; this grid pins the
boundaries forever.
"""
import numpy as np
import pytest

from repro.verify import OPS, Case, run_case

SCAN_OPS = sorted(name for name, spec in OPS.items()
                  if spec.family == "scan")
DTYPES = ["int8", "int16", "uint32", "int64", "bool", "float64"]
BACKENDS = ("numpy", "blocked:3", "reference")


def _boundary_values(dtype: str) -> tuple:
    dt = np.dtype(dtype)
    if dt == np.bool_:
        return (True, False, False, True, True)
    if np.issubdtype(dt, np.integer):
        info = np.iinfo(dt)
        vals = [info.min, info.min + 1, 0, 1, info.max - 1, info.max]
        if info.min < 0:
            vals.append(-1)
        return tuple(vals)
    return (0.0, "-0.0", 1.0, -1.0, "inf", "-inf", 5e-324)


def _cases_for(op: str, dtype: str):
    spec = OPS[op]
    boundary = _boundary_values(dtype)
    if spec.additive and dtype == "float64":
        boundary = (0.0, "-0.0", 1.0, -1.0, 0.5, 256.0)  # finite +-family
    vectors = [(), boundary[:1], boundary,
               (boundary[0],) * 4]                        # all-equal
    for values in vectors:
        yield Case(op=op, dtype=dtype, values=values)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("op", SCAN_OPS)
def test_scan_at_dtype_boundaries(op, dtype, backend):
    for case in _cases_for(op, dtype):
        outcome = run_case(case, engines=(backend,))
        assert outcome.ok, "\n".join(
            d.describe() for d in outcome.divergences)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize(
    "op", sorted(n for n, s in OPS.items()
                 if s.family in ("reduce", "distribute")))
def test_reduce_distribute_at_dtype_boundaries(op, dtype, backend):
    for case in _cases_for(op, dtype):
        outcome = run_case(case, engines=(backend,))
        assert outcome.ok, "\n".join(
            d.describe() for d in outcome.divergences)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize(
    "op", ["seg_plus_scan", "seg_max_scan", "seg_min_scan", "seg_or_scan",
           "seg_and_scan", "seg_back_plus_scan", "seg_back_max_scan",
           "seg_back_min_scan"])
def test_segmented_scan_at_dtype_boundaries(op, dtype, backend):
    spec = OPS[op]
    boundary = _boundary_values(dtype)
    if spec.additive and dtype == "float64":
        boundary = (0.0, "-0.0", 1.0, -1.0, 0.5, 256.0)
    n = len(boundary)
    layouts = [(n,), (1,) * n, (n - 1, 1)]
    cases = [Case(op=op, dtype=dtype, values=(), seg_lengths=()),
             Case(op=op, dtype=dtype, values=boundary[:1],
                  seg_lengths=(1,))]
    cases += [Case(op=op, dtype=dtype, values=boundary, seg_lengths=lay)
              for lay in layouts]
    for case in cases:
        outcome = run_case(case, engines=(backend,))
        assert outcome.ok, "\n".join(
            d.describe() for d in outcome.divergences)


def test_min_scan_signed_boundary_exact():
    # the original negation-overflow bug, asserted against literal values
    from repro import Machine
    from repro.core import scans

    lo = np.iinfo(np.int64).min
    for backend in BACKENDS:
        m = Machine("scan", backend=backend)
        out = scans.min_scan(m.vector(np.array([lo, 0, 5], dtype=np.int64)))
        assert out.to_list() == [np.iinfo(np.int64).max, lo, lo]


def test_min_scan_unsigned_boundary_exact():
    from repro import Machine
    from repro.core import scans

    for backend in BACKENDS:
        m = Machine("scan", backend=backend)
        out = scans.min_scan(m.vector(np.array([0, 5], dtype=np.uint8)))
        assert out.to_list() == [255, 0]
        assert out.dtype == np.uint8


def test_or_and_scan_negative_truthiness_exact():
    from repro import Machine
    from repro.core import scans

    for backend in BACKENDS:
        m = Machine("scan", backend=backend)
        assert scans.or_scan(m.vector(np.array([-1, 0], np.int8))
                             ).to_list() == [False, True]
        assert scans.and_scan(m.vector(np.array([-1, -1], np.int8))
                              ).to_list() == [True, True]
