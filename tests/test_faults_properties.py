"""Property-based tests (hypothesis) for the fault-tolerance guarantees.

The contracts under test:

* **Never silently wrong** — any single bit flip anywhere in the tree
  scan circuit is either masked by TMR voting or flagged by the
  checksum/vote; with both defenses up, no flip yields a trusted wrong
  answer.
* **Complete machine-level detection** — any single-bit corruption of a
  primitive scan's output is caught by the Section 3.4 cross-verification
  and retried into a correct result.
* **Deterministic replay** — the same seed always reproduces the same
  faults, bit for bit.
"""
import numpy as np
from hypothesis import given, settings, strategies as st

from repro import Machine
from repro.core import scans
from repro.faults import (
    CIRCUIT_FIELDS,
    CircuitFault,
    FaultInjector,
    FaultPlan,
    PrimitiveFault,
    random_tree_fault_plan,
    tree_fifo_length,
)
from repro.hardware import PLUS, TMRTreeScanCircuit, TreeScanCircuit, tree_scan_cycles

N, W = 8, 8

circuit_fault_strategy = st.builds(
    CircuitFault,
    cycle=st.integers(0, tree_scan_cycles(N, W) - 1),
    unit=st.integers(1, N - 1),
    field=st.sampled_from(CIRCUIT_FIELDS),
    bit=st.integers(0, 2 * (N.bit_length() - 1)),
    replica=st.integers(0, 2),
)

values_strategy = st.lists(st.integers(0, (1 << W) - 1),
                           min_size=N, max_size=N)


def _golden(vals):
    out = np.zeros(N, dtype=np.int64)
    np.cumsum(np.asarray(vals)[:-1], out=out[1:])
    return out & ((1 << W) - 1)


@settings(max_examples=60, deadline=None)
@given(fault=circuit_fault_strategy, vals=values_strategy)
def test_single_flip_never_silently_wrong(fault, vals):
    """TMR + checksum: every single-replica flip is masked or flagged."""
    plan = FaultPlan(circuit_faults=(fault,))
    circuit = TMRTreeScanCircuit(N, W, PLUS, injector=FaultInjector(plan),
                                 checksum=True)
    voted, _, stats = circuit.scan(vals)
    correct = np.array_equal(np.asarray(voted), _golden(vals))
    # masked (correct despite the flip) or detected (flagged) — a wrong
    # result that raised no flag would be a silent corruption
    assert correct or stats.flagged


@settings(max_examples=60, deadline=None)
@given(fault=circuit_fault_strategy, vals=values_strategy)
def test_single_flip_is_masked_by_tmr(fault, vals):
    """The voted output itself is always correct under one faulty replica."""
    plan = FaultPlan(circuit_faults=(fault,))
    circuit = TMRTreeScanCircuit(N, W, PLUS, injector=FaultInjector(plan))
    voted, _, _ = circuit.scan(vals)
    assert np.array_equal(np.asarray(voted), _golden(vals))


@settings(max_examples=60, deadline=None)
@given(vals=st.lists(st.integers(0, 10**9), min_size=2, max_size=64),
       element=st.integers(0, 1 << 30), bit=st.integers(0, 62))
def test_machine_detects_any_scan_output_corruption(vals, element, bit):
    """The Section 3.4 cross-check catches every single-bit output flip."""
    plan = FaultPlan(primitive_faults=(PrimitiveFault(
        op_index=0, kind="scan", element=element % len(vals), bit=bit),))
    m = Machine("scan", reliability=True,
                fault_injector=FaultInjector(plan))
    out = scans.plus_scan(m.vector(vals))
    expected = np.zeros(len(vals), dtype=np.int64)
    np.cumsum(np.asarray(vals)[:-1], out=expected[1:])
    assert np.array_equal(out.data, expected)
    fc = m.fault_counters
    assert fc.detected >= 1 and fc.undetected == 0 and fc.reconciles()


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), vals=values_strategy)
def test_circuit_fault_replay_deterministic(seed, vals):
    plan = random_tree_fault_plan(seed, n_leaves=N, width=W)
    assert plan == random_tree_fault_plan(seed, n_leaves=N, width=W)
    a, _ = TreeScanCircuit(N, W, PLUS, injector=FaultInjector(plan)).scan(vals)
    b, _ = TreeScanCircuit(N, W, PLUS, injector=FaultInjector(plan)).scan(vals)
    assert np.array_equal(a, b)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31 - 1),
       probability=st.floats(0.1, 1.0, allow_nan=False))
def test_probabilistic_replay_deterministic(seed, probability):
    """Seeded random corruption replays exactly across injectors."""
    plan = FaultPlan(probability=probability, probability_kinds=("scan",),
                     seed=seed)
    outs = []
    for _ in range(2):
        m = Machine("scan", fault_injector=FaultInjector(plan))
        outs.append([scans.plus_scan(m.vector(np.arange(32))).to_list()
                     for _ in range(4)])
    assert outs[0] == outs[1]


@settings(max_examples=40, deadline=None)
@given(unit=st.integers(2, N - 1), bit=st.integers(0, 63),
       cycle=st.integers(0, tree_scan_cycles(N, W) - 1))
def test_fifo_flip_addresses_wrap(unit, bit, cycle):
    """FIFO faults index modulo the unit's true FIFO length — any (unit,
    bit) pair is a valid, replayable fault site."""
    plan = FaultPlan(circuit_faults=(CircuitFault(
        cycle=cycle, unit=unit, field="fifo", bit=bit),))
    inj = FaultInjector(plan)
    c = TreeScanCircuit(N, W, PLUS, injector=inj)
    c.scan(np.arange(N))
    assert tree_fifo_length(unit) > 0
    assert inj.counters.injected == 1
