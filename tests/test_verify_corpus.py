"""Replay of the committed regression corpus (tests/corpus/verify/).

Every file is a shrunken counterexample that once exposed a divergence
between an execution backend and the serial oracle.  Replaying them keeps
each fixed bug fixed; the docstring-free JSON carries a ``note`` naming
the bug so a future failure identifies itself.
"""
import pytest

from repro.verify import CORPUS_DIR, load_corpus, run_case

CORPUS = load_corpus()

#: bugs the fuzzer crop fixed — each must have a committed witness
EXPECTED_WITNESSES = [
    "min_scan-int64-boundary",
    "min_scan-uint8-order",
    "back_min_scan-int64-boundary",
    "or_scan-negative",
    "and_scan-negative",
    "or_scan-nan",
    "seg_or_scan-negative",
    "seg_and_scan-negative",
    "seg_plus_scan-empty",
    "seg_plus_scan-uint32-promotion",
    "seg_back_plus_scan-uint32-promotion",
    "plus_distribute-int16-overflow",
    "seg_plus_distribute-int16-overflow",
    "max_reduce-float64-empty",
    "max_scan-float64-nan-carry",
    "seg_min_scan-nan-chunk-carry",
    "seg_min_scan-nan-accumulator",
]


def test_corpus_directory_exists_and_is_populated():
    assert CORPUS_DIR.is_dir()
    assert len(CORPUS) >= len(EXPECTED_WITNESSES)


@pytest.mark.parametrize("stem", EXPECTED_WITNESSES)
def test_every_fixed_bug_has_a_witness(stem):
    assert (CORPUS_DIR / f"{stem}.json").is_file()


@pytest.mark.parametrize(
    "case", CORPUS,
    ids=[f"{c.op}-{c.dtype}-{i}" for i, c in enumerate(CORPUS)])
def test_corpus_case_conforms(case):
    outcome = run_case(case)
    assert outcome.ok, "\n".join(
        d.describe() for d in outcome.divergences)


def test_every_corpus_case_documents_its_bug():
    assert all(c.note for c in CORPUS)
