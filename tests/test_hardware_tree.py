"""The bit-pipelined tree scan circuit (Figures 13–14)."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.tree import MAX, PLUS, TreeScanCircuit, tree_scan_cycles


class TestPlusScanCircuit:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 64])
    def test_matches_numpy(self, n, rng):
        width = 16
        vals = rng.integers(0, (1 << width) // n, n)
        res, cycles = TreeScanCircuit(n, width, PLUS).scan(vals)
        expect = np.concatenate(([0], np.cumsum(vals)[:-1]))
        assert np.array_equal(res, expect)

    def test_truncation_modulo_width(self):
        res, _ = TreeScanCircuit(4, 4, PLUS).scan([15, 15, 15, 15])
        expect = np.array([0, 15, 30, 45]) % 16
        assert np.array_equal(res, expect)

    @given(st.lists(st.integers(0, 255), min_size=8, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_property_8_leaves(self, vals):
        res, _ = TreeScanCircuit(8, 12, PLUS).scan(vals)
        assert np.array_equal(res, np.concatenate(([0], np.cumsum(vals)[:-1])))


class TestMaxScanCircuit:
    @pytest.mark.parametrize("n", [2, 4, 8, 32])
    def test_matches_numpy(self, n, rng):
        width = 10
        vals = rng.integers(0, 1 << width, n)
        res, _ = TreeScanCircuit(n, width, MAX).scan(vals)
        expect = np.concatenate(([0], np.maximum.accumulate(vals)[:-1]))
        assert np.array_equal(res, expect)

    @given(st.lists(st.integers(0, 1023), min_size=16, max_size=16))
    @settings(max_examples=30, deadline=None)
    def test_property_16_leaves(self, vals):
        res, _ = TreeScanCircuit(16, 10, MAX).scan(vals)
        assert np.array_equal(
            res, np.concatenate(([0], np.maximum.accumulate(vals)[:-1])))


class TestTiming:
    @pytest.mark.parametrize("n,width", [(2, 8), (8, 8), (64, 32), (256, 16)])
    def test_cycle_count_formula(self, n, width, rng):
        c = TreeScanCircuit(n, width, PLUS)
        _, cycles = c.scan(rng.integers(0, 2, n))
        assert cycles == tree_scan_cycles(n, width)
        lg = int(np.log2(n))
        assert cycles == width + 2 * lg - 2  # the paper's m + 2 lg n pipeline

    def test_bit_pipelining_beats_word_serial(self):
        """The whole point: lg n + m, not lg n * m.  A word-at-a-time tree
        would need 2 lg n * m cycles."""
        n, width = 256, 32
        pipelined = tree_scan_cycles(n, width)
        word_serial = 2 * 8 * width
        assert pipelined < word_serial / 8

    def test_64k_closed_form(self):
        # the CM-2 scale of Table 2
        assert tree_scan_cycles(65536, 32) == 32 + 2 * 16 - 2

    def test_reusable_circuit(self, rng):
        c = TreeScanCircuit(8, 8, PLUS)
        for _ in range(3):
            vals = rng.integers(0, 16, 8)
            res, _ = c.scan(vals)
            assert np.array_equal(res, np.concatenate(([0], np.cumsum(vals)[:-1])))
        assert c.cycles_run == 3 * tree_scan_cycles(8, 8)


class TestHardwareInventory:
    def test_section_32_counts(self):
        """Section 3.3: a 64-input chip has 126 state machines and 63 shift
        registers."""
        c = TreeScanCircuit(64, 32, PLUS)
        assert c.num_state_machines() == 126
        assert c.num_shift_registers() == 63

    def test_fifo_lengths_match_depth(self):
        c = TreeScanCircuit(16, 8, PLUS)
        assert c.fifo[1].length == 0           # root reflects immediately
        assert c.fifo[2].length == 2
        assert c.fifo[4].length == 4
        assert c.fifo[8].length == 6
        # total bits grow linearly-ish with n (O(n) area, Table 2)
        assert c.total_shift_register_bits() == sum(
            2 * (u.bit_length() - 1) for u in range(1, 16))


class TestValidation:
    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            TreeScanCircuit(6, 8, PLUS)

    def test_value_range_enforced(self):
        with pytest.raises(ValueError):
            TreeScanCircuit(4, 4, PLUS).scan([16, 0, 0, 0])

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            TreeScanCircuit(4, 4, PLUS).scan([1, 2])

    def test_bad_op_rejected(self):
        with pytest.raises(ValueError):
            TreeScanCircuit(4, 4, 9)
