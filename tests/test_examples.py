"""Every example script must run clean (they double as integration tests)."""
import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted((pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_expected_examples_present():
    names = {p.name for p in EXAMPLES}
    assert {"quickstart.py", "sorting_showdown.py", "graph_analytics.py",
            "graphics_pipeline.py", "processor_allocation.py",
            "scientific_computing.py"} <= names
