"""Split radix sort (Section 2.2.1)."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Machine
from repro.algorithms.radix_sort import (
    key_bits,
    split_radix_sort,
    split_radix_sort_float,
    split_radix_sort_signed,
    split_radix_sort_with_rank,
)
from repro.baselines import serial_sort


def _m():
    return Machine("scan")


class TestPaperExample:
    def test_figure2_trace(self):
        """Figure 2: sorting [5 7 3 1 4 2 7 2] bit by bit."""
        m = _m()
        from repro.core import ops
        a = m.vector([5, 7, 3, 1, 4, 2, 7, 2])
        a = ops.split(a, a.bit(0))
        assert a.to_list() == [4, 2, 2, 5, 7, 3, 1, 7]
        a = ops.split(a, a.bit(1))
        assert a.to_list() == [4, 5, 1, 2, 2, 7, 3, 7]
        a = ops.split(a, a.bit(2))
        assert a.to_list() == [1, 2, 2, 3, 4, 5, 7, 7]


class TestCorrectness:
    @given(st.lists(st.integers(0, 2**20), max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_sorts(self, xs):
        out = split_radix_sort(_m().vector(xs))
        assert out.to_list() == sorted(xs)

    def test_empty_and_singleton(self):
        assert split_radix_sort(_m().vector([])).to_list() == []
        assert split_radix_sort(_m().vector([42])).to_list() == [42]

    def test_all_equal(self):
        assert split_radix_sort(_m().vector([7] * 20)).to_list() == [7] * 20

    def test_explicit_bit_count(self):
        out = split_radix_sort(_m().vector([3, 1, 2, 0]), number_of_bits=2)
        assert out.to_list() == [0, 1, 2, 3]

    def test_matches_serial_baseline(self, rng):
        data = rng.integers(0, 10**6, 500)
        out = split_radix_sort(_m().vector(data))
        assert out.to_list() == serial_sort(data).tolist()

    def test_stability_via_rank(self, rng):
        """Equal keys keep their input order (radix sort is stable)."""
        data = rng.integers(0, 8, 100)
        sorted_v, rank = split_radix_sort_with_rank(_m().vector(data))
        r = rank.data
        for i in range(len(r) - 1):
            if sorted_v.data[i] == sorted_v.data[i + 1]:
                assert r[i] < r[i + 1]

    def test_rank_is_sort_permutation(self, rng):
        data = rng.integers(0, 1000, 80)
        sorted_v, rank = split_radix_sort_with_rank(_m().vector(data))
        assert np.array_equal(data[rank.data], sorted_v.data)


class TestSignedAndFloatKeys:
    """The paper: 'integers, characters, and floating-point numbers can
    all be sorted with a radix sort'."""

    @given(st.lists(st.integers(-10**9, 10**9), max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_signed(self, xs):
        out = split_radix_sort_signed(_m().vector(xs))
        assert out.to_list() == sorted(xs)

    @given(st.lists(st.floats(allow_nan=False, width=32), max_size=150))
    @settings(max_examples=40, deadline=None)
    def test_floats(self, xs):
        out = split_radix_sort_float(
            _m().vector(np.array(xs, dtype=np.float64), dtype=np.float64))
        assert out.to_list() == sorted(xs)

    def test_negative_zero_and_infinities(self):
        data = [np.inf, -0.0, 1.5, -np.inf, 0.0, -1.5]
        out = split_radix_sort_float(_m().vector(data, dtype=np.float64))
        assert out.to_list() == sorted(data)
        # -0.0 lands before +0.0 in the bit order
        signs = np.signbit(out.data)
        zeros = np.flatnonzero(out.data == 0.0)
        assert signs[zeros[0]] and not signs[zeros[1]]

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            split_radix_sort_float(_m().vector([1.0, np.nan], dtype=np.float64))

    def test_float_sort_requires_floats(self):
        with pytest.raises(TypeError):
            split_radix_sort_float(_m().vector([1, 2]))

    def test_signed_sort_requires_ints(self):
        with pytest.raises(TypeError):
            split_radix_sort_signed(_m().vector([1.0], dtype=float))

    def test_float_sort_constant_steps_per_bit(self):
        """64 O(1) passes, independent of n."""
        def steps(n):
            m = _m()
            rng = np.random.default_rng(0)
            split_radix_sort_float(
                m.vector(rng.standard_normal(n), dtype=np.float64))
            return m.steps

        assert steps(64) == steps(1024)


class TestValidation:
    def test_negative_keys_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            split_radix_sort(_m().vector([1, -2]))

    def test_float_keys_rejected(self):
        with pytest.raises(TypeError):
            split_radix_sort(_m().vector([1.5, 2.5], dtype=float))

    def test_key_bits(self):
        assert key_bits(_m().vector([0, 7])) == 3
        assert key_bits(_m().vector([0])) == 1
        assert key_bits(_m().vector([256])) == 9


class TestStepComplexity:
    def test_steps_linear_in_bits_not_in_n(self):
        """O(1) steps per bit on the scan model: doubling n leaves the step
        count unchanged for fixed-width keys."""
        counts = []
        for n in (64, 128, 256):
            m = _m()
            data = np.arange(n) % 16
            split_radix_sort(m.vector(data), number_of_bits=4)
            counts.append(m.steps)
        assert counts[0] == counts[1] == counts[2]

    def test_erew_pays_log_factor(self):
        data = list(range(256))
        ms = Machine("scan")
        split_radix_sort(ms.vector(data), number_of_bits=8)
        me = Machine("erew")
        split_radix_sort(me.vector(data), number_of_bits=8)
        assert me.steps > 3 * ms.steps
