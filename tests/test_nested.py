"""The SegmentedVector nested-vector facade."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Machine
from repro.core.nested import SegmentedVector

nested_case = st.lists(
    st.lists(st.integers(-1000, 1000), min_size=1, max_size=12),
    min_size=1, max_size=10)


def _m():
    return Machine("scan")


class TestConstruction:
    def test_roundtrip(self):
        data = [[5, 1], [3, 4, 3, 9], [2, 6]]
        sv = SegmentedVector.from_nested(_m(), data)
        assert sv.to_nested() == data
        assert len(sv) == 3
        assert sv.flat_length == 8
        assert sv.lengths().tolist() == [2, 4, 2]

    @given(nested_case)
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, data):
        assert SegmentedVector.from_nested(_m(), data).to_nested() == data

    def test_empty_segment_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            SegmentedVector.from_nested(_m(), [[1], []])

    def test_from_lengths(self):
        m = _m()
        sv = SegmentedVector.from_lengths(m.vector([1, 2, 3, 4, 5]), [2, 3])
        assert sv.to_nested() == [[1, 2], [3, 4, 5]]


class TestScansAndDistributes:
    def test_plus_scan(self):
        sv = SegmentedVector.from_nested(_m(), [[5, 1], [3, 4, 3, 9], [2, 6]])
        assert sv.plus_scan().to_nested() == [[0, 5], [0, 3, 7, 10], [0, 2]]

    def test_max_scan(self):
        sv = SegmentedVector.from_nested(_m(), [[5, 1, 3], [4, 3, 9]])
        assert sv.max_scan(identity=0).to_nested() == [[0, 5, 5], [0, 4, 4]]

    def test_back_plus_scan(self):
        sv = SegmentedVector.from_nested(_m(), [[1, 2, 3], [4, 5]])
        assert sv.back_plus_scan().to_nested() == [[5, 3, 0], [5, 0]]

    def test_copy_first(self):
        sv = SegmentedVector.from_nested(_m(), [[7, 1, 2], [9, 3]])
        assert sv.copy_first().to_nested() == [[7, 7, 7], [9, 9]]

    def test_index(self):
        sv = SegmentedVector.from_nested(_m(), [[7, 1, 2], [9, 3]])
        assert sv.index().to_nested() == [[0, 1, 2], [0, 1]]

    @given(nested_case)
    @settings(max_examples=40, deadline=None)
    def test_reductions(self, data):
        sv = SegmentedVector.from_nested(_m(), data)
        assert sv.sums().to_list() == [sum(seg) for seg in data]
        assert sv.maxima().to_list() == [max(seg) for seg in data]
        assert sv.minima().to_list() == [min(seg) for seg in data]

    @given(nested_case)
    @settings(max_examples=30, deadline=None)
    def test_distributes(self, data):
        sv = SegmentedVector.from_nested(_m(), data)
        assert sv.sum_distribute().to_nested() == \
            [[sum(seg)] * len(seg) for seg in data]
        assert sv.min_distribute().to_nested() == \
            [[min(seg)] * len(seg) for seg in data]


class TestElementwise:
    def test_map(self):
        sv = SegmentedVector.from_nested(_m(), [[1, 2], [3]])
        assert sv.map(lambda v: v * 10).to_nested() == [[10, 20], [30]]

    def test_map_must_preserve_length(self):
        sv = SegmentedVector.from_nested(_m(), [[1, 2]])
        with pytest.raises(ValueError):
            sv.map(lambda v: 5)

    def test_add_scalar_and_nested(self):
        sv = SegmentedVector.from_nested(_m(), [[1, 2], [3]])
        assert (sv + 1).to_nested() == [[2, 3], [4]]
        assert (sv + sv).to_nested() == [[2, 4], [6]]
        assert (sv * 2).to_nested() == [[2, 4], [6]]


class TestStructureChanges:
    def test_split(self):
        m = _m()
        sv = SegmentedVector.from_nested(m, [[3, 8, 1, 6], [9, 2]])
        big = sv.values > 5
        assert sv.split(big).to_nested() == [[3, 1, 8, 6], [2, 9]]

    def test_pack_drops_and_removes_empty_segments(self):
        m = _m()
        sv = SegmentedVector.from_nested(m, [[3, 8], [1, 1], [9, 2]])
        keep = sv.values > 2
        packed = sv.pack(keep)
        assert packed.to_nested() == [[3, 8], [9]]
        assert len(packed) == 2

    def test_pack_everything_away(self):
        m = _m()
        sv = SegmentedVector.from_nested(m, [[1], [2]])
        packed = sv.pack(sv.values > 99)
        assert packed.to_nested() == []
        assert packed.flat_length == 0

    def test_concat_segments(self):
        m = _m()
        a = SegmentedVector.from_nested(m, [[1, 2]])
        b = SegmentedVector.from_nested(m, [[3], [4, 5]])
        assert a.concat_segments(b).to_nested() == [[1, 2], [3], [4, 5]]

    @given(nested_case, st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_pack_property(self, data, seed):
        m = _m()
        sv = SegmentedVector.from_nested(m, data)
        rng = np.random.default_rng(seed)
        keep_mask = rng.random(sv.flat_length) < 0.6
        packed = sv.pack(m.flags(keep_mask))
        expect, i = [], 0
        for seg in data:
            kept = [x for x in seg if keep_mask[i + seg.index(x)] or True]
            kept = [x for j, x in enumerate(seg) if keep_mask[i + j]]
            if kept:
                expect.append(kept)
            i += len(seg)
        assert packed.to_nested() == expect


class TestCharging:
    def test_facade_adds_no_steps(self):
        """The facade's plus_scan charges exactly what the raw segmented
        call charges."""
        from repro.core import segmented

        data = [[1, 2, 3], [4, 5], [6]]
        m1 = _m()
        SegmentedVector.from_nested(m1, data).plus_scan()
        facade_steps = m1.steps
        m2 = _m()
        sv = SegmentedVector.from_nested(m2, data)
        before = m2.steps
        segmented.seg_plus_scan(sv.values, sv.seg_flags)
        raw_steps = m2.steps - before + before  # total incl. construction
        assert facade_steps == raw_steps
