"""Star merging (Section 2.3.3, Figure 7)."""
import numpy as np
import pytest

from repro import Machine
from repro.graph import from_edges, random_connected_graph, star_merge


def _m():
    return Machine("scan", seed=0)


def _star_flags(machine, g, edge_ids):
    """Flag both ends of the edges with the given original ids."""
    eid = g.slot_data["edge_id"].data
    return machine.flags(np.isin(eid, edge_ids))


class TestBasicMerge:
    def test_two_children_one_parent(self):
        """Figure 7's shape: a parent absorbs two children; the star edges
        and any other now-internal edges disappear."""
        m = _m()
        edges = [(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)]
        g = from_edges(m, 4, edges, weights=[5, 1, 7, 3, 2])
        parent = m.flags([0, 1, 0, 1])
        star = _star_flags(m, g, [0, 1])  # 0-1 and 1-2 merge into vertex 1
        res = star_merge(g, star, parent)
        res.graph.validate()
        assert res.graph.num_vertices == 2
        assert sorted(res.graph.vertex_reps.tolist()) == [1, 3]
        assert sorted(res.merged_pairs.tolist()) == [[0, 1], [2, 1]]
        # remaining edges: the three 'parallel' edges (2,3), (3,0), (1,3)
        w = sorted(res.graph.slot_data["weight"].data.tolist())
        assert w == [2, 2, 3, 3, 7, 7]

    def test_weights_and_ids_preserved(self):
        m = _m()
        edges = [(0, 1), (1, 2), (0, 2), (2, 3)]
        g = from_edges(m, 4, edges, weights=[10, 20, 30, 40])
        parent = m.flags([0, 1, 1, 1])
        star = _star_flags(m, g, [0])  # 0 merges into 1
        res = star_merge(g, star, parent)
        res.graph.validate()
        # edge (0,2) becomes (1',2); edges (1,2) and (2,3) survive
        eids = sorted(set(res.graph.slot_data["edge_id"].data.tolist()))
        assert eids == [1, 2, 3]

    def test_full_contraction_retires_parent(self):
        m = _m()
        g = from_edges(m, 2, [(0, 1)])
        parent = m.flags([0, 1])
        star = _star_flags(m, g, [0])
        res = star_merge(g, star, parent)
        assert res.graph.num_slots == 0
        assert res.retired_reps.tolist() == [1]
        assert res.merged_pairs.tolist() == [[0, 1]]

    def test_multiple_independent_stars(self):
        m = _m()
        edges = [(0, 1), (2, 3), (1, 2)]
        g = from_edges(m, 4, edges)
        parent = m.flags([0, 1, 1, 0])
        star = _star_flags(m, g, [0, 1])  # 0->1 and 3->2
        res = star_merge(g, star, parent)
        res.graph.validate()
        assert res.graph.num_vertices == 2
        assert len(res.graph.to_edge_set()) == 1  # the surviving (1,2) edge

    def test_no_stars_needs_no_children(self):
        m = _m()
        g = from_edges(m, 3, [(0, 1), (1, 2)])
        parent = m.flags([1, 1, 1])
        star = m.flags([0, 0, 0, 0])
        res = star_merge(g, star, parent)
        res.graph.validate()
        assert res.graph.num_vertices == 3
        assert res.merged_pairs.shape == (0, 2)


class TestValidation:
    def test_child_without_star_rejected(self):
        m = _m()
        g = from_edges(m, 3, [(0, 1), (1, 2)])
        with pytest.raises(ValueError, match="exactly one star edge"):
            star_merge(g, m.flags([0, 0, 0, 0]), m.flags([0, 1, 1]))

    def test_star_between_two_parents_rejected(self):
        m = _m()
        g = from_edges(m, 2, [(0, 1)])
        with pytest.raises(ValueError, match="two parents or two children"):
            star_merge(g, m.flags([1, 1]), m.flags([1, 1]))

    def test_one_sided_star_flag_rejected(self):
        m = _m()
        g = from_edges(m, 2, [(0, 1)])
        star = np.zeros(2, dtype=bool)
        star[0] = True
        with pytest.raises(ValueError, match="both ends"):
            star_merge(g, m.flags(star), m.flags([0, 1]))


class TestInvariants:
    def test_randomized_merges_keep_invariants(self):
        """Random graphs, random stars: the result is always a valid
        segmented graph and the inter-tree edge multiset is preserved."""
        for seed in range(12):
            rng = np.random.default_rng(seed)
            n = int(rng.integers(4, 30))
            edges, weights = random_connected_graph(rng, n, int(rng.integers(0, 20)))
            m = Machine("scan", seed=seed)
            g = from_edges(m, n, edges, weights=weights)

            parent = rng.integers(0, 2, n).astype(bool)
            # each child picks its minimum edge if the other end is a parent
            adj = {v: [] for v in range(n)}
            for ei, (u, v) in enumerate(edges):
                adj[int(u)].append((int(weights[ei]), ei, int(v)))
                adj[int(v)].append((int(weights[ei]), ei, int(u)))
            star_ids = []
            child_of = {}
            for v in range(n):
                if parent[v]:
                    continue
                w, ei, other = min(adj[v])
                if parent[other]:
                    star_ids.append(ei)
                    child_of[v] = other
            effective_parent = parent.copy()
            for v in range(n):
                if not parent[v] and v not in child_of:
                    effective_parent[v] = True

            res = star_merge(g, _star_flags(m, g, star_ids),
                             m.flags(effective_parent))
            res.graph.validate()
            # vertices: parents that kept at least one edge
            assert res.graph.num_vertices <= int(effective_parent.sum())
            # surviving edges are exactly those whose endpoints landed in
            # different merged vertices
            rep = {v: child_of.get(v, v) for v in range(n)}
            expect = sorted(
                ei for ei, (u, v) in enumerate(edges)
                if rep[int(u)] != rep[int(v)]
            )
            got = sorted(set(res.graph.slot_data["edge_id"].data.tolist()))
            assert got == expect, seed

    def test_merge_is_constant_steps(self):
        """Star merge costs O(1) program steps regardless of graph size."""
        step_counts = []
        for n in (16, 128):
            rng = np.random.default_rng(3)
            edges, weights = random_connected_graph(rng, n, n)
            m = Machine("scan", seed=3)
            g = from_edges(m, n, edges, weights=weights)
            parent = np.ones(n, dtype=bool)
            parent[0] = False
            adj_min = min(
                (int(weights[ei]), ei) for ei, (u, v) in enumerate(edges)
                if 0 in (int(u), int(v))
            )
            with m.measure() as r:
                star_merge(g, _star_flags(m, g, [adj_min[1]]), m.flags(parent))
            step_counts.append(r.delta.steps)
        assert step_counts[0] == step_counts[1]
