"""The Euler-tour rootfix (merge-forest resolution) in isolation."""
import numpy as np
import pytest

from repro import Machine
from repro.algorithms.forest import rootfix


class TestShapes:
    def test_binary_tree(self):
        #        0
        #      1   2
        #     3 4 5 6
        parent = np.array([0, 0, 0, 1, 1, 2, 2])
        m = Machine("scan")
        assert rootfix(m, parent).tolist() == [0] * 7

    def test_star(self):
        parent = np.zeros(50, dtype=np.int64)
        m = Machine("scan")
        assert rootfix(m, parent).tolist() == [0] * 50

    def test_chain(self):
        n = 500
        parent = np.maximum(np.arange(n) - 1, 0)
        m = Machine("scan")
        assert rootfix(m, parent).tolist() == [0] * n

    def test_many_singleton_roots(self):
        m = Machine("scan")
        assert rootfix(m, np.arange(20)).tolist() == list(range(20))

    def test_mixed_forest(self):
        parent = np.array([0, 0, 2, 2, 3, 5, 5, 6])
        m = Machine("scan")
        got = rootfix(m, parent)
        assert got.tolist() == [0, 0, 2, 2, 2, 5, 5, 5]

    @pytest.mark.parametrize("seed", range(8))
    def test_random_forest_matches_iteration(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 400))
        parent = np.arange(n)
        for v in range(1, n):
            if rng.random() < 0.85:
                parent[v] = rng.integers(0, v)
        expect = parent.copy()
        for _ in range(n):
            expect = expect[expect]
        m = Machine("scan")
        assert rootfix(m, parent).tolist() == expect.tolist()


class TestCharges:
    def test_logarithmic_steps(self):
        def steps(n):
            parent = np.maximum(np.arange(n) - 1, 0)
            m = Machine("scan")
            rootfix(m, parent)
            return m.steps

        s1, s2 = steps(512), steps(4096)
        assert s2 < 1.8 * s1

    def test_uses_only_erew_legal_primitives(self):
        """Rootfix never needs a concurrent read or write: the profile
        contains only exclusive primitive kinds."""
        parent = np.maximum(np.arange(128) - 1, 0)
        m = Machine("scan")
        rootfix(m, parent)
        kinds = set(m.counter.by_kind)
        assert kinds <= {"scan", "elementwise", "permute", "gather",
                         "reduce", "broadcast", "memory"}
        assert m.concurrent_writes_used == 0

    def test_trivial_forest_is_free(self):
        m = Machine("scan")
        rootfix(m, np.arange(10))
        assert m.steps == 0  # all roots: nothing to do
