"""CSV / field splitting: Python ``split`` semantics on segmented scans.

``split_fields`` must match ``bytes.split(delim)`` exactly — empty fields,
leading/trailing delimiters, delimiter-only inputs and all — and
``parse_csv`` the two-level row/field split.  Hypothesis drives the
equivalence over delimiter-dense random byte strings on three engines.
"""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Machine
from repro.algorithms import parse_csv, split_fields

BACKENDS = ["numpy", "blocked:7", "reference"]

# heavy on delimiters so empty/adjacent fields are common
_CSV_ALPHABET = b"ab,\n,"


class TestSplitFields:
    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=50, deadline=None)
    @given(text=st.lists(st.sampled_from(list(b"xy,,")),
                         max_size=60).map(bytes))
    def test_matches_python_split(self, backend, text):
        m = Machine("scan", backend=backend)
        result = split_fields(m, text)
        assert result.fields() == text.split(b",")
        assert result.n_fields == len(text.split(b","))

    @pytest.mark.parametrize("text,expected", [
        (b"", [b""]),
        (b",", [b"", b""]),
        (b",,,", [b"", b"", b"", b""]),
        (b"abc", [b"abc"]),
        (b"a,bb,,ccc,", [b"a", b"bb", b"", b"ccc", b""]),
        (b",lead", [b"", b"lead"]),
    ])
    def test_edges(self, text, expected):
        result = split_fields(Machine("scan"), text)
        assert result.fields() == expected

    def test_lengths_include_empty_fields(self):
        result = split_fields(Machine("scan"), b"a,,bb")
        assert result.lengths.to_list() == [1, 0, 2]

    def test_custom_delimiter_and_str_input(self):
        result = split_fields(Machine("scan"), "a|b||c", delimiter="|")
        assert result.fields() == [b"a", b"b", b"", b"c"]

    def test_utf8_bytes_survive(self):
        text = "café,naïve".encode("utf-8")
        result = split_fields(Machine("scan"), text)
        assert [f.decode("utf-8") for f in result.fields()] == \
            ["café", "naïve"]

    def test_multibyte_delimiter_rejected(self):
        with pytest.raises(ValueError, match="one byte"):
            split_fields(Machine("scan"), b"a::b", delimiter="::")


class TestParseCsv:
    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=50, deadline=None)
    @given(text=st.lists(st.sampled_from(list(_CSV_ALPHABET)),
                         max_size=80).map(bytes))
    def test_matches_nested_python_split(self, backend, text):
        m = Machine("scan", backend=backend)
        result = parse_csv(m, text)
        expected = [row.split(b",") for row in text.split(b"\n")]
        assert result.rows() == expected
        assert result.n_rows == len(expected)

    def test_empty_text_is_one_empty_field(self):
        result = parse_csv(Machine("scan"), b"")
        assert result.rows() == [[b""]]

    def test_ragged_rows(self):
        result = parse_csv(Machine("scan"), b"a,b,c\nd\n,e,")
        assert result.rows() == [[b"a", b"b", b"c"], [b"d"],
                                 [b"", b"e", b""]]
        assert result.fields_per_row.to_list() == [3, 1, 3]

    def test_charges_are_backend_independent(self):
        text = b"a,bb\nccc,,d\n"
        charges = []
        for backend in BACKENDS:
            m = Machine("scan", backend=backend)
            parse_csv(m, text)
            charges.append(dict(m.counter.by_kind))
        assert charges[0] == charges[1] == charges[2]

    def test_runs_on_every_model(self):
        from repro.machine import MODEL_NAMES

        text = b"x,,y\nz"
        expected = [[b"x", b"", b"y"], [b"z"]]
        for model in MODEL_NAMES:
            m = Machine(model)
            assert parse_csv(m, text).rows() == expected, model
            assert m.fork_counters.reconciles()
