"""Matrix algorithms (Table 1's matrix rows)."""
import numpy as np
import pytest

from repro import Machine
from repro.algorithms.matrix import ParallelMatrix, mat_mul, mat_vec, solve


class TestParallelMatrix:
    def test_roundtrip(self, rng):
        a = rng.standard_normal((4, 6))
        pm = ParallelMatrix(Machine("scan"), a)
        assert np.allclose(pm.to_array(), a)

    def test_transpose(self, rng):
        m = Machine("scan")
        a = rng.standard_normal((3, 5))
        pm = ParallelMatrix(m, a)
        assert np.allclose(pm.transposed().to_array(), a.T)

    def test_transpose_is_one_permute(self, rng):
        m = Machine("scan")
        pm = ParallelMatrix(m, rng.standard_normal((8, 8)))
        with m.measure() as r:
            pm.transposed()
        assert r.delta.by_kind == {"permute": 1}

    def test_broadcast_row(self, rng):
        m = Machine("scan")
        a = rng.standard_normal((4, 3))
        pm = ParallelMatrix(m, a)
        out = pm.broadcast_row(2).data.reshape(4, 3, order="F")
        assert np.allclose(out, np.tile(a[2], (4, 1)))

    def test_broadcast_col(self, rng):
        m = Machine("scan")
        a = rng.standard_normal((4, 3))
        pm = ParallelMatrix(m, a)
        out = pm.broadcast_col(1).data.reshape(4, 3, order="F")
        assert np.allclose(out, np.tile(a[:, 1:2], (1, 3)))

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            ParallelMatrix(Machine("scan"), np.zeros(4))


class TestMatVec:
    @pytest.mark.parametrize("shape", [(1, 1), (3, 3), (5, 8), (8, 5)])
    def test_matches_numpy(self, rng, shape):
        m = Machine("scan")
        a = rng.standard_normal(shape)
        x = rng.standard_normal(shape[1])
        assert np.allclose(mat_vec(m, a, x).data, a @ x)

    def test_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            mat_vec(Machine("scan"), rng.standard_normal((3, 4)), np.zeros(3))

    def test_constant_steps(self, rng):
        """Table 1: vector-matrix in O(1) steps on the scan model."""
        def steps(n):
            m = Machine("scan")
            mat_vec(m, rng.standard_normal((n, n)), rng.standard_normal(n))
            return m.steps

        assert steps(8) == steps(32)

    def test_erew_pays_log(self, rng):
        a = rng.standard_normal((32, 32))
        x = rng.standard_normal(32)
        ms = Machine("scan")
        mat_vec(ms, a, x)
        me = Machine("erew")
        mat_vec(me, a, x)
        assert me.steps > 2 * ms.steps


class TestMatMul:
    @pytest.mark.parametrize("shape", [((2, 2), (2, 2)), ((3, 4), (4, 5)),
                                       ((6, 2), (2, 3))])
    def test_matches_numpy(self, rng, shape):
        m = Machine("scan")
        a = rng.standard_normal(shape[0])
        b = rng.standard_normal(shape[1])
        assert np.allclose(mat_mul(m, a, b).to_array(), a @ b)

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            mat_mul(Machine("scan"), rng.standard_normal((2, 3)),
                    rng.standard_normal((2, 3)))

    def test_linear_steps(self, rng):
        """Table 1: O(n) steps for n x n matrices."""
        def steps(n):
            m = Machine("scan")
            mat_mul(m, rng.standard_normal((n, n)), rng.standard_normal((n, n)))
            return m.steps

        s8, s16 = steps(8), steps(16)
        assert 1.5 < s16 / s8 < 2.6  # linear in n


class TestSolve:
    @pytest.mark.parametrize("n", [1, 2, 5, 16, 31])
    def test_matches_numpy(self, rng, n):
        m = Machine("scan")
        a = rng.standard_normal((n, n)) + n * np.eye(n)
        b = rng.standard_normal(n)
        x = solve(m, a, b)
        assert np.allclose(x.data, np.linalg.solve(a, b), atol=1e-8)

    def test_pivoting_handles_zero_diagonal(self):
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        x = solve(Machine("scan"), a, [2.0, 3.0])
        assert np.allclose(x.data, [3.0, 2.0])

    def test_ill_conditioned_with_pivoting(self, rng):
        """Partial pivoting keeps tiny-pivot systems accurate."""
        a = np.array([[1e-12, 1.0], [1.0, 1.0]])
        b = np.array([1.0, 2.0])
        x = solve(Machine("scan"), a, b)
        assert np.allclose(a @ x.data, b, atol=1e-6)

    def test_singular_detected(self):
        a = np.array([[1.0, 2.0], [2.0, 4.0]])
        with pytest.raises(np.linalg.LinAlgError):
            solve(Machine("scan"), a, [1.0, 1.0])

    def test_shape_checked(self, rng):
        with pytest.raises(ValueError):
            solve(Machine("scan"), rng.standard_normal((3, 2)), np.zeros(3))

    def test_linear_steps(self, rng):
        def steps(n):
            m = Machine("scan")
            a = rng.standard_normal((n, n)) + n * np.eye(n)
            solve(m, a, rng.standard_normal(n))
            return m.steps

        s8, s16 = steps(8), steps(16)
        assert 1.5 < s16 / s8 < 2.6
