"""The appendix's scan applications: Ofman addition, Stone polynomials."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Machine
from repro.algorithms.bignum import (
    big_add,
    evaluate_polynomial,
    generic_scan,
    powers_of,
    scan_add,
)


def _m():
    return Machine("scan")


class TestScanAdd:
    @given(st.integers(0, 2**200), st.integers(0, 2**200))
    @settings(max_examples=80, deadline=None)
    def test_addition(self, a, b):
        assert big_add(_m(), a, b) == a + b

    def test_zero(self):
        assert big_add(_m(), 0, 0) == 0

    def test_full_carry_chain(self):
        """0b111...1 + 1: the carry ripples the whole width — still one
        segmented or-scan."""
        a = (1 << 128) - 1
        assert big_add(_m(), a, 1) == 1 << 128

    def test_alternating_carries(self):
        a = int("10" * 64, 2)
        b = int("01" * 64, 2)
        assert big_add(_m(), a, b) == a + b

    def test_constant_steps(self):
        """O(1) program steps regardless of the bit width."""
        def steps(bits):
            m = Machine("scan")
            big_add(m, (1 << bits) - 3, (1 << bits) // 3)
            return m.steps

        assert steps(64) == steps(4096)

    def test_bit_vector_interface(self):
        m = _m()
        out = scan_add(m.flags([1, 1, 0]), m.flags([1, 0, 1]))  # 3 + 5
        assert [int(b) for b in out.to_list()] == [0, 0, 0, 1]  # = 8

    def test_validation(self):
        m = _m()
        with pytest.raises(TypeError):
            scan_add(m.vector([1, 0]), m.flags([1, 0]))
        with pytest.raises(ValueError):
            scan_add(m.flags([1]), m.flags([1, 0]))
        with pytest.raises(ValueError):
            big_add(m, -1, 2)


class TestGenericScan:
    def test_mul_scan(self):
        out = generic_scan(_m().vector([2, 3, 4], dtype=np.int64), "mul")
        assert out.to_list() == [1, 2, 6]

    def test_xor_scan(self):
        out = generic_scan(_m().vector([0b101, 0b011, 0b110]), "xor")
        assert out.to_list() == [0, 0b101, 0b110]

    def test_unknown_operator(self):
        with pytest.raises(ValueError):
            generic_scan(_m().vector([1]), "div")

    def test_charged_as_tree_on_every_model(self):
        """A programmed scan pays 2·lg n even on the scan machine (only
        +-scan and max-scan are primitives)."""
        a, b = Machine("scan"), Machine("erew")
        generic_scan(a.vector(np.ones(256)), "mul")
        generic_scan(b.vector(np.ones(256)), "mul")
        assert a.steps == b.steps == 16


class TestPolynomial:
    def test_powers(self):
        assert powers_of(_m(), 3.0, 5).to_list() == [1.0, 3.0, 9.0, 27.0, 81.0]

    @given(st.lists(st.integers(-9, 9), min_size=1, max_size=12),
           st.floats(-2, 2))
    @settings(max_examples=60, deadline=None)
    def test_matches_horner(self, coeffs, x):
        got = evaluate_polynomial(_m(), coeffs, x)
        expect = 0.0
        for c in reversed(coeffs):
            expect = expect * x + c
        assert got == pytest.approx(expect, rel=1e-9, abs=1e-9)
