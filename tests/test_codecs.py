"""RLE and delta codecs: round-trip properties across backends and dtypes.

The contract is exactness: ``decode(encode(x)) == x`` bit for bit for RLE
on every dtype (NaN included — NaN never equals its neighbour, so it is
always its own run) and for delta on every integer dtype (two's-complement
wraparound cancels).  Hypothesis drives the property over adversarial
values on three engines; the explicit cases pin the dtype boundaries and
the empty/singleton shapes.
"""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Machine
from repro.algorithms import (
    delta_decode,
    delta_encode,
    rle_decode,
    rle_encode,
)

BACKENDS = ["numpy", "blocked:7", "reference"]

INT_DTYPES = ["int8", "int16", "uint8", "uint32", "int64"]


def _rle_round_trip(m, data):
    values, lengths = rle_encode(m.vector(data))
    assert len(values) == len(lengths)
    if len(lengths):
        assert int(lengths.data.min()) >= 1
        assert int(lengths.data.sum()) == len(data)
    out = rle_decode(values, lengths)
    assert out.dtype == data.dtype
    np.testing.assert_array_equal(out.data, data)


def _delta_round_trip(m, data):
    out = delta_decode(delta_encode(m.vector(data)))
    assert out.dtype == data.dtype
    np.testing.assert_array_equal(out.data, data)


class TestRoundTripProperty:
    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=40, deadline=None)
    @given(data=st.data(), dtype=st.sampled_from(INT_DTYPES))
    def test_rle_int(self, backend, data, dtype):
        info = np.iinfo(np.dtype(dtype))
        # runs of repeated draws from a tiny pool force real compression
        pool = st.sampled_from([info.min, info.max, 0, 1])
        runs = data.draw(st.lists(st.tuples(pool, st.integers(1, 9)),
                                  max_size=12))
        arr = np.repeat([v for v, _ in runs],
                        [r for _, r in runs]).astype(dtype)
        _rle_round_trip(Machine("scan", backend=backend), arr)

    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=40, deadline=None)
    @given(values=st.lists(st.one_of(
        st.floats(allow_nan=True, allow_infinity=True, width=64),
        st.sampled_from([0.0, -0.0, 1.5])), max_size=40))
    def test_rle_float_including_nan(self, backend, values):
        arr = np.array(values, dtype=np.float64)
        _rle_round_trip(Machine("scan", backend=backend), arr)

    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=40, deadline=None)
    @given(data=st.data(), dtype=st.sampled_from(INT_DTYPES))
    def test_delta_int_exact_under_wraparound(self, backend, data, dtype):
        info = np.iinfo(np.dtype(dtype))
        values = data.draw(st.lists(
            st.integers(int(info.min), int(info.max)), max_size=40))
        arr = np.array(values, dtype=dtype)
        _delta_round_trip(Machine("scan", backend=backend), arr)

    @settings(max_examples=25, deadline=None)
    @given(values=st.lists(st.floats(allow_nan=False, allow_infinity=False,
                                     min_value=-1e6, max_value=1e6),
                           max_size=40))
    def test_delta_float_round_trips_within_tolerance(self, values):
        arr = np.array(values, dtype=np.float64)
        out = delta_decode(delta_encode(Machine("scan").vector(arr)))
        np.testing.assert_allclose(out.data, arr, rtol=1e-9, atol=1e-9)


class TestEdges:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("dtype", INT_DTYPES + ["float64", "bool"])
    def test_empty_and_singleton(self, backend, dtype):
        m = Machine("scan", backend=backend)
        _rle_round_trip(m, np.empty(0, dtype=dtype))
        _rle_round_trip(m, np.ones(1, dtype=dtype))
        if dtype != "bool":
            _delta_round_trip(m, np.empty(0, dtype=dtype))
            _delta_round_trip(m, np.array([42], dtype=dtype))

    def test_dtype_boundaries(self):
        m = Machine("scan")
        for dtype in INT_DTYPES:
            info = np.iinfo(np.dtype(dtype))
            arr = np.array([info.min, info.max, info.max, info.min, 0],
                           dtype=dtype)
            _rle_round_trip(m, arr)
            _delta_round_trip(m, arr)

    def test_rle_bool(self):
        m = Machine("scan")
        arr = np.array([True, True, False, True, True, True])
        values, lengths = rle_encode(m.vector(arr))
        assert values.to_list() == [True, False, True]
        assert lengths.to_list() == [2, 1, 3]
        _rle_round_trip(m, arr)

    def test_nan_is_its_own_run(self):
        m = Machine("scan")
        arr = np.array([np.nan, np.nan, 1.0])
        _, lengths = rle_encode(m.vector(arr))
        assert lengths.to_list() == [1, 1, 1]

    def test_zero_length_runs_decode_to_nothing(self):
        m = Machine("scan")
        out = rle_decode(m.vector([7, 8, 9]), m.vector([2, 0, 1]))
        assert out.to_list() == [7, 7, 9]

    def test_rle_decode_validates(self):
        m = Machine("scan")
        with pytest.raises(ValueError, match="disagree"):
            rle_decode(m.vector([1]), m.vector([1, 2]))
        with pytest.raises(ValueError, match="non-negative"):
            rle_decode(m.vector([1]), m.vector([-1]))

    def test_delta_rejects_bool(self):
        m = Machine("scan")
        with pytest.raises(TypeError, match="cast bools"):
            delta_encode(m.flags([True, False]))
        with pytest.raises(TypeError, match="cast bools"):
            delta_decode(m.flags([True, False]))

    def test_charges_are_backend_independent(self):
        data = np.repeat([5, 6, 5], [3, 2, 4])
        charges = []
        for backend in BACKENDS:
            m = Machine("scan", backend=backend)
            values, lengths = rle_encode(m.vector(data))
            rle_decode(values, lengths)
            charges.append(dict(m.counter.by_kind))
        assert charges[0] == charges[1] == charges[2]
