"""k-d tree construction (Table 1)."""
import numpy as np
import pytest

from repro import Machine
from repro.algorithms.kd_tree import build_kd_tree


class TestStructure:
    def test_small_fixed(self):
        pts = np.array([[2, 3], [5, 4], [9, 6], [4, 7], [8, 1], [7, 2]])
        t = build_kd_tree(Machine("scan"), pts)
        assert sorted(t.order.tolist()) == list(range(6))
        t.validate()

    def test_empty_and_singleton(self):
        t = build_kd_tree(Machine("scan"), np.empty((0, 2), dtype=int))
        assert len(t.order) == 0
        t1 = build_kd_tree(Machine("scan"), [(5, 5)])
        assert t1.order.tolist() == [0]
        t1.validate()

    def test_power_of_two_and_odd_sizes(self):
        rng = np.random.default_rng(0)
        for n in (2, 3, 7, 16, 33, 100):
            pts = rng.integers(0, 1000, (n, 2))
            t = build_kd_tree(Machine("scan"), pts)
            assert sorted(t.order.tolist()) == list(range(n))
            t.validate()

    def test_duplicate_coordinates(self):
        pts = [(1, 1)] * 8 + [(2, 2)] * 8
        t = build_kd_tree(Machine("scan"), pts)
        t.validate()

    def test_levels_alternate_axes(self):
        rng = np.random.default_rng(1)
        t = build_kd_tree(Machine("scan"), rng.integers(0, 100, (64, 2)))
        axes = [lvl.axis for lvl in t.levels]
        assert axes == [i % 2 for i in range(len(axes))]

    def test_level_segment_counts_double(self):
        rng = np.random.default_rng(2)
        t = build_kd_tree(Machine("scan"), rng.integers(0, 10**6, (128, 2)))
        sizes = [len(lvl.heads) for lvl in t.levels]
        for a, b in zip(sizes, sizes[1:]):
            assert b <= 2 * a
            assert b > a

    @pytest.mark.parametrize("seed", range(8))
    def test_random_validation(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 400))
        pts = rng.integers(-10**4, 10**4, (n, 2))
        t = build_kd_tree(Machine("scan"), pts)
        t.validate()


class TestHigherDimensions:
    @pytest.mark.parametrize("dims", [1, 3, 4])
    def test_arbitrary_dimension(self, dims):
        rng = np.random.default_rng(dims)
        pts = rng.integers(0, 1000, (150, dims))
        t = build_kd_tree(Machine("scan"), pts)
        assert sorted(t.order.tolist()) == list(range(150))
        t.validate()

    def test_axes_cycle_through_all_dims(self):
        rng = np.random.default_rng(9)
        t = build_kd_tree(Machine("scan"), rng.integers(0, 10**5, (64, 3)))
        axes = [lvl.axis for lvl in t.levels]
        assert axes == [i % 3 for i in range(len(axes))]

    def test_3d_duplicate_heavy(self):
        rng = np.random.default_rng(10)
        pts = rng.integers(0, 3, (120, 3))  # many ties on every axis
        t = build_kd_tree(Machine("scan"), pts)
        t.validate()


class TestComplexity:
    def test_steps_scale_gently(self):
        """Each level is O(1) steps after the two sorts, so steps grow like
        lg n (plus the sort's bit count), far from n."""
        rng = np.random.default_rng(3)

        def steps(n):
            m = Machine("scan")
            build_kd_tree(m, rng.integers(0, 2**12, (n, 2)))
            return m.steps

        s_small, s_big = steps(128), steps(1024)
        assert s_big < 2.2 * s_small

    def test_scan_beats_erew(self):
        rng = np.random.default_rng(4)
        pts = rng.integers(0, 2**10, (256, 2))
        ms = Machine("scan")
        build_kd_tree(ms, pts)
        me = Machine("erew")
        build_kd_tree(me, pts)
        assert me.steps > 2 * ms.steps
