"""Execution backends: registry, selection, and differential equivalence.

The cost model decides what a primitive charges; a backend decides how it
computes.  These tests pin the contract that makes that split safe:

* the registry / ``Machine(backend=...)`` / ``REPRO_BACKEND`` selection
  surface behaves as documented;
* random programs over the machine's primitive vocabulary produce
  **bit-identical results and identical step charges** on all three
  backends (hypothesis-driven differential testing, integer vectors so
  equality is exact);
* fault injection and checked/degrading execution attach at the dispatch
  point and therefore behave identically on every backend;
* the blocked backend's carry propagation survives vectors spanning many
  chunks.
"""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Machine
from repro.backends import (
    BACKEND_ENV_VAR,
    Backend,
    BlockedBackend,
    DistributedBackend,
    NativeBackend,
    NumPyBackend,
    ReferenceBackend,
    available_backends,
    backend_specs,
    get_backend,
    resolve_backend,
)
from repro.core import ops, scans, segmented
from repro.core.vector import Vector
from repro.faults import FaultInjector, FaultPlan, PrimitiveFault

BACKEND_SPECS = ["numpy", "blocked:7", "reference", "native:0:3"]


# --------------------------------------------------------------------- #
# Registry and selection
# --------------------------------------------------------------------- #

class TestSelection:
    def test_registry_lists_all_five(self):
        assert available_backends() == ["blocked", "distributed", "native",
                                        "numpy", "reference"]

    def test_get_backend_parses_specs(self):
        assert isinstance(get_backend("numpy"), NumPyBackend)
        assert isinstance(get_backend("reference"), ReferenceBackend)
        b = get_backend("blocked:4096")
        assert isinstance(b, BlockedBackend) and b.chunk == 4096
        d = get_backend("distributed:2:100")
        assert isinstance(d, DistributedBackend)
        assert d.workers == 2 and d.min_distribute == 100
        nat = get_backend("native:2:1024")
        assert isinstance(nat, NativeBackend)
        assert nat.threads == 2 and nat.block == 1024

    def test_unknown_name_and_stray_argument_raise(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("cuda")
        with pytest.raises(ValueError, match="takes no"):
            get_backend("numpy:8")

    def test_unknown_backend_error_is_helpful(self):
        """The registry error teaches the fix: every registered name, the
        spec syntaxes, and both selection channels."""
        with pytest.raises(ValueError) as err:
            get_backend("cuda")
        message = str(err.value)
        for name in available_backends():
            assert name in message
        for syntax in backend_specs():
            assert syntax in message
        assert "distributed" in message
        assert BACKEND_ENV_VAR in message
        assert "Machine(backend=...)" in message

    def test_invalid_env_value_names_the_env_var(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "warp:9")
        with pytest.raises(ValueError, match=BACKEND_ENV_VAR):
            resolve_backend(None)
        # a bad argument to a known name is wrapped the same way
        monkeypatch.setenv(BACKEND_ENV_VAR, "blocked:many")
        with pytest.raises(ValueError, match=BACKEND_ENV_VAR):
            resolve_backend(None)

    def test_resolve_precedence(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert isinstance(resolve_backend(None), NumPyBackend)
        monkeypatch.setenv(BACKEND_ENV_VAR, "blocked:32")
        env = resolve_backend(None)
        assert isinstance(env, BlockedBackend) and env.chunk == 32
        # an explicit argument beats the environment
        assert isinstance(resolve_backend("reference"), ReferenceBackend)
        inst = BlockedBackend(chunk=5)
        assert resolve_backend(inst) is inst
        with pytest.raises(TypeError):
            resolve_backend(42)

    def test_machine_accepts_name_instance_and_env(self, monkeypatch):
        assert Machine("scan", backend="blocked:9").backend.chunk == 9
        inst = ReferenceBackend()
        assert Machine("scan", backend=inst).backend is inst
        monkeypatch.setenv(BACKEND_ENV_VAR, "blocked")
        assert isinstance(Machine("scan").backend, BlockedBackend)
        monkeypatch.delenv(BACKEND_ENV_VAR)
        assert isinstance(Machine("scan").backend, NumPyBackend)

    def test_repr_and_snapshot_identify_the_backend(self):
        # every repr / snapshot names the engine that produced its numbers,
        # so a profile report or failure message is never ambiguous
        assert "backend='numpy'" in repr(Machine("scan", backend="numpy"))
        assert "backend='blocked'" in repr(Machine("scan", backend="blocked"))
        assert Machine("scan", backend="reference").snapshot().backend == "reference"
        m = Machine("scan", backend="blocked")
        with m.measure() as r:
            scans.plus_scan(m.vector(range(8)))
        assert r.delta.backend == "blocked"  # deltas keep the stamp

    def test_backend_is_abstract(self):
        with pytest.raises(TypeError):
            Backend()

    def test_blocked_rejects_bad_chunk(self):
        with pytest.raises(ValueError):
            BlockedBackend(chunk=0)


# --------------------------------------------------------------------- #
# The Vector copy/adopt contract (no-copy path for backend results)
# --------------------------------------------------------------------- #

class TestVectorAdoption:
    def test_public_constructor_copies(self):
        m = Machine("scan")
        src = np.arange(8)
        v = Vector(m, src)
        src[:] = -1
        assert v.to_list() == list(range(8))

    def test_adopt_does_not_copy(self):
        m = Machine("scan")
        arr = np.arange(8)
        v = Vector._adopt(m, arr)
        assert v.data is arr
        assert not arr.flags.writeable  # adoption freezes the buffer

    def test_machine_factories_copy_caller_arrays(self):
        m = Machine("scan")
        src = np.arange(5)
        v = m.vector(src)
        src[:] = 9
        assert v.to_list() == [0, 1, 2, 3, 4]

    def test_primitive_results_are_fresh_and_frozen(self):
        m = Machine("scan")
        v = m.vector([3, 1, 2])
        out = scans.plus_scan(v)
        assert not out.data.flags.writeable
        with pytest.raises(ValueError):
            out.data[0] = 99


# --------------------------------------------------------------------- #
# Differential program equivalence
# --------------------------------------------------------------------- #

PROGRAM_OPS = [
    "add3", "rsub", "double", "neg", "abs", "maximum0", "where_sign",
    "plus_scan", "max_scan", "min_scan", "or_scan", "back_plus_scan",
    "reverse", "shift2", "shift_neg", "rotate", "gather_rev",
    "combine_sum", "split", "pack_even", "enumerate", "plus_distribute",
    "seg_plus_scan", "seg_max_scan", "seg_min_scan", "seg_copy",
    "seg_back_copy", "seg_plus_distribute", "seg_min_distribute",
    "seg_split", "neighbor_flags",
]


def _seg_flags(m, n):
    sf = np.zeros(n, dtype=bool)
    if n:
        sf[::4] = True
        sf[0] = True
    return m.flags(sf)


def _apply(m, v, op):
    """One step of the differential program; always returns an int64 vector."""
    n = len(v)
    if op == "add3":
        return v + 3
    if op == "rsub":
        return 1000 - v
    if op == "double":
        return v * 2
    if op == "neg":
        return -v
    if op == "abs":
        return abs(v)
    if op == "maximum0":
        return v.maximum(0)
    if op == "where_sign":
        return (v > 0).where(v, -1)
    if op == "plus_scan":
        return scans.plus_scan(v)
    if op == "max_scan":
        return scans.max_scan(v)
    if op == "min_scan":
        return scans.min_scan(v)
    if op == "or_scan":
        return scans.or_scan(v.bit(0)).astype(np.int64)
    if op == "back_plus_scan":
        return scans.back_plus_scan(v)
    if op == "reverse":
        return v.reverse()
    if op == "shift2":
        return v.shift(2, fill=7)
    if op == "shift_neg":
        return v.shift(-1, fill=-7)
    if op == "rotate":
        if n == 0:
            return v
        return v.permute(m.vector((np.arange(n) + 1) % n))
    if op == "gather_rev":
        if n == 0:
            return v
        return v.gather(m.vector(np.arange(n)[::-1].copy()))
    if op == "combine_sum":
        if n == 0:
            return v
        idx = m.vector(np.arange(n) % max(n // 2, 1))
        return v.combine_write(idx, length=n, op="sum")
    if op == "split":
        return ops.split(v, v.bit(0))
    if op == "pack_even":
        return ops.pack(v, v.bit(0))
    if op == "enumerate":
        return ops.enumerate_(v.bit(0))
    if op == "plus_distribute":
        return scans.plus_distribute(v)
    if op == "neighbor_flags":
        return segmented.seg_flag_from_neighbor_change(
            v, _seg_flags(m, n)).astype(np.int64)
    # remaining ops are segmented; seg_plus_scan of an empty vector keeps
    # the seed's length-1 quirk, so they only compose at n > 0
    if n == 0:
        return v
    sf = _seg_flags(m, n)
    if op == "seg_plus_scan":
        return segmented.seg_plus_scan(v, sf)
    if op == "seg_max_scan":
        return segmented.seg_max_scan(v, sf)
    if op == "seg_min_scan":
        return segmented.seg_min_scan(v, sf)
    if op == "seg_copy":
        return segmented.seg_copy(v, sf)
    if op == "seg_back_copy":
        return segmented.seg_back_copy(v, sf)
    if op == "seg_plus_distribute":
        return segmented.seg_plus_distribute(v, sf)
    if op == "seg_min_distribute":
        return segmented.seg_min_distribute(v, sf)
    if op == "seg_split":
        return segmented.seg_split(v, v.bit(0), sf)
    raise AssertionError(f"unknown program op {op!r}")


def _run_program(backend_spec, values, program):
    m = Machine("scan", backend=backend_spec, allow_concurrent_write=True)
    v = m.vector(np.asarray(values, dtype=np.int64))
    trace = []
    for op in program:
        v = _apply(m, v, op)
        assert v.dtype == np.int64, op
        trace.append(v.to_list())
    return trace, m.steps, dict(m.counter.by_kind)


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(st.integers(-10**6, 10**6), max_size=30),
    program=st.lists(st.sampled_from(PROGRAM_OPS), max_size=6),
)
def test_differential_programs_bit_identical(values, program):
    """Random primitive programs: every backend returns the same bits after
    every operation AND charges the same steps of the same kinds."""
    baseline = _run_program("numpy", values, program)
    for spec in ("blocked:7", "reference", "native:0:3"):
        assert _run_program(spec, values, program) == baseline, spec


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(st.integers(-100, 100), min_size=1, max_size=60),
    chunk=st.integers(1, 13),
)
def test_blocked_chunk_size_never_changes_results(values, chunk):
    """The chunk size is an execution detail: any chunk gives the bits the
    whole-vector backend gives, for scans crossing chunk boundaries."""
    m_np = Machine("scan")
    m_bl = Machine("scan", backend=BlockedBackend(chunk=chunk))
    sf = np.zeros(len(values), dtype=bool)
    sf[::3] = True
    for fn in (
        lambda mm: scans.plus_scan(mm.vector(values)).to_list(),
        lambda mm: scans.max_scan(mm.vector(values), identity=0).to_list(),
        lambda mm: segmented.seg_plus_scan(
            mm.vector(values), mm.flags(sf)).to_list(),
        lambda mm: segmented.seg_max_scan(
            mm.vector(values), mm.flags(sf)).to_list(),
    ):
        assert fn(m_np) == fn(m_bl)


# --------------------------------------------------------------------- #
# Cost transparency: observation never changes what it observes
# --------------------------------------------------------------------- #

def _run_program_observed(backend_spec, values, program):
    """``_run_program`` with a Profiler attached and a span per op."""
    from repro.observe import Profiler, span

    m = Machine("scan", backend=backend_spec, allow_concurrent_write=True)
    profiler = Profiler()
    profiler.attach(m)
    try:
        v = m.vector(np.asarray(values, dtype=np.int64))
        trace = []
        for i, op in enumerate(program):
            with span(f"op[{i}]:{op}"):
                v = _apply(m, v, op)
            trace.append(v.to_list())
    finally:
        profiler.detach()
    return (trace, m.steps, dict(m.counter.by_kind)), profiler


@settings(max_examples=25, deadline=None)
@given(
    values=st.lists(st.integers(-10**6, 10**6), max_size=30),
    program=st.lists(st.sampled_from(PROGRAM_OPS), max_size=6),
)
def test_observed_programs_bit_identical(values, program):
    """Attaching spans/metrics is free in the cost model: the observed run
    returns the same bits and charges the same steps as the bare run, on
    every backend — and the profiler's own ledger agrees with the
    machine's."""
    for spec in BACKEND_SPECS:
        bare = _run_program(spec, values, program)
        observed, profiler = _run_program_observed(spec, values, program)
        assert observed == bare, spec
        assert profiler.total_steps == bare[1], spec
        assert dict(profiler.by_kind()) == bare[2], spec
        # each program op got its own child span under the root
        assert len(profiler.root.children) == len(program), spec


@pytest.mark.parametrize("spec", BACKEND_SPECS)
def test_profiler_is_transparent_for_a_real_algorithm(spec):
    """End to end on the paper's radix sort: profiled and unprofiled runs
    are step- and bit-identical (the acceptance invariant behind the
    golden-baseline harness)."""
    from repro.algorithms import split_radix_sort
    from repro.observe import Profiler

    data = np.arange(64)[::-1] % 256

    def run(observe):
        m = Machine("scan", backend=spec)
        profiler = Profiler()
        if observe:
            profiler.attach(m)
        try:
            out = split_radix_sort(m.vector(data), number_of_bits=8)
        finally:
            if observe:
                profiler.detach()
        return out.to_list(), m.steps, dict(m.counter.by_kind)

    assert run(observe=True) == run(observe=False)


# --------------------------------------------------------------------- #
# Fault injection and reliability are backend-independent
# --------------------------------------------------------------------- #

class TestFaultsAcrossBackends:
    def _faulted_run(self, spec):
        plan = FaultPlan(primitive_faults=(
            PrimitiveFault(op_index=0, kind="elementwise", element=2, bit=1),
            PrimitiveFault(op_index=1, kind="scan", element=3, bit=5),
            PrimitiveFault(op_index=0, kind="permute", element=0, bit=2),
        ), seed=3)
        m = Machine("scan", backend=spec, fault_injector=FaultInjector(plan))
        v = m.vector([5, 1, 4, 1, 5, 9, 2, 6])
        a = v + 1                       # elementwise fault 0 lands here
        b = scans.plus_scan(a)          # scan op 0: clean
        c = scans.plus_scan(b)          # scan op 1: corrupted
        d = c.permute(m.vector([1, 0, 3, 2, 5, 4, 7, 6]))  # permute fault
        return (a.to_list(), b.to_list(), c.to_list(), d.to_list(),
                m.fault_counters.injected, m.steps)

    def test_same_faults_same_corruption_everywhere(self):
        baseline = self._faulted_run("numpy")
        assert baseline[4] == 3  # all three planned flips landed
        for spec in ("blocked:3", "reference"):
            assert self._faulted_run(spec) == baseline, spec

    @pytest.mark.parametrize("spec", BACKEND_SPECS)
    def test_checked_scan_detects_and_retries(self, spec):
        plan = FaultPlan(primitive_faults=(
            PrimitiveFault(op_index=0, kind="scan", element=3, bit=7),),
            seed=0)
        m = Machine("scan", backend=spec, reliability=True,
                    fault_injector=FaultInjector(plan))
        v = m.vector([2, 1, 2, 3, 5, 8, 13, 21])
        out = scans.plus_scan(v)
        assert out.to_list() == [0, 2, 3, 5, 8, 13, 21, 34]
        assert m.fault_counters.detected >= 1
        assert m.fault_counters.corrected == 1

    @pytest.mark.parametrize("spec", BACKEND_SPECS)
    def test_degraded_machine_still_correct(self, spec):
        plan = FaultPlan(probability=1.0, probability_kinds=("scan",), seed=0)
        m = Machine("scan", backend=spec, reliability=True,
                    fault_injector=FaultInjector(plan))
        v = m.vector(list(range(12)))
        out = scans.plus_scan(v)
        assert m.scan_unit_failed
        assert out.to_list() == np.concatenate(
            ([0], np.cumsum(np.arange(12))[:-1])).tolist()
        assert m.fault_counters.degraded_scans >= 1


# --------------------------------------------------------------------- #
# Segmented-extreme NaN carries (regression)
# --------------------------------------------------------------------- #

class TestSegExtremeNaNCarries:
    """The min carry between chunks/shards used NaN-propagating
    ``np.minimum`` while the in-chunk rank encoding orders NaN as a
    largest value: with NaN inside the open segment crossing a boundary,
    blocked and reference returned ``nan`` where numpy returns the real
    running min.  Fixed by ``np.fmin`` carries everywhere."""

    VALUES = np.array([0.0] * 6 + [np.nan, 1.0])
    FLAGS = np.array([True] + [False] * 7)

    def _seg_min(self, spec):
        m = Machine("scan", backend=spec)
        return segmented.seg_min_scan(m.vector(self.VALUES),
                                      m.flags(self.FLAGS)).data

    def test_chunk_boundary_carry_matches_numpy(self):
        want = self._seg_min("numpy")
        assert want[7] == 0.0  # NaN ordered largest, not propagated
        for spec in ("blocked:7", "blocked:2", "reference", "native:0:7"):
            got = self._seg_min(spec)
            assert np.array_equal(got, want, equal_nan=True), spec

    def test_shard_split_carry_matches_numpy(self):
        from repro.cluster.shardops import (seg_extreme_apply,
                                            seg_extreme_shard)

        v, sf = self.VALUES, self.FLAGS
        out_a, carry_a = seg_extreme_shard(v[:4], sf[:4], np.inf,
                                           is_max=False)
        out_b, _ = seg_extreme_shard(v[4:], sf[4:], np.inf, is_max=False)
        # shard b has no head: it receives shard a's open-segment min
        seg_extreme_apply(out_b, sf[4:], carry_a[0], is_max=False)
        got = np.concatenate([out_a, out_b])
        assert np.array_equal(got, self._seg_min("numpy"), equal_nan=True)


# --------------------------------------------------------------------- #
# Blocked carries at scale (acceptance: vector much larger than a chunk)
# --------------------------------------------------------------------- #

class TestBlockedCarries:
    def test_plus_scan_across_many_chunks(self):
        n, chunk = 10_000, 64
        m = Machine("scan", backend=BlockedBackend(chunk=chunk))
        rng = np.random.default_rng(0)
        data = rng.integers(-10**9, 10**9, n)
        out = scans.plus_scan(m.vector(data))
        expected = np.concatenate(([0], np.cumsum(data)[:-1]))
        assert np.array_equal(out.data, expected)

    def test_wraparound_carries_match_whole_vector_semantics(self):
        # sums overflow int64 many times over; modular carries must agree
        n = 1_000
        data = np.full(n, np.iinfo(np.int64).max // 3)
        m = Machine("scan", backend=BlockedBackend(chunk=17))
        out = scans.plus_scan(m.vector(data))
        expected = np.concatenate(([0], np.cumsum(data)[:-1]))
        assert np.array_equal(out.data, expected)

    def test_temporaries_stay_chunk_bounded(self):
        import tracemalloc

        n, chunk = 200_000, 1_024
        data = np.arange(n)
        # three whole-vector float64 temporaries on the numpy backend; the
        # blocked backend holds them one 1k-element chunk at a time and
        # only the boolean result (1 byte/element) is materialized in full
        fn = lambda a: (np.sin(a) + np.cos(a) * np.exp(-a * 1e-9)) > 0.5

        m_bl = Machine("scan", backend=BlockedBackend(chunk=chunk))
        v = m_bl.vector(data)
        tracemalloc.start()
        v._unary(fn).data  # .data forces the (possibly lazy) computation
        _, peak_blocked = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        m_np = Machine("scan")
        v = m_np.vector(data)
        tracemalloc.start()
        v._unary(fn).data
        _, peak_numpy = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        assert peak_blocked < peak_numpy / 2
