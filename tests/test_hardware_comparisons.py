"""Bitonic network, router, and the Table 2 / Table 4 analysis layer."""
import numpy as np
import pytest

from repro.hardware import (
    BitonicNetwork,
    HypercubeRouter,
    bitonic_depth,
    bitonic_network_cycles,
    bitonic_on_hypercube_cycles,
    example_system,
    route_cycles_model,
    scan_vs_memory,
    sort_comparison,
    split_radix_cycles,
    tree_scan_cycles,
    wormhole_route_cycles,
)


class TestBitonicNetwork:
    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_sorts(self, n, rng):
        net = BitonicNetwork(n, 8)
        vals = rng.integers(0, 256, n)
        out, cycles = net.sort(vals)
        assert np.array_equal(out, np.sort(vals))
        assert cycles == bitonic_network_cycles(n, 8)

    def test_duplicates_and_extremes(self):
        net = BitonicNetwork(8, 4)
        out, _ = net.sort([15, 0, 15, 0, 7, 7, 1, 14])
        assert out.tolist() == [0, 0, 1, 7, 7, 14, 15, 15]

    def test_depth_formula(self):
        assert bitonic_depth(2) == 1
        assert bitonic_depth(8) == 6
        assert bitonic_depth(65536) == 136

    def test_comparator_count(self):
        net = BitonicNetwork(8, 4)
        assert net.num_comparators() == 6 * 4  # depth * n/2

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            BitonicNetwork(6, 4)
        with pytest.raises(ValueError):
            BitonicNetwork(4, 4).sort([16, 0, 0, 0])


class TestRouter:
    def test_identity_routing_is_free(self):
        r = HypercubeRouter(16, 8)
        st = r.route(np.arange(16))
        assert st.cycles == 0
        assert st.total_hops == 0

    def test_full_reversal(self):
        r = HypercubeRouter(16, 8)
        st = r.route(np.arange(16)[::-1].copy())
        assert st.total_hops == 16 * 4  # every message crosses every dim
        assert st.cycles >= 4 * r.hop_cost

    @pytest.mark.parametrize("seed", range(5))
    def test_random_permutation_latency(self, seed):
        rng = np.random.default_rng(seed)
        r = HypercubeRouter(64, 16)
        st = r.route(rng.permutation(64))
        # at least one hop and no more than pathological serialization
        assert r.hop_cost <= st.cycles <= 64 * 6 * r.hop_cost

    def test_concurrent_destinations_queue(self):
        """All messages to node 0: the final links serialize."""
        r = HypercubeRouter(8, 4)
        st = r.route(np.zeros(8, dtype=int))
        assert st.max_queue_delay > 0

    def test_model_lower_bounds_simulation(self):
        rng = np.random.default_rng(0)
        r = HypercubeRouter(64, 16)
        cyc = r.random_permutation_cycles(rng)
        assert cyc >= route_cycles_model(64, 16) // 3

    def test_destination_validation(self):
        r = HypercubeRouter(4, 4)
        with pytest.raises(ValueError):
            r.route([0, 1, 2, 9])


class TestTable2:
    def test_scan_cheaper_than_memory_reference(self):
        """The paper's central hardware claim, at CM-2 scale."""
        t = scan_vs_memory(65536, 32)
        scan = t["scan_operation"]
        mem = t["memory_reference"]
        assert scan["bit_cycles"] <= mem["bit_cycles_wormhole"]
        assert scan["bit_cycles"] < mem["bit_cycles_store_forward"]
        assert scan["hardware_units"] < 0.1 * mem["hardware_units"]
        assert scan["circuit_size"] < mem["circuit_size"]
        assert scan["vlsi_area"] < mem["vlsi_area"]

    def test_holds_across_sizes(self):
        for n in (256, 4096, 1 << 20):
            t = scan_vs_memory(n, 32)
            assert (t["scan_operation"]["bit_cycles"]
                    <= t["memory_reference"]["bit_cycles_wormhole"])


class TestTable4:
    def test_cm_scale_near_tie(self):
        """At n = 64K, d = 16 the two sorts are within a small factor, with
        bitonic slightly ahead — the 20,000 vs 19,000 of Table 4."""
        t = sort_comparison(65536, 16)
        split = t["split_radix"]["simulated_cycles"]
        bitonic = t["bitonic"]["simulated_cycles"]
        assert bitonic <= split <= 2 * bitonic

    def test_theory_column(self):
        t = sort_comparison(65536, 16)
        assert t["split_radix"]["theory_bit_time"] == 16 * 16
        assert t["bitonic"]["theory_bit_time"] == 16 + 256

    def test_split_radix_wins_for_small_keys(self):
        """Crossover: with few key bits the radix sort's d·lg n beats the
        network's lg² n term."""
        t = sort_comparison(65536, 4)
        assert (t["split_radix"]["simulated_cycles"]
                < t["bitonic"]["simulated_cycles"])

    def test_monotone_in_bits(self):
        costs = [split_radix_cycles(4096, d) for d in (4, 8, 16, 32)]
        assert costs == sorted(costs)
        bit = [bitonic_on_hypercube_cycles(4096, d) for d in (4, 8, 16, 32)]
        assert bit == sorted(bit)


class TestExampleSystem:
    def test_paper_arithmetic(self):
        es = example_system()
        assert es.processors == 4096
        assert es.boards == 64
        assert es.per_board_chip_state_machines == 126
        assert es.per_board_chip_shift_registers == 63
        # "a scan on a 32 bit field would require 5 microseconds"
        assert 4e-6 < es.scan_time_at_100ns < 6e-6
        # "with a 10ns clock ... reduced to .5 microseconds"
        assert 4e-7 < es.scan_time_at_10ns < 6e-7

    def test_wormhole_model_monotone(self):
        assert wormhole_route_cycles(1 << 16, 32) > wormhole_route_cycles(256, 32)
        assert tree_scan_cycles(1 << 16, 32) > tree_scan_cycles(256, 32)
