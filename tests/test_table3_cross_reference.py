"""Table 3, as executable cross-reference: each example algorithm uses
exactly the scan idioms the table attributes to it, observed through the
tracer's charge profile."""
import numpy as np
import pytest

from repro import Machine
from repro.algorithms import (
    draw_lines,
    halving_merge,
    minimum_spanning_tree,
    quicksort,
    split_radix_sort,
)
from repro.graph import random_connected_graph
from repro.machine import trace


def _profile(run):
    m = Machine("scan", seed=0)
    with trace(m) as t:
        run(m)
    return t.by_kind(), m


class TestSplitRadixSort:
    """Table 3: uses *splitting* (enumerate + permute per bit)."""

    def test_profile(self, rng):
        data = rng.integers(0, 256, 128)
        kinds, _ = _profile(lambda m: split_radix_sort(m.vector(data),
                                                       number_of_bits=8))
        # 8 bits x (2 enumerates + 1 permute + elementwise glue)
        assert kinds["scan"] == 16
        assert kinds["permute"] == 8 * 3  # two reversals + the split permute
        assert "combine_write" not in kinds  # EREW-pure


class TestQuicksort:
    """Table 3: splitting, distributing sums, copying, segmented
    primitives — all of them, every iteration."""

    def test_profile(self, rng):
        data = rng.permutation(256)
        kinds, _ = _profile(lambda m: quicksort(m.vector(data)))
        assert kinds["scan"] > 50          # segmented ops everywhere
        assert kinds["permute"] > 5        # the three-way splits
        assert kinds["reduce"] > 5         # sortedness checks + distributes
        assert "combine_write" not in kinds


class TestMST:
    """Table 3: distributing sums, copying, segmented primitives."""

    def test_profile(self, rng):
        edges, weights = random_connected_graph(rng, 64, 64)
        kinds, m = _profile(
            lambda mm: minimum_spanning_tree(mm, 64, edges, weights))
        assert kinds["scan"] > 20          # segmented copies + distributes
        assert kinds["permute"] > 10       # cross-pointer traffic
        assert kinds["reduce"] > 0         # the per-round totals
        assert m.concurrent_writes_used == 0


class TestLineDrawing:
    """Table 3: allocating, copying, segmented primitives."""

    def test_profile(self):
        kinds, _ = _profile(
            lambda m: draw_lines(m, [[0, 0, 30, 12], [5, 9, 25, 2]]))
        assert kinds["scan"] >= 10         # the allocation + five distributes
        assert kinds["permute"] >= 6       # values to segment heads
        assert "gather" not in kinds       # pure allocation, no reads-by-index


class TestHalvingMerge:
    """Table 3: allocating, load balancing."""

    def test_profile(self, rng):
        a = np.sort(rng.integers(0, 10**5, 128))
        b = np.sort(rng.integers(0, 10**5, 128))
        kinds, _ = _profile(lambda m: halving_merge(m.vector(a), m.vector(b)))
        assert kinds["scan"] > 20          # packs (load balancing) + allocate
        assert kinds["permute"] > 10       # the routing of evens + odds
        assert kinds["gather"] > 0         # predecessor-position lookups


class TestPhaseAttribution:
    def test_mst_phases(self, rng):
        """The tracer attributes MST's steps to its stages sensibly."""
        edges, weights = random_connected_graph(rng, 64, 64)
        m = Machine("scan", seed=0)
        from repro.graph import from_edges

        with trace(m) as t:
            with t.phase("build"):
                from_edges(m, 64, edges, weights=weights)
            with t.phase("solve"):
                minimum_spanning_tree(m, 64, edges, weights)
        by_phase = t.by_phase()
        assert by_phase["build"] > 0
        assert by_phase["solve"] > by_phase["build"]  # rounds dominate
