"""The golden-profile regression harness (tier 1).

Every committed ``baselines/*.json`` profile is replayed here on both
the whole-vector NumPy backend and the chunked blocked backend, and the
fresh run must match the golden record **exactly** — step total,
primitive-invocation count, and the per-kind primitive mix.  This
supersedes hand-pinned step constants scattered through the tests: the
pins now live in one reviewable place, regenerated (together, in the
same commit as the cost-model change that moved them) by::

    PYTHONPATH=src python tools/update_baselines.py

A failure here means one of three things:

* an unintended cost-model change — a charge formula drifted; fix it;
* an intended one — regenerate the baselines and review the step diff;
* a backend whose execution changed the *accounting* (never allowed:
  backends compute results, machines charge steps).
"""
import json
import pathlib

import pytest

from repro.observe.baselines import (
    baseline_from_profile,
    compare_profile,
    default_baseline_dir,
    load_baselines,
)
from repro.observe.profiles import available_algorithms, run_profile

BASELINE_DIR = pathlib.Path(__file__).parent.parent / "baselines"
BASELINES = load_baselines(BASELINE_DIR)

# the golden gate runs the real-execution backends; the pure-Python
# reference oracle is far too slow for whole workloads and is covered by
# the differential suite in test_backends.py instead
BACKENDS = ["numpy", "blocked:113"]


def test_baselines_are_committed_for_every_workload():
    """Adding a workload without recording its baseline is an error."""
    assert sorted(BASELINES) == available_algorithms()


def test_default_dir_resolves_to_the_committed_baselines(monkeypatch):
    monkeypatch.delenv("REPRO_BASELINE_DIR", raising=False)
    assert default_baseline_dir() == BASELINE_DIR
    monkeypatch.setenv("REPRO_BASELINE_DIR", "/tmp/elsewhere")
    assert default_baseline_dir() == pathlib.Path("/tmp/elsewhere")


def test_baseline_files_are_normalized():
    """Committed files match what write_baseline would emit (no hand
    edits drifting from the serializer)."""
    for name, data in BASELINES.items():
        path = BASELINE_DIR / f"{name}.json"
        assert path.read_text() == json.dumps(data, indent=2,
                                              sort_keys=False) + "\n", name


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("algorithm", sorted(BASELINES))
def test_golden_profile(algorithm, backend):
    baseline = BASELINES[algorithm]
    profile = run_profile(algorithm, backend=backend,
                          model=baseline["model"], n=baseline["n"],
                          seed=baseline["seed"])
    problems = compare_profile(profile, baseline)
    assert not problems, (
        f"{algorithm} on {backend} deviates from its golden profile:\n  "
        + "\n  ".join(problems)
        + "\nIf this change is intentional, regenerate with "
          "`PYTHONPATH=src python tools/update_baselines.py` and commit "
          "the diff."
    )
    # the profile identifies its engine; the baseline never does
    assert profile.backend == backend.partition(":")[0]
    assert "backend" not in baseline


def test_compare_profile_reports_each_deviation():
    profile = run_profile("radix_sort")
    baseline = baseline_from_profile(profile)
    assert compare_profile(profile, baseline) == []

    tampered = dict(baseline, steps=baseline["steps"] + 5)
    assert any("steps" in p for p in compare_profile(profile, tampered))

    mix = dict(baseline["by_kind"])
    mix["scan"] = mix.get("scan", 0) + 1
    tampered = dict(baseline, by_kind=mix)
    assert any("by_kind[scan]" in p for p in compare_profile(profile, tampered))

    wrong_run = dict(baseline, n=baseline["n"] * 2)
    problems = compare_profile(profile, wrong_run)
    assert problems and all("n:" in p or "profile ran" in p for p in problems)
