"""Segmented quickhull (Table 1)."""
import numpy as np
import pytest

from repro import Machine
from repro.algorithms.convex_hull import convex_hull
from repro.baselines import monotone_chain_hull


def _hull_points(pts, res):
    return set(map(tuple, np.asarray(pts)[res.hull_indices].tolist()))


class TestSmallCases:
    def test_triangle(self):
        pts = [(0, 0), (4, 0), (2, 3)]
        res = convex_hull(Machine("scan"), pts)
        assert _hull_points(pts, res) == {(0, 0), (4, 0), (2, 3)}

    def test_interior_point_excluded(self):
        pts = [(0, 0), (4, 0), (2, 3), (2, 1)]
        res = convex_hull(Machine("scan"), pts)
        assert _hull_points(pts, res) == {(0, 0), (4, 0), (2, 3)}

    def test_collinear_points_excluded(self):
        pts = [(0, 0), (1, 0), (2, 0), (3, 0), (1, 2)]
        res = convex_hull(Machine("scan"), pts)
        assert _hull_points(pts, res) == {(0, 0), (3, 0), (1, 2)}

    def test_all_collinear(self):
        pts = [(0, 0), (1, 1), (2, 2), (3, 3)]
        res = convex_hull(Machine("scan"), pts)
        assert _hull_points(pts, res) == {(0, 0), (3, 3)}

    def test_two_points(self):
        res = convex_hull(Machine("scan"), [(0, 0), (5, 5)])
        assert len(res.hull_indices) == 2

    def test_single_point(self):
        res = convex_hull(Machine("scan"), [(3, 3)])
        assert res.hull_indices.tolist() == [0]

    def test_duplicates(self):
        pts = [(0, 0), (0, 0), (2, 0), (2, 0), (1, 2)]
        res = convex_hull(Machine("scan"), pts)
        assert _hull_points(pts, res) == {(0, 0), (2, 0), (1, 2)}

    def test_empty(self):
        res = convex_hull(Machine("scan"), np.empty((0, 2), dtype=int))
        assert len(res.hull_indices) == 0

    def test_square(self):
        pts = [(0, 0), (0, 2), (2, 0), (2, 2), (1, 1)]
        res = convex_hull(Machine("scan"), pts)
        assert _hull_points(pts, res) == {(0, 0), (0, 2), (2, 0), (2, 2)}


class TestAgainstBaseline:
    @pytest.mark.parametrize("seed", range(15))
    def test_random_point_sets(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 300))
        pts = rng.integers(-100, 100, (n, 2))
        res = convex_hull(Machine("scan"), pts)
        assert _hull_points(pts, res) == monotone_chain_hull(pts)

    def test_points_on_circle(self):
        t = np.linspace(0, 2 * np.pi, 40, endpoint=False)
        pts = np.column_stack((100 * np.cos(t), 100 * np.sin(t))).astype(int)
        pts = np.unique(pts, axis=0)
        res = convex_hull(Machine("scan"), pts)
        assert _hull_points(pts, res) == monotone_chain_hull(pts)

    def test_ccw_ordering(self):
        rng = np.random.default_rng(1)
        pts = rng.integers(-50, 50, (100, 2))
        res = convex_hull(Machine("scan"), pts)
        hp = pts[res.hull_indices].astype(float)
        # consecutive triples must all turn left (counter-clockwise)
        k = len(hp)
        for i in range(k):
            a, b, c = hp[i], hp[(i + 1) % k], hp[(i + 2) % k]
            cross = (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])
            assert cross > 0


class TestComplexity:
    def test_rounds_logarithmic_on_random_points(self):
        rng = np.random.default_rng(0)
        pts = rng.integers(-10**6, 10**6, (4096, 2))
        res = convex_hull(Machine("scan"), pts)
        assert res.rounds <= 24  # expected O(lg n)

    def test_scan_beats_erew(self):
        rng = np.random.default_rng(2)
        pts = rng.integers(-1000, 1000, (512, 2))
        ms = Machine("scan")
        convex_hull(ms, pts)
        me = Machine("erew")
        convex_hull(me, pts)
        assert me.steps > 2 * ms.steps
