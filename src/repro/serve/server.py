"""Scan-as-a-service: the asyncio server.

One :class:`ScanServer` listens on a TCP port, speaks the newline-JSON
protocol of :mod:`repro.serve.protocol`, and turns concurrent client
traffic into segmented mega-ops (:mod:`repro.serve.batching`).  The
request path::

    readline -> parse -> admit (drain? quota? cache? queue room?)
             -> pending queue -> batcher -> executor -> respond

Every admitted request parks a future on the pending queue.  A single
batcher task wakes on arrival, sleeps one ``batch_window`` so concurrent
requests pile up, then drains the queue, groups entries by (op, dtype),
chunks the groups by ``max_batch`` / ``max_batch_elements``, and runs
each unit on the executor thread.  The executor has exactly one worker,
so machine execution is serialized (one mega-op at a time — the event
loop stays free to accept and queue the *next* batch meanwhile, which is
what keeps occupancy high under load).

Failure handling follows the cluster's retry/degrade idiom
(:mod:`repro.cluster.ledger`): a mega-op that raises is *degraded* —
every member request re-runs solo, so one poisonous input cannot fail
its neighbours — and a solo failure is *classified* into a structured
error (``bad_request`` for input-shaped exceptions, ``internal``
otherwise).  Shutdown drains: admission closes first, queued work
finishes (bounded by ``drain_timeout``), and only then do the batcher,
executor, and connections come down — no pending future is ever left
unresolved.
"""
from __future__ import annotations

import asyncio
import contextlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Optional

import numpy as np

from .batching import (SERVABLE_OPS, BatchEngine, batchable,
                       proportional_shares)
from .cache import ResultCache
from .metrics import ServeMetrics, ServerStats
from .protocol import (ParsedRequest, ProtocolError, decode_frame,
                       error_frame, info_frame, ok_frame, parse_request)
from .quota import QuotaManager, QuotaPolicy

__all__ = ["ServeConfig", "ScanServer", "classify_failure"]


@dataclass(frozen=True)
class ServeConfig:
    """Everything a :class:`ScanServer` can be told.

    ``port=0`` binds an ephemeral port (tests); ``backend`` takes
    anything :func:`repro.backends.resolve_backend` accepts — ``None``
    honors ``REPRO_BACKEND``, so the whole server rides the distributed
    engine when the environment says so.
    """

    host: str = "127.0.0.1"
    port: int = 0
    backend: object = None
    model: str = "scan"
    fusion: Optional[bool] = None

    #: how long the batcher lets concurrent requests pile up (seconds)
    batch_window: float = 0.002
    #: most requests in one mega-op
    max_batch: int = 64
    #: most elements in one mega-op
    max_batch_elements: int = 1 << 20
    #: admission bound: admitted-but-unanswered requests (backpressure)
    max_pending: int = 1024
    #: largest vector one request may carry
    max_elements: int = 1 << 18
    #: largest wire frame (the StreamReader limit)
    max_frame_bytes: int = 8 << 20
    #: a queued request older than this dies with a ``timeout`` error
    request_timeout: float = 30.0
    #: result-cache capacity (0 disables)
    cache_entries: int = 1024
    #: per-tenant step budget (None disables metering)
    quota_budget: Optional[int] = None
    #: steps per second the budget refills
    quota_refill_per_s: float = 0.0
    #: how long shutdown waits for queued work before abandoning it
    drain_timeout: float = 10.0
    #: injectable clock for quota refill (tests drive it by hand)
    quota_clock: Optional[Callable[[], float]] = field(default=None,
                                                      repr=False)


def classify_failure(exc: BaseException) -> tuple:
    """Map an execution failure to a structured error, cluster-style:
    input-shaped exceptions (``ValueError`` covers ``SegmentError`` and
    the sorts' NaN rejection, ``TypeError`` covers dtype misuse) are the
    client's fault; anything else is ``internal``."""
    if isinstance(exc, (ValueError, TypeError)):
        return "bad_request", str(exc)
    return "internal", f"{type(exc).__name__}: {exc}"


@dataclass
class _Pending:
    """One admitted request parked on the queue."""

    req: ParsedRequest
    key: str                     #: result-cache key
    future: asyncio.Future       #: resolves to the response frame (bytes)
    t0: float                    #: loop.time() at admission
    deadline: Optional[float]


class ScanServer:
    """The scan service: one listener, one batcher, one executor thread.

    Lifecycle::

        server = ScanServer(ServeConfig(port=0))
        await server.start()          # binds; server.port is now real
        ...                           # or: await server.serve_forever()
        await server.shutdown()       # drain, then stop

    ``stats`` (a :class:`ServerStats`) carries this instance's exact SLO
    numbers; the process-wide registry gets the same events under
    ``serve.*``.
    """

    def __init__(self, config: ServeConfig = ServeConfig()) -> None:
        self.config = config
        self.engine = BatchEngine(config.backend, model=config.model,
                                  fusion=config.fusion)
        self.cache = ResultCache(config.cache_entries)
        self.quotas = QuotaManager(
            QuotaPolicy(budget=config.quota_budget,
                        refill_per_s=config.quota_refill_per_s),
            **({"clock": config.quota_clock} if config.quota_clock else {}))
        self.metrics = ServeMetrics()
        self.stats = ServerStats()

        self._server: Optional[asyncio.base_events.Server] = None
        self._batcher_task: Optional[asyncio.Task] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._pending: list = []
        self._outstanding = 0        #: admitted, future not yet resolved
        self._wake = asyncio.Event()
        self._draining = False
        self._stopped = False
        self._writers: set = set()
        self._dead_writers: set = set()
        self._conn_tasks: set = set()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    @property
    def port(self) -> int:
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    @property
    def pending_count(self) -> int:
        """Admitted requests whose response has not been resolved yet."""
        return self._outstanding

    async def start(self) -> None:
        assert self._server is None, "already started"
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve")
        self._batcher_task = asyncio.ensure_future(self._batcher())
        self._server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port,
            limit=self.config.max_frame_bytes)

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        with contextlib.suppress(asyncio.CancelledError):
            await self._server.serve_forever()

    async def shutdown(self, drain: bool = True) -> None:
        """Stop accepting, finish (or abandon) queued work, tear down."""
        if self._stopped:
            return
        self._draining = True
        if self._server is not None:
            # close() alone: wait_closed() blocks on open *client*
            # connections since 3.12.1, and those are ours to tear down
            self._server.close()

        loop = asyncio.get_running_loop()
        if drain:
            deadline = loop.time() + self.config.drain_timeout
            while self._outstanding and loop.time() < deadline:
                self._wake.set()
                await asyncio.sleep(0.005)
        # whatever is still queued gets a structured goodbye, not silence
        for entry in self._drain_queue():
            self._finish_error(entry, "shutting_down",
                               "server shut down before this request ran")

        self._stopped = True
        self._wake.set()
        if self._batcher_task is not None:
            await self._batcher_task
        if self._executor is not None:
            self._executor.shutdown(wait=True)

        for writer in list(self._writers):
            writer.close()
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks),
                                 return_exceptions=True)
        for writer in list(self._writers):
            with contextlib.suppress(Exception):
                await writer.wait_closed()
        self._writers.clear()

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        self.metrics.connections.inc()
        self._writers.add(writer)
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        lock = asyncio.Lock()
        requests: set = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # the frame outgrew the StreamReader limit; framing is
                    # lost, so answer once and hang up
                    self._count_error("too_large")
                    await self._send(writer, lock, error_frame(
                        None, "too_large",
                        f"frame exceeds max_frame_bytes="
                        f"{self.config.max_frame_bytes}",
                        details={"max_frame_bytes":
                                 self.config.max_frame_bytes}))
                    break
                if not line:
                    # EOF: the framing is one line each way, so a closed
                    # read side means the client left; replies resolved
                    # after this point are undeliverable
                    self._dead_writers.add(writer)
                    break
                if not line.strip():
                    continue  # bare newline keepalive
                # one task per request: responses pipeline out of order
                t = asyncio.ensure_future(
                    self._serve_line(line, writer, lock))
                requests.add(t)
                t.add_done_callback(requests.discard)
        except (ConnectionResetError, BrokenPipeError):
            self._dead_writers.add(writer)
        finally:
            if requests:
                await asyncio.gather(*list(requests),
                                     return_exceptions=True)
            self._writers.discard(writer)
            self._dead_writers.discard(writer)
            self.metrics.connections.dec()
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _send(self, writer: asyncio.StreamWriter, lock: asyncio.Lock,
                    frame: bytes) -> None:
        if writer in self._dead_writers or writer.is_closing():
            # the client left before its answer arrived; the work is done
            # and accounted, only the reply is undeliverable
            self.metrics.dropped_replies.inc()
            return
        try:
            async with lock:
                writer.write(frame)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, RuntimeError):
            self.metrics.dropped_replies.inc()

    async def _serve_line(self, line: bytes, writer: asyncio.StreamWriter,
                          lock: asyncio.Lock) -> None:
        try:
            obj = decode_frame(line)
        except ProtocolError as err:
            self._count_error(err.code)
            await self._send(writer, lock,
                             error_frame(None, err.code, err.message))
            return

        req_id = obj.get("id")
        op = obj.get("op")
        if op == "ping":
            await self._send(writer, lock, info_frame(req_id, pong=True))
            return
        if op == "stats":
            await self._send(writer, lock, info_frame(
                req_id, stats=self.stats.snapshot(),
                cache=self.cache.snapshot(),
                quotas=self.quotas.snapshot(),
                limits=self._limits()))
            return

        try:
            req = parse_request(obj, known_ops=SERVABLE_OPS,
                                max_elements=self.config.max_elements)
        except ProtocolError as err:
            self._count_error(err.code)
            await self._send(writer, lock,
                             error_frame(req_id, err.code, err.message,
                                         details=err.details))
            return

        frame = await self._admit_and_wait(req)
        await self._send(writer, lock, frame)

    # ------------------------------------------------------------------ #
    # Admission
    # ------------------------------------------------------------------ #

    def _limits(self) -> dict:
        """The server's admission limits, as the ``stats`` op reports
        them: what a client needs to right-size requests pre-flight."""
        return {
            "max_elements": self.config.max_elements,
            "max_frame_bytes": self.config.max_frame_bytes,
            "max_batch": self.config.max_batch,
            "max_batch_elements": self.config.max_batch_elements,
            "max_pending": self.config.max_pending,
            "request_timeout": self.config.request_timeout,
        }

    def _count_error(self, code: str) -> None:
        self.stats.errors += 1
        self.metrics.responses_error.inc()
        self.metrics.error(code).inc()

    async def _admit_and_wait(self, req: ParsedRequest) -> bytes:
        loop = asyncio.get_running_loop()
        t0 = loop.time()

        if self._draining:
            self._count_error("shutting_down")
            return error_frame(req.id, "shutting_down",
                               "server is draining; retry elsewhere")

        denial = self.quotas.admit(req.tenant)
        if denial is not None:
            self._count_error("quota_exhausted")
            return error_frame(req.id, "quota_exhausted", denial)

        self.stats.requests += 1
        self.metrics.requests.inc()

        key = ResultCache.key(req.op, req.values, req.seg_lengths,
                              backend=repr(self.engine.backend))
        hit = self.cache.get(key)
        if hit is not None:
            # no machine ran: zero steps charged, zero steps debited
            self.metrics.cache_hits.inc()
            self.stats.ok += 1
            self.metrics.responses_ok.inc()
            self._record_latency(loop.time() - t0)
            return ok_frame(req.id, hit.values, steps=0, batched=1,
                            cached=True)
        self.metrics.cache_misses.inc()

        if self._outstanding >= self.config.max_pending:
            self._count_error("overloaded")
            return error_frame(
                req.id, "overloaded",
                f"{self._outstanding} requests already pending "
                f"(max_pending={self.config.max_pending}); back off")

        timeout = self.config.request_timeout
        entry = _Pending(req=req, key=key, future=loop.create_future(),
                         t0=t0,
                         deadline=(t0 + timeout) if timeout else None)
        self._pending.append(entry)
        self._outstanding += 1
        self.metrics.pending.set(self._outstanding)
        self._wake.set()

        frame = await entry.future
        self._record_latency(loop.time() - t0)
        return frame

    def _record_latency(self, seconds: float) -> None:
        self.stats.record_latency(seconds)
        self.metrics.latency_us.observe(seconds * 1e6)

    # ------------------------------------------------------------------ #
    # The batcher
    # ------------------------------------------------------------------ #

    def _drain_queue(self) -> list:
        batch, self._pending = self._pending, []
        return batch

    async def _batcher(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            if self._stopped:
                break
            if not self._pending:
                continue
            # the coalescing window: let concurrent arrivals pile up
            if self.config.batch_window > 0 and not self._draining:
                await asyncio.sleep(self.config.batch_window)
            for op_name, entries in self._plan(self._drain_queue()):
                await self._run_unit(op_name, entries)

    def _plan(self, batch: list) -> list:
        """Expired entries answered; the rest grouped into execution
        units: same-(op, dtype) batchables chunked by the batch limits,
        everything else solo."""
        loop = asyncio.get_running_loop()
        now = loop.time()
        groups: dict = {}
        units: list = []
        for entry in batch:
            if entry.deadline is not None and now > entry.deadline:
                self._finish_error(
                    entry, "timeout",
                    f"queued longer than request_timeout="
                    f"{self.config.request_timeout}s")
                continue
            spec = SERVABLE_OPS[entry.req.op]
            if batchable(spec, entry.req.values):
                groups.setdefault(
                    (entry.req.op, str(entry.req.values.dtype)),
                    []).append(entry)
            else:
                units.append((entry.req.op, [entry]))
        for (op_name, _), entries in groups.items():
            chunk: list = []
            chunk_n = 0
            for entry in entries:
                if chunk and (len(chunk) >= self.config.max_batch
                              or chunk_n + entry.req.n
                              > self.config.max_batch_elements):
                    units.append((op_name, chunk))
                    chunk, chunk_n = [], 0
                chunk.append(entry)
                chunk_n += entry.req.n
            if chunk:
                units.append((op_name, chunk))
        return units

    async def _run_unit(self, op_name: str, entries: list) -> None:
        loop = asyncio.get_running_loop()
        spec = SERVABLE_OPS[op_name]
        parts = [(e.req.values, e.req.seg_flags) for e in entries]
        try:
            results, steps, total_n = await loop.run_in_executor(
                self._executor, partial(self.engine.run_group, spec, parts))
        except Exception as exc:
            if len(entries) == 1:
                code, msg = classify_failure(exc)
                self._finish_error(entries[0], code, msg)
                return
            # degrade, cluster-style: the mega-op failed, so every member
            # re-runs solo and failures are classified one by one
            self.stats.degraded += 1
            self.metrics.degraded_batches.inc()
            for entry in entries:
                try:
                    out, solo_steps = await loop.run_in_executor(
                        self._executor,
                        partial(self.engine.run_solo, spec,
                                entry.req.values, entry.req.seg_flags))
                except Exception as solo_exc:
                    code, msg = classify_failure(solo_exc)
                    self._finish_error(entry, code, msg)
                else:
                    self._finish_ok(entry, out, solo_steps, occupancy=1)
                    self._record_batch(1, solo_steps, entry.req.n)
            return

        occupancy = len(entries)
        if occupancy == 1 or total_n == 0:
            shares = [steps] * occupancy
        else:
            # each request pays for its slice of the mega-op — batching
            # makes requests cheaper and the meter passes that on; the
            # shares partition the cost exactly (sum(shares) == steps)
            shares = proportional_shares(steps,
                                         [e.req.n for e in entries])
        for entry, out, share in zip(entries, results, shares):
            self._finish_ok(entry, out, share, occupancy=occupancy)
        self._record_batch(occupancy, steps,
                           total_n if occupancy > 1 else len(parts[0][0]))

    def _record_batch(self, occupancy: int, steps: int, n: int) -> None:
        self.stats.record_batch(occupancy, steps)
        self.metrics.batches.inc()
        self.metrics.batch_occupancy.observe(occupancy)
        self.metrics.batch_n.observe(n)

    def _finish_ok(self, entry: _Pending, result: np.ndarray, steps: int,
                   *, occupancy: int) -> None:
        self.quotas.debit(entry.req.tenant, steps)
        self.cache.put(entry.key, result, steps)
        self.stats.ok += 1
        self.metrics.responses_ok.inc()
        self.metrics.steps_per_request.observe(steps)
        self._resolve(entry, ok_frame(entry.req.id, result, steps=steps,
                                      batched=occupancy, cached=False))

    def _finish_error(self, entry: _Pending, code: str, message: str) -> None:
        self._count_error(code)
        self._resolve(entry, error_frame(entry.req.id, code, message))

    def _resolve(self, entry: _Pending, frame: bytes) -> None:
        self._outstanding -= 1
        self.metrics.pending.set(self._outstanding)
        if not entry.future.done():
            entry.future.set_result(frame)
