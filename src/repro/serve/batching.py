"""Request coalescing: k independent jobs, one segmented mega-op.

The paper's segmented primitives *are* a batching mechanism (Section 2.3):
k independent scan requests of total length n, laid head to tail with a
segment flag at each request boundary, fuse into **one** segmented scan
charged as a single unit-step primitive.  This module is that argument
run in production form: :func:`assemble` concatenates a group of pending
requests into one (values, flags) pair, :class:`BatchEngine` executes the
mega-op through the ordinary :class:`~repro.machine.Machine` /
:class:`~repro.backends.Backend` stack (so the blocked and distributed
engines, fusion, and the whole observability layer apply unchanged), and
the per-request results are slices of the one output vector.

Batching must be *semantically invisible*: every response must equal the
serial one-request run.  Three rules keep it that way:

* requests batch only with requests of the same op and dtype (group key),
  so NumPy promotion can never leak across tenants;
* **float vectors never batch.**  The +-family's association changes
  under the segmented construction (exact for integers, last-ulp for
  IEEE floats), and the extreme scans' rank encoding orders NaN like a
  largest value rather than propagating it; both are documented engine
  departures (``docs/verification.md``) that a *solo* run does not take.
  Float jobs ride the serial path and stay bit-identical to it.
* empty vectors run solo: their result dtype is an identity question,
  answered by the real op rather than re-derived here.

The mega-op *shape* itself — heterogeneous per-request segment layouts
concatenated into one flag vector — is on the cross-backend conformance
surface as the ``batched_seg_*`` ops in :mod:`repro.verify.opset`, which
call :func:`assemble` directly.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from ..algorithms.radix_sort import (split_radix_sort,
                                     split_radix_sort_float,
                                     split_radix_sort_signed)
from ..backends import resolve_backend
from ..core import scans, segmented
from ..machine.model import Machine

__all__ = ["ServeOp", "SERVABLE_OPS", "request_flags", "assemble",
           "batchable", "proportional_shares", "BatchEngine"]


@dataclass(frozen=True)
class ServeOp:
    """One servable operation: how to run it solo and (maybe) batched.

    ``solo`` runs one request on its own machine; ``fused`` is the
    segmented form a batch of such requests collapses into (``None``
    means the op never batches).  ``segmented`` ops require the request
    to carry its own ``seg_lengths``; ``additive`` marks the +-family
    (float association caveats, see module docstring).
    """

    name: str
    solo: Callable      #: (Machine, values, seg_flags|None) -> ndarray
    fused: Optional[Callable]  #: (Machine, values, flags) -> ndarray
    segmented: bool = False
    additive: bool = False


def _plain(fn) -> Callable:
    return lambda m, v, sf: fn(m.vector(v)).data


def _seg(fn) -> Callable:
    return lambda m, v, sf: fn(m.vector(v), m.flags(sf)).data


def _sort_solo(m: Machine, v: np.ndarray, sf) -> np.ndarray:
    vec = m.vector(v)
    if np.issubdtype(vec.dtype, np.floating):
        return split_radix_sort_float(vec).data
    if np.issubdtype(vec.dtype, np.signedinteger):
        return split_radix_sort_signed(vec).data
    return split_radix_sort(vec).data


SERVABLE_OPS: dict[str, ServeOp] = {}


def _register(name: str, solo, fused, *, segmented=False, additive=False):
    SERVABLE_OPS[name] = ServeOp(name=name, solo=solo, fused=fused,
                                 segmented=segmented, additive=additive)


# Unsegmented scans: a batch is the segmented scan over request-boundary
# flags (Figure 16's construction, run in reverse: many solo scans
# *become* one segmented scan).
for _n, _f, _a in [
    ("plus_scan", segmented.seg_plus_scan, True),
    ("max_scan", segmented.seg_max_scan, False),
    ("min_scan", segmented.seg_min_scan, False),
    ("or_scan", segmented.seg_or_scan, False),
    ("and_scan", segmented.seg_and_scan, False),
    ("back_plus_scan", segmented.seg_back_plus_scan, True),
    ("back_max_scan", segmented.seg_back_max_scan, False),
    ("back_min_scan", segmented.seg_back_min_scan, False),
]:
    _register(_n, _plain(getattr(scans, _n)), _seg(_f), additive=_a)

# no segmented counterpart exists for the backward one-bit scans: solo only
for _n in ("back_or_scan", "back_and_scan"):
    _register(_n, _plain(getattr(scans, _n)), None)

# Distributes: per-request reduce-and-spread = per-segment
# reduce-and-spread of the batch.
for _k in ("plus", "max", "min", "or", "and"):
    _register(f"{_k}_distribute",
              _plain(getattr(scans, f"{_k}_distribute")),
              _seg(getattr(segmented, f"seg_{_k}_distribute")),
              additive=(_k == "plus"))

# Segmented requests fuse by concatenating their flag vectors: each
# request's first element begins a segment, so the combined layout is
# exactly the per-request layouts laid head to tail (the "batched
# heterogeneous segmented scan" shape).
for _n, _a in [
    ("seg_plus_scan", True), ("seg_max_scan", False),
    ("seg_min_scan", False), ("seg_or_scan", False),
    ("seg_and_scan", False), ("seg_back_plus_scan", True),
    ("seg_back_max_scan", False), ("seg_back_min_scan", False),
    ("seg_copy", False), ("seg_back_copy", False),
    ("seg_plus_distribute", True), ("seg_max_distribute", False),
    ("seg_min_distribute", False), ("seg_or_distribute", False),
    ("seg_and_distribute", False),
]:
    _fn = getattr(segmented, _n)
    _register(_n, _seg(_fn), _seg(_fn), segmented=True, additive=_a)

# Sorts run solo: a batched sort would be a segmented quicksort, whose
# pivot schedule (hence result order for equal keys) differs from the
# radix sort's stable order.
_register("sort", _sort_solo, None)


# --------------------------------------------------------------------- #
# Assembly
# --------------------------------------------------------------------- #

def request_flags(n: int, seg_flags: Optional[np.ndarray]) -> np.ndarray:
    """One request's contribution to the mega-op's flag vector: its own
    segment layout for segmented requests, a single head flag otherwise."""
    if seg_flags is not None:
        return np.asarray(seg_flags, dtype=bool)
    flags = np.zeros(n, dtype=bool)
    if n:
        flags[0] = True
    return flags


def assemble(parts: Sequence[tuple]) -> tuple:
    """Concatenate ``[(values, seg_flags|None), ...]`` into the mega-op's
    ``(values, flags, offsets)``; ``offsets[i]:offsets[i+1]`` slices
    request ``i``'s result back out.  Every part must be non-empty and of
    one dtype (grouping enforces this upstream)."""
    values = [np.asarray(v) for v, _ in parts]
    flags = [request_flags(len(v), sf) for v, (_, sf) in zip(values, parts)]
    offsets = np.zeros(len(parts) + 1, dtype=np.int64)
    np.cumsum([len(v) for v in values], out=offsets[1:])
    return np.concatenate(values), np.concatenate(flags), offsets


def batchable(op: ServeOp, values: np.ndarray) -> bool:
    """Whether one request may join a mega-op (see module docstring)."""
    return (op.fused is not None and len(values) > 0
            and values.dtype.kind != "f")


def proportional_shares(total: int, weights: Sequence[int]) -> list:
    """Split ``total`` into integer shares proportional to ``weights``,
    summing to **exactly** ``total``.

    This is how a mega-op's step cost is billed to its members: each
    request pays for its slice of the batch, and the slices must
    *partition* the cost — rounding each share independently does not
    (``max(1, round(...))`` debits a 64-request, 3-step mega-op as 64
    steps, a 21x overcharge that silently drains tenant budgets).
    Largest-remainder apportionment keeps every share within one step of
    its exact proportion; remainder ties break toward the earlier index,
    so the split is deterministic.  A share may legitimately be 0: a tiny
    request's slice of a cheap mega-op rounds to nothing.
    """
    total = int(total)
    if not weights:
        return []
    w = [max(0, int(x)) for x in weights]
    denom = sum(w)
    if denom == 0:  # all-zero weights: split as evenly as possible
        w = [1] * len(w)
        denom = len(w)
    shares = []
    remainders = []
    for i, x in enumerate(w):
        q, r = divmod(total * x, denom)
        shares.append(q)
        remainders.append((-r, i))
    for _, i in sorted(remainders)[:total - sum(shares)]:
        shares[i] += 1
    return shares


# --------------------------------------------------------------------- #
# Execution
# --------------------------------------------------------------------- #

class BatchEngine:
    """Executes solo requests and mega-ops on fresh machines over one
    shared backend.

    The backend is resolved once (so a distributed pool spawns once and
    is reused across every batch); each execution gets its own
    :class:`Machine` so step charges meter exactly one request or one
    batch.  All methods are synchronous and run off the event loop in the
    server's single executor thread.
    """

    def __init__(self, backend=None, *, model: str = "scan",
                 fusion: Optional[bool] = None) -> None:
        # resolved once: a distributed pool spawns once, not per batch
        self.backend = resolve_backend(backend)
        self.model = model
        self.fusion = fusion

    def _machine(self) -> Machine:
        return Machine(self.model, backend=self.backend, fusion=self.fusion)

    def run_solo(self, op: ServeOp, values: np.ndarray,
                 seg_flags: Optional[np.ndarray]) -> tuple:
        """One request on its own machine -> ``(result, steps)``."""
        m = self._machine()
        out = op.solo(m, values, seg_flags)
        return np.asarray(out), m.steps

    def run_group(self, op: ServeOp, parts: Sequence[tuple]) -> tuple:
        """One mega-op -> ``(results, steps, total_n)``.

        ``parts`` is ``[(values, seg_flags|None), ...]``, already grouped
        by (op, dtype) and vetted by :func:`batchable`.  The whole group
        is charged as one segmented operation; each request's share of
        those steps is the caller's metering decision.
        """
        if len(parts) == 1:
            out, steps = self.run_solo(op, parts[0][0], parts[0][1])
            return [out], steps, len(parts[0][0])
        values, flags, offsets = assemble(parts)
        m = self._machine()
        out = np.asarray(op.fused(m, values, flags))
        results = [out[offsets[i]:offsets[i + 1]].copy()
                   for i in range(len(parts))]
        return results, m.steps, len(values)
