"""Scan-as-a-service: the paper's primitives behind a network socket.

The segmented scan's defining property — k independent scans laid head
to tail are *one* primitive — is an RPC batching strategy wearing a
1987 paper: concurrent small requests coalesce into a single segmented
mega-op, executed once through the ordinary machine/backend stack, and
every client still receives exactly the bits a solo run would have
produced.

Layers (each its own module, each independently testable):

* :mod:`~repro.serve.protocol` — newline-JSON wire frames, validation,
  structured error codes;
* :mod:`~repro.serve.batching` — the servable-op registry, mega-op
  assembly, and the :class:`~repro.serve.batching.BatchEngine`;
* :mod:`~repro.serve.quota` — per-tenant step budgets metered by the
  cost model;
* :mod:`~repro.serve.cache` — input-digest result caching;
* :mod:`~repro.serve.metrics` — ``serve.*`` registry instruments and
  exact per-server SLO accounting;
* :mod:`~repro.serve.server` — the asyncio server tying it together;
* :mod:`~repro.serve.client` — the pipelining asyncio client.

``python -m repro serve`` runs it; ``docs/serving.md`` is the manual.
"""
from .batching import SERVABLE_OPS, BatchEngine, assemble, batchable
from .client import ServeClient, ServeError
from .protocol import ERROR_CODES, ProtocolError
from .server import ScanServer, ServeConfig

__all__ = [
    "SERVABLE_OPS",
    "BatchEngine",
    "assemble",
    "batchable",
    "ServeClient",
    "ServeError",
    "ERROR_CODES",
    "ProtocolError",
    "ScanServer",
    "ServeConfig",
]
