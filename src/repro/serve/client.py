"""An asyncio client for the scan service.

One :class:`ServeClient` holds one connection and pipelines requests on
it: every call gets a fresh ``id``, a background reader task matches
response frames back to callers by that id, and any number of
:meth:`request` calls may be in flight at once — which is exactly the
traffic shape the server's batcher feeds on.  The load and property
suites, the benchmark, and the CLI selfcheck all drive the server
through this class.

    client = await ServeClient.connect("127.0.0.1", port)
    out = await client.scan("plus_scan", [2, 1, 2])   # ndarray
    await client.close()

:meth:`request` returns the raw response dict; :meth:`scan` decodes a
successful response into an ndarray and raises :class:`ServeError` (with
the structured ``code``) on an error response.
"""
from __future__ import annotations

import asyncio
import json
from typing import Optional, Sequence

import numpy as np

from .protocol import decode_values, encode_values

__all__ = ["ServeError", "ServeClient"]


class ServeError(Exception):
    """A structured error response, surfaced client-side.

    ``details`` mirrors the response's machine-readable context (the
    limit a request tripped and the offending size), ``{}`` when the
    server sent none."""

    def __init__(self, code: str, message: str,
                 details: Optional[dict] = None) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
        self.details = details or {}


class ServeClient:
    """One pipelined connection to a :class:`~repro.serve.server.ScanServer`."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self._next_id = 0
        self._waiting: dict = {}
        self._closed = False
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int,
                      limit: int = 32 << 20) -> "ServeClient":
        reader, writer = await asyncio.open_connection(host, port,
                                                       limit=limit)
        return cls(reader, writer)

    # ------------------------------------------------------------------ #
    # The read side: one task, frames dispatched by id
    # ------------------------------------------------------------------ #

    async def _read_loop(self) -> None:
        exc: Optional[Exception] = None
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                frame = json.loads(line)
                fut = self._waiting.pop(frame.get("id"), None)
                if fut is not None and not fut.done():
                    fut.set_result(frame)
        except (ConnectionResetError, BrokenPipeError,
                asyncio.CancelledError, ValueError) as caught:
            exc = (caught if isinstance(caught, Exception)
                   else ConnectionResetError("connection task cancelled"))
        # whoever is still waiting will never get a frame: fail them
        err = exc or ConnectionResetError("server closed the connection")
        for fut in self._waiting.values():
            if not fut.done():
                fut.set_exception(err)
        self._waiting.clear()

    # ------------------------------------------------------------------ #
    # Requests
    # ------------------------------------------------------------------ #

    async def send_raw(self, payload: bytes) -> None:
        """Write raw bytes (the chaos tests speak garbage on purpose)."""
        self._writer.write(payload)
        await self._writer.drain()

    async def request(self, op: str, values=None, *, dtype=None,
                      seg_lengths: Optional[Sequence[int]] = None,
                      tenant: Optional[str] = None,
                      extra: Optional[dict] = None) -> dict:
        """One request -> the raw response dict (pipelining-safe)."""
        self._next_id += 1
        req_id = self._next_id
        obj: dict = {"id": req_id, "op": op}
        if values is not None:
            arr = np.asarray(values) if dtype is None \
                else np.asarray(values, dtype=np.dtype(dtype))
            obj["dtype"] = str(arr.dtype)
            obj["values"] = encode_values(arr)
        if seg_lengths is not None:
            obj["seg_lengths"] = [int(x) for x in seg_lengths]
        if tenant is not None:
            obj["tenant"] = tenant
        if extra:
            obj.update(extra)

        if self._reader_task.done():
            raise ConnectionResetError("connection already closed")
        fut = asyncio.get_running_loop().create_future()
        self._waiting[req_id] = fut
        self._writer.write(
            (json.dumps(obj, separators=(",", ":")) + "\n").encode())
        await self._writer.drain()
        return await fut

    async def scan(self, op: str, values, *, dtype=None,
                   seg_lengths: Optional[Sequence[int]] = None,
                   tenant: Optional[str] = None) -> np.ndarray:
        """One request -> the result vector, or :class:`ServeError`."""
        frame = await self.request(op, values, dtype=dtype,
                                   seg_lengths=seg_lengths, tenant=tenant)
        if not frame.get("ok"):
            err = frame.get("error") or {}
            raise ServeError(err.get("code", "internal"),
                             err.get("message", "unspecified error"),
                             err.get("details"))
        return decode_values(frame["values"], frame["dtype"])

    async def ping(self) -> bool:
        frame = await self.request("ping")
        return bool(frame.get("pong"))

    async def stats(self) -> dict:
        """The server's SLO snapshot (stats admin op)."""
        return await self.request("stats")

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
        await self._reader_task
