"""The server's SLO instruments: latency, occupancy, steps/request.

Two sinks, one publish path.  Every event goes to the process-wide
:mod:`repro.observe` registry (the ``serve.*`` namespace, so ``python -m
repro profile``-style tooling and the existing exporters see the server
like any other subsystem), and to a :class:`ServerStats` reservoir owned
by the server instance, which keeps exact recent latencies for true
p50/p99 (the registry's power-of-two histograms answer "what order of
magnitude", not "what quantile").

Registry namespace:

===============================  =======================================
``serve.requests``               compute requests admitted
``serve.responses.ok``           successful responses written
``serve.responses.error``        structured-error responses written
``serve.error.<code>``           errors by code (``overloaded``, ...)
``serve.batches``                execution units dispatched (incl. solo)
``serve.batch.occupancy``        histogram: requests per execution unit
``serve.batch.n``                histogram: elements per execution unit
``serve.steps_per_request``      histogram: metered steps per request
``serve.latency_us``             histogram: admission->response, µs
``serve.cache.hits/misses``      result-cache outcomes
``serve.connections``            gauge: open client connections
``serve.pending``                gauge: admitted, not yet executed
``serve.degraded_batches``       mega-ops that failed and re-ran solo
``serve.dropped_replies``        responses to already-gone clients
===============================  =======================================
"""
from __future__ import annotations

from collections import deque
from typing import Optional

from ..observe.metrics import Histogram, MetricsRegistry
from ..observe.metrics import registry as _default_registry

__all__ = ["ServeMetrics", "ServerStats", "histogram_quantile"]


def histogram_quantile(hist: Histogram, q: float) -> Optional[float]:
    """A quantile estimate from a power-of-two bucket histogram: walk the
    cumulative counts to the target bucket and return its upper edge
    (``2**k``).  Coarse by design — use it on ``serve.latency_us`` when
    only the registry is available; the server's own reservoir gives
    exact quantiles."""
    if hist.count == 0:
        return None
    target = q * hist.count
    seen = 0
    for k in sorted(hist.buckets):
        seen += hist.buckets[k]
        if seen >= target:
            return float(2 ** k)
    return float(hist.max if hist.max is not None else 0)


class ServeMetrics:
    """Cached handles on every ``serve.*`` instrument."""

    def __init__(self, registry: MetricsRegistry = _default_registry) -> None:
        self.registry = registry
        c, g, h = registry.counter, registry.gauge, registry.histogram
        self.requests = c("serve.requests")
        self.responses_ok = c("serve.responses.ok")
        self.responses_error = c("serve.responses.error")
        self.batches = c("serve.batches")
        self.batch_occupancy = h("serve.batch.occupancy")
        self.batch_n = h("serve.batch.n")
        self.steps_per_request = h("serve.steps_per_request")
        self.latency_us = h("serve.latency_us")
        self.cache_hits = c("serve.cache.hits")
        self.cache_misses = c("serve.cache.misses")
        self.connections = g("serve.connections")
        self.pending = g("serve.pending")
        self.degraded_batches = c("serve.degraded_batches")
        self.dropped_replies = c("serve.dropped_replies")

    def error(self, code: str):
        """The per-code error counter (created on first use)."""
        return self.registry.counter(f"serve.error.{code}")


class ServerStats:
    """Exact per-server SLO accounting (bounded reservoirs).

    The registry aggregates process-wide; this object answers for *one*
    server instance, which is what a load test or the ``stats`` admin op
    wants.  Latencies and occupancies keep the most recent 65536
    observations — enough for exact p50/p99 over any test or smoke run,
    bounded forever.
    """

    RESERVOIR = 65536

    def __init__(self) -> None:
        self.latencies: deque = deque(maxlen=self.RESERVOIR)
        self.occupancies: deque = deque(maxlen=self.RESERVOIR)
        self.requests = 0
        self.ok = 0
        self.errors = 0
        self.batches = 0
        self.mega_ops = 0          #: execution units with occupancy > 1
        self.batched_requests = 0  #: requests served inside a mega-op
        self.steps = 0
        self.degraded = 0

    # ------------------------------ feeds ------------------------------ #

    def record_batch(self, occupancy: int, steps: int) -> None:
        self.batches += 1
        self.steps += int(steps)
        self.occupancies.append(occupancy)
        if occupancy > 1:
            self.mega_ops += 1
            self.batched_requests += occupancy

    def record_latency(self, seconds: float) -> None:
        self.latencies.append(seconds)

    # ---------------------------- questions ---------------------------- #

    @property
    def mean_occupancy(self) -> float:
        if not self.occupancies:
            return 0.0
        return sum(self.occupancies) / len(self.occupancies)

    def latency_quantile(self, q: float) -> Optional[float]:
        """Exact quantile (seconds) over the reservoir."""
        if not self.latencies:
            return None
        ordered = sorted(self.latencies)
        idx = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[idx]

    def snapshot(self) -> dict:
        """The SLO dashboard, JSON-able (served by the ``stats`` op)."""
        p50 = self.latency_quantile(0.50)
        p99 = self.latency_quantile(0.99)
        responses = self.ok + self.errors
        return {
            "requests": self.requests,
            "responses": responses,
            "ok": self.ok,
            "errors": self.errors,
            "batches": self.batches,
            "mega_ops": self.mega_ops,
            "batched_requests": self.batched_requests,
            "mean_batch_occupancy": round(self.mean_occupancy, 3),
            "steps_total": self.steps,
            "steps_per_request": (round(self.steps / self.ok, 3)
                                  if self.ok else None),
            "latency_p50_ms": (round(p50 * 1e3, 3)
                               if p50 is not None else None),
            "latency_p99_ms": (round(p99 * 1e3, 3)
                               if p99 is not None else None),
            "degraded_batches": self.degraded,
        }
