"""Per-tenant step-budget quotas: the cost model as a metering system.

The machine's program-step counter is an exact, backend-independent
measure of work (the whole point of the paper's cost model), which makes
it the natural metering unit for a multi-tenant service: every response
carries the steps it was charged, and each tenant draws those steps from
a budget.

Metering is **post-paid with overdraft**: admission requires a positive
balance, execution debits the steps actually charged (a request's share
of its mega-op — batching makes requests *cheaper*, and the meter passes
that saving on).  A tenant can therefore overdraw by at most one
request, after which admission denies with a structured
``quota_exhausted`` error until the budget refills.  Refill is a token
bucket: ``refill_per_s`` steps per second, capped at the budget.

The clock is injectable so tests (and the chaos suite) can drive refill
deterministically.
"""
from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

__all__ = ["QuotaPolicy", "TenantMeter", "QuotaManager"]


@dataclass(frozen=True)
class QuotaPolicy:
    """``budget=None`` disables metering entirely (every tenant admitted,
    steps still counted); otherwise each tenant starts with ``budget``
    steps refilling at ``refill_per_s``."""

    budget: Optional[int] = None
    refill_per_s: float = 0.0


@dataclass
class TenantMeter:
    """One tenant's running account."""

    balance: float
    last_refill: float
    charged: int = 0          #: lifetime steps debited
    requests: int = 0         #: requests admitted
    denied: int = 0           #: admissions refused


class QuotaManager:
    """Admission control and step accounting for every tenant."""

    def __init__(self, policy: QuotaPolicy,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.policy = policy
        self.clock = clock
        self._tenants: Dict[str, TenantMeter] = {}

    def _meter(self, tenant: str) -> TenantMeter:
        meter = self._tenants.get(tenant)
        if meter is None:
            budget = self.policy.budget
            meter = TenantMeter(balance=float("inf") if budget is None
                                else float(budget),
                                last_refill=self.clock())
            self._tenants[tenant] = meter
        return meter

    def _refill(self, meter: TenantMeter) -> None:
        if self.policy.budget is None or self.policy.refill_per_s <= 0:
            return
        now = self.clock()
        meter.balance = min(
            float(self.policy.budget),
            meter.balance + (now - meter.last_refill) * self.policy.refill_per_s)
        meter.last_refill = now

    def admit(self, tenant: str) -> Optional[str]:
        """``None`` to admit; otherwise the denial message (the caller
        wraps it in a ``quota_exhausted`` error)."""
        meter = self._meter(tenant)
        self._refill(meter)
        if meter.balance > 0:
            meter.requests += 1
            return None
        meter.denied += 1
        if self.policy.refill_per_s > 0:
            wait = -meter.balance / self.policy.refill_per_s
            hint = f"; refills in ~{max(wait, 0.0):.1f}s"
        else:
            hint = "; budget does not refill"
        return (f"tenant {tenant!r} exhausted its step budget "
                f"(balance {meter.balance:.0f} of "
                f"{self.policy.budget}{hint})")

    def debit(self, tenant: str, steps: int) -> None:
        """Charge ``steps`` against the tenant (post-paid)."""
        meter = self._meter(tenant)
        meter.charged += int(steps)
        if self.policy.budget is not None:
            meter.balance -= steps

    def snapshot(self) -> dict:
        """JSON-able per-tenant accounting (the ``stats`` admin op)."""
        out = {}
        for name in sorted(self._tenants):
            m = self._tenants[name]
            out[name] = {
                "balance": (None if self.policy.budget is None
                            else round(m.balance, 3)),
                "charged_steps": m.charged,
                "requests": m.requests,
                "denied": m.denied,
            }
        return out
