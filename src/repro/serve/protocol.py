"""The wire protocol: newline-delimited JSON frames.

One request per line, one response per line, UTF-8.  The framing is the
simplest thing that composes with ``asyncio`` streams — ``readline`` on
the way in, one ``write`` per response on the way out — and responses
carry the request's ``id``, so a client may pipeline many requests on one
connection and match replies out of order (the server coalesces
concurrent requests into batches, so reply order is explicitly *not*
request order).

Request::

    {"id": 7, "op": "plus_scan", "dtype": "int64", "values": [2, 1, 2],
     "seg_lengths": [2, 1],          # segmented ops only
     "tenant": "team-a"}             # optional; quota accounting key

Response::

    {"id": 7, "ok": true, "values": [0, 2, 3], "dtype": "int64",
     "steps": 3, "batched": 5, "cached": false}
    {"id": 7, "ok": false, "error": {"code": "quota_exhausted",
                                     "message": "..."}}

Float specials travel as the strings ``"nan"``, ``"inf"``, ``"-inf"``
and ``"-0.0"`` (JSON has no encoding for them), mirroring the fuzzer
corpus convention.  Errors are always structured — a ``code`` from
:data:`ERROR_CODES` plus a human message — so clients can branch on the
code and humans can read the message.
"""
from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = [
    "DTYPES",
    "ERROR_CODES",
    "ProtocolError",
    "ParsedRequest",
    "decode_frame",
    "parse_request",
    "encode_values",
    "decode_values",
    "ok_frame",
    "error_frame",
    "info_frame",
]

#: element dtypes a request may carry (the fuzzer's adversarial grid
#: plus the remaining fixed-width integers and float32)
DTYPES = frozenset({
    "bool", "int8", "int16", "int32", "int64",
    "uint8", "uint16", "uint32", "uint64", "float32", "float64",
})

#: every structured error code a response can carry
ERROR_CODES = frozenset({
    "bad_request",       # malformed frame / unknown op / invalid inputs
    "too_large",         # frame or vector over the configured limits
    "overloaded",        # admission queue full: back off and retry
    "quota_exhausted",   # the tenant's step budget ran dry
    "timeout",           # the request aged out before execution
    "shutting_down",     # server is draining; no new work admitted
    "internal",          # execution failed for a non-client reason
})


class ProtocolError(Exception):
    """A request that cannot be served, with its structured error code.

    ``details`` (optional) carries machine-readable context — the limit a
    request tripped and the offending size — so a client can right-size
    its next attempt without parsing the human message.
    """

    def __init__(self, code: str, message: str,
                 details: Optional[dict] = None) -> None:
        assert code in ERROR_CODES, code
        super().__init__(message)
        self.code = code
        self.message = message
        self.details = details


# --------------------------------------------------------------------- #
# Value encoding (float specials survive the JSON round trip)
# --------------------------------------------------------------------- #

def _encode_one(x):
    if isinstance(x, float):
        if math.isnan(x):
            return "nan"
        if math.isinf(x):
            return "inf" if x > 0 else "-inf"
        if x == 0.0 and math.copysign(1.0, x) < 0:
            return "-0.0"
    return x


def encode_values(arr: np.ndarray) -> list:
    """A JSON-safe list for one vector (bools as bools, ints as ints,
    float specials as strings)."""
    return [_encode_one(x) for x in arr.tolist()]


def decode_values(raw, dtype: str) -> np.ndarray:
    """The inverse of :func:`encode_values`; raises ``ProtocolError`` on
    anything that is not a number/bool/special-string of ``dtype``."""
    try:
        vals = [float(x) if isinstance(x, str) else x for x in raw]
        return np.array(vals, dtype=np.dtype(dtype))
    except (TypeError, ValueError, OverflowError) as exc:
        raise ProtocolError("bad_request",
                            f"values do not decode as {dtype}: {exc}") from None


# --------------------------------------------------------------------- #
# Requests
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class ParsedRequest:
    """One validated compute request, inputs materialized."""

    id: object
    op: str
    values: np.ndarray
    seg_lengths: Optional[tuple]      #: None for unsegmented ops
    seg_flags: Optional[np.ndarray]   #: materialized from ``seg_lengths``
    tenant: str

    @property
    def n(self) -> int:
        return len(self.values)


def decode_frame(line: bytes) -> dict:
    """One wire line to a JSON object (``ProtocolError`` on garbage)."""
    try:
        obj = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError("bad_request",
                            f"frame is not valid JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError("bad_request",
                            f"frame must be a JSON object, got "
                            f"{type(obj).__name__}")
    return obj


def _seg_flags_from_lengths(lengths, n: int) -> np.ndarray:
    flags = np.zeros(n, dtype=bool)
    pos = 0
    for length in lengths:
        if not isinstance(length, int) or isinstance(length, bool) or length < 1:
            raise ProtocolError(
                "bad_request",
                f"seg_lengths must be positive integers, got {length!r}")
        if pos >= n:
            break  # sum mismatch; reported below
        flags[pos] = True
        pos += length
    if pos != n:
        raise ProtocolError(
            "bad_request",
            f"seg_lengths sum to {pos}, values have length {n}")
    return flags


def parse_request(obj: dict, *, known_ops, max_elements: int) -> ParsedRequest:
    """Validate one decoded frame against the op registry and limits.

    ``known_ops`` maps op name -> :class:`repro.serve.batching.ServeOp`;
    the admin ops (``ping`` / ``stats``) are handled before this is
    called.
    """
    op_name = obj.get("op")
    if not isinstance(op_name, str) or op_name not in known_ops:
        raise ProtocolError(
            "bad_request",
            f"unknown op {op_name!r}; servable ops: "
            f"{', '.join(sorted(known_ops))}")
    spec = known_ops[op_name]

    dtype = obj.get("dtype", "int64")
    if dtype not in DTYPES:
        raise ProtocolError("bad_request",
                            f"unknown dtype {dtype!r}; one of "
                            f"{', '.join(sorted(DTYPES))}")

    raw = obj.get("values")
    if not isinstance(raw, list):
        raise ProtocolError("bad_request", "'values' must be a JSON list")
    if len(raw) > max_elements:
        raise ProtocolError(
            "too_large",
            f"vector of {len(raw)} elements exceeds the server's "
            f"max_elements={max_elements}",
            details={"max_elements": max_elements, "got": len(raw)})
    values = decode_values(raw, dtype)

    seg_lengths = obj.get("seg_lengths")
    seg_flags = None
    if spec.segmented:
        if not isinstance(seg_lengths, list):
            raise ProtocolError(
                "bad_request",
                f"op {op_name!r} is segmented: 'seg_lengths' "
                f"(a list of positive segment lengths) is required")
        seg_flags = _seg_flags_from_lengths(seg_lengths, len(values))
        seg_lengths = tuple(seg_lengths)
    elif seg_lengths is not None:
        raise ProtocolError(
            "bad_request",
            f"op {op_name!r} is not segmented; drop 'seg_lengths'")

    tenant = obj.get("tenant", "default")
    if not isinstance(tenant, str) or not tenant:
        raise ProtocolError("bad_request", "'tenant' must be a non-empty "
                                           "string")
    return ParsedRequest(id=obj.get("id"), op=op_name, values=values,
                         seg_lengths=seg_lengths, seg_flags=seg_flags,
                         tenant=tenant)


# --------------------------------------------------------------------- #
# Responses
# --------------------------------------------------------------------- #

def _frame(payload: dict) -> bytes:
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode()


def ok_frame(req_id, result: np.ndarray, *, steps: int, batched: int,
             cached: bool) -> bytes:
    return _frame({"id": req_id, "ok": True,
                   "values": encode_values(result),
                   "dtype": str(result.dtype),
                   "steps": int(steps), "batched": int(batched),
                   "cached": bool(cached)})


def error_frame(req_id, code: str, message: str,
                details: Optional[dict] = None) -> bytes:
    assert code in ERROR_CODES, code
    error: dict = {"code": code, "message": message}
    if details:
        error["details"] = details
    return _frame({"id": req_id, "ok": False, "error": error})


def info_frame(req_id, **payload) -> bytes:
    """An admin reply (``ping`` / ``stats``)."""
    return _frame({"id": req_id, "ok": True, **payload})
