"""Result caching keyed on input digests.

Scan workloads repeat: the same prefix-sum over the same vector arrives
from many clients (dashboards re-rendering, retries, idempotent
pipelines).  Results here are pure functions of ``(op, dtype, values,
segment layout)``, so a digest of exactly those bytes is a sound cache
key — there is no state to invalidate, only capacity to manage (LRU).

A hit skips machine execution entirely and is metered at **zero steps**
(no work was done; the cost model should say so).  The stored array is
returned as a read-only copy each time so a cached response can never be
corrupted by a later caller.
"""
from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["CachedResult", "ResultCache"]


@dataclass(frozen=True)
class CachedResult:
    """One cached response payload."""

    values: np.ndarray
    steps: int                 #: what the original execution charged


class ResultCache:
    """A bounded LRU of digest -> :class:`CachedResult`.

    ``max_entries <= 0`` disables caching (every lookup misses, nothing
    is stored), so the server can carry one unconditional code path.
    """

    def __init__(self, max_entries: int = 1024) -> None:
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[str, CachedResult]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def key(op: str, values: np.ndarray,
            seg_lengths: Optional[tuple]) -> str:
        """The input digest: op name, dtype, shape, raw bytes, layout."""
        h = hashlib.sha256()
        h.update(op.encode())
        h.update(str(values.dtype).encode())
        h.update(str(len(values)).encode())
        h.update(np.ascontiguousarray(values).tobytes())
        if seg_lengths is not None:
            h.update(np.asarray(seg_lengths, dtype=np.int64).tobytes())
        return h.hexdigest()

    def get(self, key: str) -> Optional[CachedResult]:
        if self.max_entries <= 0:
            return None
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return CachedResult(entry.values.copy(), entry.steps)

    def put(self, key: str, values: np.ndarray, steps: int) -> None:
        if self.max_entries <= 0:
            return
        self._entries[key] = CachedResult(np.asarray(values).copy(),
                                          int(steps))
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def snapshot(self) -> dict:
        total = self.hits + self.misses
        return {"entries": len(self._entries), "hits": self.hits,
                "misses": self.misses,
                "hit_rate": round(self.hits / total, 4) if total else 0.0}
