"""Result caching keyed on input digests.

Scan workloads repeat: the same prefix-sum over the same vector arrives
from many clients (dashboards re-rendering, retries, idempotent
pipelines).  Results here are pure functions of ``(op, dtype, values,
segment layout, backend)``, so a digest of exactly those fields is a
sound cache key — there is no state to invalidate, only capacity to
manage (LRU).  Each field is **length-prefixed** before hashing:
concatenating raw field bytes lets adjacent fields trade characters
(``key("x", uint8 [7])`` used to equal ``key("xu", int8 [7])`` because
``"x"+"uint8"`` and ``"xu"+"int8"`` are the same string), which served a
wrong-dtype answer to a colliding request.  The backend identity is part
of the key because results can legitimately differ across engines (float
``+``-carries re-associate per chunk schedule), so a server restarted
onto a different backend must not inherit digests minted by another.

A hit skips machine execution entirely and is metered at **zero steps**
(no work was done; the cost model should say so).  The stored array is
returned as a read-only copy each time so a cached response can never be
corrupted by a later caller.
"""
from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["CachedResult", "ResultCache"]


@dataclass(frozen=True)
class CachedResult:
    """One cached response payload."""

    values: np.ndarray
    steps: int                 #: what the original execution charged


class ResultCache:
    """A bounded LRU of digest -> :class:`CachedResult`.

    ``max_entries <= 0`` disables caching (every lookup misses, nothing
    is stored), so the server can carry one unconditional code path.
    """

    def __init__(self, max_entries: int = 1024) -> None:
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[str, CachedResult]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    #: bumped whenever the digest layout changes, so stale digests from
    #: an earlier scheme can never alias a current one
    KEY_VERSION = b"v2"

    @staticmethod
    def key(op: str, values: np.ndarray, seg_lengths: Optional[tuple],
            backend: str = "") -> str:
        """The input digest: op name, backend identity, dtype, raw bytes,
        segment layout — every field length-prefixed (see module
        docstring)."""
        h = hashlib.sha256()
        fields = [
            ResultCache.KEY_VERSION,
            op.encode(),
            backend.encode(),
            str(values.dtype).encode(),
            np.ascontiguousarray(values).tobytes(),
            (b"" if seg_lengths is None
             else np.asarray(seg_lengths, dtype=np.int64).tobytes()),
            b"segmented" if seg_lengths is not None else b"flat",
        ]
        for field in fields:
            h.update(len(field).to_bytes(8, "big"))
            h.update(field)
        return h.hexdigest()

    def get(self, key: str) -> Optional[CachedResult]:
        if self.max_entries <= 0:
            return None
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return CachedResult(entry.values.copy(), entry.steps)

    def put(self, key: str, values: np.ndarray, steps: int) -> None:
        if self.max_entries <= 0:
            return
        self._entries[key] = CachedResult(np.asarray(values).copy(),
                                          int(steps))
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def snapshot(self) -> dict:
        total = self.hits + self.misses
        return {"entries": len(self._entries), "hits": self.hits,
                "misses": self.misses,
                "hit_rate": round(self.hits / total, 4) if total else 0.0}
