"""repro — a reproduction of Blelloch, *Scans as Primitive Parallel
Operations* (ICPP 1987 / CMU TR, Nov 1989).

The package provides:

* :class:`repro.Machine` — simulated P-RAM models (``erew``, ``crew``,
  ``crcw``, ``scan``) with exact program-step accounting;
* :class:`repro.Vector` — machine-owned parallel vectors;
* :mod:`repro.backends` — pluggable execution engines behind
  ``Machine.execute`` (vectorized NumPy, chunked-with-carries blocked
  mode, a sharded multi-process distributed mode, and a pure-Python
  differential-testing reference);
* :mod:`repro.cluster` — the distributed backend's machinery: worker
  pool supervision, shard kernels, the carry exchange, retry/degradation,
  chaos plans, and the fault ledger;
* :mod:`repro.core` — the two scan primitives, all derived and segmented
  scans, and the simple operations of Section 2.2;
* :mod:`repro.graph` — the segmented graph representation and star-merge;
* :mod:`repro.algorithms` — the paper's algorithms (split radix sort,
  quicksort, MST, line drawing, halving merge, …) plus the other Table 1
  entries;
* :mod:`repro.baselines` — serial references and P-RAM baselines (bitonic
  sort);
* :mod:`repro.hardware` — a logic-level, clocked simulation of the paper's
  bit-pipelined tree scan circuit, a bit-serial bitonic sorting network, and
  a router model for memory-reference cost.

Quickstart::

    from repro import Machine
    from repro.core import scans, ops

    m = Machine("scan")
    v = m.vector([5, 1, 3, 4, 3, 9, 2, 6])
    print(scans.plus_scan(v).to_list())       # [0, 5, 6, 9, 13, 16, 25, 27]
    print(m.steps)                            # 1
"""
from .backends import Backend, available_backends, get_backend
from .core.vector import Vector
from .machine import CapabilityError, Machine

__version__ = "1.0.0"

__all__ = ["Backend", "CapabilityError", "Machine", "Vector",
           "available_backends", "get_backend", "__version__"]
