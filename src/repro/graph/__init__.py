"""The segmented graph representation and star merging (Section 2.3.2–2.3.3).

* :class:`repro.graph.SegmentedGraph` — Figure 6's representation.
* :func:`repro.graph.from_edges` — build it from an edge list by radix sort.
* :func:`repro.graph.star_merge` — Figure 7's O(1)-step star contraction.
"""
from .build import from_edges, random_connected_graph
from .segmented_graph import SegmentedGraph
from .star_merge import StarMergeResult, star_merge

__all__ = [
    "SegmentedGraph",
    "StarMergeResult",
    "from_edges",
    "random_connected_graph",
    "star_merge",
]
