"""Building the segmented graph representation from an edge list.

The paper's recipe (Section 2.3.2): create two elements per edge (one per
end) and sort them by vertex number with the split radix sort — the vertex
numbers are integers below ``n``, so the sort costs O(lg n) program steps
and leaves each vertex's slots contiguous.  Cross-pointers fall out of the
sort permutation, because the two ends of edge ``e`` start at known
positions ``2e`` and ``2e + 1``.
"""
from __future__ import annotations

import numpy as np

from .._util import ceil_log2
from ..core.vector import Vector
from ..machine.model import Machine
from .segmented_graph import SegmentedGraph

__all__ = ["from_edges", "random_connected_graph"]


def from_edges(machine: Machine, n_vertices: int, edges, weights=None) -> SegmentedGraph:
    """Build a :class:`SegmentedGraph` from an ``(m, 2)`` edge array.

    Every vertex must have degree at least one (a vertex with no slots has
    no segment; the representation cannot express it — the paper's
    algorithms retire such vertices).  Self-loops are rejected.

    ``weights``, if given, is a length-``m`` integer vector of edge weights;
    an ``edge_id`` payload (the input edge index) is always attached.
    """
    # imported here: repro.algorithms packages the full algorithm suite,
    # parts of which import repro.graph back
    from ..algorithms.radix_sort import split_radix_sort_with_rank

    edges = np.asarray(edges, dtype=np.int64)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise ValueError(f"edges must have shape (m, 2), got {edges.shape}")
    mcount = len(edges)
    if mcount == 0:
        raise ValueError("cannot build a segmented graph with no edges")
    if edges.min() < 0 or edges.max() >= n_vertices:
        raise ValueError("edge endpoint out of range")
    if (edges[:, 0] == edges[:, 1]).any():
        raise ValueError("self-loops are not representable")
    present = np.zeros(n_vertices, dtype=bool)
    present[edges.ravel()] = True
    if not present.all():
        missing = np.flatnonzero(~present)[:5].tolist()
        raise ValueError(
            f"every vertex needs degree >= 1; vertices {missing}... have none"
        )

    # two slots per edge: slot 2e is endpoint u_e, slot 2e+1 is endpoint v_e
    endpoint = np.empty(2 * mcount, dtype=np.int64)
    endpoint[0::2] = edges[:, 0]
    endpoint[1::2] = edges[:, 1]
    keys = Vector(machine, endpoint)

    bits = max(ceil_log2(n_vertices), 1)
    sorted_keys, rank = split_radix_sort_with_rank(keys, number_of_bits=bits)

    # rank[i] = original slot now sitting at position i.  Invert it to learn
    # each original slot's new home (one permute), then each new slot's
    # cross pointer is the new home of its original partner (one gather at
    # unique indices).
    n_slots = 2 * mcount
    new_home = machine.arange(n_slots).permute(rank)
    partner_of_rank = rank._binary(1, np.bitwise_xor)  # original partner slot
    cross = new_home.gather(partner_of_rank)

    # segment flags: a slot starts a segment where its vertex differs from
    # the previous slot's vertex (one shift + compare)
    machine.charge_permute(n_slots)
    machine.charge_elementwise(n_slots)
    sk = sorted_keys.data
    sf = np.empty(n_slots, dtype=bool)
    sf[0] = True
    sf[1:] = sk[1:] != sk[:-1]

    slot_data: dict[str, Vector] = {}
    payloads = {"edge_id": np.arange(mcount, dtype=np.int64)}
    if weights is not None:
        weights = np.asarray(weights, dtype=np.int64)
        if len(weights) != mcount:
            raise ValueError("weights length must equal number of edges")
        payloads["weight"] = weights
    for name, per_edge in payloads.items():
        per_slot = np.repeat(per_edge, 2)
        slot_data[name] = Vector(machine, per_slot).permute(new_home)

    g = SegmentedGraph(
        machine=machine,
        seg_flags=Vector(machine, sf),
        cross_pointers=cross,
        slot_data=slot_data,
        vertex_reps=np.flatnonzero(present).astype(np.int64),
    )
    return g


def random_connected_graph(rng: np.random.Generator, n_vertices: int,
                           extra_edges: int, *, max_weight: int = 1_000_000
                           ) -> tuple[np.ndarray, np.ndarray]:
    """A random connected multigraph-free edge list with distinct weights:
    a random spanning tree plus ``extra_edges`` random non-duplicate edges.
    Returns ``(edges, weights)`` (host-side test/benchmark helper)."""
    if n_vertices < 2:
        raise ValueError("need at least two vertices")
    order = rng.permutation(n_vertices)
    tree_children = order[1:]
    attach = np.array([order[rng.integers(0, i + 1)] for i in range(n_vertices - 1)])
    edge_set = {(min(int(a), int(b)), max(int(a), int(b)))
                for a, b in zip(attach, tree_children)}
    tries = 0
    while len(edge_set) < n_vertices - 1 + extra_edges and tries < 50 * (extra_edges + 1):
        u, v = rng.integers(0, n_vertices, size=2)
        tries += 1
        if u == v:
            continue
        edge_set.add((min(int(u), int(v)), max(int(u), int(v))))
    edges = np.array(sorted(edge_set), dtype=np.int64)
    # distinct weights make the MST unique (random-mate Sollin needs a
    # deterministic minimum per tree)
    weights = rng.permutation(len(edges)) * 7 + rng.integers(1, 7)
    return edges, weights.astype(np.int64)
