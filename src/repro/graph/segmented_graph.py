"""The undirected segmented graph representation (Section 2.3.2, Figure 6).

A graph lives in a single segmented vector: one segment per vertex, one
element ("slot") per edge end.  Since each undirected edge is incident on
two vertices it occupies two slots, and the *cross-pointers* vector holds,
at each slot, the index of the edge's other slot (an involution).  Edge
weights and other per-edge payloads ride in parallel slot vectors.

The representation's payoff is that per-vertex reductions over incident
edges — "each vertex sums a value from all neighbors" — become segmented
scan operations: O(1) program steps on the scan model instead of the
O(lg n) of a P-RAM tree (the paper's neighbor-summing example).
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core import ops, segmented
from ..core.vector import Vector
from ..machine.model import Machine

__all__ = ["SegmentedGraph"]


@dataclass
class SegmentedGraph:
    """A graph in the segmented representation.

    Attributes
    ----------
    machine:
        The machine all vectors live on.
    seg_flags:
        Boolean slot vector; ``True`` marks the first slot of each vertex.
    cross_pointers:
        Integer slot vector; ``cross_pointers[s]`` is the slot of the other
        end of the edge at slot ``s`` (``cp[cp[s]] == s``).
    slot_data:
        Named per-slot payload vectors (``"weight"``, ``"edge_id"``, …);
        both slots of an edge carry equal payloads.
    vertex_reps:
        Host-side bookkeeping: for each current vertex (segment), the id of
        the original vertex that represents it.  Star-merging contracts
        vertices, and benchmarks/tests use this to interpret results; it is
        never read by charged operations.
    """

    machine: Machine
    seg_flags: Vector
    cross_pointers: Vector
    slot_data: dict[str, Vector] = field(default_factory=dict)
    vertex_reps: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))

    # ------------------------------------------------------------------ #
    # Shape
    # ------------------------------------------------------------------ #

    @property
    def num_slots(self) -> int:
        return len(self.seg_flags)

    @property
    def num_vertices(self) -> int:
        """Number of vertices currently represented (vertices of degree 0
        are not representable and have already been retired)."""
        return int(np.count_nonzero(self.seg_flags.data))

    @property
    def num_edges(self) -> int:
        return self.num_slots // 2

    def degrees(self) -> np.ndarray:
        """Per-vertex degree (host-side view; no steps charged)."""
        return segmented.segment_lengths(self.seg_flags)

    # ------------------------------------------------------------------ #
    # Charged graph operations
    # ------------------------------------------------------------------ #

    def slot_degrees(self) -> Vector:
        """Each slot receives its vertex's degree (one segmented distribute)."""
        ones = Vector(self.machine, np.ones(self.num_slots, dtype=np.int64))
        self.machine.charge_elementwise(self.num_slots)
        return segmented.seg_plus_distribute(ones, self.seg_flags)

    def slot_vertex_ids(self) -> Vector:
        """Each slot receives its vertex's (current, dense) id."""
        return segmented.segment_ids(self.seg_flags)

    def vertex_to_slots(self, per_vertex: Vector) -> Vector:
        """Distribute a per-vertex value to every slot of that vertex:
        permute the values to the segment heads, then a segmented copy.
        O(1) program steps."""
        if len(per_vertex) != self.num_vertices:
            raise ValueError(
                f"expected {self.num_vertices} per-vertex values, got {len(per_vertex)}"
            )
        m = self.machine
        heads = np.flatnonzero(self.seg_flags.data)
        head_index = Vector(m, heads.astype(np.int64))
        at_heads = per_vertex.permute(head_index, length=self.num_slots)
        return segmented.seg_copy(at_heads, self.seg_flags)

    def slots_to_vertex(self, per_slot: Vector) -> Vector:
        """Collect the value at each vertex's head slot into a dense
        per-vertex vector (one pack)."""
        return ops.pack(per_slot, self.seg_flags)

    def across_edges(self, per_slot: Vector) -> Vector:
        """Send each slot's value to the other end of its edge (one permute
        through the cross-pointers — they are a permutation)."""
        return per_slot.permute(self.cross_pointers)

    def neighbor_reduce(self, per_vertex: Vector, op: str = "sum") -> Vector:
        """Each vertex combines a value from all its neighbors — the
        paper's showcase O(1) operation: distribute over edges, cross,
        reduce within segments, read heads."""
        over_edges = self.vertex_to_slots(per_vertex)
        arrived = self.across_edges(over_edges)
        if op == "sum":
            reduced = segmented.seg_plus_distribute(arrived, self.seg_flags)
        elif op == "min":
            reduced = segmented.seg_min_distribute(arrived, self.seg_flags)
        elif op == "max":
            reduced = segmented.seg_max_distribute(arrived, self.seg_flags)
        else:
            raise ValueError(f"unknown neighbor reduce op {op!r}")
        return self.slots_to_vertex(reduced)

    def subgraph(self, keep_vertex: Vector) -> "SegmentedGraph":
        """Delete the vertices whose flag is ``False`` (and every edge
        touching them), keeping the representation intact — the shrink step
        of the maximal-independent-set loop.  O(1) program steps (the same
        pack-and-repoint dance as star-merge's deletion phase).

        Vertices that keep no edges disappear from the representation (the
        caller tracks them through ``vertex_reps``).
        """
        if len(keep_vertex) != self.num_vertices:
            raise ValueError("keep_vertex must be a per-vertex flag vector")
        m = self.machine
        n = self.num_slots
        keep_slot_self = self.vertex_to_slots(keep_vertex)
        keep_slot = keep_slot_self & keep_slot_self.permute(self.cross_pointers)
        final_idx = ops.enumerate_(keep_slot)
        kept = ops.count(keep_slot)
        vid = self.slot_vertex_ids()
        if kept == 0:
            return SegmentedGraph(
                machine=m,
                seg_flags=Vector(m, np.empty(0, dtype=bool)),
                cross_pointers=Vector(m, np.empty(0, dtype=np.int64)),
                slot_data={k: Vector(m, np.empty(0, dtype=v.dtype))
                           for k, v in self.slot_data.items()},
                vertex_reps=np.empty(0, dtype=np.int64),
            )
        cp_routed = final_idx.gather(self.cross_pointers)
        final_cp = ops.pack(cp_routed, keep_slot)
        final_vid = ops.pack(vid, keep_slot)
        final_data = {k: ops.pack(v, keep_slot) for k, v in self.slot_data.items()}
        m.charge_permute(kept)
        m.charge_elementwise(kept)
        fv = final_vid.data
        sf_arr = np.empty(kept, dtype=bool)
        sf_arr[0] = True
        sf_arr[1:] = fv[1:] != fv[:-1]
        return SegmentedGraph(
            machine=m,
            seg_flags=Vector(m, sf_arr),
            cross_pointers=final_cp,
            slot_data=final_data,
            vertex_reps=self.vertex_reps[fv[np.flatnonzero(sf_arr)]],
        )

    # ------------------------------------------------------------------ #
    # Validation (host-side; used by tests)
    # ------------------------------------------------------------------ #

    def validate(self) -> None:
        """Check the structural invariants of the representation."""
        n = self.num_slots
        cp = self.cross_pointers.data
        sf = self.seg_flags.data
        if len(cp) != n:
            raise AssertionError("cross-pointer length mismatch")
        if n == 0:
            return
        if not sf[0]:
            raise AssertionError("first slot must start a segment")
        if n % 2 != 0:
            raise AssertionError("odd number of slots")
        if not np.array_equal(np.sort(cp), np.arange(n)):
            raise AssertionError("cross-pointers are not a permutation")
        if not np.array_equal(cp[cp], np.arange(n)):
            raise AssertionError("cross-pointers are not an involution")
        if (cp == np.arange(n)).any():
            raise AssertionError("a slot points at itself")
        seg_id = np.cumsum(sf) - 1
        if (seg_id[cp] == seg_id).any():
            raise AssertionError("a self-loop (intra-segment edge) is present")
        for name, vec in self.slot_data.items():
            if len(vec) != n:
                raise AssertionError(f"slot_data[{name!r}] length mismatch")
            if not np.array_equal(vec.data[cp], vec.data):
                raise AssertionError(f"slot_data[{name!r}] differs across edge ends")
        if len(self.vertex_reps) != self.num_vertices:
            raise AssertionError("vertex_reps length mismatch")

    def to_edge_set(self) -> set[tuple[int, int]]:
        """The multiset-free set of current edges as (min_rep, max_rep)
        pairs of *current vertex indices* (host-side; for tests)."""
        seg_id = np.cumsum(self.seg_flags.data) - 1
        cp = self.cross_pointers.data
        a = seg_id
        b = seg_id[cp]
        return {(int(min(x, y)), int(max(x, y))) for x, y in zip(a, b)}
