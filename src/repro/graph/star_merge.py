"""Star merging (Section 2.3.3, Figure 7): contract disjoint stars of
vertices into single vertices while maintaining the segmented graph
representation, in O(1) program steps for ``m`` edges.

A *star* is a parent vertex plus child vertices, each child joined to the
parent by a marked *star edge*.  The paper's four phases:

1. **Open space** — each child passes its segment length across its star
   edge; a segmented ``+-distribute`` sizes each parent's new segment and a
   ``+-scan`` allocates it (we keep the parent's own star end too, so the
   cross-pointers stay a valid involution until the deletion phase).
2. **Permute the children in** — each child learns its offset in the parent
   segment across the star edge, distributes it over its own slots, adds
   its within-segment index, and one global permute moves everything.
3. **Update cross-pointers** — each slot sends its new position to the
   other end of its edge.
4. **Delete internal edges** — edges whose two ends now share a segment
   (the star edges themselves, plus any edge between merged vertices) are
   packed away and the pointers updated once more.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import ops, scans, segmented
from ..core.vector import Vector
from .segmented_graph import SegmentedGraph

__all__ = ["star_merge", "StarMergeResult"]


@dataclass
class StarMergeResult:
    """Outcome of one star-merge step.

    Attributes
    ----------
    graph:
        The merged graph (may have zero slots if everything contracted).
    merged_pairs:
        ``(k, 2)`` array of ``(child_rep, parent_rep)`` original-vertex ids,
        one row per child merged this step — the merge-forest edges used by
        connected components.
    retired_reps:
        Original-vertex ids of parent vertices whose segments emptied (their
        component is fully contracted).
    """

    graph: SegmentedGraph
    merged_pairs: np.ndarray
    retired_reps: np.ndarray


def _validate_star(g: SegmentedGraph, star_edge: Vector, parent: Vector) -> None:
    sf = g.seg_flags.data
    cp = g.cross_pointers.data
    star = star_edge.data
    par = parent.data
    if len(star) != g.num_slots:
        raise ValueError("star_edge must be a per-slot flag vector")
    if len(par) != g.num_vertices:
        raise ValueError("parent must be a per-vertex flag vector")
    seg_id = np.cumsum(sf) - 1
    par_slot = par[seg_id]
    # star flags agree across edge ends
    if not np.array_equal(star[cp], star):
        raise ValueError("star edge flags must mark both ends of each star edge")
    # star edges join a child end to a parent end
    if (par_slot[cp] == par_slot)[star].any():
        raise ValueError("a star edge joins two parents or two children")
    # each child has exactly one star edge
    child_star = star & ~par_slot
    per_vertex = np.bincount(seg_id[child_star], minlength=g.num_vertices)
    child_vertices = ~par
    if not np.array_equal(per_vertex[child_vertices], np.ones(child_vertices.sum())):
        raise ValueError("every child vertex needs exactly one star edge")
    if per_vertex[par].any():
        raise ValueError("a parent vertex is marked as the child end of a star edge")


def star_merge(g: SegmentedGraph, star_edge: Vector, parent: Vector,
               *, validate: bool = True) -> StarMergeResult:
    """Merge every star in ``g`` in O(1) program steps (see module doc)."""
    m = g.machine
    n = g.num_slots
    if validate:
        _validate_star(g, star_edge, parent)

    seg = g.seg_flags
    cp = g.cross_pointers
    parent_slot = g.vertex_to_slots(parent)
    child_slot = ~parent_slot

    # ---- phase 1: open space ------------------------------------------ #
    deg = g.slot_degrees()
    deg_other = deg.permute(cp)  # the other end's vertex degree
    needed = (parent_slot & star_edge).where(deg_other + 1, 1)
    masked = parent_slot.where(needed, 0)
    base = scans.plus_scan(masked)
    total = scans.plus_reduce(masked)

    # ---- phase 2: route every slot to its new position ----------------- #
    # parent slots: non-star keep their cell; star slots sit after their
    # child's block.  child slots: the parent's base crosses the star edge,
    # is spread over the child's segment, and the within-segment index
    # finishes the address.
    new_pos_parent = star_edge.where(base + deg_other, base)
    base_across = base.permute(cp)
    child_claim = (child_slot & star_edge).where(base_across, -1)
    child_base = segmented.seg_max_distribute(child_claim, seg)
    child_new = child_base + segmented.seg_index(seg)
    new_pos = parent_slot.where(new_pos_parent, child_new)

    # the merged vertex id (the parent's old segment id) rides along so the
    # new segment flags can be read off neighbor changes
    vid = g.slot_vertex_ids()
    vid_across = vid.permute(cp)
    child_pvid = segmented.seg_max_distribute(
        (child_slot & star_edge).where(vid_across, -1), seg)
    pvid = parent_slot.where(vid, child_pvid)

    new_vid = pvid.permute(new_pos, length=total)
    moved_data = {k: v.permute(new_pos, length=total) for k, v in g.slot_data.items()}

    # ---- phase 3: update the cross-pointers ---------------------------- #
    other_new = new_pos.permute(cp)
    cp_new = other_new.permute(new_pos, length=total)

    # ---- phase 4: delete intra-segment edges --------------------------- #
    other_vid = new_vid.permute(cp_new)
    keep = other_vid != new_vid
    final_idx = ops.enumerate_(keep)
    kept = ops.count(keep)

    if kept:
        cp_routed = final_idx.gather(cp_new)  # where my other end will land
        final_cp = ops.pack(cp_routed, keep)
        final_vid = ops.pack(new_vid, keep)
        final_data = {k: ops.pack(v, keep) for k, v in moved_data.items()}
        m.charge_permute(kept)
        m.charge_elementwise(kept)
        fv = final_vid.data
        sf_arr = np.empty(kept, dtype=bool)
        sf_arr[0] = True
        sf_arr[1:] = fv[1:] != fv[:-1]
        final_sf = Vector(m, sf_arr)
        head_vids = fv[np.flatnonzero(sf_arr)]
        new_reps = g.vertex_reps[head_vids]
    else:
        final_cp = Vector(m, np.empty(0, dtype=np.int64))
        final_sf = Vector(m, np.empty(0, dtype=bool))
        final_data = {k: Vector(m, np.empty(0, dtype=v.dtype))
                      for k, v in moved_data.items()}
        head_vids = np.empty(0, dtype=np.int64)
        new_reps = np.empty(0, dtype=np.int64)

    # ---- host-side bookkeeping (uncharged) ------------------------------ #
    sf_host = seg.data
    seg_id = np.cumsum(sf_host) - 1
    child_star_mask = star_edge.data & ~parent.data[seg_id]
    child_vids = seg_id[child_star_mask]
    parent_vids = seg_id[cp.data[child_star_mask]]
    merged_pairs = np.column_stack(
        (g.vertex_reps[child_vids], g.vertex_reps[parent_vids])
    ) if child_vids.size else np.empty((0, 2), dtype=np.int64)

    parent_ids = np.flatnonzero(parent.data)
    surviving = set(head_vids.tolist())
    retired = np.array(
        [g.vertex_reps[p] for p in parent_ids if p not in surviving],
        dtype=np.int64,
    )

    merged = SegmentedGraph(
        machine=m,
        seg_flags=final_sf,
        cross_pointers=final_cp,
        slot_data=final_data,
        vertex_reps=new_reps,
    )
    return StarMergeResult(graph=merged, merged_pairs=merged_pairs,
                           retired_reps=retired)
