"""Worker-pool supervision: dispatch, health, retries, degradation.

This is the product half of the distributed backend.  The *math* of a
sharded scan lives in :mod:`repro.cluster.shardops`; everything here is
about surviving the processes that run it.  A :class:`WorkerPool` owns N
worker processes and, per distributed op:

1. publishes the operands into ``multiprocessing.shared_memory`` segments
   (arrays never cross the command pipes),
2. dispatches one contiguous shard per live worker (in waves when workers
   have died and shards outnumber survivors),
3. combines the per-shard carries with the round-efficient exclusive
   exchange (:mod:`repro.cluster.exchange`), and
4. dispatches the phase-2 carry applies, skipping shards whose incoming
   carry is the operator's identity.

Every shard reply is validated (deadline, liveness, checksum) and every
failure is classified — ``timeout``, ``crash``, or ``corrupt`` — then
answered by the :class:`RetryPolicy` ladder: recycle the worker (respawn,
or retire the slot after repeated failures), back off with seeded jitter,
re-dispatch the shard (phase-2 retries always recompute, since a
half-applied in-place carry is not re-applicable), and after the retry
budget compute the shard host-side **with the identical kernels**, so
degradation changes latency, never results.  The
:class:`~repro.cluster.ledger.ClusterLedger` records each event, and the
invariant ``failures == retries + degraded_shards`` reconciles the whole
story; :mod:`repro.observe` metrics mirror the counts for dashboards.

Pools are heavy (N processes), so module-level helpers keep one shared
pool per worker count (:func:`shared_pool`) and an ``atexit`` hook
guarantees every pool — shared or not — is torn down with its shared
memory unlinked even when the host exits abruptly.
"""
from __future__ import annotations

import atexit
import multiprocessing as mp
import random
import time
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Callable, Optional

import numpy as np
from multiprocessing import resource_tracker

from ..observe.metrics import registry
from . import shardops
from .chaos import ChaosPlan, ChaosState
from .exchange import exclusive_exchange
from .ledger import ClusterLedger
from .worker import _compute, worker_main

__all__ = ["RetryPolicy", "WorkerPool", "shared_pool", "set_shared_chaos",
           "shutdown_all_pools"]

#: ops the pool knows how to shard (reduce is single-phase)
_SCAN_OPS = ("plus_scan", "max_scan", "seg_plus", "seg_extreme")


@dataclass(frozen=True)
class RetryPolicy:
    """How hard the supervisor fights before degrading a shard."""

    max_retries: int = 2          #: re-dispatches per shard before host fallback
    op_deadline: float = 30.0     #: seconds a worker gets per shard phase
    backoff_base: float = 0.05    #: first retry delay (seconds)
    backoff_factor: float = 2.0   #: exponential growth per attempt
    backoff_jitter: float = 0.5   #: uniform jitter fraction added on top
    backoff_cap: float = 2.0      #: never sleep longer than this
    heartbeat_interval: float = 5.0   #: idle seconds before a liveness ping
    heartbeat_timeout: float = 2.0    #: seconds a ping may go unanswered
    max_worker_failures: int = 3  #: consecutive failures that retire a slot

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.op_deadline <= 0 or self.heartbeat_timeout <= 0:
            raise ValueError("deadlines must be positive")

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry ``attempt`` (1-based), with jitter."""
        base = self.backoff_base * self.backoff_factor ** (attempt - 1)
        return min(self.backoff_cap,
                   base * (1.0 + self.backoff_jitter * rng.random()))


class _WorkerHandle:
    """One pool slot: a process, its pipe, and its health record."""

    __slots__ = ("slot", "process", "conn", "seq", "failures", "dead",
                 "last_seen")

    def __init__(self, slot: int):
        self.slot = slot
        self.process = None
        self.conn = None
        self.seq = 0
        self.failures = 0       #: consecutive failures (reset on success)
        self.dead = False       #: slot retired for good
        self.last_seen = 0.0

    @property
    def alive(self) -> bool:
        return (not self.dead and self.process is not None
                and self.process.is_alive())

    def next_seq(self) -> int:
        self.seq += 1
        return self.seq


class _ShmJob:
    """Shared-memory segments for one distributed op.

    Creates a segment per operand plus the output, copies inputs in, and
    owns close+unlink — unlinking happens here (host side) exactly once,
    which is why workers unregister their attachments from the resource
    tracker.
    """

    def __init__(self, arrays: dict):
        self._segments = {}
        self._views = {}
        self.names = {}
        try:
            for key, arr in arrays.items():
                if arr is None:
                    self.names[key] = None
                    continue
                shm = shared_memory.SharedMemory(
                    create=True, size=max(1, arr.nbytes))
                self._segments[key] = shm
                view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
                if key != "out":  # output starts uninitialized
                    view[:] = arr
                self._views[key] = view
                self.names[key] = shm.name
        except BaseException:
            self.close()
            raise

    def view(self, key: str) -> np.ndarray:
        return self._views[key]

    def close(self) -> None:
        self._views.clear()
        for shm in self._segments.values():
            try:
                shm.close()
            except BufferError:  # a straggler view; unlink still proceeds
                pass
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
        self._segments.clear()


class WorkerPool:
    """N supervised worker processes executing sharded primitives."""

    def __init__(self, workers: int, policy: Optional[RetryPolicy] = None,
                 chaos: Optional[ChaosPlan] = None):
        if workers < 1:
            raise ValueError("a pool needs at least one worker")
        self.workers = workers
        self.policy = policy or RetryPolicy()
        self.ledger = ClusterLedger()
        self.broken = False
        self.closed = False
        self._chaos: Optional[ChaosState] = None
        self._op_index = 0
        self._rng = random.Random(0xC0FFEE)  # backoff jitter only, never results
        self._ctx = mp.get_context("fork")
        self._slots = [_WorkerHandle(i) for i in range(workers)]
        # Start the resource tracker BEFORE forking: it normally launches
        # lazily at the first segment create, which happens after spawn —
        # each worker would then boot a private tracker whose cache never
        # sees the supervisor's unlink-time unregisters and screams about
        # "leaked" segments at exit.  Forked after this line, every worker
        # inherits the one tracker and registration stays balanced.
        resource_tracker.ensure_running()

        m = registry
        self._m_spawned = m.counter("cluster.workers.spawned")
        self._m_respawned = m.counter("cluster.workers.respawned")
        self._m_dead = m.counter("cluster.workers.dead")
        self._m_ops_dist = m.counter("cluster.ops.distributed")
        self._m_ops_local = m.counter("cluster.ops.local")
        self._m_shards = m.counter("cluster.shards.dispatched")
        self._m_degraded = m.counter("cluster.shards.degraded")
        self._m_retries = m.counter("cluster.retries")
        self._m_fail = {k: m.counter(f"cluster.failures.{k}")
                        for k in ("timeout", "crash", "corrupt")}
        self._m_heartbeat = m.counter("cluster.heartbeat.failures")
        self._m_chaos = m.counter("cluster.chaos.injected")
        self._m_pool_degr = m.counter("cluster.pool.degradations")
        self._m_rounds = m.histogram("cluster.carry_rounds")
        self._m_elems = m.histogram("cluster.shard_elements")

        for handle in self._slots:
            self._spawn(handle)
        if chaos is not None:
            self.set_chaos(chaos)
        _ALL_POOLS.append(self)

    # ------------------------- lifecycle ------------------------------- #

    def _spawn(self, handle: _WorkerHandle) -> None:
        parent, child = self._ctx.Pipe(duplex=True)
        # the child gets BOTH ends: forking duplicates the parent end into
        # it, and only the child itself can close that copy (worker_main
        # does, first thing) — otherwise a SIGKILLed supervisor leaves the
        # pipe open and the worker never sees EOF
        proc = self._ctx.Process(target=worker_main, args=(child, parent),
                                 daemon=True, name=f"repro-worker-{handle.slot}")
        proc.start()
        child.close()
        handle.process, handle.conn = proc, parent
        handle.last_seen = time.monotonic()
        self._m_spawned.inc()

    def set_chaos(self, plan: Optional[ChaosPlan]) -> None:
        """Install (or clear) a chaos plan; resets its replay cursor."""
        self._chaos = ChaosState(plan) if plan is not None else None

    @property
    def available(self) -> bool:
        """Whether the pool can still take distributed work."""
        return not (self.closed or self.broken)

    def live_workers(self) -> list:
        return [h for h in self._slots if h.alive]

    def worker_pids(self) -> list[int]:
        return [h.process.pid for h in self._slots
                if h.process is not None and h.process.is_alive()]

    def shutdown(self) -> None:
        """Stop every worker; idempotent, safe mid-failure."""
        if self.closed:
            return
        self.closed = True
        for h in self._slots:
            if h.conn is not None:
                try:
                    h.conn.send({"cmd": "exit"})
                except (BrokenPipeError, OSError):
                    pass
        for h in self._slots:
            if h.process is not None:
                h.process.join(timeout=1.0)
                if h.process.is_alive():
                    h.process.terminate()
                    h.process.join(timeout=1.0)
            if h.conn is not None:
                h.conn.close()
            h.process, h.conn = None, None
        if self in _ALL_POOLS:
            _ALL_POOLS.remove(self)

    # ------------------------ health & recovery ------------------------ #

    def _recycle(self, handle: _WorkerHandle) -> None:
        """Tear down a misbehaving worker; respawn it or retire the slot."""
        if handle.process is not None:
            handle.process.terminate()
            handle.process.join(timeout=2.0)
        if handle.conn is not None:
            handle.conn.close()
        handle.process, handle.conn = None, None
        handle.failures += 1
        if handle.failures >= self.policy.max_worker_failures:
            if not handle.dead:
                handle.dead = True
                self.ledger.dead_workers += 1
                self._m_dead.inc()
                if not any(not h.dead for h in self._slots):
                    self.broken = True
                    self.ledger.pool_degradations += 1
                    self._m_pool_degr.inc()
            return
        self._spawn(handle)
        self.ledger.respawns += 1
        self._m_respawned.inc()

    def _ensure_alive(self) -> None:
        """Pre-job health sweep: respawn silently-dead workers and ping
        anyone idle past the heartbeat interval."""
        now = time.monotonic()
        for h in self._slots:
            if h.dead:
                continue
            if not h.alive:
                self.ledger.heartbeat_failures += 1
                self._m_heartbeat.inc()
                self._recycle(h)
                continue
            if now - h.last_seen < self.policy.heartbeat_interval:
                continue
            seq = h.next_seq()
            try:
                h.conn.send({"cmd": "ping", "seq": seq})
            except (BrokenPipeError, OSError):
                self.ledger.heartbeat_failures += 1
                self._m_heartbeat.inc()
                self._recycle(h)
                continue
            status, _ = self._await(h, seq, self.policy.heartbeat_timeout)
            if status == "ok":
                h.failures = 0
            else:
                self.ledger.heartbeat_failures += 1
                self._m_heartbeat.inc()
                self._recycle(h)

    def _note_failure(self, kind: str) -> None:
        if kind == "timeout":
            self.ledger.timeouts += 1
        elif kind == "corrupt":
            self.ledger.corrupt_replies += 1
        else:
            self.ledger.crashes += 1
        self._m_fail[kind].inc()

    # --------------------------- dispatch ------------------------------ #

    def _directive(self, handle: _WorkerHandle, phase: int):
        if self._chaos is None:
            return None
        d = self._chaos.directive(self._op_index, handle.slot, phase)
        if d is None:
            return None
        kind, seconds = d
        if kind == "kill":
            self.ledger.chaos_kills += 1
        elif kind == "hang":
            self.ledger.chaos_hangs += 1
            if seconds is None:
                seconds = self.policy.op_deadline + 1.0
        else:
            self.ledger.chaos_corruptions += 1
        self._m_chaos.inc()
        return (kind, seconds)

    def _send(self, handle: _WorkerHandle, cmd: dict, phase: int) -> int:
        cmd = dict(cmd)
        cmd["seq"] = handle.next_seq()
        cmd["chaos"] = self._directive(handle, phase)
        self.ledger.shards += 1
        self._m_shards.inc()
        self._m_elems.observe(cmd["stop"] - cmd["start"])
        try:
            handle.conn.send(cmd)
        except (BrokenPipeError, OSError):
            return -1  # caller will observe the crash on await
        return cmd["seq"]

    def _await(self, handle: _WorkerHandle, seq: int, timeout: float):
        """Wait for the reply matching ``seq``; classify anything else."""
        if seq < 0:
            return ("crash", "send failed: worker pipe closed")
        deadline = time.monotonic() + timeout
        while True:
            # poll even with the budget exhausted: poll(0) still drains a
            # reply that is already buffered (a wave-mate that finished
            # while we waited out an earlier shard is not a timeout)
            remaining = max(0.0, deadline - time.monotonic())
            try:
                if not handle.conn.poll(remaining):
                    return ("timeout", None)
                reply = handle.conn.recv()
            except (EOFError, OSError):
                return ("crash", "worker pipe closed")
            if not isinstance(reply, dict) or reply.get("seq") != seq:
                continue  # stale pre-recycle chatter; keep waiting for ours
            handle.last_seen = time.monotonic()
            if not reply.get("ok"):
                return ("crash", reply.get("error", "worker error"))
            return ("ok", reply)

    def _checksum_ok(self, job: _ShmJob, cmd: dict, reply: dict) -> bool:
        """Recompute the shard checksum on the host's view of the data."""
        out_slice = None
        if cmd["out"] is not None:
            out_slice = job.view("out")[cmd["start"]:cmd["stop"]]
        carry = reply.get("carry") if cmd["phase"] == 1 else None
        return shardops.shard_checksum(out_slice, carry) == reply["checksum"]

    def _host_shard(self, job: _ShmJob, cmd: dict):
        """Degraded path: compute the shard in-process with the exact
        worker kernels (see :func:`repro.cluster.worker._compute`)."""
        start, stop = cmd["start"], cmd["stop"]
        values = flags = out = None
        if cmd["values"] is not None:
            values = job.view("values")[start:stop]
        if cmd["flags"] is not None:
            flags = job.view("flags")[start:stop]
        if cmd["out"] is not None:
            out = job.view("out")[start:stop]
        with np.errstate(all="ignore"):
            return _compute(cmd, values, flags, out)

    def _idle_live_worker(self, busy: set) -> Optional[_WorkerHandle]:
        for h in self._slots:
            if h.alive and h.slot not in busy:
                return h
        return None

    def _retry_shard(self, job: _ShmJob, cmd: dict, busy: set):
        """The retry ladder for one already-failed shard.  The failure
        that brought us here is on the books; every pass through the loop
        answers the latest failure with exactly one retry or one
        degradation, keeping the ledger invariant."""
        attempt = 0
        while True:
            attempt += 1
            worker = self._idle_live_worker(busy)
            if attempt > self.policy.max_retries or worker is None:
                self.ledger.degraded_shards += 1
                self._m_degraded.inc()
                return self._host_shard(job, cmd)
            self.ledger.retries += 1
            self._m_retries.inc()
            time.sleep(self.policy.delay(attempt, self._rng))
            seq = self._send(worker, cmd, cmd["phase"])
            status, reply = self._await(worker, seq, self.policy.op_deadline)
            if status == "ok" and not self._checksum_ok(job, cmd, reply):
                status = "corrupt"
            if status == "ok":
                worker.failures = 0
                return reply.get("carry")
            self._note_failure(status)
            self._recycle(worker)

    def _run_phase(self, job: _ShmJob, shard_cmds: list):
        """Execute one phase's shard commands across the pool in waves.

        ``shard_cmds`` is ``[(shard_index, cmd), ...]``; returns
        ``{shard_index: carry}``.  Each wave sends at most one command per
        live worker, collects every reply, then settles that wave's
        failures through the retry ladder before the next wave — so a
        retry never interleaves with an outstanding dispatch on the same
        pipe.
        """
        results: dict = {}
        pending = list(shard_cmds)
        while pending:
            live = self.live_workers()
            if not live:
                # nobody left to even fail: these shards were never
                # dispatched, so they are orphans, not degradations
                for shard, cmd in pending:
                    self.ledger.orphaned_shards += 1
                    results[shard] = self._host_shard(job, cmd)
                break
            wave, pending = pending[:len(live)], pending[len(live):]
            dispatched = []
            for handle, (shard, cmd) in zip(live, wave):
                seq = self._send(handle, cmd, cmd["phase"])
                dispatched.append((handle, shard, cmd, seq, time.monotonic()))
            failed = []
            for handle, shard, cmd, seq, t0 in dispatched:
                timeout = max(0.0, t0 + self.policy.op_deadline
                              - time.monotonic())
                status, reply = self._await(handle, seq, timeout)
                if status == "ok" and not self._checksum_ok(job, cmd, reply):
                    status = "corrupt"
                if status == "ok":
                    handle.failures = 0
                    results[shard] = reply.get("carry")
                    continue
                self._note_failure(status)
                self._recycle(handle)
                failed.append((shard, cmd))
            busy: set = set()  # the wave is fully settled; every pipe is idle
            for shard, cmd in failed:
                retry_cmd = dict(cmd)
                if cmd["phase"] == 2:
                    # a half-applied in-place carry must not be re-applied
                    retry_cmd["mode"] = "recompute"
                results[shard] = self._retry_shard(job, retry_cmd, busy)
        return results

    # ------------------------- distributed ops ------------------------- #

    @staticmethod
    def _partition(n: int, parts: int) -> list:
        parts = max(1, min(parts, n))
        base, extra = divmod(n, parts)
        bounds, start = [], 0
        for i in range(parts):
            stop = start + base + (1 if i < extra else 0)
            bounds.append((start, stop))
            start = stop
        return bounds

    @staticmethod
    def _monoid(op: str, dtype, identity, is_max: bool):
        """The carry-combine monoid and its identity for the exchange."""
        zero = np.zeros((), dtype=dtype)[()]
        if op == "plus_scan":
            return shardops.plus_carry_combine(dtype), zero
        if op == "max_scan":
            return (shardops.max_carry_combine(),
                    np.asarray(identity, dtype=dtype)[()])
        if op == "seg_plus":
            return shardops.seg_plus_carry_combine(dtype), (zero, False)
        if op == "seg_extreme":
            return shardops.seg_extreme_carry_combine(is_max), (None, False)
        raise ValueError(f"unknown distributed op {op!r}")

    def _offset_is_identity(self, op: str, offset, identity,
                            flags, start: int) -> bool:
        """Whether shard ``start``'s incoming carry cannot change it (so
        phase 2 can be skipped entirely for that shard)."""
        if op in ("seg_plus", "seg_extreme") and bool(flags[start]):
            return True  # shard opens a fresh segment; no open carry applies
        if op == "plus_scan":
            return bool(offset == 0)
        if op == "max_scan":
            return bool(offset == identity)  # NaN compares False: dispatch
        if op == "seg_plus":
            return bool(offset[0] == 0)
        return offset[0] is None  # seg_extreme

    def _begin_op(self, n: int) -> None:
        self._op_index = self.ledger.ops_distributed
        self.ledger.ops += 1
        self.ledger.ops_distributed += 1
        self._m_ops_dist.inc()
        self._ensure_alive()

    def run_scan(self, op: str, values: np.ndarray,
                 flags: Optional[np.ndarray] = None,
                 identity=None, is_max: bool = False) -> np.ndarray:
        """A full two-phase sharded scan with recovery; returns the result
        (a fresh host array — shared memory is torn down before return)."""
        if op not in _SCAN_OPS:
            raise ValueError(f"unknown distributed op {op!r}")
        n = len(values)
        self._begin_op(n)
        live = self.live_workers()
        shards = self._partition(n, max(1, len(live)))
        job = _ShmJob({"values": values, "flags": flags,
                       "out": np.empty_like(values)})
        try:
            base = {
                "cmd": "op", "op": op, "n": n,
                "values": job.names["values"], "flags": job.names["flags"],
                "out": job.names["out"], "dtype": values.dtype.str,
                "flags_dtype": flags.dtype.str if flags is not None else None,
                "identity": identity, "is_max": is_max,
                "reduce_op": None, "carry": None,
            }
            phase1 = [(i, {**base, "phase": 1, "mode": "scan",
                           "start": s, "stop": e})
                      for i, (s, e) in enumerate(shards)]
            carries_by_shard = self._run_phase(job, phase1)
            carries = [carries_by_shard[i] for i in range(len(shards))]

            combine, ident = self._monoid(op, values.dtype, identity, is_max)
            offsets, rounds = exclusive_exchange(carries, combine, ident)
            self._m_rounds.observe(rounds)

            host_flags = job.view("flags") if flags is not None else None
            phase2 = []
            for i, (s, e) in enumerate(shards):
                if s == e or self._offset_is_identity(
                        op, offsets[i], identity, host_flags, s):
                    continue
                carry_value = (offsets[i][0]
                               if op in ("seg_plus", "seg_extreme")
                               else offsets[i])
                phase2.append((i, {**base, "phase": 2, "mode": "apply",
                                   "start": s, "stop": e,
                                   "carry": carry_value}))
            if phase2:
                self._run_phase(job, phase2)
            return np.array(job.view("out"), copy=True)
        finally:
            job.close()

    def run_reduce(self, values: np.ndarray, reduce_op: str):
        """A sharded reduction: per-shard partials, combined host-side the
        same way the blocked backend re-reduces its chunk partials."""
        n = len(values)
        self._begin_op(n)
        live = self.live_workers()
        shards = self._partition(n, max(1, len(live)))
        job = _ShmJob({"values": values, "flags": None, "out": None})
        try:
            cmds = [(i, {"cmd": "op", "op": "reduce", "phase": 1,
                         "mode": "scan", "n": n, "start": s, "stop": e,
                         "values": job.names["values"], "flags": None,
                         "out": None, "dtype": values.dtype.str,
                         "flags_dtype": None, "identity": None,
                         "is_max": False, "reduce_op": reduce_op,
                         "carry": None})
                    for i, (s, e) in enumerate(shards)]
            partials_by_shard = self._run_phase(job, cmds)
            partials = [partials_by_shard[i] for i in range(len(shards))]
            return shardops.reduce_combine(partials, reduce_op)
        finally:
            job.close()


# ----------------------- process-wide pool registry ---------------------- #

_ALL_POOLS: list = []
_SHARED: dict = {}
_SHARED_CHAOS: Optional[ChaosPlan] = None


def shared_pool(workers: int, policy: Optional[RetryPolicy] = None) -> WorkerPool:
    """Get (or lazily create) the process-wide pool for ``workers``.

    Machines are cheap and plentiful (the fuzzer builds one per case); OS
    processes are neither, so every ``distributed:<w>`` backend instance
    shares the pool for its worker count.
    """
    pool = _SHARED.get(workers)
    if pool is None or pool.closed:
        pool = WorkerPool(workers, policy=policy, chaos=_SHARED_CHAOS)
        _SHARED[workers] = pool
    return pool


def set_shared_chaos(plan: Optional[ChaosPlan]) -> None:
    """Install a chaos plan on every shared pool, present and future (the
    ``verify --chaos-seed`` hook)."""
    global _SHARED_CHAOS
    _SHARED_CHAOS = plan
    for pool in _SHARED.values():
        if not pool.closed:
            pool.set_chaos(plan)


def shutdown_all_pools() -> None:
    """Stop every live pool (shared or private); used by tests and atexit."""
    for pool in list(_ALL_POOLS):
        pool.shutdown()
    _SHARED.clear()


atexit.register(shutdown_all_pools)
