"""Sharded multi-process execution with supervision and fault recovery.

The paper's long-vector simulation (Figure 10) maps ``n`` logical
processors onto ``p`` physical ones; this package makes the mapping real
by sharding vectors across OS worker processes.  The layers, bottom up:

* :mod:`~repro.cluster.shardops` — pure-NumPy shard kernels and carry
  monoids, shared by workers and the degraded host-side path;
* :mod:`~repro.cluster.exchange` — the Träff-style round-efficient
  exclusive carry exchange (⌈lg p⌉ combining rounds);
* :mod:`~repro.cluster.worker` — the child-process command loop
  (shared-memory attach, compute, checksum, reply);
* :mod:`~repro.cluster.chaos` — deterministic scripted failures
  (kill/hang/corrupt) so every recovery path is testable;
* :mod:`~repro.cluster.ledger` — the fault ledger with its reconciliation
  invariant ``failures == retries + degraded_shards``;
* :mod:`~repro.cluster.pool` — the :class:`WorkerPool` supervisor:
  health checks, failure classification, the :class:`RetryPolicy` ladder,
  and graceful degradation to host-side compute.

:class:`repro.backends.DistributedBackend` sits on top and is the only
consumer most code ever needs; see ``docs/distributed.md``.
"""
from .chaos import ChaosAction, ChaosPlan, ChaosState
from .exchange import exchange_rounds, exclusive_exchange
from .ledger import ClusterLedger
from .pool import (RetryPolicy, WorkerPool, set_shared_chaos, shared_pool,
                   shutdown_all_pools)

__all__ = [
    "ChaosAction",
    "ChaosPlan",
    "ChaosState",
    "ClusterLedger",
    "RetryPolicy",
    "WorkerPool",
    "exchange_rounds",
    "exclusive_exchange",
    "set_shared_chaos",
    "shared_pool",
    "shutdown_all_pools",
]
