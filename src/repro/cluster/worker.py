"""The worker process: attach, compute one shard, reply, repeat.

Each worker is a daemonized child running :func:`worker_main` over one
duplex pipe.  Commands are small picklable dicts; array payloads never
cross the pipe — they live in :mod:`multiprocessing.shared_memory`
segments the command names, which the worker attaches to per op and
detaches from before replying.  The compute itself is a straight call into
:mod:`repro.cluster.shardops`, the same kernels the supervisor uses for
degraded host-side shards.

Protocol (one reply per command, matched by ``seq``):

* ``{"cmd": "ping"}`` — liveness probe, answered immediately.
* ``{"cmd": "exit"}`` — clean shutdown.
* ``{"cmd": "op", ...}`` — compute one shard phase; reply carries the
  shard's carry payload and a CRC32 checksum over the bytes the worker
  wrote plus the carry it is about to ship, so the supervisor can detect
  a corrupted reply by recomputing the checksum on its own view.

A command may embed a chaos directive (see :mod:`repro.cluster.chaos`);
the worker executes it on itself — ``os._exit`` for a kill, a sleep past
the deadline for a hang, flipping real bits *after* the checksum for a
corruption — so the supervisor always observes a genuine failure, never a
simulated one.

Hygiene notes: the worker drops its NumPy views before closing each
segment (a live view makes ``close()`` raise ``BufferError``) and exits
on a dead pipe so a crashed supervisor never leaves zombies behind; the
supervisor alone unlinks segments (workers are forked, so attach-time
re-registration with the shared resource tracker is a harmless no-op).
"""
from __future__ import annotations

import os
import signal
import time
from multiprocessing import shared_memory

import numpy as np

from . import shardops

__all__ = ["worker_main"]


def _attach(name: str) -> shared_memory.SharedMemory:
    # Attaching re-registers the name with the resource tracker, but the
    # pool forks its workers, so they share the supervisor's tracker
    # process and its set-based cache: the re-register is a no-op and the
    # supervisor's unlink-time unregister removes the name exactly once.
    # (Do NOT unregister here — that empties the cache early and makes the
    # supervisor's own unregister scream KeyError into stderr.)
    return shared_memory.SharedMemory(name=name)


def _view(shm, dtype, n, start, stop) -> np.ndarray:
    return np.ndarray(n, dtype=dtype, buffer=shm.buf)[start:stop]


def _compute(cmd, values, flags, out):
    """Run one shard phase; returns the carry payload (or ``None``)."""
    op = cmd["op"]
    if op == "reduce":
        return shardops.reduce_shard(values, cmd["reduce_op"])

    if cmd["phase"] == 1 or cmd["mode"] == "recompute":
        if op == "plus_scan":
            local, carry = shardops.plus_scan_shard(values)
        elif op == "max_scan":
            local, carry = shardops.max_scan_shard(values, cmd["identity"])
        elif op == "seg_plus":
            local, carry = shardops.seg_plus_shard(values, flags)
        elif op == "seg_extreme":
            local, carry = shardops.seg_extreme_shard(
                values, flags, cmd["identity"], is_max=cmd["is_max"])
        else:
            raise ValueError(f"unknown distributed op {op!r}")
        out[:] = local
        if cmd["phase"] == 1:
            return carry

    carry_value = cmd["carry"]
    if op == "plus_scan":
        shardops.plus_scan_apply(out, carry_value)
    elif op == "max_scan":
        shardops.max_scan_apply(out, carry_value)
    elif op == "seg_plus":
        shardops.seg_plus_apply(out, flags, carry_value)
    elif op == "seg_extreme":
        shardops.seg_extreme_apply(out, flags, carry_value,
                                   is_max=cmd["is_max"])
    return None


def _run_op(cmd) -> dict:
    chaos = cmd.get("chaos")
    if chaos is not None and chaos[0] == "kill":
        os._exit(117)  # a real SIGKILL-grade death: no cleanup, no reply
    if chaos is not None and chaos[0] == "hang":
        time.sleep(chaos[1])

    segments = []
    try:
        values = flags = out = None
        n, start, stop = cmd["n"], cmd["start"], cmd["stop"]
        if cmd["values"] is not None:
            shm = _attach(cmd["values"])
            segments.append(shm)
            values = _view(shm, cmd["dtype"], n, start, stop)
        if cmd["flags"] is not None:
            shm = _attach(cmd["flags"])
            segments.append(shm)
            flags = _view(shm, cmd["flags_dtype"], n, start, stop)
        if cmd["out"] is not None:
            shm = _attach(cmd["out"])
            segments.append(shm)
            out = _view(shm, cmd["dtype"], n, start, stop)

        with np.errstate(all="ignore"):
            carry = _compute(cmd, values, flags, out)
        checksum = shardops.shard_checksum(out, carry)

        if chaos is not None and chaos[0] == "corrupt":
            if out is not None and len(out):
                # flip a real bit in shared memory *after* checksumming it
                raw = np.ndarray(out.nbytes, dtype=np.uint8,
                                 buffer=out.data.cast("B"))
                raw[0] ^= 0x01
                del raw
            else:
                checksum ^= 0xDEAD  # no output bytes: corrupt the reply itself

        return {"ok": True, "seq": cmd["seq"], "carry": carry,
                "checksum": checksum}
    except Exception as exc:  # an exception in a worker is a crash reply
        return {"ok": False, "seq": cmd["seq"],
                "error": f"{type(exc).__name__}: {exc}"}
    finally:
        del values, flags, out  # views pin the buffer; close() needs it free
        for shm in segments:
            try:
                shm.close()
            except BufferError:
                pass


def worker_main(conn, supervisor_conn=None) -> None:
    """The child-process command loop (runs until ``exit`` or host death)."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # teardown is the host's job
    if supervisor_conn is not None:
        # Forking copied the supervisor's end of our own pipe into this
        # process; holding it would keep the pipe alive after the
        # supervisor dies, so recv() below would never see EOF and a
        # SIGKILLed host would strand its workers forever.
        supervisor_conn.close()
    while True:
        try:
            cmd = conn.recv()
        except (EOFError, OSError):
            break  # supervisor is gone; don't linger as a zombie
        kind = cmd.get("cmd")
        if kind == "exit":
            break
        if kind == "ping":
            reply = {"ok": True, "seq": cmd.get("seq"), "pong": True,
                     "pid": os.getpid()}
        else:
            reply = _run_op(cmd)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    conn.close()
