"""Deterministic chaos: scripted worker failures for testing recovery.

The supervision machinery in :mod:`repro.cluster.pool` is only trustworthy
if every recovery path runs in tests, and worker failures do not happen on
cue — unless we make them.  A :class:`ChaosPlan` is the distributed
sibling of :class:`repro.faults.plan.FaultPlan`: a frozen, seeded,
replayable script of *which worker misbehaves at which distributed op, in
which phase, and how*.  The same plan always produces the same kills,
hangs, and corruptions, so chaos tests assert exact ledger counts instead
of flaky distributions.

Directives travel *inside* the op command and are executed by the worker
itself (``os._exit`` for a kill, a sleep past the deadline for a hang, a
bit-flip after the checksum for a corruption) — the failure is real from
the supervisor's point of view, not simulated at the call site.
"""
from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = ["ChaosAction", "ChaosPlan", "ChaosState", "CHAOS_KINDS"]

#: failure modes a chaos action can script
CHAOS_KINDS = ("kill", "hang", "corrupt")


@dataclass(frozen=True)
class ChaosAction:
    """One scripted misbehavior.

    ``op_id`` counts the backend's *distributed* ops from 0 (local
    fallbacks don't advance it); ``worker`` is the pool slot index;
    ``phase`` is 1 (local scan) or 2 (carry apply).  A non-``sticky``
    action fires once — the retried shard then succeeds, which is what
    lets tests distinguish "recovered by retry" from "degraded".
    """

    op_id: int
    worker: int
    kind: str
    phase: int = 1
    sticky: bool = False
    seconds: Optional[float] = None  #: hang duration (defaults to policy deadline + margin)

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise ValueError(
                f"unknown chaos kind {self.kind!r}; expected one of {CHAOS_KINDS}")
        if self.phase not in (1, 2):
            raise ValueError(f"chaos phase must be 1 or 2, got {self.phase}")
        if self.op_id < 0 or self.worker < 0:
            raise ValueError("op_id and worker must be non-negative")


@dataclass(frozen=True)
class ChaosPlan:
    """A replayable failure script plus an optional random kill rate.

    ``kill_probability`` adds seeded random kills on top of the scripted
    actions (each phase-1 dispatch rolls once); with the same seed the
    same dispatches die, so even "random" chaos is replayable.
    """

    actions: Tuple[ChaosAction, ...] = ()
    kill_probability: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.kill_probability <= 1.0:
            raise ValueError("kill_probability must be within [0, 1]")
        object.__setattr__(self, "actions", tuple(self.actions))


class ChaosState:
    """Mutable replay cursor over a :class:`ChaosPlan`.

    Owned by the backend (one per pool attachment); tracks which one-shot
    actions have fired and carries the seeded RNG for random kills.
    """

    def __init__(self, plan: ChaosPlan):
        self.plan = plan
        self._fired: set[ChaosAction] = set()
        self._rng = random.Random(plan.seed)
        self.injected = 0

    def directive(self, op_id: int, worker: int, phase: int):
        """The directive (if any) to attach to this dispatch.

        Returns ``None`` or a ``(kind, seconds)`` pair ready to ship in
        the op command.  Scripted actions match exactly; the random-kill
        roll only applies to phase 1 (phase 2 is retried in recompute
        mode anyway, so random phase-1 kills already cover both paths).
        """
        for action in self.plan.actions:
            if (action.op_id, action.worker, action.phase) != (op_id, worker, phase):
                continue
            if not action.sticky and action in self._fired:
                continue
            self._fired.add(action)
            self.injected += 1
            return (action.kind, action.seconds)
        if (self.plan.kill_probability > 0.0 and phase == 1
                and self._rng.random() < self.plan.kill_probability):
            self.injected += 1
            return ("kill", None)
        return None
