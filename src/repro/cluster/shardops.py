"""Shard-local kernels: the per-worker half of every distributed primitive.

A distributed scan is the paper's Figure 10 schedule lifted onto OS
processes: each worker owns one contiguous shard, runs the *local* part of
the scan over it, the per-shard carries are combined by a round-efficient
exclusive exchange (:mod:`repro.cluster.exchange`), and a second pass folds
each shard's incoming carry back in.  This module holds the pure-NumPy
kernels for both passes, shared verbatim by the worker processes
(:mod:`repro.cluster.worker`) and by the supervisor's degraded host-side
path (:mod:`repro.cluster.pool`) — whoever ends up computing a shard, the
math is the same function, so recovery can never change a result.

The kernels mirror :class:`repro.backends.BlockedBackend`'s per-chunk
arithmetic exactly (a shard is a chunk that happens to live in another
process): integer carries wrap modulo ``2**width``, extreme carries order
NaN as a largest value exactly like the in-shard rank encoding
(``np.maximum`` for max, ``np.fmin`` for min — see
``docs/verification.md``), and segmented carries travel as
``(value, has_head)`` monoid pairs.  For integer and boolean
vectors every distributed result is therefore bit-identical to the numpy
backend; float ``+``-carries may legitimately re-associate, exactly as a
real message-passing machine would.

Checksums (:func:`shard_checksum`) cover a shard's output bytes *and* its
carry payload, so a worker that corrupts either — in shared memory after
the fact, or on the reply wire — is caught by the supervisor recomputing
the checksum on its own view of the data.
"""
from __future__ import annotations

import os
import zlib

import numpy as np

from ..backends.numpy_backend import (_REDUCERS, _exclusive_cumsum,
                                      _seg_running_extreme)

__all__ = [
    "carry_bytes",
    "max_scan_apply",
    "max_scan_shard",
    "plus_scan_apply",
    "plus_scan_shard",
    "reduce_combine",
    "reduce_shard",
    "seg_extreme_apply",
    "seg_extreme_shard",
    "seg_plus_apply",
    "seg_plus_shard",
    "shard_checksum",
]


# --------------------------------------------------------------------- #
# Checksums: what a corrupted shard reply is detected against
# --------------------------------------------------------------------- #

def carry_bytes(carry) -> bytes:
    """A canonical byte encoding of a shard's carry payload.

    Covers every carry shape the protocol ships: ``None`` (no carry),
    a NumPy scalar, or a ``(value, has_head)`` segmented pair whose value
    may itself be ``None``.  Both sides — worker checksum and supervisor
    re-checksum — encode through this one function.
    """
    if carry is None:
        return b"\x00none"
    if isinstance(carry, tuple):
        value, has_head = carry
        return (b"\x01pair" + carry_bytes(value)
                + (b"\x01" if has_head else b"\x00"))
    return b"\x02" + np.asarray(carry).tobytes()


def shard_checksum(out_slice, carry) -> int:
    """CRC32 over a shard's written output bytes plus its carry payload."""
    payload = b"" if out_slice is None else np.ascontiguousarray(out_slice).tobytes()
    return zlib.crc32(payload + carry_bytes(carry))


# --------------------------------------------------------------------- #
# Native kernel selection: a shard's local scan may route through the
# two-phase NativeBackend (repro.backends.native), putting Numba's
# parallel kernels under every worker process.  ``REPRO_SHARD_NATIVE``
# overrides the default: ``1`` forces it on (pure fallback included, for
# tests and CI), ``0`` off, anything else selects native exactly when
# Numba is importable.  Integer/bool shards stay bit-identical either
# way; local max scans are exact for floats too, so they also qualify.
# --------------------------------------------------------------------- #

_ENV_SHARD_NATIVE = "REPRO_SHARD_NATIVE"
#: smallest shard worth the two-phase schedule (and any JIT warm-up)
_NATIVE_SHARD_MIN = 65536
_native_cache: dict = {}


def _shard_native():
    """The (cached per mode) NativeBackend shard scans route through, or
    ``None`` when numpy expressions should run instead."""
    mode = os.environ.get(_ENV_SHARD_NATIVE, "auto")
    if mode not in _native_cache:
        from ..backends.native import HAVE_NUMBA, NativeBackend

        enabled = mode == "1" or (mode != "0" and HAVE_NUMBA)
        _native_cache[mode] = NativeBackend() if enabled else None
    return _native_cache[mode]


# --------------------------------------------------------------------- #
# +-scan
# --------------------------------------------------------------------- #

def plus_scan_shard(values: np.ndarray):
    """Local exclusive ``+``-scan of one shard; carry is the shard sum."""
    native = _shard_native()
    if (native is not None and len(values) >= _NATIVE_SHARD_MIN
            and values.dtype.kind in "iu"):
        # integer sums are associative mod 2**width: the two-phase result
        # is bit-identical to the cumsum below (floats keep the serial
        # path so solo float requests never re-associate locally)
        out = native.plus_scan(values)
        with np.errstate(over="ignore"):
            carry = values.sum(dtype=values.dtype)
        return out, carry
    out = np.empty_like(values)
    with np.errstate(over="ignore"):  # modular carries wrap by design
        if len(values):
            out[0] = 0
            np.cumsum(values[:-1], out=out[1:])
        carry = values.sum(dtype=values.dtype)
    return out, carry


def plus_scan_apply(out_slice: np.ndarray, carry) -> None:
    """Fold the incoming running sum into a shard's local scan."""
    with np.errstate(over="ignore"):
        out_slice += carry


def plus_carry_combine(dtype):
    """The ``+``-carry monoid: addition wrapping in the vector's dtype."""
    def combine(a, b):
        with np.errstate(over="ignore"):
            return np.add(np.asarray(a, dtype=dtype),
                          np.asarray(b, dtype=dtype))[()]
    return combine


# --------------------------------------------------------------------- #
# max-scan
# --------------------------------------------------------------------- #

def max_scan_shard(values: np.ndarray, identity):
    """Local exclusive max-scan clamped to ``identity``; carry is the
    shard max folded with ``identity`` (so the carry chain starts at the
    operator's identity exactly like the blocked backend's)."""
    ident = np.asarray(identity, dtype=values.dtype)[()]
    native = _shard_native()
    if native is not None and len(values) >= _NATIVE_SHARD_MIN:
        # max is exactly associative (NaN absorbs either way): the
        # two-phase local scan is bit-identical for every dtype
        out = native.max_scan(values, ident)
        carry = np.maximum(ident, values.max()) if len(values) else ident
        return out, carry
    out = np.empty_like(values)
    if len(values):
        out[0] = ident
        np.maximum.accumulate(values[:-1], out=out[1:])
        np.maximum(out[1:], ident, out=out[1:])
    # np.maximum, not Python max: the carry must propagate NaN exactly as
    # the within-shard np.maximum.accumulate does
    carry = np.maximum(ident, values.max()) if len(values) else ident
    return out, carry


def max_scan_apply(out_slice: np.ndarray, carry) -> None:
    np.maximum(out_slice, carry, out=out_slice)


def max_carry_combine():
    return lambda a, b: np.maximum(a, b)


# --------------------------------------------------------------------- #
# segmented +-scan
# --------------------------------------------------------------------- #

def seg_plus_shard(values: np.ndarray, seg_flags: np.ndarray):
    """Local segmented exclusive ``+``-scan assuming a zero incoming
    carry; the carry-out pair is ``(sum since the shard's last segment
    head — or the whole shard when it contains no head, has_head)``."""
    out = np.empty_like(values)
    with np.errstate(over="ignore"):
        ex = _exclusive_cumsum(values)
        local = np.cumsum(seg_flags)  # 0 on the run continuing the open segment
        heads = np.flatnonzero(seg_flags)
        offsets = np.empty(len(heads) + 1, dtype=values.dtype)
        offsets[0] = 0  # the leading run's carry arrives in the apply pass
        offsets[1:] = ex[heads]
        out[:] = ex - offsets[local]
        if len(heads):
            carry = (values[heads[-1]:].sum(dtype=values.dtype), True)
        else:
            carry = (values.sum(dtype=values.dtype), False)
    return out, carry


def seg_plus_apply(out_slice: np.ndarray, flags_slice: np.ndarray,
                   carry_value) -> None:
    """Add the incoming open-segment sum to the shard's leading run (the
    elements before its first segment head)."""
    heads = np.flatnonzero(flags_slice)
    run = int(heads[0]) if len(heads) else len(flags_slice)
    with np.errstate(over="ignore"):
        out_slice[:run] += carry_value


def seg_plus_carry_combine(dtype):
    """The segmented-sum carry monoid over ``(value, has_head)`` pairs."""
    add = plus_carry_combine(dtype)

    def combine(a, b):  # a precedes b in shard order
        if b[1]:
            return b
        return (add(a[0], b[0]), a[1])
    return combine


# --------------------------------------------------------------------- #
# segmented extreme scans
# --------------------------------------------------------------------- #

def seg_extreme_shard(values: np.ndarray, seg_flags: np.ndarray, identity,
                      *, is_max: bool):
    """Local segmented exclusive extreme scan; carry-out pair is
    ``(extreme since the shard's last head, has_head)``."""
    sfc = seg_flags
    if not sfc[0]:
        # _seg_running_extreme needs a head at position 0; opening the
        # shard's leading run as its own segment shifts every relative
        # segment id by one without moving any boundary
        sfc = sfc.copy()
        sfc[0] = True
    out = _seg_running_extreme(values, sfc, identity, is_max=is_max)
    # the min carry must order NaN as a largest value, like the in-shard
    # rank encoding (np.min would propagate it and diverge at boundaries)
    red = np.max if is_max else np.fmin.reduce
    heads = np.flatnonzero(seg_flags)
    if len(heads):
        carry = (red(values[heads[-1]:]), True)
    else:
        carry = (red(values), False)
    return out, carry


def seg_extreme_apply(out_slice: np.ndarray, flags_slice: np.ndarray,
                      carry_value, *, is_max: bool) -> None:
    """Fold the incoming open-segment extreme into the shard's leading
    run.  The run's first element has no local prefix at all, so it takes
    the carry alone (the identity fill must not clamp real values)."""
    if carry_value is None or flags_slice[0]:
        return
    combine = np.maximum if is_max else np.fmin
    heads = np.flatnonzero(flags_slice)
    run = int(heads[0]) if len(heads) else len(flags_slice)
    combine(out_slice[:run], carry_value, out=out_slice[:run])
    out_slice[0] = carry_value


def seg_extreme_carry_combine(is_max: bool):
    """Carry monoid over ``(value | None, has_head)`` pairs; ``None``
    marks "nothing scanned yet" (the exchange identity)."""
    combine_val = np.maximum if is_max else np.fmin

    def combine(a, b):  # a precedes b
        if b[1]:
            return b
        value = b[0] if a[0] is None else combine_val(a[0], b[0])
        return (value, a[1])
    return combine


# --------------------------------------------------------------------- #
# reduce
# --------------------------------------------------------------------- #

def reduce_shard(values: np.ndarray, op: str):
    """One shard's partial reduction (``sum``/``max``/``min``/``any``/``all``)."""
    return _REDUCERS[op](values)


def reduce_combine(partials, op: str):
    """Combine per-shard partials exactly as the blocked backend does:
    a second reduction over the array of partials."""
    return _REDUCERS[op](np.array(partials))
