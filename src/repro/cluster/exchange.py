"""Round-efficient exclusive carry exchange across shards.

After phase 1 every shard ``i`` holds a carry ``c_i`` (its local sum, max,
or segmented carry pair).  Phase 2 needs the *exclusive* prefix combination
``e_i = c_0 ⊕ … ⊕ c_{i-1}`` — exactly the ``MPI_Exscan`` collective whose
round complexity Träff's exclusive-prefix-sums paper drives down to the
⌈lg p⌉ lower bound (see PAPERS.md).  We run the exchange on the supervisor
over the already-collected carries, but keep Träff's *schedule*: a
distance-doubling sweep that finishes in ⌈lg p⌉ combining rounds rather
than the p−1 rounds of a serial fold, so the round count we charge to the
histogram (``cluster.carry_rounds``) is the one a real message-passing
machine would pay.

The doubling recurrence computes the *inclusive* prefix; the exclusive
result is read off by shifting through the identity, which is how Träff
derives Exscan from Scan without an extra communication round.  The
combine is any associative monoid — ``shardops`` supplies one per
distributed primitive (wrapping ``+``, NaN-propagating max/min, and the
segmented ``(value, has_head)`` pairs).
"""
from __future__ import annotations

import math
from typing import Callable, Sequence

__all__ = ["exclusive_exchange", "exchange_rounds"]


def exchange_rounds(shards: int) -> int:
    """Combining rounds of the doubling schedule: ⌈lg p⌉ (0 for p ≤ 1)."""
    return max(0, math.ceil(math.log2(shards))) if shards > 1 else 0


def exclusive_exchange(carries: Sequence, combine: Callable, identity):
    """Exclusive prefix combination of per-shard carries.

    Returns ``(exclusive, rounds)`` where ``exclusive[i]`` is the fold of
    every carry strictly left of shard ``i`` (``identity`` for shard 0)
    and ``rounds`` is the number of combining rounds the doubling schedule
    used.  ``combine(a, b)`` must treat ``a`` as preceding ``b``.
    """
    p = len(carries)
    if p == 0:
        return [], 0
    inclusive = list(carries)
    rounds = 0
    dist = 1
    while dist < p:
        # one Träff round: every rank i >= dist folds in rank i-dist's
        # prefix; ranks below dist are already complete
        inclusive = [
            inclusive[i] if i < dist
            else combine(inclusive[i - dist], inclusive[i])
            for i in range(p)
        ]
        rounds += 1
        dist <<= 1
    exclusive = [identity] + inclusive[:-1]
    return exclusive, rounds
