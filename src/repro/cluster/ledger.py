"""The cluster's fault ledger: every failure, retry, and degradation.

The distributed backend's promise is not "workers never fail" but "every
failure is accounted for and the result is still right".  The
:class:`ClusterLedger` is the accounting half of that promise, in the
mold of :class:`repro.machine.counters.FaultCounters`: plain integer
counters with a :meth:`reconciles` invariant that ties them together —
every classified failure must end in exactly one retry or one degraded
shard, so ``failures == retries + degraded_shards`` always holds after a
job completes.  Chaos tests assert these counts exactly; the ``cluster``
CLI prints :meth:`summary` as its ledger table.
"""
from __future__ import annotations

from dataclasses import dataclass, field, fields

__all__ = ["ClusterLedger"]


@dataclass
class ClusterLedger:
    """Counters for one :class:`~repro.cluster.pool.WorkerPool`'s lifetime."""

    # traffic
    ops: int = 0                  #: primitive executions routed to the backend
    ops_distributed: int = 0      #: ops actually sharded across workers
    ops_local: int = 0            #: ops computed in-process (below threshold or pool broken)
    shards: int = 0               #: shard dispatches, both phases, including retries

    # chaos injections (what the plan did)
    chaos_kills: int = 0
    chaos_hangs: int = 0
    chaos_corruptions: int = 0

    # failure classification (what the supervisor saw)
    timeouts: int = 0             #: shard replies past the op deadline
    crashes: int = 0              #: dead worker / broken pipe / error reply
    corrupt_replies: int = 0      #: checksum mismatches

    # recovery actions (what the supervisor did)
    retries: int = 0              #: shard re-dispatches after a failure
    respawns: int = 0             #: worker processes restarted
    degraded_shards: int = 0      #: shards computed host-side after retry exhaustion
    orphaned_shards: int = 0      #: shards moved host-side because no worker was live
    heartbeat_failures: int = 0   #: liveness pings that went unanswered
    dead_workers: int = 0         #: slots retired after repeated failures
    pool_degradations: int = 0    #: times the whole pool was declared broken

    @property
    def failures(self) -> int:
        """Total classified shard failures."""
        return self.timeouts + self.crashes + self.corrupt_replies

    def reconciles(self) -> bool:
        """The supervision invariant: every failure was answered by
        exactly one retry or one host-side degradation."""
        return self.failures == self.retries + self.degraded_shards

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, f.default)

    def summary(self) -> str:
        lines = [
            f"ops              {self.ops:8d}  (distributed {self.ops_distributed}, "
            f"local {self.ops_local})",
            f"shards           {self.shards:8d}",
            f"chaos injected   {self.chaos_kills + self.chaos_hangs + self.chaos_corruptions:8d}"
            f"  (kill {self.chaos_kills}, hang {self.chaos_hangs}, "
            f"corrupt {self.chaos_corruptions})",
            f"failures         {self.failures:8d}  (timeout {self.timeouts}, "
            f"crash {self.crashes}, corrupt {self.corrupt_replies})",
            f"retries          {self.retries:8d}",
            f"respawns         {self.respawns:8d}",
            f"degraded shards  {self.degraded_shards:8d}",
            f"orphaned shards  {self.orphaned_shards:8d}",
            f"heartbeat fails  {self.heartbeat_failures:8d}",
            f"dead workers     {self.dead_workers:8d}",
            f"pool degradations{self.pool_degradations:8d}",
            f"reconciles       {'yes' if self.reconciles() else 'NO'}",
        ]
        return "\n".join(lines)
