"""The execution-backend protocol: *how* primitives compute.

The paper's central claim is about a **cost model** — what a primitive
charges (one program step) is a property of the machine model, not of the
substrate that happens to execute it.  This module makes that separation
structural: a :class:`Backend` computes raw results on raw NumPy arrays and
knows nothing about machines, models, steps or faults; the
:class:`~repro.machine.Machine` owns the charging and routes every
computation through its single dispatch point
(:meth:`repro.machine.Machine.execute`), where fault injection also
attaches.  Swapping the backend changes how vectors are executed —
all-at-once NumPy, fixed-size chunks with carry propagation, or a
pure-Python reference loop — while every step count stays bit-identical,
because charges never flow through a backend.

Semantics contract (shared by every implementation; the differential suite
in ``tests/test_backends.py`` enforces it):

* every method returns a **fresh** array (or a view of an immutable input)
  and never mutates its operands;
* scans are **exclusive**: ``out[i]`` combines elements ``0 .. i-1`` and
  ``out[0]`` is the operator's identity;
* ``max_scan`` clamps every output to at least ``identity`` (the paper's
  unsigned-integer convention), while the *segmented* extreme scans place
  ``identity`` only at segment heads — exactly the semantics of
  :mod:`repro.core.scans` / :mod:`repro.core.segmented` before the
  backend split;
* segmented operations require ``seg_flags[0]`` to be ``True`` (validated
  upstream by :func:`repro.core.segmented.check_segment_flags`).
"""
from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, ClassVar

import numpy as np

__all__ = ["Backend", "OpEvent"]


@dataclass(frozen=True)
class OpEvent:
    """One executed primitive, as reported to backend observers.

    ``seconds`` is the op's wall-clock duration; ``out_bytes`` the size of
    the materialized result; ``temp_bytes`` the backend's estimate of its
    own peak working storage for the op (see :meth:`Backend.temp_bytes` —
    this is where the blocked backend's chunk-bounded temporaries become
    visible to a profiler).
    """

    op: str
    seconds: float
    out_bytes: int
    temp_bytes: int
    backend: str


def _result_bytes(out) -> int:
    """Bytes materialized by a primitive's result (0 for scalars)."""
    return int(out.nbytes) if isinstance(out, np.ndarray) else 0


class Backend(ABC):
    """Executes vector primitives on raw arrays; charges nothing."""

    #: registry name (``Machine(backend="<name>")`` / ``REPRO_BACKEND``)
    name: ClassVar[str] = "abstract"

    #: human-readable spec syntax shown by registry errors; empty means
    #: the bare name is the whole syntax (no arguments accepted)
    spec_syntax: ClassVar[str] = ""

    @classmethod
    def from_spec(cls, arg: str) -> "Backend":
        """Build an instance from the spec's argument part (the text after
        ``name:``).  The base implementation accepts no argument; backends
        with parameters (blocked chunk size, distributed worker count)
        override this to parse theirs."""
        if arg:
            raise ValueError(f"backend {cls.name!r} takes no {arg!r} argument")
        return cls()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"

    # ------------------------------------------------------------------ #
    # Observability (repro.observe): per-op timing / memory hooks
    # ------------------------------------------------------------------ #

    @property
    def observers(self) -> list:
        """Callables receiving an :class:`OpEvent` after every primitive
        run through :meth:`run`.  Lazily created so subclasses need no
        ``__init__`` cooperation; empty means zero per-op overhead."""
        try:
            return self._observers
        except AttributeError:
            self._observers: list = []
            return self._observers

    def run(self, op: str, *args, **kwargs):
        """Execute one primitive by name, notifying observers.

        This is the machine's entry point
        (:meth:`repro.machine.Machine.execute` delegates here).  With no
        observers attached it is a bare dispatch — results and timing are
        indistinguishable from calling the method directly — so
        instrumentation stays strictly opt-in.
        """
        fn = getattr(self, op)
        observers = getattr(self, "_observers", None)
        counter = self._ops_metric()
        if not observers:
            counter.inc()
            return fn(*args, **kwargs)
        t0 = time.perf_counter()
        out = fn(*args, **kwargs)
        seconds = time.perf_counter() - t0
        counter.inc()
        out_bytes = _result_bytes(out)
        event = OpEvent(op=op, seconds=seconds, out_bytes=out_bytes,
                        temp_bytes=self.temp_bytes(op, out_bytes),
                        backend=self.name)
        for observer in observers:
            observer(event)
        return out

    def _ops_metric(self):
        """Cached handle on this backend's ``backend.<name>.ops`` counter
        in the process-wide registry (:mod:`repro.observe.metrics`)."""
        try:
            return self._ops_counter
        except AttributeError:
            from ..observe.metrics import registry

            self._ops_counter = registry.counter(f"backend.{self.name}.ops")
            return self._ops_counter

    def temp_bytes(self, op: str, out_bytes: int) -> int:
        """Estimated peak working storage for one op, in bytes.

        The base estimate is whole-vector: a temporary the size of the
        result.  Backends whose execution strategy bounds temporaries
        differently (chunked, per-element) override this — it is the
        memory half of the per-op observability hook, deliberately an
        *estimate*: exact allocator truth needs ``tracemalloc``, which
        costs far too much to leave attached.

        ``fused_pipeline`` reports the executor's own accounting: every
        implementation records its peak live intermediate bytes while a
        plan runs (``_fused_temp``), which is how a profiler sees fusion's
        memory win per pipeline rather than a guess.
        """
        if op == "fused_pipeline":
            return int(getattr(self, "_fused_temp", out_bytes))
        return out_bytes

    # ------------------------------------------------------------------ #
    # Fused pipelines (lazy expression DAGs, repro.core.lazy)
    # ------------------------------------------------------------------ #

    def fused_pipeline(self, plan) -> np.ndarray:
        """Execute one :class:`~repro.backends.plan.FusedPlan`.

        The default implementation **replays** the plan through the
        backend's existing per-op methods — each elementwise step through
        :meth:`elementwise`, the terminal scan (if any) through
        :meth:`plus_scan` / :meth:`max_scan` — so every backend is
        conformant the moment it exists; backends with a fusion story
        (NumPy's chained ``out=`` evaluation, the blocked backend's
        per-chunk carry loop) override this for the memory win.  Like all
        backend methods it charges nothing: the machine computed the
        plan's logical charges before dispatching it.
        """
        env: list = []
        live = 0
        peak = 0
        for step in plan.steps:
            args = [plan.resolve(ref, env) for ref in step.args]
            out = self.elementwise(step.as_callable(), *args)
            env.append(out)
            live += out.nbytes
            peak = max(peak, live)
        out = env[-1]
        if plan.terminal is not None:
            out = getattr(self, plan.terminal)(out, *plan.terminal_args)
            peak = max(peak, live + out.nbytes)
        # every intermediate is materialized whole: report their true
        # footprint (minus the result itself, which is out_bytes)
        self._fused_temp = max(0, peak - out.nbytes)
        return out

    # ------------------------------------------------------------------ #
    # Elementwise
    # ------------------------------------------------------------------ #

    @abstractmethod
    def elementwise(self, fn: Callable, *operands) -> np.ndarray:
        """Apply a vectorized elementwise function.

        ``operands`` mix 1-D arrays of one common length with scalar
        constants (immediates held in the instruction word); ``fn`` is a
        NumPy ufunc or a composition of ufuncs with no cross-element data
        flow, so a backend may evaluate it on any partition of the index
        space.
        """

    @abstractmethod
    def adjacent_ne(self, values: np.ndarray) -> np.ndarray:
        """``out[i] = values[i] != values[i-1]`` with ``out[0] = True``
        (one unit shift plus one compare — the neighbor-change idiom)."""

    # ------------------------------------------------------------------ #
    # The two primitive scans
    # ------------------------------------------------------------------ #

    @abstractmethod
    def plus_scan(self, values: np.ndarray) -> np.ndarray:
        """Exclusive ``+-scan``; ``out[0] = 0``."""

    @abstractmethod
    def max_scan(self, values: np.ndarray, identity) -> np.ndarray:
        """Exclusive ``max-scan``; every output is at least ``identity``."""

    # ------------------------------------------------------------------ #
    # Communication
    # ------------------------------------------------------------------ #

    @abstractmethod
    def permute(self, values: np.ndarray, index: np.ndarray, length: int,
                default) -> np.ndarray:
        """Exclusive scatter: ``out[index[i]] = values[i]``; unwritten
        cells hold ``default``.  Indices are pre-validated unique."""

    @abstractmethod
    def gather(self, values: np.ndarray, index: np.ndarray) -> np.ndarray:
        """Parallel read: ``out[i] = values[index[i]]``."""

    @abstractmethod
    def combine_write(self, values: np.ndarray, index: np.ndarray,
                      length: int, op: str, default) -> np.ndarray:
        """Scatter with colliding destinations combined by ``op``
        (``"min"``, ``"max"``, ``"sum"`` or ``"any"`` = last writer wins);
        untouched cells hold ``default``."""

    @abstractmethod
    def pack(self, values: np.ndarray, flags: np.ndarray,
             index: np.ndarray, count: int) -> np.ndarray:
        """Write each flagged element to ``out[index[i]]`` in a fresh
        ``count``-element vector (``index`` = ``enumerate(flags)``)."""

    @abstractmethod
    def shift(self, values: np.ndarray, k: int, fill) -> np.ndarray:
        """Shift ``k`` places toward higher indices (``k < 0`` lower);
        vacated cells hold ``fill``."""

    @abstractmethod
    def reverse(self, values: np.ndarray) -> np.ndarray:
        """The vector in reverse processor order."""

    # ------------------------------------------------------------------ #
    # Broadcast / reduce
    # ------------------------------------------------------------------ #

    @abstractmethod
    def full(self, length: int, value, dtype) -> np.ndarray:
        """``value`` broadcast to every one of ``length`` cells."""

    @abstractmethod
    def reduce(self, values: np.ndarray, op: str):
        """All elements combined to one scalar; ``op`` is ``"sum"``,
        ``"max"``, ``"min"``, ``"any"`` or ``"all"``.  ``values`` is
        non-empty (callers special-case the empty reduction's identity)."""

    # ------------------------------------------------------------------ #
    # Segmented operations (Section 2.3 / 3.4)
    # ------------------------------------------------------------------ #

    @abstractmethod
    def segment_ids(self, seg_flags: np.ndarray) -> np.ndarray:
        """0-based segment number of each element (int64)."""

    @abstractmethod
    def seg_plus_scan(self, values: np.ndarray,
                      seg_flags: np.ndarray) -> np.ndarray:
        """Exclusive ``+-scan`` restarting at every segment head."""

    @abstractmethod
    def seg_extreme_scan(self, values: np.ndarray, seg_flags: np.ndarray,
                         identity, *, is_max: bool) -> np.ndarray:
        """Exclusive per-segment running max (or min); segment heads
        receive ``identity``."""

    @abstractmethod
    def seg_copy(self, values: np.ndarray,
                 seg_flags: np.ndarray) -> np.ndarray:
        """Each segment's first element copied across its segment."""

    @abstractmethod
    def seg_back_copy(self, values: np.ndarray,
                      seg_flags: np.ndarray) -> np.ndarray:
        """Each segment's last element copied across its segment."""

    @abstractmethod
    def seg_distribute(self, values: np.ndarray, seg_flags: np.ndarray,
                       op: str) -> np.ndarray:
        """Per-segment reduction delivered to every element of the
        segment; ``op`` is ``"sum"``, ``"max"``, ``"min"``, ``"or"`` or
        ``"and"``."""
