"""The native backend: two-phase Blelloch scans over preallocated buffers.

The paper's work-efficient circuit (Section 1.3) computes a scan in two
sweeps over a balanced tree; on a multicore CPU the tree degenerates into
the classic block decomposition — the same schedule GPU scan kernels
(``blellochScan`` et al.) and LightScan use to saturate memory bandwidth:

* **upsweep** — each block of ``block`` elements is reduced independently
  (in parallel) to one partial: the block sum, block extreme, or, for the
  segmented variants, the paper's Section 4 *flag-carrying operator* pair
  ``(value since the block's last segment head, has_head)``;
* a tiny **host-side scan of the partials** turns them into per-block
  carry-ins (this is the top of the tree: ``n / block`` elements);
* **downsweep** — each block independently materializes its slice of the
  exclusive scan from its carry-in, again in parallel.

Both sweeps are expressed once, as plain-Python kernels over preallocated
buffers (``_*_py`` below), and compiled with Numba's
``@njit(parallel=True, cache=True)`` when Numba is importable.  Without
Numba the backend **falls back gracefully** instead of dying: small
vectors run the same kernels as ordinary Python (keeping the exact kernel
arithmetic on the fuzzer's differential surface), and large vectors run a
vectorized per-block schedule that mirrors :class:`BlockedBackend`'s
proven chunk math — same two phases, NumPy expressions instead of
compiled loops.  ``REPRO_NATIVE_PURE=1`` forces the fallback even when
Numba is present (the CI leg that proves it).

Conformance: integer and boolean results are bit-identical to every
other backend (modular addition and max/min are associative); float
``+``-scans may re-associate across blocks exactly as the blocked and
distributed engines' carries do (the verifier's documented additive
tolerance); ``max``-family scans are exact because ``np.maximum`` and the
kernels' ``v > acc or v != v`` comparison both implement the same
NaN-absorbing total order.  The segmented *min* kernels order NaN as a
largest value (``np.fmin`` semantics) — the same documented rank-encoding
convention as the numpy engine, see ``docs/verification.md``.

Everything else — communication, broadcast, the table-driven segmented
ops — inherits :class:`NumPyBackend` unchanged: the paper's argument is
about the scans, and that is where the parallel schedule pays.

Selection: ``Machine(backend="native")``, ``native:<threads>``,
``native:<threads>:<block>`` (``threads=0`` means Numba's default), or
``REPRO_BACKEND=native``.  Observability: ``backend.native.ops`` counts
primitives like every backend; ``native.kernel_launches`` counts compiled
two-phase executions, ``native.fallback_ops`` the pure-path ones, and the
``native.threads`` gauge reports the configured thread count.
"""
from __future__ import annotations

import os

import numpy as np

from .numpy_backend import NumPyBackend, _exclusive_cumsum, _seg_running_extreme

__all__ = ["NativeBackend", "HAVE_NUMBA"]

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba
    from numba import njit as _njit, prange

    HAVE_NUMBA = True
except ImportError:
    HAVE_NUMBA = False
    _numba = None
    prange = range

    def _njit(*args, **kwargs):
        """No-op decorator: kernels stay callable as plain Python."""
        if args and callable(args[0]) and not kwargs:
            return args[0]

        def wrap(fn):
            return fn
        return wrap

#: default elements per block (a few hundred KB of int64 per temporary,
#: matching the blocked backend's chunk)
DEFAULT_BLOCK = 65536

#: largest vector the pure fallback runs through the plain-Python kernels
#: (beyond this it switches to the vectorized per-block schedule)
_PY_KERNEL_MAX = 2048

_ENV_PURE = "REPRO_NATIVE_PURE"


def _nblocks(n: int, block: int) -> int:
    return (n + block - 1) // block


# --------------------------------------------------------------------- #
# Kernels.  One definition each, written in the subset of Python that
# Numba compiles; the ``_K_*`` names below are the (maybe-)jitted forms.
# All of them take preallocated output buffers and never allocate.
# --------------------------------------------------------------------- #

def _plus_upsweep_py(values, sums, block, zero):
    nb = sums.shape[0]
    for b in prange(nb):
        s = b * block
        e = min(s + block, values.shape[0])
        acc = zero
        for i in range(s, e):
            acc = acc + values[i]
        sums[b] = acc


def _plus_downsweep_py(values, out, offsets, block):
    nb = offsets.shape[0]
    for b in prange(nb):
        s = b * block
        e = min(s + block, values.shape[0])
        acc = offsets[b]
        for i in range(s, e):
            out[i] = acc
            acc = acc + values[i]


def _max_upsweep_py(values, sums, block):
    nb = sums.shape[0]
    for b in prange(nb):
        s = b * block
        e = min(s + block, values.shape[0])
        acc = values[s]
        for i in range(s + 1, e):
            v = values[i]
            if v > acc or v != v:  # NaN absorbs, like np.maximum
                acc = v
        sums[b] = acc


def _max_downsweep_py(values, out, offsets, block):
    nb = offsets.shape[0]
    for b in prange(nb):
        s = b * block
        e = min(s + block, values.shape[0])
        acc = offsets[b]
        for i in range(s, e):
            out[i] = acc
            v = values[i]
            if v > acc or v != v:
                acc = v


def _seg_plus_upsweep_py(values, flags, sums, has, block, zero):
    nb = sums.shape[0]
    for b in prange(nb):
        s = b * block
        e = min(s + block, values.shape[0])
        acc = zero
        seen = False
        for i in range(s, e):
            if flags[i]:
                acc = zero
                seen = True
            acc = acc + values[i]
        sums[b] = acc
        has[b] = seen


def _seg_plus_downsweep_py(values, flags, out, carries, block, zero):
    nb = carries.shape[0]
    for b in prange(nb):
        s = b * block
        e = min(s + block, values.shape[0])
        acc = carries[b]
        for i in range(s, e):
            if flags[i]:
                acc = zero
            out[i] = acc
            acc = acc + values[i]


def _seg_ext_upsweep_py(values, flags, exts, has, block, is_max):
    nb = exts.shape[0]
    for b in prange(nb):
        s = b * block
        e = min(s + block, values.shape[0])
        acc = values[s]
        seen = flags[s]
        for i in range(s + 1, e):
            v = values[i]
            if flags[i]:
                acc = v
                seen = True
            elif is_max:
                if v > acc or v != v:
                    acc = v
            else:
                # NaN orders as a largest value: it never wins a min
                # unless it is all the segment has seen
                if v < acc or acc != acc:
                    acc = v
        exts[b] = acc
        has[b] = seen


def _seg_ext_downsweep_py(values, flags, out, carries, have, block, ident,
                          is_max):
    nb = carries.shape[0]
    for b in prange(nb):
        s = b * block
        e = min(s + block, values.shape[0])
        acc = carries[b]
        fresh = not have[b]
        for i in range(s, e):
            v = values[i]
            if flags[i]:
                out[i] = ident
                acc = v
                fresh = False
            else:
                out[i] = ident if fresh else acc
                if fresh:
                    acc = v
                    fresh = False
                elif is_max:
                    if v > acc or v != v:
                        acc = v
                else:
                    if v < acc or acc != acc:
                        acc = v


_JIT = dict(parallel=True, cache=True, nogil=True)
_K_PLUS_UP = _njit(**_JIT)(_plus_upsweep_py)
_K_PLUS_DOWN = _njit(**_JIT)(_plus_downsweep_py)
_K_MAX_UP = _njit(**_JIT)(_max_upsweep_py)
_K_MAX_DOWN = _njit(**_JIT)(_max_downsweep_py)
_K_SEG_PLUS_UP = _njit(**_JIT)(_seg_plus_upsweep_py)
_K_SEG_PLUS_DOWN = _njit(**_JIT)(_seg_plus_downsweep_py)
_K_SEG_EXT_UP = _njit(**_JIT)(_seg_ext_upsweep_py)
_K_SEG_EXT_DOWN = _njit(**_JIT)(_seg_ext_downsweep_py)


class NativeBackend(NumPyBackend):
    """Two-phase block-parallel scans; everything else rides NumPy."""

    name = "native"
    spec_syntax = "native[:<threads>[:<block>]]"

    @classmethod
    def from_spec(cls, arg: str) -> "NativeBackend":
        if not arg:
            return cls()
        parts = arg.split(":")
        if len(parts) > 2:
            raise ValueError(
                f"backend 'native' takes at most two arguments "
                f"({cls.spec_syntax}), got {arg!r}")
        try:
            numbers = [int(p) for p in parts]
        except ValueError:
            raise ValueError(
                f"backend 'native' takes integer arguments "
                f"({cls.spec_syntax}), got {arg!r}") from None
        kwargs = {"threads": numbers[0]}
        if len(numbers) == 2:
            kwargs["block"] = numbers[1]
        return cls(**kwargs)

    def __init__(self, threads: int = 0, block: int = DEFAULT_BLOCK,
                 force_pure: bool | None = None) -> None:
        if threads < 0:
            raise ValueError(f"threads must be >= 0 (0 = auto), got {threads}")
        if block < 1:
            raise ValueError(f"block size must be >= 1, got {block}")
        self.threads = int(threads)
        self.block = int(block)
        if force_pure is None:
            force_pure = os.environ.get(_ENV_PURE, "") not in ("", "0")
        #: whether the compiled kernels are in play (vs the pure fallback)
        self.compiled = HAVE_NUMBA and not force_pure
        if self.compiled and self.threads:
            _numba.set_num_threads(
                min(self.threads, _numba.config.NUMBA_NUM_THREADS))
        from ..observe.metrics import registry

        self._launches = registry.counter("native.kernel_launches")
        self._fallbacks = registry.counter("native.fallback_ops")
        registry.gauge("native.threads").set(
            self.threads if self.threads else
            (_numba.get_num_threads() if self.compiled else 1))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "numba" if self.compiled else "pure"
        return (f"NativeBackend(threads={self.threads}, block={self.block}, "
                f"mode={mode})")

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #

    def _engaged(self, values: np.ndarray) -> bool:
        """Whether the two-phase schedule runs (vs inheriting NumPy).

        Booleans delegate: NumPy's accumulate semantics on bool lanes are
        the contract, and the machine widens bools before ``plus_scan``
        anyway.  Length < 2 is a base case with nothing to sweep.
        """
        return len(values) >= 2 and values.dtype.kind != "b"

    def _use_py_kernels(self, n: int) -> bool:
        return self.compiled or n <= _PY_KERNEL_MAX

    def _count(self, n: int) -> None:
        (self._launches if self.compiled else self._fallbacks).inc()

    def temp_bytes(self, op: str, out_bytes: int) -> int:
        """Two-phase working storage: the per-block partials (one word per
        block) plus, on the pure path, chunk-bounded NumPy temporaries —
        the rank-encoding segmented extreme holds about three of them."""
        if op == "fused_pipeline":
            return int(getattr(self, "_fused_temp", out_bytes))
        per_block = min(out_bytes, self.block * 8)
        partials = 2 * max(1, out_bytes // max(1, self.block * 8)) * 8
        if op == "seg_extreme_scan" and not self.compiled:
            per_block *= 3
        return per_block + partials

    # ------------------------------------------------------------------ #
    # Unsegmented scans
    # ------------------------------------------------------------------ #

    def plus_scan(self, values: np.ndarray) -> np.ndarray:
        if not self._engaged(values):
            return super().plus_scan(values)
        n, block = len(values), self.block
        nb = _nblocks(n, block)
        dt = values.dtype
        sums = np.empty(nb, dtype=dt)
        out = np.empty_like(values)
        zero = dt.type(0)
        self._count(n)
        with np.errstate(over="ignore"):  # modular carries wrap by design
            if self._use_py_kernels(n):
                up, down = ((_K_PLUS_UP, _K_PLUS_DOWN) if self.compiled
                            else (_plus_upsweep_py, _plus_downsweep_py))
                up(values, sums, block, zero)
                offsets = self._plus_carries(sums, zero)
                down(values, out, offsets, block)
            else:
                for b in range(nb):
                    s, e = b * block, min(b * block + block, n)
                    sums[b] = values[s:e].sum(dtype=dt)
                offsets = self._plus_carries(sums, zero)
                for b in range(nb):
                    s, e = b * block, min(b * block + block, n)
                    out[s] = offsets[b]
                    np.cumsum(values[s:e - 1], out=out[s + 1:e])
                    out[s + 1:e] += offsets[b]
        return out

    def max_scan(self, values: np.ndarray, identity) -> np.ndarray:
        if not self._engaged(values):
            return super().max_scan(values, identity)
        n, block = len(values), self.block
        nb = _nblocks(n, block)
        dt = values.dtype
        exts = np.empty(nb, dtype=dt)
        out = np.empty_like(values)
        ident = np.asarray(identity, dtype=dt)[()]
        self._count(n)
        if self._use_py_kernels(n):
            up, down = ((_K_MAX_UP, _K_MAX_DOWN) if self.compiled
                        else (_max_upsweep_py, _max_downsweep_py))
            up(values, exts, block)
            offsets = self._max_carries(exts, ident)
            down(values, out, offsets, block)
        else:
            for b in range(nb):
                s, e = b * block, min(b * block + block, n)
                exts[b] = values[s:e].max()
            offsets = self._max_carries(exts, ident)
            for b in range(nb):
                s, e = b * block, min(b * block + block, n)
                out[s] = offsets[b]
                np.maximum.accumulate(values[s:e - 1], out=out[s + 1:e])
                np.maximum(out[s + 1:e], offsets[b], out=out[s + 1:e])
        return out

    def _plus_carries(self, sums: np.ndarray, zero) -> np.ndarray:
        """Exclusive +-scan of the block partials (the top of the tree:
        ``n / block`` elements, sequential on the host)."""
        offsets = np.empty_like(sums)
        offsets[0] = zero
        if len(sums) > 1:
            np.cumsum(sums[:-1], out=offsets[1:])
        return offsets

    def _max_carries(self, exts: np.ndarray, ident) -> np.ndarray:
        offsets = np.empty_like(exts)
        offsets[0] = ident
        if len(exts) > 1:
            np.maximum.accumulate(exts[:-1], out=offsets[1:])
            np.maximum(offsets[1:], ident, out=offsets[1:])
        return offsets

    # ------------------------------------------------------------------ #
    # Segmented scans (the Section 4 flag-carrying operator, fused into
    # a single per-block pass on each sweep)
    # ------------------------------------------------------------------ #

    def seg_plus_scan(self, values: np.ndarray,
                      seg_flags: np.ndarray) -> np.ndarray:
        if not self._engaged(values):
            return super().seg_plus_scan(values, seg_flags)
        n, block = len(values), self.block
        nb = _nblocks(n, block)
        dt = values.dtype
        sums = np.empty(nb, dtype=dt)
        has = np.empty(nb, dtype=bool)
        out = np.empty_like(values)
        zero = dt.type(0)
        self._count(n)
        with np.errstate(over="ignore"):
            if self._use_py_kernels(n):
                up, down = ((_K_SEG_PLUS_UP, _K_SEG_PLUS_DOWN)
                            if self.compiled
                            else (_seg_plus_upsweep_py, _seg_plus_downsweep_py))
                up(values, seg_flags, sums, has, block, zero)
                carries = self._seg_plus_carries(sums, has, zero)
                down(values, seg_flags, out, carries, block, zero)
            else:
                for b in range(nb):
                    s, e = b * block, min(b * block + block, n)
                    seg, sfc = values[s:e], seg_flags[s:e]
                    heads = np.flatnonzero(sfc)
                    if len(heads):
                        sums[b] = seg[heads[-1]:].sum(dtype=dt)
                        has[b] = True
                    else:
                        sums[b] = seg.sum(dtype=dt)
                        has[b] = False
                carries = self._seg_plus_carries(sums, has, zero)
                for b in range(nb):
                    s, e = b * block, min(b * block + block, n)
                    seg, sfc = values[s:e], seg_flags[s:e]
                    # the blocked backend's subtract-offset chunk math,
                    # with the carry-in folded into the continuing run
                    ex = _exclusive_cumsum(seg)
                    local = np.cumsum(sfc)
                    heads = np.flatnonzero(sfc)
                    offs = np.empty(len(heads) + 1, dtype=dt)
                    offs[0] = zero - carries[b]
                    offs[1:] = ex[heads]
                    out[s:e] = ex - offs[local]
        return out

    def _seg_plus_carries(self, sums, has, zero) -> np.ndarray:
        """Exclusive scan of the ``(sum since last head, has_head)`` pairs:
        a head anywhere in a block resets the running open-segment sum."""
        carries = np.empty_like(sums)
        carry = zero
        for b in range(len(sums)):
            carries[b] = carry
            carry = sums[b] if has[b] else np.add(carry, sums[b])
        return carries

    def seg_extreme_scan(self, values: np.ndarray, seg_flags: np.ndarray,
                         identity, *, is_max: bool) -> np.ndarray:
        if not self._engaged(values):
            return super().seg_extreme_scan(values, seg_flags, identity,
                                            is_max=is_max)
        n, block = len(values), self.block
        nb = _nblocks(n, block)
        dt = values.dtype
        exts = np.empty(nb, dtype=dt)
        has = np.empty(nb, dtype=bool)
        out = np.empty_like(values)
        ident = np.asarray(identity, dtype=dt)[()]
        # NaN orders as a largest value (rank-encoding convention): max
        # propagates it, min passes it over — np.fmin, not np.minimum
        combine = np.maximum if is_max else np.fmin
        self._count(n)
        if self._use_py_kernels(n):
            up, down = ((_K_SEG_EXT_UP, _K_SEG_EXT_DOWN) if self.compiled
                        else (_seg_ext_upsweep_py, _seg_ext_downsweep_py))
            up(values, seg_flags, exts, has, block, is_max)
            carries, have = self._seg_ext_carries(exts, has, ident, combine)
            down(values, seg_flags, out, carries, have, block, ident, is_max)
            return out
        for b in range(nb):
            s, e = b * block, min(b * block + block, n)
            seg, sfc = values[s:e], seg_flags[s:e]
            heads = np.flatnonzero(sfc)
            tail = seg[heads[-1]:] if len(heads) else seg
            exts[b] = tail.max() if is_max else np.fmin.reduce(tail)
            has[b] = bool(len(heads))
        carries, have = self._seg_ext_carries(exts, has, ident, combine)
        for b in range(nb):
            s, e = b * block, min(b * block + block, n)
            seg, sfc = values[s:e], seg_flags[s:e]
            sfc_local = sfc
            if not sfc[0]:
                sfc_local = sfc.copy()
                sfc_local[0] = True
            local = _seg_running_extreme(seg, sfc_local, ident, is_max=is_max)
            if have[b] and not sfc[0]:
                # the leading run continues a segment from an earlier
                # block: fold in the carried extreme; its first element
                # has no in-block prefix and takes the carry alone
                run = int(np.argmax(sfc)) if sfc.any() else len(sfc)
                combine(local[:run], carries[b], out=local[:run])
                local[0] = carries[b]
            out[s:e] = local
        return out

    def _seg_ext_carries(self, exts, has, ident, combine):
        """Exclusive scan of the ``(extreme since last head, has_head)``
        pairs; ``have[b]`` is False only while no element has been seen
        (block 0, whose leading flag is a head by contract)."""
        carries = np.empty_like(exts)
        have = np.empty(len(exts), dtype=bool)
        cur, cur_have = ident, False
        for b in range(len(exts)):
            carries[b] = cur
            have[b] = cur_have
            if has[b] or not cur_have:
                cur = exts[b]
            else:
                cur = combine(cur, exts[b])
            cur_have = True
        return carries, have

    # ------------------------------------------------------------------ #
    # Fused pipelines: the elementwise chain evaluated block by block
    # into the scan's input buffer, then one two-phase sweep over it
    # ------------------------------------------------------------------ #

    def _eval_chunk(self, plan, s: int, e: int) -> np.ndarray:
        """The plan's elementwise chain on rows ``[s, e)`` alone; every
        intermediate is ``(e - s)``-sized (the blocked backend's chunked
        chain evaluation, reused as this backend's per-block one)."""
        env: list = []
        for step in plan.steps:
            args = []
            for tag, payload in step.args:
                if tag == "in":
                    args.append(plan.inputs[payload][s:e])
                elif tag == "step":
                    args.append(env[payload])
                else:
                    args.append(payload)
            env.append(step.as_callable()(*args))
        return env[-1]

    def fused_pipeline(self, plan) -> np.ndarray:
        """Fold the chain into the per-block schedule.

        The chain is evaluated one block at a time into the preallocated
        scan input (chunk-bounded chain temporaries, exactly like the
        blocked backend's fused carry loop), and the terminal scan then
        runs as the ordinary two-phase sweep over that buffer — so fused
        results are bit-identical to eager native execution, and a fused
        ``plus_scan(a*b + c)`` materializes one full-length buffer plus
        one block of chain intermediates.  Plans without a terminal scan
        use NumPy's pooled whole-vector evaluation (nothing to sweep).
        """
        n = plan.n
        if plan.terminal is None or n < 2:
            return super().fused_pipeline(plan)
        dtype = plan.root_dtype
        root = np.empty(n, dtype=dtype)
        per_block = min(n, self.block)
        for s in range(0, n, self.block):
            e = min(s + self.block, n)
            root[s:e] = self._eval_chunk(plan, s, e)
        out = getattr(self, plan.terminal)(root, *plan.terminal_args)
        # the chain's block-sized intermediates + the materialized scan
        # input + the per-block partials
        self._fused_temp = (len(plan.steps) * per_block
                            * max(1, dtype.itemsize)
                            + root.nbytes
                            + 2 * _nblocks(n, self.block)
                            * max(1, dtype.itemsize))
        return out
