"""The differential-testing backend: one element at a time, no vectorization.

Every primitive is executed with an explicit Python loop — the most
literal possible rendering of "one virtual processor per element" short of
the logic-level simulators in :mod:`repro.hardware`.  It is deliberately
slow and deliberately simple: each method is a few lines whose correctness
is obvious by inspection, which is what makes it a useful oracle for the
vectorized backends in the differential suite (``tests/test_backends.py``).

Dtype fidelity: elementwise functions are applied to length-1 *slices*
(not Python scalars), so NumPy's own promotion, casting and wraparound
rules apply per element and results stay bit-identical to the NumPy
backend for integer and boolean vectors.  Scans and reductions accumulate
in the array's dtype for the same reason.
"""
from __future__ import annotations

from typing import Callable

import numpy as np

from .base import Backend

__all__ = ["ReferenceBackend"]


class ReferenceBackend(Backend):
    """Pure-Python per-element execution; the differential-testing oracle."""

    name = "reference"

    def temp_bytes(self, op: str, out_bytes: int) -> int:
        """Per-element execution touches one element at a time; working
        storage is a couple of machine words whatever the vector length
        (the output buffer itself is reported separately as result
        bytes)."""
        return min(out_bytes, 16)

    # -------------------------- elementwise --------------------------- #

    def elementwise(self, fn: Callable, *operands) -> np.ndarray:
        n = None
        for op in operands:
            if isinstance(op, np.ndarray) and op.ndim == 1:
                n = len(op)
                break
        if n is None or n == 0:
            return fn(*operands)
        pieces = [fn(*[op[i:i + 1] if isinstance(op, np.ndarray)
                       and op.ndim == 1 else op for op in operands])
                  for i in range(n)]
        return np.concatenate(pieces)

    def adjacent_ne(self, values: np.ndarray) -> np.ndarray:
        out = np.empty(len(values), dtype=bool)
        for i in range(len(values)):
            out[i] = True if i == 0 else bool(values[i] != values[i - 1])
        return out

    # ----------------------------- scans ------------------------------ #

    def plus_scan(self, values: np.ndarray) -> np.ndarray:
        out = np.empty_like(values)
        acc = values.dtype.type(0)
        with np.errstate(over="ignore"):  # integer sums wrap by design
            for i in range(len(values)):
                out[i] = acc
                acc = acc + values[i]
        return out

    def max_scan(self, values: np.ndarray, identity) -> np.ndarray:
        out = np.empty_like(values)
        acc = np.asarray(identity, dtype=values.dtype)[()]
        for i in range(len(values)):
            out[i] = acc
            # np.maximum, not Python max: NaN must propagate exactly as
            # np.maximum.accumulate does on the vectorized backend
            acc = np.maximum(acc, values[i])
        return out

    # ------------------------- communication -------------------------- #

    def permute(self, values: np.ndarray, index: np.ndarray, length: int,
                default) -> np.ndarray:
        out = np.full(length, default, dtype=values.dtype)
        for i in range(len(values)):
            out[index[i]] = values[i]
        return out

    def gather(self, values: np.ndarray, index: np.ndarray) -> np.ndarray:
        out = np.empty(len(index), dtype=values.dtype)
        for i in range(len(index)):
            out[i] = values[index[i]]
        return out

    def combine_write(self, values: np.ndarray, index: np.ndarray,
                      length: int, op: str, default) -> np.ndarray:
        if op not in ("min", "max", "sum", "any"):
            raise ValueError(f"unknown combine op {op!r}")
        if op == "sum":
            # combining into an accumulator that starts at the additive
            # identity: untouched cells hold 0 regardless of `default`
            out = np.zeros(length, dtype=values.dtype)
            for i in range(len(values)):
                out[index[i]] = out[index[i]] + values[i]
            return out
        out = np.full(length, default, dtype=values.dtype)
        touched = np.zeros(length, dtype=bool)
        for i in range(len(values)):
            j = index[i]
            if not touched[j]:
                out[j] = values[i]
            elif op == "min":
                out[j] = np.minimum(out[j], values[i])
            elif op == "max":
                out[j] = np.maximum(out[j], values[i])
            else:  # "any": last writer wins
                out[j] = values[i]
            touched[j] = True
        return out

    def pack(self, values: np.ndarray, flags: np.ndarray,
             index: np.ndarray, count: int) -> np.ndarray:
        out = np.empty(count, dtype=values.dtype)
        for i in range(len(values)):
            if flags[i]:
                out[index[i]] = values[i]
        return out

    def shift(self, values: np.ndarray, k: int, fill) -> np.ndarray:
        n = len(values)
        out = np.full(n, fill, dtype=values.dtype)
        for i in range(n):
            if 0 <= i - k < n:
                out[i] = values[i - k]
        return out

    def reverse(self, values: np.ndarray) -> np.ndarray:
        out = np.empty_like(values)
        n = len(values)
        for i in range(n):
            out[i] = values[n - 1 - i]
        return out

    # ------------------------ broadcast / reduce ----------------------- #

    def full(self, length: int, value, dtype) -> np.ndarray:
        # pre-wrap the fill into the target dtype: np.full casts unsafely
        # (a promoted sum wraps back into a narrow lane), while NumPy 2
        # element assignment raises OverflowError on out-of-range scalars
        fill = np.asarray(value).astype(dtype, copy=False)[()]
        out = np.empty(length, dtype=dtype)
        for i in range(length):
            out[i] = fill
        return out

    def reduce(self, values: np.ndarray, op: str):
        if op == "any":
            acc = False
            for i in range(len(values)):
                acc = acc or bool(values[i])
            return np.bool_(acc)
        if op == "all":
            acc = True
            for i in range(len(values)):
                acc = acc and bool(values[i])
            return np.bool_(acc)
        if op == "sum":
            # Match np.sum's accumulator: flags count as integers (bool
            # addition would OR them) and small ints promote to the
            # platform int rather than wrapping in the input width.
            kind = values.dtype.kind
            if kind == "b":
                acc = np.int64(0)
            elif kind == "i" and values.dtype.itemsize < 8:
                acc = np.int64(0)
            elif kind == "u" and values.dtype.itemsize < 8:
                acc = np.uint64(0)
            else:
                acc = values.dtype.type(0)
            with np.errstate(over="ignore"):
                for i in range(len(values)):
                    acc = acc + values[i]
            return acc
        acc = values[0]
        for i in range(1, len(values)):
            if op == "max":
                acc = np.maximum(acc, values[i])  # NaN-propagating, like np.max
            elif op == "min":
                acc = np.minimum(acc, values[i])
            else:
                raise ValueError(f"unknown reduce op {op!r}")
        return acc

    # ---------------------------- segmented ---------------------------- #

    def segment_ids(self, seg_flags: np.ndarray) -> np.ndarray:
        out = np.empty(len(seg_flags), dtype=np.int64)
        sid = -1
        for i in range(len(seg_flags)):
            if seg_flags[i]:
                sid += 1
            out[i] = sid
        return out

    def seg_plus_scan(self, values: np.ndarray,
                      seg_flags: np.ndarray) -> np.ndarray:
        if len(values) == 0:
            return values.copy()
        out = np.empty_like(values)
        acc = values.dtype.type(0)
        with np.errstate(over="ignore"):
            for i in range(len(values)):
                if seg_flags[i]:
                    acc = values.dtype.type(0)
                out[i] = acc
                acc = acc + values[i]
        return out

    def seg_extreme_scan(self, values: np.ndarray, seg_flags: np.ndarray,
                         identity, *, is_max: bool) -> np.ndarray:
        out = np.empty_like(values)
        ident = np.asarray(identity, dtype=values.dtype)[()]
        acc, fresh = ident, True
        for i in range(len(values)):
            if seg_flags[i]:
                acc, fresh = ident, True
            out[i] = acc if not fresh else ident
            # NaN orders as a largest value (the rank-encoding convention
            # every backend shares): max absorbs it via np.maximum, min
            # passes it over via np.fmin — not the propagating np.minimum
            acc = values[i] if fresh else (
                np.maximum(acc, values[i]) if is_max
                else np.fmin(acc, values[i]))
            fresh = False
        return out

    def seg_copy(self, values: np.ndarray,
                 seg_flags: np.ndarray) -> np.ndarray:
        out = np.empty_like(values)
        head = values[0] if len(values) else None
        for i in range(len(values)):
            if seg_flags[i]:
                head = values[i]
            out[i] = head
        return out

    def seg_back_copy(self, values: np.ndarray,
                      seg_flags: np.ndarray) -> np.ndarray:
        out = np.empty_like(values)
        tail = None
        for i in range(len(values) - 1, -1, -1):
            if tail is None or (i + 1 < len(values) and seg_flags[i + 1]):
                tail = values[i]
            out[i] = tail
        return out

    def seg_distribute(self, values: np.ndarray, seg_flags: np.ndarray,
                       op: str) -> np.ndarray:
        red = {"sum": "sum", "max": "max", "min": "min",
               "or": "any", "and": "all"}[op]
        out = np.empty_like(values)
        start = 0
        for i in range(1, len(values) + 1):
            if i == len(values) or seg_flags[i]:
                # wrap the (possibly promoted) reduction back into the
                # lane dtype, as the vectorized backends' casts do
                r = np.asarray(self.reduce(values[start:i], red)).astype(
                    values.dtype, copy=False)[()]
                for j in range(start, i):
                    out[j] = r
                start = i
        return out
