"""The default backend: one vectorized NumPy expression per primitive.

This is the execution substrate the repository has always used, factored
out of :mod:`repro.core` verbatim — results and (since backends charge
nothing) step counts are bit-identical to the pre-backend code.
"""
from __future__ import annotations

from typing import Callable

import numpy as np

from .base import Backend

__all__ = ["NumPyBackend"]


def _seg_ids(sf: np.ndarray) -> np.ndarray:
    """0-based segment number of each element (inclusive +-scan of flags, -1)."""
    return np.cumsum(sf) - 1


def _exclusive_cumsum(values: np.ndarray) -> np.ndarray:
    """Exclusive prefix sums **in the input's dtype** (narrow ints wrap).

    ``np.concatenate(([0], cumsum))`` would be wrong here: ``np.cumsum``
    promotes unsigned inputs to uint64, concatenating that with the int64
    ``[0]`` promotes everything to float64, and a float -> unsigned cast of
    an out-of-range value is undefined behavior (it yields 0 on x86).
    Building the array in the cumsum's own dtype keeps every cast
    integer-to-integer, which wraps modulo ``2**width`` as documented.
    """
    cs = np.cumsum(values)
    ex = np.empty(len(values), dtype=cs.dtype)
    ex[0] = 0
    ex[1:] = cs[:-1]
    return ex.astype(values.dtype, copy=False)


def _seg_running_extreme(v: np.ndarray, sf: np.ndarray, identity, *,
                         is_max: bool) -> np.ndarray:
    """Exclusive per-segment running max (or min) via the Figure 16 method:
    encode (segment, rank-of-value), take one unsegmented running max,
    decode.  Works for any comparable dtype because ranks, not raw bits,
    carry the value."""
    n = len(v)
    if n == 0:
        return v.copy()
    order = np.argsort(v, kind="stable")
    if not is_max:
        order = order[::-1]  # higher rank now means smaller value
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.arange(n)
    s = _seg_ids(sf)
    code = s * n + rank
    run = np.empty(n, dtype=np.int64)
    run[0] = -1
    np.maximum.accumulate(code[:-1], out=run[1:])
    valid = (run >= 0) & (run // n == s)
    decoded_pos = order[np.clip(run % n, 0, n - 1)]
    out = np.where(valid, v[decoded_pos], np.asarray(identity, dtype=v.dtype))
    return out.astype(v.dtype, copy=False)


_REDUCERS = {"sum": np.sum, "max": np.max, "min": np.min,
             "any": np.any, "all": np.all}

_SEG_REDUCERS = {"sum": np.add, "max": np.maximum, "min": np.minimum,
                 "or": np.logical_or, "and": np.logical_and}


class NumPyBackend(Backend):
    """Whole-vector execution; every primitive is one NumPy expression."""

    name = "numpy"

    def temp_bytes(self, op: str, out_bytes: int) -> int:
        """Whole-vector temporaries: every NumPy expression materializes
        intermediates the size of the result (the base estimate), and the
        rank-encoding segmented extreme scan holds about three of them."""
        if op == "seg_extreme_scan":
            return 3 * out_bytes
        return super().temp_bytes(op, out_bytes)

    # ------------------------ fused pipelines -------------------------- #

    def fused_pipeline(self, plan) -> np.ndarray:
        """Chained ufunc evaluation over preallocated ``out=`` buffers.

        Each step writes into a buffer of its probed result dtype — for a
        ufunc via its own ``out=`` parameter, for ``where`` / ``cast`` via
        ``np.copyto`` — and a buffer whose step has no remaining consumers
        returns to a free pool keyed on ``(dtype, length)``.  A chain of k
        ops therefore peaks at its *live width* (usually 1–2 buffers),
        not k whole-vector temporaries, while every value stays
        bit-identical to eager evaluation because the ufunc, the operand
        order and the result dtype are exactly the eager ones.  Opaque
        ``custom`` steps allocate normally and the chain fuses around
        them.
        """
        steps = plan.steps
        # remaining-consumer counts per step; the root holds one extra
        # reference as the pipeline's output
        refs = [0] * len(steps)
        for step in steps:
            for tag, payload in step.args:
                if tag == "step":
                    refs[payload] += 1
        refs[-1] += 1
        pool: dict[tuple, list] = {}
        pooled: set[int] = set()
        env: list = []
        live = 0
        peak = 0

        def take(dtype) -> np.ndarray:
            nonlocal live, peak
            free = pool.get((dtype.str, plan.n))
            if free:
                return free.pop()
            buf = np.empty(plan.n, dtype=dtype)
            pooled.add(id(buf))
            live += buf.nbytes
            peak = max(peak, live)
            return buf

        def retire(step) -> None:
            # return operand buffers whose last consumer this step was
            for tag, payload in step.args:
                if tag == "step":
                    refs[payload] -= 1
                    if refs[payload] == 0 and id(env[payload]) in pooled:
                        dead = env[payload]
                        pool.setdefault((dead.dtype.str, plan.n),
                                        []).append(dead)

        for j, step in enumerate(steps):
            args = [plan.resolve(ref, env) for ref in step.args]
            if step.kind == "ufunc":
                # retire dying operands *before* taking the out buffer: an
                # elementwise ufunc may safely write over its own input
                # (np.add(a, 1, out=a)), so a buffer read for the last
                # time here can be this step's destination — the chain's
                # common a-op-b-op-c spine then runs in one buffer
                retire(step)
                buf = take(step.dtype)
                step.fn(*args, out=buf)
                env.append(buf)
                continue
            if step.kind == "where":
                # the two-pass copyto would clobber a condition/operand it
                # aliased, so the out buffer is taken before retiring
                cond, a, b = args
                buf = take(step.dtype)
                np.copyto(buf, b)
                np.copyto(buf, a, where=cond)
            elif step.kind == "cast":
                buf = take(step.dtype)
                np.copyto(buf, args[0], casting="unsafe")
            else:  # custom: opaque callable, fresh allocation (a custom
                # fn may return a view of an input, so it never re-enters
                # the write pool)
                buf = step.fn(*args)
                live += buf.nbytes
                peak = max(peak, live)
            retire(step)
            env.append(buf)
        out = env[-1]
        if plan.terminal is not None:
            out = getattr(self, plan.terminal)(out, *plan.terminal_args)
            peak = max(peak, live + out.nbytes)
        self._fused_temp = max(0, peak - out.nbytes)
        return out

    # -------------------------- elementwise --------------------------- #

    def elementwise(self, fn: Callable, *operands) -> np.ndarray:
        return fn(*operands)

    def adjacent_ne(self, values: np.ndarray) -> np.ndarray:
        changed = np.empty(len(values), dtype=bool)
        if len(values):
            changed[0] = True
            changed[1:] = values[1:] != values[:-1]
        return changed

    # ----------------------------- scans ------------------------------ #

    def plus_scan(self, values: np.ndarray) -> np.ndarray:
        out = np.empty_like(values)
        if len(values):
            out[0] = 0
            np.cumsum(values[:-1], out=out[1:])
        return out

    def max_scan(self, values: np.ndarray, identity) -> np.ndarray:
        out = np.empty_like(values)
        if len(values):
            out[0] = identity
            np.maximum.accumulate(values[:-1], out=out[1:])
            np.maximum(out[1:], identity, out=out[1:])
        return out

    # ------------------------- communication -------------------------- #

    def permute(self, values: np.ndarray, index: np.ndarray, length: int,
                default) -> np.ndarray:
        out = np.full(length, default, dtype=values.dtype)
        out[index] = values
        return out

    def gather(self, values: np.ndarray, index: np.ndarray) -> np.ndarray:
        return values[index]

    def combine_write(self, values: np.ndarray, index: np.ndarray,
                      length: int, op: str, default) -> np.ndarray:
        out = np.full(length, default, dtype=values.dtype)
        if op == "min":
            # initialize to +inf-like, reduce, restore default where untouched
            touched = np.zeros(length, dtype=bool)
            touched[index] = True
            hi = (np.iinfo(values.dtype).max
                  if np.issubdtype(values.dtype, np.integer) else np.inf)
            tmp = np.full(length, hi, dtype=values.dtype)
            np.minimum.at(tmp, index, values)
            out = np.where(touched, tmp, np.asarray(default, dtype=values.dtype))
        elif op == "max":
            touched = np.zeros(length, dtype=bool)
            touched[index] = True
            lo = (np.iinfo(values.dtype).min
                  if np.issubdtype(values.dtype, np.integer) else -np.inf)
            tmp = np.full(length, lo, dtype=values.dtype)
            np.maximum.at(tmp, index, values)
            out = np.where(touched, tmp, np.asarray(default, dtype=values.dtype))
        elif op == "sum":
            tmp = np.zeros(length, dtype=values.dtype)
            np.add.at(tmp, index, values)
            out = tmp
        elif op == "any":
            out[index] = values  # last writer wins: an arbitrary-winner write
        else:
            raise ValueError(f"unknown combine op {op!r}")
        return out

    def pack(self, values: np.ndarray, flags: np.ndarray,
             index: np.ndarray, count: int) -> np.ndarray:
        out = np.empty(count, dtype=values.dtype)
        out[index[flags]] = values[flags]
        return out

    def shift(self, values: np.ndarray, k: int, fill) -> np.ndarray:
        n = len(values)
        out = np.full(n, fill, dtype=values.dtype)
        if k >= 0:
            if k < n:
                out[k:] = values[: n - k]
        else:
            if -k < n:
                out[: n + k] = values[-k:]
        return out

    def reverse(self, values: np.ndarray) -> np.ndarray:
        return values[::-1]

    # ------------------------ broadcast / reduce ----------------------- #

    def full(self, length: int, value, dtype) -> np.ndarray:
        return np.full(length, value, dtype=dtype)

    def reduce(self, values: np.ndarray, op: str):
        return _REDUCERS[op](values)

    # ---------------------------- segmented ---------------------------- #

    def segment_ids(self, seg_flags: np.ndarray) -> np.ndarray:
        return _seg_ids(seg_flags).astype(np.int64)

    def seg_plus_scan(self, values: np.ndarray,
                      seg_flags: np.ndarray) -> np.ndarray:
        if len(values) == 0:
            return values.copy()
        ex = _exclusive_cumsum(values)
        s = _seg_ids(seg_flags)
        head_offsets = ex[np.flatnonzero(seg_flags)]
        return ex - head_offsets[s]

    def seg_extreme_scan(self, values: np.ndarray, seg_flags: np.ndarray,
                         identity, *, is_max: bool) -> np.ndarray:
        return _seg_running_extreme(values, seg_flags, identity, is_max=is_max)

    def seg_copy(self, values: np.ndarray,
                 seg_flags: np.ndarray) -> np.ndarray:
        if len(values) == 0:
            return values.copy()
        s = _seg_ids(seg_flags)
        return values[np.flatnonzero(seg_flags)][s]

    def seg_back_copy(self, values: np.ndarray,
                      seg_flags: np.ndarray) -> np.ndarray:
        if len(values) == 0:
            return values.copy()
        s = _seg_ids(seg_flags)
        heads = np.flatnonzero(seg_flags)
        tails = np.append(heads[1:], len(values)) - 1
        return values[tails][s]

    def seg_distribute(self, values: np.ndarray, seg_flags: np.ndarray,
                       op: str) -> np.ndarray:
        if len(values) == 0:
            return values.copy()
        heads = np.flatnonzero(seg_flags)
        s = _seg_ids(seg_flags)
        per_segment = _SEG_REDUCERS[op].reduceat(values, heads)
        return per_segment[s].astype(values.dtype, copy=False)
