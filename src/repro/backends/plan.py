"""Fused-pipeline plans: the wire format between lazy vectors and backends.

A :class:`FusedPlan` is the flattened, backend-agnostic rendering of one
lazy expression DAG (:mod:`repro.core.lazy`) at the moment it is forced:
a tuple of leaf input arrays, a topologically ordered tuple of
:class:`PlanStep` elementwise operations over them, and — when the DAG is
being forced *by* a primitive scan — a terminal scan op the backend may
fold the chain into.  Plans are immutable and contain no machine, charge
or fault state: the :class:`~repro.machine.Machine` computes every step
and wire charge from the *logical* ops before the plan ever reaches a
backend, exactly as it does for eager execution.

Step kinds (the full elementwise vocabulary of
:class:`~repro.core.vector.Vector`):

* ``"ufunc"`` — ``fn`` is a NumPy ufunc applied to the operands; the
  recorded ``dtype`` is NumPy's own result dtype (probed on zero-length
  slices at build time), so a backend may evaluate into a preallocated
  ``out=`` buffer of that dtype and get bit-identical results;
* ``"where"`` — the three-operand select ``np.where(flags, a, b)``;
* ``"cast"`` — ``operand.astype(dtype)`` (unsafe casting, NumPy's
  ``astype`` default);
* ``"custom"`` — an opaque elementwise callable (e.g. ``Vector.bit``'s
  shift-and-mask); backends evaluate it as-is and fuse around it.

Operand references are tagged tuples: ``("in", i)`` names
``plan.inputs[i]``, ``("step", j)`` the output of step ``j``, and
``("const", x)`` a scalar immediate held in the instruction.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

__all__ = ["FusedPlan", "PlanStep", "STEP_KINDS"]

#: the recognized step kinds (validated by the plan constructor)
STEP_KINDS = ("ufunc", "where", "cast", "custom")


@dataclass(frozen=True)
class PlanStep:
    """One elementwise operation of a fused plan (see module docstring)."""

    kind: str
    fn: Optional[Callable]       #: ufunc / opaque callable (None for cast)
    dtype: np.dtype              #: the step's result dtype
    args: tuple                  #: ("in", i) | ("step", j) | ("const", x)

    def __post_init__(self) -> None:
        if self.kind not in STEP_KINDS:
            raise ValueError(f"unknown plan step kind {self.kind!r}; "
                             f"expected one of {STEP_KINDS}")

    def as_callable(self) -> Callable:
        """The step as a plain elementwise callable, for backends that
        replay steps through their existing ``elementwise`` method."""
        if self.kind == "cast":
            dt = self.dtype
            return lambda a: a.astype(dt)
        if self.kind == "where":
            return np.where
        return self.fn


@dataclass(frozen=True)
class FusedPlan:
    """One forced expression DAG, flattened for backend execution.

    ``steps`` is topologically ordered and the **last step is the root**:
    its output is the plan's elementwise result.  When ``terminal`` names
    a primitive scan (``"plus_scan"`` / ``"max_scan"``), the plan's value
    is that scan applied to the root — backends are free (and encouraged)
    to fold the chain into the scan's own pass.  ``terminal_args`` are the
    scan's extra positional arguments (``max_scan``'s identity).
    """

    inputs: tuple                #: leaf ndarrays (read-only)
    steps: tuple                 #: PlanStep, topo order, root last
    n: int                       #: vector length of every step's output
    terminal: Optional[str] = None
    terminal_args: tuple = ()

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("a fused plan needs at least one step")
        if self.terminal is not None and self.terminal not in (
                "plus_scan", "max_scan"):
            raise ValueError(f"unknown terminal {self.terminal!r}")

    @property
    def root_dtype(self) -> np.dtype:
        """Result dtype of the elementwise chain (and of the terminal
        scan, which preserves its operand's dtype)."""
        return self.steps[-1].dtype

    def resolve(self, ref, env: list):
        """Dereference one operand: ``env`` holds computed step outputs."""
        tag, payload = ref
        if tag == "in":
            return self.inputs[payload]
        if tag == "step":
            return env[payload]
        return payload  # "const": the scalar itself

    def describe(self) -> str:  # pragma: no cover - cosmetic
        ops = [s.fn.__name__ if s.kind == "ufunc" else s.kind
               for s in self.steps]
        tail = f" -> {self.terminal}" if self.terminal else ""
        return f"FusedPlan(n={self.n}, {' -> '.join(ops)}{tail})"
