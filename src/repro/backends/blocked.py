"""Chunked execution with carry propagation: Figure 10, performed for real.

The paper simulates a long vector on ``p`` physical processors by giving
each processor a contiguous block and sweeping: serial scan within each
block, one cross-block scan of the partial results, then add the block
offset back in.  :class:`BlockedBackend` executes that schedule literally —
every primitive walks the vector in fixed-size chunks, carrying the running
sum / running extreme / open-segment state across chunk boundaries — so a
vector is never *operated on* whole.  Temporaries are bounded by the chunk
size, which is what makes out-of-core vector lengths (and future sharding
across workers) possible; output buffers are still materialized in full,
as they are the operation's result.

Bit-exactness: for integer and boolean vectors every result is
bit-identical to :class:`~repro.backends.NumPyBackend` (integer addition
is associative modulo 2^64, max/min are exactly associative).  Float
``+``-scans may round differently from the whole-vector ``np.cumsum``,
exactly as a real blocked machine would.

Two table-driven segmented operations (``seg_back_copy``,
``seg_distribute``) need per-segment lookahead, so they build an
``O(#segments)`` table of per-segment results and then spread it in
chunks; value temporaries stay chunk-bounded.
"""
from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from .base import Backend
from .numpy_backend import (NumPyBackend, _exclusive_cumsum,
                            _seg_running_extreme)

__all__ = ["BlockedBackend"]

#: default elements per chunk (a few hundred KB of int64 per temporary)
DEFAULT_CHUNK = 65536


class BlockedBackend(Backend):
    """Fixed-size-chunk execution with carry propagation across chunks."""

    name = "blocked"
    spec_syntax = "blocked[:<chunk>]"

    @classmethod
    def from_spec(cls, arg: str) -> "BlockedBackend":
        if not arg:
            return cls()
        try:
            chunk = int(arg)
        except ValueError:
            raise ValueError(
                f"backend 'blocked' takes an integer chunk size "
                f"({cls.spec_syntax}), got {arg!r}") from None
        return cls(chunk=chunk)

    def __init__(self, chunk: int = DEFAULT_CHUNK) -> None:
        if chunk < 1:
            raise ValueError(f"chunk size must be >= 1, got {chunk}")
        self.chunk = int(chunk)
        # per-segment table operations reuse the whole-vector expressions
        # on one chunk at a time
        self._np = NumPyBackend()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BlockedBackend(chunk={self.chunk})"

    def temp_bytes(self, op: str, out_bytes: int) -> int:
        """Chunk-bounded temporaries: working storage never exceeds one
        chunk of the widest lane (8-byte words), regardless of vector
        length — the figure a profiler should see drop when switching a
        long-vector run from ``numpy`` to ``blocked``.  Fused pipelines
        report the chain executor's own chunk-bounded accounting."""
        if op == "fused_pipeline":
            return super().temp_bytes(op, out_bytes)
        return min(out_bytes, self.chunk * 8)

    def _spans(self, n: int) -> Iterator[tuple[int, int]]:
        for start in range(0, n, self.chunk):
            yield start, min(start + self.chunk, n)

    # ------------------------ fused pipelines -------------------------- #

    def _eval_chunk(self, plan, s: int, e: int) -> np.ndarray:
        """Evaluate the plan's elementwise chain on rows ``[s, e)`` alone.

        Every intermediate is ``(e - s)``-sized, so a fused chain's
        working storage is chunk-bounded no matter the vector length —
        the same guarantee the per-primitive chunk loops give, but held
        across the *whole* chain at once.
        """
        env: list = []
        for step in plan.steps:
            args = []
            for tag, payload in step.args:
                if tag == "in":       # full-length leaf: take this chunk
                    args.append(plan.inputs[payload][s:e])
                elif tag == "step":   # already chunk-sized
                    args.append(env[payload])
                else:                 # scalar immediate
                    args.append(payload)
            env.append(step.as_callable()(*args))
        return env[-1]

    def fused_pipeline(self, plan) -> np.ndarray:
        """Fold the elementwise chain into the per-chunk carry loop.

        Each chunk is produced by evaluating the whole chain on that
        chunk's slice of the inputs, then consumed immediately — by the
        output buffer for a plain chain, or by the terminal scan's
        carry-propagating sweep, so a fused ``plus_scan(a*b + c)`` makes
        **one pass** over each chunk with only chunk-sized temporaries.
        The carry arithmetic is byte-for-byte the eager
        :meth:`plus_scan` / :meth:`max_scan` loop, so fused results are
        bit-identical to unfused blocked execution (including float
        association).
        """
        n = plan.n
        dtype = plan.root_dtype
        out = np.empty(n, dtype=dtype)
        per_chunk = min(n, self.chunk)
        # chain intermediates + the evaluated chunk, all chunk-sized
        self._fused_temp = (len(plan.steps)
                            * per_chunk * max(1, dtype.itemsize))
        if plan.terminal is None:
            for s, e in self._spans(n):
                out[s:e] = self._eval_chunk(plan, s, e)
            return out
        if plan.terminal == "plus_scan":
            carry = dtype.type(0)
            with np.errstate(over="ignore"):  # modular carries wrap
                for s, e in self._spans(n):
                    seg = self._eval_chunk(plan, s, e)
                    out[s] = carry
                    np.cumsum(seg[:-1], out=out[s + 1:e])
                    out[s + 1:e] += carry
                    carry = carry + seg.sum(dtype=dtype)
            return out
        # max_scan terminal
        (identity,) = plan.terminal_args
        carry = np.asarray(identity, dtype=dtype)[()]
        for s, e in self._spans(n):
            seg = self._eval_chunk(plan, s, e)
            out[s] = carry
            np.maximum.accumulate(seg[:-1], out=out[s + 1:e])
            np.maximum(out[s + 1:e], carry, out=out[s + 1:e])
            carry = np.maximum(carry, seg.max()) if len(seg) else carry
        return out

    # -------------------------- elementwise --------------------------- #

    def elementwise(self, fn: Callable, *operands) -> np.ndarray:
        n = None
        for op in operands:
            if isinstance(op, np.ndarray) and op.ndim == 1:
                n = len(op)
                break
        if n is None or n <= self.chunk:
            return fn(*operands)
        pieces = []
        for s, e in self._spans(n):
            sliced = [op[s:e] if isinstance(op, np.ndarray) and op.ndim == 1
                      else op for op in operands]
            pieces.append(fn(*sliced))
        return np.concatenate(pieces)

    def adjacent_ne(self, values: np.ndarray) -> np.ndarray:
        out = np.empty(len(values), dtype=bool)
        prev = None
        for s, e in self._spans(len(values)):
            seg = values[s:e]
            out[s] = True if prev is None else bool(seg[0] != prev)
            out[s + 1:e] = seg[1:] != seg[:-1]
            prev = seg[-1]
        return out

    # ----------------------------- scans ------------------------------ #

    def plus_scan(self, values: np.ndarray) -> np.ndarray:
        out = np.empty_like(values)
        carry = values.dtype.type(0)
        with np.errstate(over="ignore"):  # modular carries wrap by design
            for s, e in self._spans(len(values)):
                seg = values[s:e]
                out[s] = carry
                np.cumsum(seg[:-1], out=out[s + 1:e])
                out[s + 1:e] += carry
                carry = carry + seg.sum(dtype=values.dtype)
        return out

    def max_scan(self, values: np.ndarray, identity) -> np.ndarray:
        out = np.empty_like(values)
        carry = np.asarray(identity, dtype=values.dtype)[()]
        for s, e in self._spans(len(values)):
            seg = values[s:e]
            out[s] = carry
            np.maximum.accumulate(seg[:-1], out=out[s + 1:e])
            np.maximum(out[s + 1:e], carry, out=out[s + 1:e])
            # np.maximum, not Python max: the carry must propagate NaN
            # exactly as the within-chunk np.maximum.accumulate does
            carry = np.maximum(carry, seg.max()) if len(seg) else carry
        return out

    # ------------------------- communication -------------------------- #

    def permute(self, values: np.ndarray, index: np.ndarray, length: int,
                default) -> np.ndarray:
        out = np.full(length, default, dtype=values.dtype)
        for s, e in self._spans(len(values)):
            out[index[s:e]] = values[s:e]
        return out

    def gather(self, values: np.ndarray, index: np.ndarray) -> np.ndarray:
        out = np.empty(len(index), dtype=values.dtype)
        for s, e in self._spans(len(index)):
            out[s:e] = values[index[s:e]]
        return out

    def combine_write(self, values: np.ndarray, index: np.ndarray,
                      length: int, op: str, default) -> np.ndarray:
        if op == "min" or op == "max":
            if np.issubdtype(values.dtype, np.integer):
                info = np.iinfo(values.dtype)
                sentinel = info.max if op == "min" else info.min
            else:
                sentinel = np.inf if op == "min" else -np.inf
            ufunc = np.minimum if op == "min" else np.maximum
            touched = np.zeros(length, dtype=bool)
            tmp = np.full(length, sentinel, dtype=values.dtype)
            for s, e in self._spans(len(values)):
                touched[index[s:e]] = True
                ufunc.at(tmp, index[s:e], values[s:e])
            return np.where(touched, tmp,
                            np.asarray(default, dtype=values.dtype))
        if op == "sum":
            tmp = np.zeros(length, dtype=values.dtype)
            for s, e in self._spans(len(values)):
                np.add.at(tmp, index[s:e], values[s:e])
            return tmp
        if op == "any":
            out = np.full(length, default, dtype=values.dtype)
            for s, e in self._spans(len(values)):
                out[index[s:e]] = values[s:e]
            return out
        raise ValueError(f"unknown combine op {op!r}")

    def pack(self, values: np.ndarray, flags: np.ndarray,
             index: np.ndarray, count: int) -> np.ndarray:
        out = np.empty(count, dtype=values.dtype)
        for s, e in self._spans(len(values)):
            sel = flags[s:e]
            out[index[s:e][sel]] = values[s:e][sel]
        return out

    def shift(self, values: np.ndarray, k: int, fill) -> np.ndarray:
        n = len(values)
        out = np.full(n, fill, dtype=values.dtype)
        # copy the surviving range chunk by chunk (one fixed-offset send)
        if k >= 0:
            lo, span = k, n - k
        else:
            lo, span = 0, n + k
        for s, e in self._spans(max(span, 0)):
            out[lo + s:lo + e] = values[s - min(k, 0):e - min(k, 0)] \
                if k < 0 else values[s:e]
        return out

    def reverse(self, values: np.ndarray) -> np.ndarray:
        return values[::-1]

    # ------------------------ broadcast / reduce ----------------------- #

    def full(self, length: int, value, dtype) -> np.ndarray:
        return np.full(length, value, dtype=dtype)

    def reduce(self, values: np.ndarray, op: str):
        partials = [self._np.reduce(values[s:e], op)
                    for s, e in self._spans(len(values))]
        return self._np.reduce(np.array(partials), op)

    # ---------------------------- segmented ---------------------------- #

    def segment_ids(self, seg_flags: np.ndarray) -> np.ndarray:
        out = np.empty(len(seg_flags), dtype=np.int64)
        carry = 0
        for s, e in self._spans(len(seg_flags)):
            np.cumsum(seg_flags[s:e], out=out[s:e])
            out[s:e] += carry - 1
            carry = int(out[e - 1]) + 1
        return out

    def seg_plus_scan(self, values: np.ndarray,
                      seg_flags: np.ndarray) -> np.ndarray:
        if len(values) == 0:
            return values.copy()
        out = np.empty_like(values)
        carry = values.dtype.type(0)  # sum since the open segment's head
        with np.errstate(over="ignore"):  # modular carries wrap by design
            return self._seg_plus_chunks(values, seg_flags, out, carry)

    def _seg_plus_chunks(self, values, seg_flags, out, carry):
        for s, e in self._spans(len(values)):
            seg, sfc = values[s:e], seg_flags[s:e]
            ex = _exclusive_cumsum(seg)
            local = np.cumsum(sfc)  # 0 on the run continuing the open segment
            heads = np.flatnonzero(sfc)
            # offsets[i]: what local segment i subtracts from the chunk-local
            # exclusive sums; the continuing run (i = 0) *adds* the carry
            # (modular arithmetic makes the negation exact for any int dtype)
            offsets = np.empty(len(heads) + 1, dtype=values.dtype)
            offsets[0] = values.dtype.type(0) - carry
            offsets[1:] = ex[heads]
            out[s:e] = ex - offsets[local]
            if len(heads):
                carry = seg[heads[-1]:].sum(dtype=values.dtype)
            else:
                carry = carry + seg.sum(dtype=values.dtype)
        return out

    def seg_extreme_scan(self, values: np.ndarray, seg_flags: np.ndarray,
                         identity, *, is_max: bool) -> np.ndarray:
        if len(values) == 0:
            return values.copy()
        # the in-chunk rank encoding orders NaN as a largest value, so the
        # cross-chunk min carry must too: np.fmin (NaN loses to any real
        # value), not the NaN-propagating np.minimum — the max side's
        # np.maximum already coincides with NaN-as-largest
        combine = np.maximum if is_max else np.fmin
        reduce_run = ((lambda a: a.max()) if is_max
                      else (lambda a: np.fmin.reduce(a)))
        out = np.empty_like(values)
        carry = None  # extreme since the open segment's head (None = at start)
        for s, e in self._spans(len(values)):
            seg, sfc = values[s:e], seg_flags[s:e]
            # _seg_running_extreme needs a head at position 0; opening the
            # chunk's leading run as its own segment shifts every relative
            # segment id by one without moving any boundary
            sfc_local = sfc
            if not sfc[0]:
                sfc_local = sfc.copy()
                sfc_local[0] = True
            local = _seg_running_extreme(seg, sfc_local, identity,
                                         is_max=is_max)
            if carry is not None and not sfc[0]:
                # the leading run continues a segment begun in an earlier
                # chunk: fold in the carried extreme; its first element has
                # no in-chunk prefix and takes the carry alone (the
                # identity fill must not clamp real segment values)
                run = int(np.argmax(sfc)) if sfc.any() else len(sfc)
                combine(local[:run], carry, out=local[:run])
                local[0] = carry
            out[s:e] = local
            heads = np.flatnonzero(sfc)
            if len(heads):
                carry = reduce_run(seg[heads[-1]:])
            elif carry is None:
                carry = reduce_run(seg)
            else:
                carry = combine(carry, reduce_run(seg))
        return out

    def seg_copy(self, values: np.ndarray,
                 seg_flags: np.ndarray) -> np.ndarray:
        if len(values) == 0:
            return values.copy()
        out = np.empty_like(values)
        carry = values[0]  # the open segment's head value
        for s, e in self._spans(len(values)):
            seg, sfc = values[s:e], seg_flags[s:e]
            heads = np.flatnonzero(sfc)
            local = np.cumsum(sfc) - 1  # -1 on the continuing run
            table = np.concatenate(([carry], seg[heads]))
            out[s:e] = table[local + 1]
            if len(heads):
                carry = seg[heads[-1]]
        return out

    def seg_back_copy(self, values: np.ndarray,
                      seg_flags: np.ndarray) -> np.ndarray:
        if len(values) == 0:
            return values.copy()
        tails = self._segment_tails(values, seg_flags)
        return self._spread(tails, seg_flags)

    def seg_distribute(self, values: np.ndarray, seg_flags: np.ndarray,
                       op: str) -> np.ndarray:
        if len(values) == 0:
            return values.copy()
        parts: list[np.ndarray] = []
        carry = None  # running reduction of the open segment
        red = {"sum": "sum", "max": "max", "min": "min",
               "or": "any", "and": "all"}[op]
        for s, e in self._spans(len(values)):
            seg, sfc = values[s:e], seg_flags[s:e]
            heads = np.flatnonzero(sfc)
            bounds = np.concatenate(([0], heads, [len(seg)]))
            for i in range(len(bounds) - 1):
                lo, hi = bounds[i], bounds[i + 1]
                if lo == hi:
                    continue
                r = self._np.reduce(seg[lo:hi], red)
                if i == 0 and carry is not None:
                    carry = self._np.reduce(np.array([carry, r]), red)
                    continue
                if carry is not None:
                    parts.append(np.asarray(carry))
                carry = r
            # a chunk that is one unbroken run leaves carry accumulating
        if carry is not None:
            parts.append(np.asarray(carry))
        per_segment = np.array(parts)
        return self._spread(per_segment.astype(values.dtype, copy=False),
                            seg_flags)

    def _segment_tails(self, values: np.ndarray,
                       seg_flags: np.ndarray) -> np.ndarray:
        """Last value of each segment, one entry per segment."""
        tails: list[np.ndarray] = []
        prev_last = None
        for s, e in self._spans(len(values)):
            seg, sfc = values[s:e], seg_flags[s:e]
            heads = np.flatnonzero(sfc)
            # an element just before a head ends the previous segment
            for h in heads:
                tails.append(seg[h - 1] if h > 0 else prev_last)
            prev_last = seg[-1]
        tails.append(prev_last)  # the final segment ends at the vector end
        # the first flag is always a head: drop its phantom predecessor
        return np.array(tails[1:], dtype=values.dtype)

    def _spread(self, per_segment: np.ndarray,
                seg_flags: np.ndarray) -> np.ndarray:
        """``out[i] = per_segment[segment_of(i)]``, chunk by chunk."""
        out = np.empty(len(seg_flags), dtype=per_segment.dtype)
        carry = 0
        for s, e in self._spans(len(seg_flags)):
            sfc = seg_flags[s:e]
            ids = np.cumsum(sfc) + (carry - 1)
            out[s:e] = per_segment[ids]
            carry = int(ids[-1]) + 1
        return out
