"""The distributed backend: sharded multi-process scans with supervision.

:class:`DistributedBackend` turns the blocked backend's chunk loop inside
out: instead of one process sweeping chunks serially, a
:class:`~repro.cluster.pool.WorkerPool` of OS processes each owns one
contiguous shard in shared memory, the five carry-bearing primitives
(``plus_scan``, ``max_scan``, the segmented sum/extreme scans, and
``reduce``) run shard-locally in parallel, and per-shard carries meet in a
round-efficient exclusive exchange.  Everything else — elementwise ops,
permutations, the small-vector cases below ``min_distribute`` — inherits
the in-process NumPy expressions from :class:`NumPyBackend`, because
shipping a 100-element vector through shared memory buys nothing but
latency.

The supervision story (see :mod:`repro.cluster.pool` and
``docs/distributed.md``): worker failures are classified, retried with
backoff, and after budget exhaustion the shard — or, once every slot is
retired, the whole backend — **degrades to in-process compute with the
identical kernels**.  Fault handling can change latency and ledger
counts, never results or step charges; step charges never reach a backend
at all (:mod:`repro.machine` charges host-side), which is what lets the
conformance fuzzer demand bit-identical charges from a backend whose
workers are being killed mid-op.

Pools are processes, so they are shared per worker count
(:func:`repro.cluster.pool.shared_pool`) and acquired lazily — building a
``Machine(backend="distributed")`` costs nothing until the first
distribution-worthy op.  A backend constructed with an explicit ``policy``
or ``chaos`` plan gets a private pool instead, so chaos tests cannot
contaminate the shared one.

Spec syntax: ``distributed[:<workers>[:<min_n>]]`` — e.g. ``distributed``
(4 workers), ``distributed:8``, ``distributed:2:1`` (two workers,
distribute even single-element vectors; the conformance-fuzzer
configuration, since its corpus is deliberately tiny).
"""
from __future__ import annotations

from typing import Optional

import numpy as np

from ..cluster.chaos import ChaosPlan
from ..cluster.ledger import ClusterLedger
from ..cluster.pool import RetryPolicy, WorkerPool, shared_pool
from .numpy_backend import NumPyBackend

__all__ = ["DistributedBackend", "DEFAULT_WORKERS", "DEFAULT_MIN_DISTRIBUTE"]

#: default pool width (modest: every worker is a real OS process)
DEFAULT_WORKERS = 4

#: below this length, shared-memory setup dwarfs the scan — stay local
DEFAULT_MIN_DISTRIBUTE = 65536


class DistributedBackend(NumPyBackend):
    """Sharded multi-process execution with fault-tolerant supervision."""

    name = "distributed"
    spec_syntax = "distributed[:<workers>[:<min_n>]]"

    def __init__(self, workers: int = DEFAULT_WORKERS,
                 min_distribute: int = DEFAULT_MIN_DISTRIBUTE,
                 policy: Optional[RetryPolicy] = None,
                 chaos: Optional[ChaosPlan] = None,
                 pool: Optional[WorkerPool] = None) -> None:
        if workers < 1:
            raise ValueError(f"worker count must be >= 1, got {workers}")
        if min_distribute < 1:
            raise ValueError(
                f"min_distribute must be >= 1, got {min_distribute}")
        self.workers = int(workers)
        self.min_distribute = int(min_distribute)
        self._policy = policy
        self._chaos = chaos
        # explicit policy/chaos/pool → a private pool this backend owns;
        # otherwise the process-wide shared pool for this worker count
        self._pool = pool
        self._private = pool is not None or policy is not None or chaos is not None

    @classmethod
    def from_spec(cls, arg: str) -> "DistributedBackend":
        if not arg:
            return cls()
        parts = arg.split(":")
        if len(parts) > 2:
            raise ValueError(
                f"backend 'distributed' takes at most two arguments "
                f"({cls.spec_syntax}), got {arg!r}")
        try:
            workers = int(parts[0])
            min_n = int(parts[1]) if len(parts) == 2 else DEFAULT_MIN_DISTRIBUTE
        except ValueError:
            raise ValueError(
                f"backend 'distributed' arguments must be integers "
                f"({cls.spec_syntax}), got {arg!r}") from None
        try:
            return cls(workers=workers, min_distribute=min_n)
        except ValueError as exc:
            # constructor range errors, re-anchored to the spec string
            raise ValueError(
                f"backend 'distributed' spec {arg!r} is invalid: {exc} "
                f"({cls.spec_syntax})") from None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"DistributedBackend(workers={self.workers}, "
                f"min_distribute={self.min_distribute})")

    # --------------------------- pool access --------------------------- #

    @property
    def pool(self) -> WorkerPool:
        """The worker pool, spawned on first use."""
        if self._pool is None or self._pool.closed:
            if self._private:
                self._pool = WorkerPool(self.workers, policy=self._policy,
                                        chaos=self._chaos)
            else:
                self._pool = shared_pool(self.workers)
        return self._pool

    @property
    def ledger(self) -> ClusterLedger:
        """The pool's fault ledger (spawns the pool if needed)."""
        return self.pool.ledger

    def temp_bytes(self, op: str, out_bytes: int) -> int:
        """Distribution triples the footprint of carry-bearing ops: the
        operands and result live a second time in shared memory, plus the
        host-side result copy."""
        if op in ("plus_scan", "max_scan", "seg_plus_scan",
                  "seg_extreme_scan", "reduce"):
            return 3 * out_bytes
        return super().temp_bytes(op, out_bytes)

    def _distribute(self, n: int) -> bool:
        """Whether a length-``n`` carry op should go to the pool; counts
        the local-fallback ledger lines when the answer is no."""
        if n < self.min_distribute or n == 0:
            worth = False
        else:
            worth = self.pool.available  # spawns the pool on first need
        if not worth and self._pool is not None:
            self._pool.ledger.ops += 1
            self._pool.ledger.ops_local += 1
            self._pool._m_ops_local.inc()  # noqa: SLF001 - pool-owned handle
        return worth

    # ---------------------- distributed primitives --------------------- #

    def plus_scan(self, values: np.ndarray) -> np.ndarray:
        if self._distribute(len(values)):
            return self.pool.run_scan("plus_scan", values)
        return super().plus_scan(values)

    def max_scan(self, values: np.ndarray, identity) -> np.ndarray:
        if self._distribute(len(values)):
            return self.pool.run_scan("max_scan", values, identity=identity)
        return super().max_scan(values, identity)

    def seg_plus_scan(self, values: np.ndarray,
                      seg_flags: np.ndarray) -> np.ndarray:
        if self._distribute(len(values)):
            return self.pool.run_scan("seg_plus", values, flags=seg_flags)
        return super().seg_plus_scan(values, seg_flags)

    def seg_extreme_scan(self, values: np.ndarray, seg_flags: np.ndarray,
                         identity, *, is_max: bool) -> np.ndarray:
        if self._distribute(len(values)):
            return self.pool.run_scan("seg_extreme", values, flags=seg_flags,
                                      identity=identity, is_max=is_max)
        return super().seg_extreme_scan(values, seg_flags, identity,
                                        is_max=is_max)

    def reduce(self, values: np.ndarray, op: str):
        if self._distribute(len(values)):
            return self.pool.run_reduce(values, op)
        return super().reduce(values, op)

    # --------------------------- lifecycle ----------------------------- #

    def shutdown(self) -> None:
        """Stop a private pool (shared pools are owned by the registry)."""
        if self._pool is not None and self._private:
            self._pool.shutdown()
