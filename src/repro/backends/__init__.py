"""Pluggable execution backends for the machine's vector primitives.

The cost model (:mod:`repro.machine`) decides what a primitive *charges*;
a :class:`Backend` decides how it *computes*.  Four are shipped:

* :class:`NumPyBackend` (``"numpy"``, the default) — one vectorized NumPy
  expression per primitive, behavior- and step-identical to the
  pre-backend code;
* :class:`BlockedBackend` (``"blocked"`` / ``"blocked:<chunk>"``) —
  fixed-size chunks with carry propagation across chunk boundaries, the
  paper's Figure 10 long-vector schedule executed for real;
* :class:`DistributedBackend` (``"distributed"`` /
  ``"distributed:<workers>[:<min_n>]"``) — shards across supervised OS
  worker processes with shared memory, a round-efficient carry exchange,
  and fault-tolerant retry/degradation (see :mod:`repro.cluster`);
* :class:`NativeBackend` (``"native"`` / ``"native:<threads>[:<block>]"``)
  — two-phase Blelloch upsweep/downsweep over fixed-size blocks, compiled
  with Numba when available and falling back to a pure-NumPy block
  schedule otherwise (see :mod:`repro.backends.native`);
* :class:`ReferenceBackend` (``"reference"``) — pure-Python per-element
  loops, the differential-testing oracle.

Selection: ``Machine(..., backend="blocked")`` takes a registry name, a
``"name:<args>"`` spec (each backend documents its own ``spec_syntax``),
or a :class:`Backend` instance; when omitted, the ``REPRO_BACKEND``
environment variable is honored (same syntax) before falling back to
``"numpy"``.
"""
from __future__ import annotations

import os
from typing import Optional, Union

from .base import Backend, OpEvent
from .blocked import BlockedBackend
from .native import NativeBackend
from .numpy_backend import NumPyBackend
from .reference import ReferenceBackend

# imported last: DistributedBackend subclasses NumPyBackend and pulls in
# repro.cluster, which reaches back into repro.backends.numpy_backend —
# fully initialized by this point in the module body
from .distributed import DistributedBackend  # noqa: E402  (import order is load-bearing)

__all__ = [
    "Backend",
    "BlockedBackend",
    "DistributedBackend",
    "NativeBackend",
    "NumPyBackend",
    "OpEvent",
    "ReferenceBackend",
    "available_backends",
    "backend_specs",
    "get_backend",
    "resolve_backend",
]

_REGISTRY: dict[str, type[Backend]] = {
    NumPyBackend.name: NumPyBackend,
    BlockedBackend.name: BlockedBackend,
    DistributedBackend.name: DistributedBackend,
    NativeBackend.name: NativeBackend,
    ReferenceBackend.name: ReferenceBackend,
}

#: environment variable consulted when no backend is passed explicitly
BACKEND_ENV_VAR = "REPRO_BACKEND"


def available_backends() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)


def backend_specs() -> list[str]:
    """Each registered backend's spec syntax (its name when it takes no
    arguments), sorted by name — the vocabulary of ``Machine(backend=...)``
    strings and :data:`BACKEND_ENV_VAR` values."""
    return [(_REGISTRY[name].spec_syntax or name)
            for name in available_backends()]


def get_backend(spec: str) -> Backend:
    """Instantiate a backend from a spec string.

    A spec is a registry name, optionally followed by ``:<arguments>``
    the backend itself parses (:meth:`Backend.from_spec`) — e.g.
    ``"blocked:4096"`` or ``"distributed:8:100000"``.
    """
    name, _, arg = spec.partition(":")
    cls = _REGISTRY.get(name)
    if cls is None:
        raise ValueError(
            f"unknown backend {name!r}; available backends: "
            f"{', '.join(available_backends())} "
            f"(spec syntax: {', '.join(backend_specs())}); select one via "
            f"Machine(backend=...) or the {BACKEND_ENV_VAR} environment "
            f"variable"
        )
    return cls.from_spec(arg)


def resolve_backend(backend: Optional[Union[str, Backend]]) -> Backend:
    """Resolve the ``Machine(backend=...)`` argument: an instance passes
    through, a string is looked up, and ``None`` consults
    :data:`BACKEND_ENV_VAR` before defaulting to ``"numpy"``."""
    if backend is None:
        env = os.environ.get(BACKEND_ENV_VAR)
        if not env:
            return NumPyBackend()
        try:
            return get_backend(env)
        except ValueError as exc:
            # name the env var: the bad spec came from the environment,
            # not from any visible call site
            raise ValueError(
                f"invalid {BACKEND_ENV_VAR} value {env!r}: {exc}") from exc
    if isinstance(backend, str):
        return get_backend(backend)
    if isinstance(backend, Backend):
        return backend
    raise TypeError(
        f"backend must be a name, a Backend instance or None, "
        f"got {type(backend).__name__}"
    )
