"""Pluggable execution backends for the machine's vector primitives.

The cost model (:mod:`repro.machine`) decides what a primitive *charges*;
a :class:`Backend` decides how it *computes*.  Three are shipped:

* :class:`NumPyBackend` (``"numpy"``, the default) — one vectorized NumPy
  expression per primitive, behavior- and step-identical to the
  pre-backend code;
* :class:`BlockedBackend` (``"blocked"`` / ``"blocked:<chunk>"``) —
  fixed-size chunks with carry propagation across chunk boundaries, the
  paper's Figure 10 long-vector schedule executed for real;
* :class:`ReferenceBackend` (``"reference"``) — pure-Python per-element
  loops, the differential-testing oracle.

Selection: ``Machine(..., backend="blocked")`` takes a registry name, a
``"blocked:4096"`` spec with a chunk size, or a :class:`Backend`
instance; when omitted, the ``REPRO_BACKEND`` environment variable is
honored (same syntax) before falling back to ``"numpy"``.
"""
from __future__ import annotations

import os
from typing import Optional, Union

from .base import Backend, OpEvent
from .blocked import BlockedBackend
from .numpy_backend import NumPyBackend
from .reference import ReferenceBackend

__all__ = [
    "Backend",
    "BlockedBackend",
    "NumPyBackend",
    "OpEvent",
    "ReferenceBackend",
    "available_backends",
    "get_backend",
    "resolve_backend",
]

_REGISTRY: dict[str, type[Backend]] = {
    NumPyBackend.name: NumPyBackend,
    BlockedBackend.name: BlockedBackend,
    ReferenceBackend.name: ReferenceBackend,
}

#: environment variable consulted when no backend is passed explicitly
BACKEND_ENV_VAR = "REPRO_BACKEND"


def available_backends() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)


def get_backend(spec: str) -> Backend:
    """Instantiate a backend from a spec string.

    A spec is a registry name, optionally followed by ``:<argument>``;
    the only argument currently defined is the blocked backend's chunk
    size (``"blocked:4096"``).
    """
    name, _, arg = spec.partition(":")
    cls = _REGISTRY.get(name)
    if cls is None:
        raise ValueError(
            f"unknown backend {name!r}; expected one of {available_backends()}"
        )
    if arg:
        if cls is not BlockedBackend:
            raise ValueError(f"backend {name!r} takes no {arg!r} argument")
        return BlockedBackend(chunk=int(arg))
    return cls()


def resolve_backend(backend: Optional[Union[str, Backend]]) -> Backend:
    """Resolve the ``Machine(backend=...)`` argument: an instance passes
    through, a string is looked up, and ``None`` consults
    :data:`BACKEND_ENV_VAR` before defaulting to ``"numpy"``."""
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR) or NumPyBackend.name
    if isinstance(backend, str):
        return get_backend(backend)
    if isinstance(backend, Backend):
        return backend
    raise TypeError(
        f"backend must be a name, a Backend instance or None, "
        f"got {type(backend).__name__}"
    )
