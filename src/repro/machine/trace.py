"""Tracing and profiling for machine step charges — back-compat shim.

This module's :class:`Trace` / :func:`trace` API predates the
observability layer and is preserved verbatim for existing callers::

    m = Machine("scan")
    with trace(m) as t:
        with t.phase("sort"):
            split_radix_sort(m.vector(data))
        with t.phase("merge"):
            halving_merge(...)
    print(t.report())

Since PR 3 it is a thin shim over :mod:`repro.observe`: each
:class:`Trace` owns a (detached) :class:`~repro.observe.spans.Profiler`,
``phase`` opens a span on it, and the flat event/report surface is
derived from the profiler's charge log.  Semantics are unchanged and
pinned by ``tests/test_trace.py`` — flat phase labels, innermost label
wins, ``"(untagged)"`` outside any phase.  New code that wants wall
time, backend identity, byte estimates or hierarchy should use
:func:`repro.observe.profile` (and :func:`repro.observe.span`) directly;
new code that only wants a quick step breakdown can keep using this.
"""
from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

from ..observe.spans import Profiler
from .model import Machine

__all__ = ["Trace", "TraceEvent", "trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One primitive charge: its kind, cost in steps, and active phase."""

    kind: str
    cost: int
    phase: str


class Trace:
    """Recorded charges plus aggregation helpers (legacy flat view).

    Wraps a :class:`~repro.observe.spans.Profiler`; ``_record`` is the
    listener :func:`trace` hooks into the machine's step counter, exactly
    as before the observability layer existed.
    """

    def __init__(self) -> None:
        self._profiler = Profiler()

    # ------------------------------------------------------------------ #

    @property
    def profiler(self) -> Profiler:
        """The underlying span profiler (hierarchical view of the same
        charges; its spans carry no wall-time attribution here because a
        bare ``Trace`` observes only the step counter)."""
        return self._profiler

    @property
    def current_phase(self) -> str:
        cur = self._profiler.current_span
        return "(untagged)" if cur is self._profiler.root else cur.name

    def phase(self, name: str):
        """Label the charges made inside the block (phases may nest; the
        innermost label wins)."""
        return self._profiler.span(name)

    def _record(self, kind: str, cost: int) -> None:
        self._profiler._on_charge(kind, cost)

    # ------------------------------------------------------------------ #

    @property
    def events(self) -> list[TraceEvent]:
        return [
            TraceEvent(kind=e.kind, cost=e.cost,
                       phase=("(untagged)" if e.span is self._profiler.root
                              else e.span.name))
            for e in self._profiler.events
        ]

    @property
    def total_steps(self) -> int:
        return self._profiler.total_steps

    def by_kind(self) -> dict[str, int]:
        c: dict[str, int] = {}
        for e in self._profiler.events:
            c[e.kind] = c.get(e.kind, 0) + e.cost
        return c

    def by_phase(self) -> dict[str, int]:
        c: dict[str, int] = {}
        for e in self.events:
            c[e.phase] = c.get(e.phase, 0) + e.cost
        return c

    def phase_kind_matrix(self) -> dict[str, dict[str, int]]:
        out: dict[str, dict[str, int]] = {}
        for e in self.events:
            out.setdefault(e.phase, {})
            out[e.phase][e.kind] = out[e.phase].get(e.kind, 0) + e.cost
        return out

    def report(self) -> str:
        """A human-readable profile."""
        lines = [f"total: {self.total_steps} steps in "
                 f"{len(self._profiler.events)} primitive invocations"]
        by_phase = self.by_phase()
        matrix = self.phase_kind_matrix()
        for phase in sorted(by_phase, key=by_phase.get, reverse=True):
            steps = by_phase[phase]
            pct = 100.0 * steps / self.total_steps if self.total_steps else 0.0
            kinds = ", ".join(f"{k}={v}" for k, v in
                              sorted(matrix[phase].items(),
                                     key=lambda kv: -kv[1]))
            lines.append(f"  {phase:<20} {steps:>8} steps ({pct:4.1f}%)  [{kinds}]")
        return "\n".join(lines)


@contextmanager
def trace(machine: Machine):
    """Attach a :class:`Trace` to ``machine`` for the duration of the
    block."""
    t = Trace()
    machine.counter.listeners.append(t._record)
    try:
        yield t
    finally:
        machine.counter.listeners.remove(t._record)
