"""Tracing and profiling for machine step charges.

The step counter answers "how many"; this module answers "where".  A
:class:`Trace` hooks the counter and records every primitive charge, with
user-defined phase labels::

    m = Machine("scan")
    with trace(m) as t:
        with t.phase("sort"):
            split_radix_sort(m.vector(data))
        with t.phase("merge"):
            halving_merge(...)
    print(t.report())

The report breaks the step total down by phase and by primitive kind —
useful both for understanding an algorithm's primitive mix (Table 3
style) and for finding the expensive stage of a pipeline.
"""
from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field

from .model import Machine

__all__ = ["Trace", "TraceEvent", "trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One primitive charge: its kind, cost in steps, and active phase."""

    kind: str
    cost: int
    phase: str


@dataclass
class Trace:
    """Recorded charges plus aggregation helpers."""

    events: list[TraceEvent] = field(default_factory=list)
    _phase_stack: list[str] = field(default_factory=list)

    # ------------------------------------------------------------------ #

    @property
    def current_phase(self) -> str:
        return self._phase_stack[-1] if self._phase_stack else "(untagged)"

    @contextmanager
    def phase(self, name: str):
        """Label the charges made inside the block (phases may nest; the
        innermost label wins)."""
        self._phase_stack.append(name)
        try:
            yield self
        finally:
            self._phase_stack.pop()

    def _record(self, kind: str, cost: int) -> None:
        self.events.append(TraceEvent(kind=kind, cost=cost,
                                      phase=self.current_phase))

    # ------------------------------------------------------------------ #

    @property
    def total_steps(self) -> int:
        return sum(e.cost for e in self.events)

    def by_kind(self) -> dict[str, int]:
        c: Counter = Counter()
        for e in self.events:
            c[e.kind] += e.cost
        return dict(c)

    def by_phase(self) -> dict[str, int]:
        c: Counter = Counter()
        for e in self.events:
            c[e.phase] += e.cost
        return dict(c)

    def phase_kind_matrix(self) -> dict[str, dict[str, int]]:
        out: dict[str, Counter] = {}
        for e in self.events:
            out.setdefault(e.phase, Counter())[e.kind] += e.cost
        return {p: dict(c) for p, c in out.items()}

    def report(self) -> str:
        """A human-readable profile."""
        lines = [f"total: {self.total_steps} steps in {len(self.events)} "
                 "primitive invocations"]
        by_phase = self.by_phase()
        matrix = self.phase_kind_matrix()
        for phase in sorted(by_phase, key=by_phase.get, reverse=True):
            steps = by_phase[phase]
            pct = 100.0 * steps / self.total_steps if self.total_steps else 0.0
            kinds = ", ".join(f"{k}={v}" for k, v in
                              sorted(matrix[phase].items(),
                                     key=lambda kv: -kv[1]))
            lines.append(f"  {phase:<20} {steps:>8} steps ({pct:4.1f}%)  [{kinds}]")
        return "\n".join(lines)


@contextmanager
def trace(machine: Machine):
    """Attach a :class:`Trace` to ``machine`` for the duration of the
    block."""
    t = Trace()
    machine.counter.listeners.append(t._record)
    try:
        yield t
    finally:
        machine.counter.listeners.remove(t._record)
