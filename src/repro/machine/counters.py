"""Step accounting for simulated P-RAM machines.

The paper measures algorithms in *program steps* (its replacement for "unit
time"): one step is one primitive vector operation executed by all
processors.  :class:`StepCounter` accumulates those charges, broken down by
primitive kind, so benchmarks can report both totals and profiles
(e.g. "how many scans did the MST use?").
"""
from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["FaultCounters", "ForkCounters", "StepCounter", "StepSnapshot"]


@dataclass
class FaultCounters:
    """Bookkeeping for the fault-tolerance layer (:mod:`repro.faults`).

    ``injected`` is incremented by a :class:`~repro.faults.FaultInjector`
    each time it actually flips a bit; the remaining counters are
    incremented by whichever detection/recovery mechanism observed the
    fault.  The ledger always reconciles:
    ``injected == detected + masked + undetected``
    (``undetected`` is the derived remainder — faults nothing noticed,
    including flips that never reached an output).
    """

    injected: int = 0
    #: verification failures observed (checksum mismatch, self-check
    #: mismatch, delivery-receipt mismatch)
    detected: int = 0
    #: faults corrected *without* detection reaching the consumer (a TMR
    #: vote out-voting a bad replica)
    masked: int = 0
    #: retry attempts issued after a detection
    retried: int = 0
    #: detected faults whose retry produced a verified result
    corrected: int = 0
    #: primitive scans served by the degraded EREW fallback path
    degraded_scans: int = 0

    @property
    def undetected(self) -> int:
        """Injected faults no mechanism flagged or out-voted."""
        return self.injected - self.detected - self.masked

    def reconciles(self) -> bool:
        """``injected == detected + masked + undetected`` with every term
        non-negative (a detection ledger gone wrong shows up here as a
        negative remainder: more detections than injections)."""
        terms = (self.injected, self.detected, self.masked, self.retried,
                 self.corrected, self.degraded_scans, self.undetected)
        return all(t >= 0 for t in terms)

    def reset(self) -> None:
        self.injected = 0
        self.detected = 0
        self.masked = 0
        self.retried = 0
        self.corrected = 0
        self.degraded_scans = 0

    def summary(self) -> str:
        return (f"injected={self.injected} detected={self.detected} "
                f"masked={self.masked} undetected={self.undetected} "
                f"retried={self.retried} corrected={self.corrected} "
                f"degraded_scans={self.degraded_scans}")


@dataclass
class ForkCounters:
    """Spawn/sync/revoke ledger for the binary-forking model.

    Launching one primitive over ``p`` leaves forks a binary tree —
    ``p - 1`` spawns on the way down, ``p - 1`` syncs (joins) on the way
    back up — so a machine at quiescence always reconciles exactly:
    ``spawned == synced`` and no thread is ``live``.  ``revoked`` counts
    test-and-set reservation attempts that lost their race and must be
    re-forked in a later round (the retry currency of the BFGS random
    permutation); revokes never unbalance the ledger because the losing
    thread still joins.
    """

    spawned: int = 0
    synced: int = 0
    revoked: int = 0

    @property
    def live(self) -> int:
        """Threads forked but not yet joined (0 at every quiescent point)."""
        return self.spawned - self.synced

    def reconciles(self) -> bool:
        """``spawned == synced`` with every column non-negative — the
        ledger-style exactness the fault counters also promise."""
        return (self.spawned >= 0 and self.revoked >= 0
                and self.spawned == self.synced)

    def reset(self) -> None:
        self.spawned = 0
        self.synced = 0
        self.revoked = 0

    def summary(self) -> str:
        return (f"spawned={self.spawned} synced={self.synced} "
                f"live={self.live} revoked={self.revoked}")


@dataclass(frozen=True)
class StepSnapshot:
    """An immutable point-in-time reading of a :class:`StepCounter`.

    ``backend`` names the execution engine that computed the charged
    primitives when the snapshot came from
    :meth:`repro.machine.Machine.snapshot` (``None`` when taken directly
    from a bare counter, which has no engine to name); ``fusion`` records
    the machine's lazy-fusion setting the same way.  Both are labels, not
    measurements: charges are identical whatever engine or fusion mode
    computed them.
    """

    steps: int
    by_kind: dict[str, int]
    ops: int
    backend: str | None = None
    fusion: bool | None = None

    @property
    def degraded(self) -> bool:
        """True when any charge in this reading came from the degraded
        EREW scan fallback (see :mod:`repro.faults`): a machine whose scan
        unit hard-failed charges its scans under the ``scan_degraded``
        kind, so the regime is visible in every snapshot and trace."""
        return bool(self.by_kind.get("scan_degraded"))

    def __sub__(self, other: "StepSnapshot") -> "StepSnapshot":
        kinds = Counter(self.by_kind)
        kinds.subtract(other.by_kind)
        return StepSnapshot(
            steps=self.steps - other.steps,
            by_kind={k: v for k, v in kinds.items() if v},
            ops=self.ops - other.ops,
            backend=self.backend,
            fusion=self.fusion,
        )


@dataclass
class StepCounter:
    """Accumulates program-step charges.

    ``steps`` is the paper's step complexity; ``ops`` counts primitive
    invocations regardless of their per-model cost (useful to verify that the
    *same* algorithm issues the same primitives on every model and only the
    charging differs).  ``listeners`` receive every ``(kind, cost)`` charge —
    the hook behind :mod:`repro.machine.trace`.
    """

    steps: int = 0
    ops: int = 0
    by_kind: Counter = field(default_factory=Counter)
    listeners: list = field(default_factory=list)

    def charge(self, kind: str, cost: int) -> None:
        if cost < 0:
            raise ValueError(f"negative step charge for {kind!r}: {cost}")
        self.steps += cost
        self.ops += 1
        self.by_kind[kind] += cost
        for listener in self.listeners:
            listener(kind, cost)

    def reset(self) -> None:
        self.steps = 0
        self.ops = 0
        self.by_kind.clear()

    def snapshot(self, backend: str | None = None,
                 fusion: bool | None = None) -> StepSnapshot:
        return StepSnapshot(steps=self.steps, by_kind=dict(self.by_kind),
                            ops=self.ops, backend=backend, fusion=fusion)

    @contextmanager
    def measure(self):
        """Context manager yielding a mutable holder whose ``.delta`` is the
        :class:`StepSnapshot` of charges made inside the block."""
        before = self.snapshot()

        class _Holder:
            delta: StepSnapshot | None = None

        holder = _Holder()
        try:
            yield holder
        finally:
            holder.delta = self.snapshot() - before
