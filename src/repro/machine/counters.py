"""Step accounting for simulated P-RAM machines.

The paper measures algorithms in *program steps* (its replacement for "unit
time"): one step is one primitive vector operation executed by all
processors.  :class:`StepCounter` accumulates those charges, broken down by
primitive kind, so benchmarks can report both totals and profiles
(e.g. "how many scans did the MST use?").
"""
from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["StepCounter", "StepSnapshot"]


@dataclass(frozen=True)
class StepSnapshot:
    """An immutable point-in-time reading of a :class:`StepCounter`."""

    steps: int
    by_kind: dict[str, int]
    ops: int

    def __sub__(self, other: "StepSnapshot") -> "StepSnapshot":
        kinds = Counter(self.by_kind)
        kinds.subtract(other.by_kind)
        return StepSnapshot(
            steps=self.steps - other.steps,
            by_kind={k: v for k, v in kinds.items() if v},
            ops=self.ops - other.ops,
        )


@dataclass
class StepCounter:
    """Accumulates program-step charges.

    ``steps`` is the paper's step complexity; ``ops`` counts primitive
    invocations regardless of their per-model cost (useful to verify that the
    *same* algorithm issues the same primitives on every model and only the
    charging differs).  ``listeners`` receive every ``(kind, cost)`` charge —
    the hook behind :mod:`repro.machine.trace`.
    """

    steps: int = 0
    ops: int = 0
    by_kind: Counter = field(default_factory=Counter)
    listeners: list = field(default_factory=list)

    def charge(self, kind: str, cost: int) -> None:
        if cost < 0:
            raise ValueError(f"negative step charge for {kind!r}: {cost}")
        self.steps += cost
        self.ops += 1
        self.by_kind[kind] += cost
        for listener in self.listeners:
            listener(kind, cost)

    def reset(self) -> None:
        self.steps = 0
        self.ops = 0
        self.by_kind.clear()

    def snapshot(self) -> StepSnapshot:
        return StepSnapshot(steps=self.steps, by_kind=dict(self.by_kind), ops=self.ops)

    @contextmanager
    def measure(self):
        """Context manager yielding a mutable holder whose ``.delta`` is the
        :class:`StepSnapshot` of charges made inside the block."""
        before = self.snapshot()

        class _Holder:
            delta: StepSnapshot | None = None

        holder = _Holder()
        try:
            yield holder
        finally:
            holder.delta = self.snapshot() - before
