"""Capability sets for the P-RAM variants discussed in the paper.

The paper compares four machine models:

* **EREW** — exclusive read, exclusive write.  The weakest standard P-RAM.
* **CREW** — concurrent read, exclusive write.
* **CRCW** — concurrent read, concurrent write, *extended* (as in Section
  2.3.3) so that colliding writes resolve to the minimum value / lowest
  processor.  This is the model in Table 1's CRCW column.
* **scan** — the paper's contribution: EREW plus unit-time ``+-scan`` and
  ``max-scan`` primitives.

Capabilities gate which primitive operations an algorithm may use on a given
machine; costs are a separate concern handled by :mod:`repro.machine.model`.
"""
from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Capabilities", "CAPABILITIES", "MODEL_NAMES"]


@dataclass(frozen=True)
class Capabilities:
    """What a machine model is allowed to do in one program step.

    Attributes
    ----------
    concurrent_read:
        May many processors read the same memory cell in one step (CREW/CRCW)?
    concurrent_write:
        May many processors write the same cell in one step (CRCW)?
    combining_write:
        Does a write collision combine values (minimum / lowest-numbered
        processor wins) — the paper's extended CRCW used by the O(lg n) MST?
    unit_scan:
        Are ``+-scan`` and ``max-scan`` single program steps (the scan model)?
    """

    concurrent_read: bool
    concurrent_write: bool
    combining_write: bool
    unit_scan: bool


CAPABILITIES: dict[str, Capabilities] = {
    "erew": Capabilities(False, False, False, False),
    "crew": Capabilities(True, False, False, False),
    "crcw": Capabilities(True, True, True, False),
    "scan": Capabilities(False, False, False, True),
}

MODEL_NAMES = tuple(CAPABILITIES)
