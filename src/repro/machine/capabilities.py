"""Capability sets for the P-RAM variants discussed in the paper.

The paper compares four machine models:

* **EREW** — exclusive read, exclusive write.  The weakest standard P-RAM.
* **CREW** — concurrent read, exclusive write.
* **CRCW** — concurrent read, concurrent write, *extended* (as in Section
  2.3.3) so that colliding writes resolve to the minimum value / lowest
  processor.  This is the model in Table 1's CRCW column.
* **scan** — the paper's contribution: EREW plus unit-time ``+-scan`` and
  ``max-scan`` primitives.

A fifth model re-runs that comparison 35 years later:

* **binary-forking** — the Blelloch–Fineman–Gu–Sun model: threads fork in
  binary trees over shared memory (concurrent reads allowed), writes are
  exclusive except for an atomic test-and-set, and *every* ``n``-element
  primitive — even an elementwise map — pays the ``2⌈lg p⌉`` span of the
  fork/join tree that launches it.  Scans are *not* unit time here; the
  fork tree itself is the ``Θ(lg n)`` lower bound the model bakes in.

Capabilities gate which primitive operations an algorithm may use on a given
machine; costs are a separate concern handled by :mod:`repro.machine.model`.
"""
from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Capabilities", "CAPABILITIES", "MODEL_NAMES"]


@dataclass(frozen=True)
class Capabilities:
    """What a machine model is allowed to do in one program step.

    Attributes
    ----------
    concurrent_read:
        May many processors read the same memory cell in one step (CREW/CRCW)?
    concurrent_write:
        May many processors write the same cell in one step (CRCW)?
    combining_write:
        Does a write collision combine values (minimum / lowest-numbered
        processor wins) — the paper's extended CRCW used by the O(lg n) MST?
    unit_scan:
        Are ``+-scan`` and ``max-scan`` single program steps (the scan model)?
    test_and_set:
        Is an atomic test-and-set / priority-reservation write a native
        single step?  True on the binary-forking model (its one atomic)
        and on the extended CRCW (a combining write subsumes it); other
        models must simulate it (see ``Machine.charge_test_and_set``).
    forked:
        Must every primitive be launched by a binary fork/join tree
        (spawn/sync span charged, ledger recorded)?  True only for the
        binary-forking model.
    """

    concurrent_read: bool
    concurrent_write: bool
    combining_write: bool
    unit_scan: bool
    test_and_set: bool = False
    forked: bool = False


CAPABILITIES: dict[str, Capabilities] = {
    "erew": Capabilities(False, False, False, False),
    "crew": Capabilities(True, False, False, False),
    "crcw": Capabilities(True, True, True, False, test_and_set=True),
    "scan": Capabilities(False, False, False, True),
    "binary-forking": Capabilities(True, False, False, False,
                                   test_and_set=True, forked=True),
}

MODEL_NAMES = tuple(CAPABILITIES)
