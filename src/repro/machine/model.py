"""Simulated P-RAM machines with explicit program-step cost models.

The paper's central move is a *cost-model* change: take an EREW P-RAM and add
two scan operations (``+-scan`` and ``max-scan``) as primitives costing one
program step, the same as a parallel memory reference.  Python gives us no
physical P-RAM, so this module provides the closest executable equivalent: a
:class:`Machine` that *computes* every vector primitive with vectorized NumPy
(for wall-clock speed) while *charging* program steps according to the model
it simulates.  Step counts — the quantity all of the paper's Table 1 and
Table 5 results are stated in — are therefore measured exactly, not timed.

Five models are provided (see :mod:`repro.machine.capabilities`): ``erew``,
``crew``, ``crcw`` (with the paper's combining-write extension), ``scan``
(EREW + unit-time scans), and ``binary-forking`` — the
Blelloch–Fineman–Gu–Sun successor to the P-RAM, where every primitive is
launched by a binary fork/join tree whose ``2⌈lg p⌉`` span is charged on
top of the block work and recorded spawn-for-sync in a
:class:`~repro.machine.counters.ForkCounters` ledger.  The same algorithm
code runs unchanged on any of them; only the charges differ.  Machines may also be constructed with fewer
processors than vector elements (``num_processors=p``), in which case each
processor simulates a contiguous block of ``ceil(n/p)`` elements exactly as in
the paper's Figure 10, and ``work = p * steps`` gives the processor-step
complexity of Table 5.
"""
from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Optional, Union

import numpy as np

from .._util import ceil_div, ceil_log2
from ..backends import Backend, resolve_backend
from ..observe.metrics import registry as _metrics
from .capabilities import CAPABILITIES, Capabilities
from .counters import FaultCounters, ForkCounters, StepCounter, StepSnapshot

__all__ = ["Machine", "CapabilityError"]

#: environment variable toggling lazy fusion (``0`` off / ``1`` on),
#: mirroring ``REPRO_BACKEND``; an explicit ``Machine(fusion=...)`` wins
FUSION_ENV_VAR = "REPRO_FUSION"

_FUSION_VALUES = {"1": True, "true": True, "on": True, "yes": True,
                  "0": False, "false": False, "off": False, "no": False}


def _resolve_fusion(flag: Optional[bool]) -> bool:
    """The machine's fusion setting: the explicit constructor flag if
    given, else the ``REPRO_FUSION`` environment variable, else on."""
    if flag is not None:
        return bool(flag)
    env = os.environ.get(FUSION_ENV_VAR)
    if env is None or not env.strip():
        return True
    try:
        return _FUSION_VALUES[env.strip().lower()]
    except KeyError:
        raise ValueError(
            f"{FUSION_ENV_VAR} must be one of {sorted(_FUSION_VALUES)}, "
            f"got {env!r}") from None


class CapabilityError(RuntimeError):
    """An algorithm used a primitive the machine model does not provide.

    For example, a gather with duplicate indices is a concurrent read and is
    illegal on an EREW or scan-model machine, and an unconstrained scatter is
    a concurrent write, legal only on CRCW (or when the machine was created
    with ``allow_concurrent_write=True``, as the paper's line-drawing routine
    requires even in the scan model).
    """


class Machine:
    """A simulated P-RAM with a per-model program-step cost model.

    Parameters
    ----------
    model:
        One of ``"erew"``, ``"crew"``, ``"crcw"``, ``"scan"``,
        ``"binary-forking"``.
    num_processors:
        If given, simulate only ``p`` physical processors: an ``n``-element
        primitive charges ``ceil(n/p)`` sub-steps for its elementwise part
        (Figure 10's long-vector simulation).  If ``None`` (default) the
        machine always has as many processors as vector elements.
    allow_concurrent_write:
        Permit the "simplest form of concurrent write" (arbitrary winner /
        combining) on non-CRCW models, recording its use in
        ``concurrent_writes_used``.  The paper explicitly invokes this for
        placing line-drawing pixels on the grid.
    seed:
        Seed for the machine's ``numpy.random.Generator`` used by the
        probabilistic algorithms (quicksort pivots, MST coin flips, MIS).
    reliability:
        A :class:`repro.faults.ReliabilityPolicy`, or ``True`` for the
        default policy.  When set, the primitive scans are *checked*:
        every ``plus_scan`` / ``max_scan`` is cross-verified against an
        independent Section 3.4 construction, retried on mismatch, and —
        once retries are exhausted — the machine degrades to the EREW
        ``2⌈lg n⌉`` tree-scan costing (see :mod:`repro.faults.checked`).
        ``None`` (default) leaves scans unchecked and uncharged for
        verification — step counts are bit-identical to a plain machine.
    fault_injector:
        A :class:`repro.faults.FaultInjector` that corrupts primitive
        outputs (scan / elementwise / permute) on its schedule.  ``None``
        (default) disables injection with zero overhead.
    backend:
        The execution backend computing every primitive's result: a name
        (``"numpy"``, ``"blocked"``, ``"blocked:<chunk>"``,
        ``"distributed"``, ``"distributed:<workers>[:<min_n>]"``,
        ``"reference"``), a :class:`repro.backends.Backend` instance, or
        ``None`` (default) to honor the ``REPRO_BACKEND`` environment
        variable before falling back to vectorized NumPy.  The backend
        changes only *how* results are computed; charges, capabilities
        and fault handling are backend-independent (see
        :mod:`repro.backends`).
    fusion:
        Whether elementwise vector operations build lazy expression DAGs
        fused into single ``fused_pipeline`` primitives at observable
        boundaries (see :mod:`repro.core.lazy` and ``docs/fusion.md``).
        ``None`` (default) honors the ``REPRO_FUSION`` environment
        variable (``0`` / ``1``) before falling back to on.  Step charges
        are bit-identical either way — fusion changes execution, never
        the cost model.  Fusion is suspended automatically while a
        ``fault_injector`` is attached (injection targets individual
        eager primitives).

    Examples
    --------
    >>> m = Machine("scan")
    >>> v = m.vector([2, 1, 2, 3, 5, 8, 13, 21])
    >>> from repro.core import scans
    >>> scans.plus_scan(v).to_list()
    [0, 2, 3, 5, 8, 13, 21, 34]
    >>> m.steps
    1
    """

    def __init__(
        self,
        model: str = "scan",
        *,
        num_processors: Optional[int] = None,
        allow_concurrent_write: bool = False,
        seed: Optional[int] = None,
        reliability=None,
        fault_injector=None,
        backend: Optional[Union[str, Backend]] = None,
        fusion: Optional[bool] = None,
    ) -> None:
        if model not in CAPABILITIES:
            raise ValueError(
                f"unknown machine model {model!r}; expected one of {sorted(CAPABILITIES)}"
            )
        if num_processors is not None and num_processors < 1:
            raise ValueError(f"num_processors must be >= 1, got {num_processors}")
        self.model = model
        self.capabilities: Capabilities = CAPABILITIES[model]
        #: the execution backend computing every primitive (see ``execute``)
        self.backend: Backend = resolve_backend(backend)
        #: lazy-fusion setting (see ``fusion_enabled`` for the live gate)
        self.fusion: bool = _resolve_fusion(fusion)
        self.num_processors = num_processors
        self.allow_concurrent_write = allow_concurrent_write
        self.counter = StepCounter()
        #: spawn/sync/revoke ledger (only the binary-forking model moves
        #: the spawn/sync columns; revokes are model-independent)
        self.fork_counters = ForkCounters()
        self.concurrent_writes_used = 0
        self.peak_elements = 0
        self.rng = np.random.default_rng(seed)
        if reliability is True:
            from ..faults.plan import ReliabilityPolicy

            reliability = ReliabilityPolicy()
        #: reliability policy for checked scans (None = unchecked)
        self.reliability = reliability
        #: fault injector corrupting primitive outputs (None = no injection)
        self.fault_injector = fault_injector
        #: fault ledger; shared with the injector's when one is attached
        self.fault_counters: FaultCounters = (
            fault_injector.counters if fault_injector is not None
            else FaultCounters()
        )
        #: set when checked scans exhaust retries: every later scan is
        #: served by the EREW fallback (see ``fail_scan_unit``)
        self.scan_unit_failed = False
        # re-entrancy latch: True while a checked scan runs its raw
        # primitive / verifier (the checker cannot check itself)
        self._suppress_scan_check = False
        # process-wide metrics (repro.observe): handles cached here so the
        # charging hot path pays one attribute access, not a name lookup
        _metrics.counter("machine.instances").inc()
        self._metric_scan_invocations = _metrics.counter("scan.invocations")
        self._metric_scan_n = _metrics.histogram("scan.n")
        self._metric_fused_pipelines = _metrics.counter("fusion.pipelines")
        self._metric_fused_steps = _metrics.counter("fusion.fused_steps")

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def steps(self) -> int:
        """Total program steps charged so far (the paper's step complexity)."""
        return self.counter.steps

    @property
    def processors(self) -> int:
        """Number of physical processors: ``num_processors`` if fixed,
        otherwise the largest vector length seen so far."""
        return self.num_processors if self.num_processors is not None else self.peak_elements

    @property
    def work(self) -> int:
        """Processor-step complexity: ``processors * steps`` (Table 5)."""
        return self.processors * self.steps

    @property
    def fusion_enabled(self) -> bool:
        """Whether elementwise ops defer into lazy DAGs right now: the
        machine's ``fusion`` setting, suspended while a fault injector is
        attached (the injector's schedule addresses individual eager
        primitives, so fused execution would change which outputs it
        corrupts)."""
        return self.fusion and self.fault_injector is None

    def reset(self) -> None:
        """Zero all counters and clear the degraded-scan latch (the RNG
        state and any attached injector's schedule position are kept)."""
        self.counter.reset()
        self.fork_counters.reset()
        self.concurrent_writes_used = 0
        self.peak_elements = 0
        self.fault_counters.reset()
        self.scan_unit_failed = False

    def fail_scan_unit(self) -> None:
        """Mark the scan unit hard-failed: every subsequent primitive scan
        is served by the EREW ``2⌈lg n⌉`` fallback (charged as
        ``scan_degraded``).  Checked machines reach this state on their own
        when retries are exhausted; calling it directly models a known-bad
        unit."""
        self.scan_unit_failed = True

    def snapshot(self) -> StepSnapshot:
        """A point-in-time reading, stamped with the active backend's name
        and fusion setting so profile reports and failure messages
        identify the engine configuration."""
        return self.counter.snapshot(backend=self.backend.name,
                                     fusion=self.fusion)

    @contextmanager
    def measure(self):
        """``with m.measure() as r: ...`` then ``r.delta.steps``.

        Like :meth:`StepCounter.measure`, but the delta snapshot carries
        this machine's backend name."""
        before = self.snapshot()

        class _Holder:
            delta: Optional[StepSnapshot] = None

        holder = _Holder()
        try:
            yield holder
        finally:
            holder.delta = self.snapshot() - before

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        p = self.num_processors if self.num_processors is not None else "n"
        return (f"Machine(model={self.model!r}, p={p}, "
                f"backend={self.backend.name!r}, "
                f"fusion={'on' if self.fusion else 'off'}, "
                f"steps={self.steps})")

    # ------------------------------------------------------------------ #
    # Execution dispatch
    # ------------------------------------------------------------------ #

    def execute(self, op: str, *args, inject: Optional[str] = None, **kwargs):
        """The single dispatch point between cost model and computation.

        Runs one primitive on the execution backend and, when ``inject``
        names a fault kind (``"scan"``, ``"elementwise"`` or
        ``"permute"``), exposes the raw output to the machine's fault
        injector.  Every primitive in :mod:`repro.core` computes through
        here — never through NumPy directly — so swapping the backend (or
        attaching an injector) covers the whole primitive set at once.
        Charging stays with the ``charge_*`` methods: ``execute`` costs
        nothing.  Dispatch goes through :meth:`repro.backends.Backend.run`,
        the per-op observability hook — an attached profiler sees every
        primitive's wall time and byte estimates from there.
        """
        out = self.backend.run(op, *args, **kwargs)
        if inject is not None and self.fault_injector is not None:
            out = self.fault_injector.corrupt_primitive(inject, out)
        return out

    def execute_fused(self, plan):
        """Run one compiled :class:`~repro.backends.plan.FusedPlan`.

        The plan's logical charges were paid op by op when the lazy
        expression was built (see :mod:`repro.core.lazy`), so this only
        executes — through the same dispatch as every primitive, which is
        where observers see the pipeline's wall time and true temp
        bytes — and counts the pipeline in the process-wide metrics."""
        self._metric_fused_pipelines.inc()
        self._metric_fused_steps.inc(len(plan.steps))
        return self.execute("fused_pipeline", plan)

    # ------------------------------------------------------------------ #
    # Cost formulas
    # ------------------------------------------------------------------ #

    def _block(self, n: int) -> int:
        """Elements per processor: ``ceil(n/p)``, 1 when processors >= n."""
        self.peak_elements = max(self.peak_elements, n)
        if n == 0:
            return 0
        if self.num_processors is None:
            return 1
        return ceil_div(n, min(self.num_processors, n))

    def _effective_p(self, n: int) -> int:
        if self.num_processors is None:
            return n
        return min(self.num_processors, n)

    def _cross_scan_cost(self, p: int) -> int:
        """Cost of a scan across ``p`` processors: one step in the scan
        model, an up-and-down tree sweep of memory references otherwise.
        On the binary-forking model the sweep *is* the fork/join walk, so
        the count is the same ``2⌈lg p⌉`` as EREW (recorded in the fork
        ledger by the caller)."""
        if p <= 1:
            return 1
        if self.capabilities.unit_scan:
            return 1
        return max(1, 2 * ceil_log2(p))

    def _fork_record(self, n: int) -> None:
        """Record the binary fork/join tree launching one primitive over
        ``n`` elements: ``p - 1`` spawns matched by ``p - 1`` syncs (the
        tree always joins before the primitive returns, which is why the
        ledger reconciles at every quiescent point).  No-op on the
        synchronous P-RAM models."""
        if not self.capabilities.forked or n <= 0:
            return
        p = self._effective_p(n)
        if p > 1:
            self.fork_counters.spawned += p - 1
            self.fork_counters.synced += p - 1

    def _spawn_span(self, n: int) -> int:
        """Span of the fork/join tree launching one primitive over ``n``
        elements on a forked model (``2⌈lg p⌉``; 0 on the synchronous
        models, where primitives launch for free), recorded in the fork
        ledger as a side effect."""
        if not self.capabilities.forked or n <= 0:
            return 0
        self._fork_record(n)
        p = self._effective_p(n)
        return 2 * ceil_log2(p) if p > 1 else 0

    # ------------------------------------------------------------------ #
    # Charging API (used by Vector / core ops, not by algorithms directly)
    # ------------------------------------------------------------------ #

    def charge_elementwise(self, n: int) -> None:
        """One parallel arithmetic / logical / select step over ``n``
        elements (plus the fork/join span on the binary-forking model,
        where even a map must spawn its threads)."""
        self.counter.charge("elementwise", self._block(n) + self._spawn_span(n))

    def charge_permute(self, n: int) -> None:
        """One exclusive-write permutation step (unique destinations)."""
        self.counter.charge("permute", self._block(n) + self._spawn_span(n))

    def charge_gather(self, n: int, *, unique: bool) -> None:
        """A parallel read ``A[I]``.  With duplicate indices this is a
        concurrent read, unavailable on EREW / scan machines."""
        if not unique and not self.capabilities.concurrent_read:
            raise CapabilityError(
                f"gather with duplicate indices is a concurrent read, "
                f"illegal on the {self.model!r} model"
            )
        self.counter.charge("gather", self._block(n) + self._spawn_span(n))

    def charge_scan(self, n: int) -> None:
        """One scan primitive over an ``n``-element vector."""
        self._metric_scan_invocations.inc()
        self._metric_scan_n.observe(n)
        if n == 0:
            self.counter.charge("scan", 0)
            return
        block = self._block(n)
        p = self._effective_p(n)
        # On the forked model the tree sweep is computed on the fork/join
        # walk itself, so the scan pays exactly the EREW count and only
        # the ledger records the spawns.
        self._fork_record(n)
        if block <= 1:
            cost = self._cross_scan_cost(p)
        else:
            # Figure 10: serial scan within each block, cross-processor scan,
            # then add the processor offset back into each block.
            cost = 2 * block + self._cross_scan_cost(p)
        self.counter.charge("scan", cost)

    def charge_broadcast(self, n: int) -> None:
        """One value distributed to ``n`` processors.

        Concurrent-read machines do this in one memory step; EREW needs a
        ``lg p`` copy tree; the scan model does it with one scan (Section 2.2).
        """
        if n == 0:
            self.counter.charge("broadcast", 0)
            return
        block = self._block(n)
        p = self._effective_p(n)
        if self.capabilities.forked:
            # the value rides the fork tree down; the mandatory join walks
            # back up — concurrent reads don't save the spawn
            cross = self._spawn_span(n) or 1
        elif self.capabilities.concurrent_read:
            cross = 1
        elif self.capabilities.unit_scan:
            cross = 1
        else:
            cross = max(1, ceil_log2(p))
        self.counter.charge("broadcast", (block - 1) + cross if block > 1 else cross)

    def charge_reduce(self, n: int) -> None:
        """All elements combined to one value (+, max, min, or, and).

        One combining write on extended CRCW, one scan on the scan model, a
        ``lg p`` tree otherwise.
        """
        if n == 0:
            self.counter.charge("reduce", 0)
            return
        block = self._block(n)
        p = self._effective_p(n)
        if self.capabilities.forked:
            # combining on the join half of the mandatory fork/join walk
            cross = self._spawn_span(n) or 1
        elif self.capabilities.combining_write:
            cross = 1
        elif self.capabilities.unit_scan:
            cross = 1
        else:
            cross = max(1, ceil_log2(p))
        self.counter.charge("reduce", (block - 1) + cross if block > 1 else cross)

    def charge_combine_write(self, n: int) -> None:
        """A scatter with possibly-colliding destinations where collisions
        combine (min / arbitrary winner).  The paper's extended-CRCW write."""
        if not self.capabilities.concurrent_write:
            if not self.allow_concurrent_write:
                raise CapabilityError(
                    f"combining/concurrent write is illegal on the {self.model!r} "
                    f"model; construct the Machine with allow_concurrent_write=True "
                    f"to permit it (as the paper does for line drawing)"
                )
            self.concurrent_writes_used += 1
        self.counter.charge("combine_write",
                            self._block(n) + self._spawn_span(n))

    def charge_test_and_set(self, n: int, *, revoked: int = 0) -> None:
        """One atomic reservation step over ``n`` cells: every contender
        test-and-sets (min-priority wins), the BFGS algorithms' one atomic.

        Native on models whose capabilities include ``test_and_set`` (the
        binary-forking model and the extended CRCW, whose combining write
        subsumes it); the other models *simulate* the colliding writes
        with a sort-and-segmented-copy charged ``2⌈lg p⌉`` extra on this
        one step — the same simulation :meth:`SparseMatrix.matvec
        <repro.algorithms.sparse.SparseMatrix.matvec>` charges for
        duplicate gathers, so the comparison table can run the BFGS
        algorithms on every model.  ``revoked`` records how many of the
        reservation attempts lost the race and must retry in a later
        round (the fork ledger's revoke column).
        """
        if revoked:
            if revoked < 0:
                raise ValueError(f"negative revoke count: {revoked}")
            self.fork_counters.revoked += revoked
        if n == 0:
            self.counter.charge("test_and_set", 0)
            return
        block = self._block(n)
        p = self._effective_p(n)
        if self.capabilities.test_and_set:
            cost = block + self._spawn_span(n)
        else:
            cost = block + (2 * ceil_log2(p) if p > 1 else 0)
        self.counter.charge("test_and_set", cost)

    # ------------------------------------------------------------------ #
    # Vector factories
    # ------------------------------------------------------------------ #

    def vector(self, data, dtype=None) -> "Vector":
        """Create a :class:`~repro.core.vector.Vector` owned by this machine.

        An empty sequence without an explicit dtype becomes an int64 vector
        (NumPy's float64 default for ``[]`` is never what scan code wants).
        """
        from ..core.vector import Vector

        arr = np.asarray(data, dtype=dtype)
        if (dtype is None and arr.size == 0 and arr.dtype == np.float64
                and not isinstance(data, np.ndarray)):
            # only the [] literal gets the int64 default: an actual empty
            # float64 array keeps its dtype (identities depend on it)
            arr = arr.astype(np.int64)
        if arr is data:  # the caller's own array: defensive copy
            return Vector(self, arr)
        return Vector._adopt(self, arr)

    def flags(self, data) -> "Vector":
        """Create a boolean flag vector owned by this machine."""
        from ..core.vector import Vector

        arr = np.asarray(data, dtype=bool)
        if arr is data:
            return Vector(self, arr)
        return Vector._adopt(self, arr)

    def zeros(self, n: int, dtype=np.int64) -> "Vector":
        from ..core.vector import Vector

        return Vector._adopt(self, np.zeros(n, dtype=dtype))

    def arange(self, n: int) -> "Vector":
        """The index vector ``[0, 1, ..., n-1]`` (each processor knows its
        own address; no steps are charged)."""
        from ..core.vector import Vector

        return Vector._adopt(self, np.arange(n, dtype=np.int64))
