"""Simulated P-RAM machine models with program-step accounting.

See :class:`repro.machine.Machine` for the entry point.
"""
from .capabilities import CAPABILITIES, Capabilities, MODEL_NAMES
from .counters import StepCounter, StepSnapshot
from .model import CapabilityError, Machine
from .trace import Trace, TraceEvent, trace

__all__ = [
    "CAPABILITIES",
    "Capabilities",
    "CapabilityError",
    "MODEL_NAMES",
    "Machine",
    "StepCounter",
    "StepSnapshot",
    "Trace",
    "TraceEvent",
    "trace",
]
