"""Simulated P-RAM machine models with program-step accounting.

See :class:`repro.machine.Machine` for the entry point.
"""
from .capabilities import CAPABILITIES, Capabilities, MODEL_NAMES
from .counters import ForkCounters, StepCounter, StepSnapshot
from .model import CapabilityError, Machine

__all__ = [
    "CAPABILITIES",
    "COMPARISONS",
    "Capabilities",
    "CapabilityError",
    "ForkCounters",
    "MODEL_NAMES",
    "Machine",
    "ModelComparison",
    "StepCounter",
    "StepSnapshot",
    "Trace",
    "TraceEvent",
    "render_models_table",
    "run_comparison",
    "trace",
]

from .comparison import (  # noqa: E402  (needs Machine defined above)
    COMPARISONS,
    ModelComparison,
    render_models_table,
    run_comparison,
)
from .trace import Trace, TraceEvent, trace  # noqa: E402
