"""Table 1 re-run: the same algorithm costed on every machine model.

The paper's Table 1 argues that moving scans into the primitive set changes
*asymptotic* step counts, not constants.  This module re-runs that argument
35 years later with the binary-forking model in the line-up: a registry of
self-verifying workloads (:data:`COMPARISONS`), a runner that executes one
workload on every model with identical inputs (:func:`run_comparison`), and
a renderer producing the step-count grid behind ``python -m repro models``
(:func:`render_models_table`).

Each workload's ``run`` function draws its input from the *machine's* seeded
rng, so every model sees byte-identical data and internal randomness; only
the charging differs.  After each run the fork ledger must reconcile exactly
(``spawned == synced``) — a workload that leaves live threads is a bug, not
a number.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

import numpy as np

from .capabilities import MODEL_NAMES
from .model import Machine

__all__ = [
    "COMPARISONS",
    "ComparisonCell",
    "ModelComparison",
    "render_models_table",
    "run_comparison",
]


@dataclass(frozen=True)
class ModelComparison:
    """One row of the models table.

    ``run(machine, n)`` must build its input from ``machine.rng``, execute
    the algorithm, and *verify* the answer (an unverified step count is
    not evidence).  It is called once per model.
    """

    name: str
    default_n: int
    run: Callable[[Machine, int], None]
    description: str


@dataclass(frozen=True)
class ComparisonCell:
    """The cost of one workload on one model."""

    model: str
    n: int
    steps: int
    ops: int
    spawned: int
    synced: int
    revoked: int


# --------------------------------------------------------------------- #
# Workloads (imports deferred: algorithms -> core -> machine is the
# package's layering, so this module must not import them at load time)
# --------------------------------------------------------------------- #

def _run_plus_scan(m: Machine, n: int) -> None:
    from ..core import scans

    data = m.rng.integers(0, 100, size=n)
    out = scans.plus_scan(m.vector(data)).to_array()
    expect = np.concatenate(([0], np.cumsum(data[:-1]))) if n else data
    assert np.array_equal(out, expect)


def _run_radix_sort(m: Machine, n: int) -> None:
    from ..algorithms import split_radix_sort

    data = m.rng.integers(0, 256, size=n)
    out = split_radix_sort(m.vector(data), 8).to_array()
    assert np.array_equal(out, np.sort(data))


def _run_quicksort(m: Machine, n: int) -> None:
    from ..algorithms import quicksort

    data = m.rng.integers(0, 1000, size=n)
    out = quicksort(m.vector(data)).to_array()
    assert np.array_equal(out, np.sort(data))


def _run_list_ranking(m: Machine, n: int) -> None:
    from ..algorithms import list_rank

    order = m.rng.permutation(n)
    next_ = np.full(n, -1, dtype=np.int64)
    next_[order[:-1]] = order[1:]
    ranks = list_rank(m.vector(next_)).to_array()
    # distance to the end of the list: last node in `order` has rank 0
    assert np.array_equal(ranks[order], np.arange(n - 1, -1, -1))


def _run_list_contraction(m: Machine, n: int) -> None:
    from ..algorithms import list_contraction, serial_list_ranks

    order = m.rng.permutation(n)
    next_ = np.full(n, -1, dtype=np.int64)
    next_[order[:-1]] = order[1:]
    result = list_contraction(m, next_)
    assert np.array_equal(result.ranks, serial_list_ranks(next_))


def _run_random_permutation(m: Machine, n: int) -> None:
    from ..algorithms import random_permutation, serial_random_permutation

    result = random_permutation(m, n)
    assert np.array_equal(result.order, serial_random_permutation(result.darts))


def _run_spmv(m: Machine, n: int) -> None:
    from ..algorithms import SparseMatrix

    rows = min(n, 64)
    dense = np.where(m.rng.random((rows, rows)) < 4.0 / rows,
                     m.rng.integers(1, 10, size=(rows, rows)), 0)
    x = m.rng.integers(-5, 6, size=rows)
    y = SparseMatrix(m, dense).matvec(x).to_array()
    assert np.array_equal(y, dense @ x)


COMPARISONS: dict[str, ModelComparison] = {
    "plus_scan": ModelComparison(
        "plus_scan", 1024, _run_plus_scan,
        "one +-scan: the primitive the paper promotes to unit time"),
    "radix_sort": ModelComparison(
        "radix_sort", 256, _run_radix_sort,
        "split radix sort, 8-bit keys (Section 2.2.1)"),
    "quicksort": ModelComparison(
        "quicksort", 256, _run_quicksort,
        "segmented quicksort (Section 2.3.1)"),
    "list_ranking": ModelComparison(
        "list_ranking", 256, _run_list_ranking,
        "pointer-jumping list ranking (Table 1's list ranking row)"),
    "list_contraction": ModelComparison(
        "list_contraction", 256, _run_list_contraction,
        "BFGS priority-splice list contraction with replayed ranks"),
    "random_permutation": ModelComparison(
        "random_permutation", 256, _run_random_permutation,
        "BFGS dart-throwing permutation, sequentially equivalent to "
        "Durstenfeld"),
    "spmv": ModelComparison(
        "spmv", 256, _run_spmv,
        "sparse matrix-vector product over the Figure 6 representation"),
}


def run_comparison(
    name: str,
    *,
    models: Sequence[str] = MODEL_NAMES,
    n: Optional[int] = None,
    seed: int = 0,
    num_processors: Optional[int] = None,
) -> list[ComparisonCell]:
    """Run one registered workload on each model and return its cost cells.

    Every model gets a fresh :class:`Machine` seeded identically, so inputs
    and internal randomness are byte-for-byte the same; the fork ledger is
    checked for exact reconciliation after every run.
    """
    comp = COMPARISONS[name]
    size = comp.default_n if n is None else n
    cells = []
    for model in models:
        m = Machine(model, seed=seed, num_processors=num_processors)
        comp.run(m, size)
        if not m.fork_counters.reconciles():
            raise RuntimeError(
                f"{name} on {model!r} left the fork ledger unbalanced: "
                f"{m.fork_counters.summary()}")
        fc = m.fork_counters
        cells.append(ComparisonCell(model=model, n=size, steps=m.steps,
                                    ops=m.counter.ops, spawned=fc.spawned,
                                    synced=fc.synced, revoked=fc.revoked))
    return cells


def render_models_table(
    *,
    names: Optional[Iterable[str]] = None,
    models: Sequence[str] = MODEL_NAMES,
    n: Optional[int] = None,
    seed: int = 0,
    num_processors: Optional[int] = None,
) -> str:
    """Render the Table-1-style grid: one row per workload, one step-count
    column per model, plus the binary-forking fork-ledger totals."""
    selected = list(names) if names is not None else list(COMPARISONS)
    unknown = [s for s in selected if s not in COMPARISONS]
    if unknown:
        raise KeyError(f"unknown comparison(s): {', '.join(unknown)}; "
                       f"available: {', '.join(COMPARISONS)}")
    grid: dict[str, list[ComparisonCell]] = {
        s: run_comparison(s, models=models, n=n, seed=seed,
                          num_processors=num_processors)
        for s in selected
    }
    name_w = max(len("algorithm (steps)"), *(len(s) for s in selected))
    col_w = {mdl: max(len(mdl), 8) for mdl in models}
    lines = []
    sizes = sorted({c.n for cells in grid.values() for c in cells})
    size_label = (f"n={sizes[0]}" if len(sizes) == 1
                  else "n=" + ",".join(str(s) for s in sizes))
    lines.append(f"Program steps by model ({size_label}, seed={seed}, "
                 f"p={'n' if num_processors is None else num_processors})")
    lines.append("")
    header = "algorithm (steps)".ljust(name_w)
    for mdl in models:
        header += "  " + mdl.rjust(col_w[mdl])
    lines.append(header)
    lines.append("-" * len(header))
    spawned = synced = revoked = 0
    for s in selected:
        row = s.ljust(name_w)
        for cell in grid[s]:
            row += "  " + str(cell.steps).rjust(col_w[cell.model])
            if cell.model == "binary-forking":
                spawned += cell.spawned
                synced += cell.synced
                revoked += cell.revoked
        lines.append(row)
    if "binary-forking" in models:
        lines.append("")
        status = "reconciled" if spawned == synced else "UNBALANCED"
        lines.append(f"binary-forking fork ledger: spawned={spawned} "
                     f"synced={synced} ({status}), revoked={revoked}")
    return "\n".join(lines)
