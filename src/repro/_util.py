"""Small shared helpers used across the package."""
from __future__ import annotations

import numpy as np

__all__ = ["ceil_log2", "ceil_div", "as_int_array", "as_bool_array"]


def ceil_log2(n: int) -> int:
    """``ceil(log2(n))`` for positive integers, with ``ceil_log2(1) == 0``.

    This is the tree depth used throughout the paper's cost analysis: an
    ``n``-leaf balanced binary tree has ``ceil_log2(n)`` levels of edges.
    """
    if n < 1:
        raise ValueError(f"ceil_log2 requires n >= 1, got {n}")
    return int(n - 1).bit_length()


def ceil_div(a: int, b: int) -> int:
    """Ceiling integer division ``ceil(a / b)`` for non-negative ``a``, positive ``b``."""
    if b <= 0:
        raise ValueError(f"ceil_div requires b > 0, got {b}")
    return -(-a // b)


def as_int_array(data) -> np.ndarray:
    """Coerce ``data`` to a 1-D ``int64`` array, rejecting higher dimensions."""
    arr = np.asarray(data)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D vector, got shape {arr.shape}")
    if not np.issubdtype(arr.dtype, np.integer):
        arr = arr.astype(np.int64)
    return arr.astype(np.int64, copy=False)


def as_bool_array(data) -> np.ndarray:
    """Coerce ``data`` to a 1-D boolean array."""
    arr = np.asarray(data)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D flag vector, got shape {arr.shape}")
    return arr.astype(bool, copy=False)
