"""The scan primitives and the scans derived from them.

The paper admits exactly **two** primitive scans — integer ``+-scan`` and
integer ``max-scan`` — and builds every other scan on top (Section 3.4).
This module mirrors that structure:

* :func:`plus_scan` and :func:`max_scan` are the primitives; each charges one
  ``scan`` program step to the machine (unit time on the scan model, a
  ``2⌈lg n⌉`` tree of memory references on the other models).
* :func:`min_scan`, :func:`or_scan`, :func:`and_scan` and the ``back_*``
  variants are *compositions*: they call the primitives on transformed
  vectors, so their step cost is exactly what the paper's constructions pay.
* ``*_reduce`` and ``*_distribute`` are the Section 2.2 simple operations
  built from scans (``+-distribute`` = ``+-scan`` + backward copy).

All scans are **exclusive** (the paper's definition): element ``i`` of the
result combines elements ``0 .. i-1`` of the input, and element ``0`` is the
operator's identity.

>>> from repro import Machine
>>> m = Machine("scan")
>>> plus_scan(m.vector([2, 1, 2, 3, 5, 8, 13, 21])).to_list()
[0, 2, 3, 5, 8, 13, 21, 34]
"""
from __future__ import annotations

import numpy as np

from .lazy import LazyNode, compile_plan
from .vector import Vector

__all__ = [
    "plus_scan",
    "max_scan",
    "min_scan",
    "or_scan",
    "and_scan",
    "back_plus_scan",
    "back_max_scan",
    "back_min_scan",
    "back_or_scan",
    "back_and_scan",
    "plus_reduce",
    "max_reduce",
    "min_reduce",
    "or_reduce",
    "and_reduce",
    "plus_distribute",
    "max_distribute",
    "min_distribute",
    "or_distribute",
    "and_distribute",
    "max_identity",
    "min_identity",
]


# --------------------------------------------------------------------- #
# Identities
# --------------------------------------------------------------------- #

def max_identity(dtype: np.dtype):
    """The identity of ``max`` for ``dtype`` (the smallest representable value)."""
    dtype = np.dtype(dtype)
    if dtype == np.bool_:
        return False
    if np.issubdtype(dtype, np.integer):
        return np.iinfo(dtype).min
    return -np.inf


def min_identity(dtype: np.dtype):
    """The identity of ``min`` for ``dtype`` (the largest representable value)."""
    dtype = np.dtype(dtype)
    if dtype == np.bool_:
        return True
    if np.issubdtype(dtype, np.integer):
        return np.iinfo(dtype).max
    return np.inf


# --------------------------------------------------------------------- #
# The two primitives
# --------------------------------------------------------------------- #

def _checked_dispatch(v: Vector) -> bool:
    """True when this scan must route through the checked executor
    (:mod:`repro.faults.checked`): the machine has a reliability policy or
    a hard-failed scan unit, and we are not already inside a checked scan."""
    m = v.machine
    return ((m.reliability is not None or m.scan_unit_failed)
            and not m._suppress_scan_check)


def plus_scan(v: Vector) -> Vector:
    """Exclusive ``+-scan``: ``out[i] = v[0] + ... + v[i-1]``, ``out[0] = 0``.

    One of the two primitive scans; one program step.

    Sums accumulate **in the vector's own dtype**: on narrow integer
    dtypes partial sums wrap modulo ``2**width`` exactly as the fixed-width
    adders of the paper's Section 3 hardware would, and because modular
    addition is associative the result is bit-identical on every execution
    backend (see ``docs/verification.md``).  Boolean vectors are widened to
    int64 first, so a ``+-scan`` of flags counts rather than ORs.
    """
    if _checked_dispatch(v):
        from ..faults.checked import reliable_plus_scan

        return reliable_plus_scan(v)
    v.machine.charge_scan(len(v))
    node = v._pending_node()
    if node is not None:
        # fuse the scan onto the pending elementwise chain: one pipeline,
        # one pass per chunk on the blocked backend.  The bool -> int64
        # widening below becomes an uncharged cast step, exactly mirroring
        # the host-side astype of the eager path.
        if node.dtype == np.bool_:
            node = LazyNode("cast", None, (node,), node.n,
                            np.dtype(np.int64))
        plan = compile_plan(node, terminal="plus_scan")
        return Vector._adopt(v.machine, v.machine.execute_fused(plan))
    data = v.data
    if data.dtype == np.bool_:
        data = data.astype(np.int64)
    out = v.machine.execute("plus_scan", data, inject="scan")
    return Vector._adopt(v.machine, out)


def max_scan(v: Vector, identity=None) -> Vector:
    """Exclusive ``max-scan``: ``out[i] = max(v[0..i-1])``, ``out[0] = identity``.

    One of the two primitive scans; one program step.  ``identity`` defaults
    to the smallest representable value of the dtype; pass ``identity=0`` to
    match the paper's unsigned-integer figures.
    """
    if _checked_dispatch(v):
        from ..faults.checked import reliable_max_scan

        return reliable_max_scan(v, identity=identity)
    v.machine.charge_scan(len(v))
    if identity is None:
        identity = max_identity(v.dtype)
    node = v._pending_node()
    if node is not None:
        plan = compile_plan(node, terminal="max_scan",
                            terminal_args=(identity,))
        return Vector._adopt(v.machine, v.machine.execute_fused(plan))
    out = v.machine.execute("max_scan", v.data, identity, inject="scan")
    return Vector._adopt(v.machine, out)


# --------------------------------------------------------------------- #
# Derived scans (Section 3.4 compositions — costs flow through primitives)
# --------------------------------------------------------------------- #

def _reversing_key(v: Vector) -> Vector:
    """An order-reversing involution that is total on ``v``'s dtype:
    bitwise NOT for integers (``x -> -x - 1`` signed, ``max - x``
    unsigned), logical NOT for bool, negation for floats.  Plain negation
    is *not* total on machine integers — ``-iinfo.min`` overflows back to
    itself for signed dtypes and wraps for unsigned ones — so ``min-scan``
    keys through NOT instead.  One elementwise step, same as negation."""
    if v.dtype == np.bool_ or np.issubdtype(v.dtype, np.integer):
        return ~v
    return -v


def _reversing_key_scalar(x, dtype):
    """:func:`_reversing_key` applied to one scalar of ``dtype``."""
    dtype = np.dtype(dtype)
    if dtype == np.bool_:
        return not x
    if np.issubdtype(dtype, np.integer):
        return np.bitwise_not(np.asarray(x, dtype=dtype))[()]
    return -np.asarray(x, dtype=dtype)[()]


def _one_bit(v: Vector) -> Vector:
    """``v`` coerced to {0, 1} int64 by a nonzero test — the bit vector the
    Section 3.4 one-bit scans operate on.  A plain ``astype(int64)`` is not
    enough: negative integers would stay negative and NaN has no integer
    value, while the nonzero test is total.  One elementwise step."""
    return v._unary(lambda a: (a != 0).astype(np.int64))


def min_scan(v: Vector, identity=None) -> Vector:
    """Exclusive ``min-scan``, built as ``inv(max-scan(inv(v)))``
    (Section 3.4) where ``inv`` is the order-reversing key transform of
    :func:`_reversing_key` — total on every dtype, unlike negation."""
    if identity is None:
        identity = min_identity(v.dtype)
    scanned = max_scan(_reversing_key(v),
                       identity=_reversing_key_scalar(identity, v.dtype))
    return _reversing_key(scanned)


def or_scan(v: Vector) -> Vector:
    """Exclusive ``or-scan``: a one-bit ``max-scan`` (Section 3.4)."""
    scanned = max_scan(_one_bit(v), identity=0)
    return scanned > 0


def and_scan(v: Vector) -> Vector:
    """Exclusive ``and-scan``: a one-bit ``min-scan`` (Section 3.4)."""
    scanned = min_scan(_one_bit(v), identity=1)
    return scanned > 0


# --------------------------------------------------------------------- #
# Backward scans: read the vector in reverse order (Section 3.4)
# --------------------------------------------------------------------- #

def _backward(scan_fn, v: Vector, **kw) -> Vector:
    return scan_fn(v.reverse(), **kw).reverse()


def back_plus_scan(v: Vector) -> Vector:
    """Exclusive ``+-scan`` from the last element toward the first."""
    return _backward(plus_scan, v)


def back_max_scan(v: Vector, identity=None) -> Vector:
    """Exclusive ``max-scan`` from the last element toward the first."""
    return _backward(max_scan, v, identity=identity)


def back_min_scan(v: Vector, identity=None) -> Vector:
    """Exclusive ``min-scan`` from the last element toward the first."""
    return _backward(min_scan, v, identity=identity)


def back_or_scan(v: Vector) -> Vector:
    return _backward(or_scan, v)


def back_and_scan(v: Vector) -> Vector:
    return _backward(and_scan, v)


# --------------------------------------------------------------------- #
# Reductions (all elements -> one value)
# --------------------------------------------------------------------- #

def _reduce(v: Vector, op: str, empty):
    v.machine.charge_reduce(len(v))
    if len(v) == 0:
        return empty
    return v.machine.execute("reduce", v.data, op).item()


def plus_reduce(v: Vector):
    """Sum of all elements (one reduce step)."""
    return _reduce(v, "sum", 0)


def max_reduce(v: Vector):
    """Maximum of all elements (one reduce step)."""
    return _reduce(v, "max", max_identity(v.dtype))


def min_reduce(v: Vector):
    """Minimum of all elements (one reduce step)."""
    return _reduce(v, "min", min_identity(v.dtype))


def or_reduce(v: Vector) -> bool:
    return bool(_reduce(v, "any", False))


def and_reduce(v: Vector) -> bool:
    return bool(_reduce(v, "all", True))


# --------------------------------------------------------------------- #
# Distributes (Section 2.2): every element receives the reduction
# --------------------------------------------------------------------- #

def _distribute(v: Vector, op: str) -> Vector:
    """Reduce then broadcast — the paper implements ``+-distribute`` as a
    ``+-scan`` followed by a backward copy, which is one reduce-shaped step
    plus one broadcast-shaped step on every model."""
    v.machine.charge_reduce(len(v))
    v.machine.charge_broadcast(len(v))
    if len(v) == 0:
        return Vector._adopt(v.machine, np.empty(0, dtype=v.dtype))
    total = v.machine.execute("reduce", v.data, op)
    return Vector._adopt(v.machine,
                         v.machine.execute("full", len(v), total, v.dtype))


def plus_distribute(v: Vector) -> Vector:
    """Every element receives the sum of all elements (Figure 1)."""
    return _distribute(v, "sum")


def max_distribute(v: Vector) -> Vector:
    """Every element receives the maximum of all elements."""
    return _distribute(v, "max")


def min_distribute(v: Vector) -> Vector:
    """Every element receives the minimum of all elements."""
    return _distribute(v, "min")


def or_distribute(v: Vector) -> Vector:
    return _distribute(v, "any")


def and_distribute(v: Vector) -> Vector:
    return _distribute(v, "all")
