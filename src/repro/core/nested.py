"""A nested-vector facade over the segmented toolkit.

The paper manipulates (values, segment-flags) pairs by hand; its
successors (the scan-vector model, NESL) bundled them into a *nested
vector* — a vector of vectors with data-parallel operations applied
within each subvector.  :class:`SegmentedVector` is that bundle for this
library: one flat :class:`~repro.core.vector.Vector` plus its segment
flags, with the Section 2.2/2.3 operations as methods.

>>> from repro import Machine
>>> from repro.core.nested import SegmentedVector
>>> m = Machine("scan")
>>> sv = SegmentedVector.from_nested(m, [[5, 1], [3, 4, 3, 9], [2, 6]])
>>> sv.plus_scan().to_nested()
[[0, 5], [0, 3, 7, 10], [0, 2]]
>>> sv.sums().to_list()
[6, 19, 8]

Every method charges exactly what the underlying segmented operation
charges; the facade adds no steps of its own.
"""
from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..machine.model import Machine
from . import ops, segmented
from .vector import Vector

__all__ = ["SegmentedVector"]


class SegmentedVector:
    """A vector of subvectors, stored flat with segment flags."""

    __slots__ = ("values", "seg_flags")

    def __init__(self, values: Vector, seg_flags: Vector) -> None:
        segmented.check_segment_flags(values, seg_flags)
        self.values = values
        self.seg_flags = seg_flags

    # ------------------------------------------------------------------ #
    # Construction / deconstruction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_nested(cls, machine: Machine, nested: Iterable[Sequence]) -> "SegmentedVector":
        """Build from a list of (non-empty) lists."""
        nested = [list(seg) for seg in nested]
        if any(len(seg) == 0 for seg in nested):
            raise ValueError("segments must be non-empty (the representation "
                             "cannot express an empty segment)")
        flat = [x for seg in nested for x in seg]
        flags = []
        for seg in nested:
            flags.extend([True] + [False] * (len(seg) - 1))
        return cls(machine.vector(flat), machine.flags(flags))

    @classmethod
    def from_lengths(cls, values: Vector, lengths) -> "SegmentedVector":
        """Attach segment structure of the given lengths to a flat vector.

        The descriptor is validated here, at construction: lengths must be
        positive (this representation cannot express an empty segment) and
        must sum to the flat length — a corrupted descriptor (e.g. from a
        faulted allocation scan) fails immediately instead of silently
        mis-segmenting every later operation.
        """
        arr = np.asarray(lengths, dtype=np.int64)
        if (arr <= 0).any():
            bad = arr[arr <= 0]
            raise ValueError(
                f"segment lengths must be positive, got {bad.tolist()} "
                f"(negative or zero lengths corrupt the segment descriptor)")
        total = int(arr.sum())
        if total != len(values):
            raise ValueError(
                f"segment lengths sum to {total} but the flat vector holds "
                f"{len(values)} elements; the descriptor does not tile the "
                f"vector")
        flags = segmented.flags_from_lengths(values.machine, arr)
        return cls(values, flags)

    def to_nested(self) -> list[list]:
        """Host-side: the list-of-lists view."""
        out: list[list] = []
        for v, f in zip(self.values.to_list(), self.seg_flags.to_list()):
            if f:
                out.append([])
            out[-1].append(v)
        return out

    def __len__(self) -> int:
        """Number of segments."""
        return int(np.count_nonzero(self.seg_flags.data))

    @property
    def flat_length(self) -> int:
        return len(self.values)

    def lengths(self) -> np.ndarray:
        """Per-segment lengths (host-side view)."""
        return segmented.segment_lengths(self.seg_flags)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SegmentedVector({self.to_nested()!r})"

    def _with(self, values: Vector) -> "SegmentedVector":
        return SegmentedVector(values, self.seg_flags)

    # ------------------------------------------------------------------ #
    # Per-segment scans and distributes
    # ------------------------------------------------------------------ #

    def plus_scan(self) -> "SegmentedVector":
        return self._with(segmented.seg_plus_scan(self.values, self.seg_flags))

    def max_scan(self, identity=None) -> "SegmentedVector":
        return self._with(segmented.seg_max_scan(self.values, self.seg_flags,
                                                 identity=identity))

    def min_scan(self, identity=None) -> "SegmentedVector":
        return self._with(segmented.seg_min_scan(self.values, self.seg_flags,
                                                 identity=identity))

    def back_plus_scan(self) -> "SegmentedVector":
        return self._with(segmented.seg_back_plus_scan(self.values, self.seg_flags))

    def copy_first(self) -> "SegmentedVector":
        """Each segment's head value copied across the segment."""
        return self._with(segmented.seg_copy(self.values, self.seg_flags))

    def index(self) -> "SegmentedVector":
        """Each element's offset within its segment."""
        return self._with(segmented.seg_index(self.seg_flags))

    def _distribute(self, fn) -> "SegmentedVector":
        return self._with(fn(self.values, self.seg_flags))

    def sum_distribute(self) -> "SegmentedVector":
        return self._distribute(segmented.seg_plus_distribute)

    def max_distribute(self) -> "SegmentedVector":
        return self._distribute(segmented.seg_max_distribute)

    def min_distribute(self) -> "SegmentedVector":
        return self._distribute(segmented.seg_min_distribute)

    # ------------------------------------------------------------------ #
    # Per-segment reductions (one value per segment)
    # ------------------------------------------------------------------ #

    def _heads(self, per_slot: Vector) -> Vector:
        return ops.pack(per_slot, self.seg_flags)

    def sums(self) -> Vector:
        """Per-segment sums as a dense vector (one per segment)."""
        return self._heads(segmented.seg_plus_distribute(self.values,
                                                         self.seg_flags))

    def maxima(self) -> Vector:
        return self._heads(segmented.seg_max_distribute(self.values,
                                                        self.seg_flags))

    def minima(self) -> Vector:
        return self._heads(segmented.seg_min_distribute(self.values,
                                                        self.seg_flags))

    # ------------------------------------------------------------------ #
    # Elementwise (the flat vector's operators, structure preserved)
    # ------------------------------------------------------------------ #

    def map(self, fn) -> "SegmentedVector":
        """Apply ``fn`` (Vector -> Vector, elementwise) inside each
        segment; the structure rides along unchanged."""
        out = fn(self.values)
        if not isinstance(out, Vector) or len(out) != len(self.values):
            raise ValueError("map function must return an equal-length Vector")
        return self._with(out)

    def __add__(self, other):
        rhs = other.values if isinstance(other, SegmentedVector) else other
        return self._with(self.values + rhs)

    def __mul__(self, other):
        rhs = other.values if isinstance(other, SegmentedVector) else other
        return self._with(self.values * rhs)

    # ------------------------------------------------------------------ #
    # Structure-changing operations
    # ------------------------------------------------------------------ #

    def split(self, flags: Vector) -> "SegmentedVector":
        """Within each segment, pack false-flagged elements first (stable);
        segments keep their extents."""
        return self._with(segmented.seg_split(self.values, flags, self.seg_flags))

    def pack(self, keep: Vector) -> "SegmentedVector":
        """Drop un-flagged elements; segments shrink and empty segments
        disappear from the structure."""
        if keep.dtype != np.bool_:
            raise TypeError("keep flags must be boolean")
        m = self.values.machine
        new_values = ops.pack(self.values, keep)
        seg_ids = segmented.segment_ids(self.seg_flags)
        surviving_ids = ops.pack(seg_ids, keep)
        m.charge_permute(max(len(new_values), 1))
        m.charge_elementwise(max(len(new_values), 1))
        ids = surviving_ids.data
        nf = np.empty(len(ids), dtype=bool)
        if len(ids):
            nf[0] = True
            nf[1:] = ids[1:] != ids[:-1]
        return SegmentedVector(new_values, Vector(m, nf))

    def concat_segments(self, other: "SegmentedVector") -> "SegmentedVector":
        """Append the other nested vector's segments after this one's."""
        return SegmentedVector(
            ops.concat(self.values, other.values),
            ops.concat(self.seg_flags, other.seg_flags),
        )
