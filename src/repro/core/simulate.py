"""Literal Section-3.4 constructions: every scan from the two primitives.

The paper's hardware implements exactly two scans — integer ``+-scan`` and
integer ``max-scan`` — and Section 3.4 shows how every other scan used in the
paper is *simulated* with at most two calls to those primitives plus access
to the bit representation of the numbers.  This module is that section,
executable:

* ``sim_min_scan``      — invert, ``max-scan``, invert.
* ``sim_or_scan``       — a one-bit ``max-scan``.
* ``sim_and_scan``      — a one-bit ``min-scan``.
* ``sim_seg_max_scan``  — Figure 16: append the segment number above the
  value bits, one unsegmented ``max-scan``, strip the appended bits.
* ``sim_seg_copy``      — place the identity everywhere but segment heads,
  segmented ``max-scan``, put the head element back.
* ``sim_seg_plus_scan`` — unsegmented ``+-scan``, copy each segment head's
  scan value across the segment, subtract.
* ``sim_back_*``        — read the vector into the processors in reverse.
* ``sim_float_max_scan``— flip exponent+significand of negatives so the bit
  patterns order like the floats, run the integer ``max-scan``, flip back.

The bit-append constructions require non-negative values of a declared
width; :mod:`repro.core.segmented` provides the general-dtype equivalents
(same costs, rank encoding instead of raw bits).  The test suite checks the
two agree element-for-element wherever both are defined.
"""
from __future__ import annotations

import numpy as np

from . import scans
from .vector import Vector

__all__ = [
    "sim_min_scan",
    "sim_or_scan",
    "sim_and_scan",
    "sim_back_plus_scan",
    "sim_back_max_scan",
    "sim_seg_max_scan",
    "sim_seg_min_scan",
    "sim_seg_copy",
    "sim_seg_plus_scan",
    "sim_float_max_scan",
    "sim_float_min_scan",
    "sim_verify_plus_scan",
    "sim_verify_max_scan",
]


def _require_unsigned(v: Vector, bits: int) -> None:
    if bits < 1 or bits > 62:
        raise ValueError(f"bit width must be in [1, 62], got {bits}")
    d = v.data
    if len(d) and (d.min() < 0 or d.max() >= (1 << bits)):
        raise ValueError(
            f"values must lie in [0, 2^{bits}) for the bit-append construction"
        )


def sim_min_scan(v: Vector) -> Vector:
    """``min-scan`` by inverting the source, executing a ``max-scan``, and
    inverting the result (Section 3.4).

    The identity handed to the ``max-scan`` is chosen so that its negation is
    the identity of ``min`` (the largest representable value).
    """
    neg = -v
    if np.issubdtype(v.dtype, np.integer):
        identity = -np.iinfo(v.dtype).max
    else:
        identity = -np.inf
    out = scans.max_scan(neg, identity=identity)
    return -out


def sim_or_scan(v: Vector) -> Vector:
    """``or-scan`` as a one-bit ``max-scan`` (Section 3.4)."""
    bit = v.astype(np.int64)
    return scans.max_scan(bit, identity=0) > 0


def sim_and_scan(v: Vector) -> Vector:
    """``and-scan`` as a one-bit ``min-scan``, itself built on ``max-scan``
    with identity 1 (so an empty prefix ANDs to true)."""
    bit = v.astype(np.int64)
    neg = -bit
    return -scans.max_scan(neg, identity=-1) > 0


def sim_back_plus_scan(v: Vector) -> Vector:
    """Backward scans read the vector into the processors in reverse order."""
    return scans.plus_scan(v.reverse()).reverse()


def sim_back_max_scan(v: Vector, identity=None) -> Vector:
    return scans.max_scan(v.reverse(), identity=identity).reverse()


def sim_seg_max_scan(v: Vector, seg_flags: Vector, *, bits: int) -> Vector:
    """Figure 16's segmented ``max-scan``.

    ::

        Seg-Number <- SFlag + enumerate(SFlag)
        B          <- append(Seg-Number, A)
        C          <- extract-bottom-bits(max-scan(B))
        Result     <- if SFlag then identity else C

    The appended segment number dominates the comparison, so the running max
    can never escape backward across a segment boundary; segment heads
    receive the identity (0 for these unsigned values) explicitly.
    """
    _require_unsigned(v, bits)
    sf_int = seg_flags.astype(np.int64)
    seg_number = sf_int + scans.plus_scan(sf_int)
    appended = (seg_number << bits) | v.astype(np.int64)
    scanned = scans.max_scan(appended, identity=0)
    bottom = scanned & Vector._adopt(
        v.machine, np.full(len(v), (1 << bits) - 1, dtype=np.int64))
    return seg_flags.where(0, bottom).astype(v.dtype)


def sim_seg_copy(v: Vector, seg_flags: Vector, *, bits: int) -> Vector:
    """Segmented copy from the segmented ``max-scan``: place the identity in
    all but the first element of each segment, scan, then put the first
    element back (Sections 2.2 and 2.3.1)."""
    _require_unsigned(v, bits)
    masked = seg_flags.where(v, 0)
    scanned = sim_seg_max_scan(masked, seg_flags, bits=bits)
    return seg_flags.where(v, scanned)


def sim_seg_min_scan(v: Vector, seg_flags: Vector, *, bits: int) -> Vector:
    """Segmented ``min-scan`` from the segmented ``max-scan``: complement
    the values within their bit width, scan, complement back (the same
    inversion Section 3.4 uses for the unsegmented min)."""
    _require_unsigned(v, bits)
    mask = (1 << bits) - 1
    inverted = v ^ mask
    scanned = sim_seg_max_scan(inverted, seg_flags, bits=bits)
    return scanned ^ mask


def sim_seg_plus_scan(v: Vector, seg_flags: Vector) -> Vector:
    """Segmented ``+-scan`` from the unsegmented one (Section 3.4): scan the
    whole vector, copy each segment head's scan value across its segment,
    and subtract it out."""
    if len(v.data) and v.data.min() < 0:
        raise ValueError("sim_seg_plus_scan requires non-negative values")
    full = scans.plus_scan(v)
    # each segment head's value in `full` copied across the segment; head
    # scan values are bounded by the total, so size the append field to fit.
    total = int(np.sum(v.data)) if len(v) else 0
    bits = max(int(total).bit_length() + 1, 1)
    if bits > 62:
        raise ValueError("sim_seg_plus_scan requires values whose total fits in 62 bits")
    offsets = sim_seg_copy(full, seg_flags, bits=bits)
    return full - offsets


def _float_flip(bits_vec: np.ndarray) -> np.ndarray:
    """Map IEEE-754 bit patterns to integers that order like the floats:
    flip exponent and significand when the sign bit is set."""
    mask = np.where(bits_vec < 0, np.int64(0x7FFFFFFFFFFFFFFF), np.int64(0))
    return bits_vec ^ mask


def sim_float_max_scan(v: Vector) -> Vector:
    """Floating-point ``max-scan`` on the integer ``max-scan`` (Section 3.4):
    reinterpret, conditionally flip, scan, flip back, reinterpret."""
    if not np.issubdtype(v.dtype, np.floating):
        raise TypeError("sim_float_max_scan requires a float vector")
    m = v.machine
    raw = v.data.astype(np.float64).view(np.int64)
    m.charge_elementwise(len(v))  # the flip
    flipped = Vector._adopt(m, m.execute("elementwise", _float_flip, raw))
    scanned = scans.max_scan(flipped)
    m.charge_elementwise(len(v))  # the flip back
    out_bits = m.execute("elementwise", _float_flip, scanned.data)
    out = out_bits.view(np.float64).copy()
    if len(out):
        out[0] = -np.inf  # the identity of float max
    return Vector(m, out)


def sim_float_min_scan(v: Vector) -> Vector:
    """Floating-point ``min-scan``: negate, float ``max-scan``, negate."""
    out = sim_float_max_scan(-v)
    return -out


# --------------------------------------------------------------------- #
# Self-checking scans: cross-verify a primitive result against an
# independent construction (the detection half of repro.faults)
# --------------------------------------------------------------------- #

def sim_verify_plus_scan(v: Vector, out: Vector) -> bool:
    """Cross-verify ``out == plus_scan(v)`` by the Section 3.4 backward
    construction: an *independent* backward ``+-scan`` gives the suffix
    sums, and for an exclusive forward/backward pair

    ::

        out[i] + back[i] + v[i] == +-reduce(v)      for every i

    A corruption of any single element of ``out`` (or of the verifying
    scan — a benign false alarm) breaks the identity at that element.
    Every operation charges its true steps: one extra scan, two permutes
    (the reversals), the three-way add, and the comparison's and-reduce —
    the measured cost of making a scan self-checking at machine level.

    Float vectors are compared with a relative tolerance (forward and
    backward float sums round differently); integer and boolean vectors
    are compared exactly.
    """
    m = v.machine
    n = len(v)
    if n == 0:
        return True
    back = sim_back_plus_scan(v)
    total = scans.plus_reduce(v)
    m.charge_elementwise(n)  # out + back + v
    resid = m.execute("elementwise", lambda a, b, c: a + b + c,
                      out.data, back.data, v.data)
    m.charge_elementwise(n)  # compare against the distributed total
    if np.issubdtype(resid.dtype, np.floating):
        match = m.execute("elementwise",
                          lambda r: np.isclose(r, total, rtol=1e-9, atol=0.0),
                          resid)
    else:
        match = m.execute("elementwise", np.equal, resid, total)
    m.charge_reduce(n)       # and-reduce of the per-element verdicts
    return bool(match.all())


def sim_verify_max_scan(v: Vector, out: Vector, identity=None) -> bool:
    """Cross-verify ``out == max_scan(v, identity)`` by the defining
    recurrence of the exclusive scan (Section 1.1):

    ::

        out[0] == identity,   out[i+1] == max(out[i], v[i])

    checked in parallel with one elementwise max, one unit shift and one
    and-reduce.  The recurrence is complete: *any* vector other than the
    true scan violates it at its first wrong element, so a single
    corrupted element is always caught.  Charges its true extra steps.
    """
    m = v.machine
    n = len(v)
    if n == 0:
        return True
    if identity is None:
        identity = scans.max_identity(v.dtype)
    inc = out.maximum(v)                    # inclusive scan candidate
    expected = inc.shift(1, fill=identity)  # expected[0] = identity
    m.charge_elementwise(n)                 # compare
    match = m.execute("elementwise", np.equal, out.data, expected.data)
    m.charge_reduce(n)                      # and-reduce of the verdicts
    return bool(match.all())
