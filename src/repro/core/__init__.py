"""Core scan-model data types and primitives.

* :mod:`repro.core.vector` — the machine-owned :class:`Vector`.
* :mod:`repro.core.scans` — the two primitive scans and their derivatives.
* :mod:`repro.core.segmented` — segmented scans and segmented operations.
* :mod:`repro.core.ops` — enumerate / copy / distribute / split / pack /
  allocate / load-balance.
* :mod:`repro.core.simulate` — the literal Section-3.4 constructions of all
  scans from ``+-scan`` and ``max-scan`` alone.
"""
from . import nested, ops, scans, segmented, simulate
from .nested import SegmentedVector
from .vector import Vector

__all__ = ["SegmentedVector", "Vector", "nested", "ops", "scans", "segmented", "simulate"]
