"""Segmented vectors and segmented scan operations (Section 2.3).

A segmented vector is an ordinary vector plus a parallel boolean vector of
*segment flags*; each ``True`` flag marks the first element of a segment
(Figure 4).  Segmented scans restart at every segment boundary, letting one
program step operate independently over many sets at once — the engine behind
the paper's quicksort, graph representation, and MST.

Every segmented operation here can be built from **at most two unsegmented
primitive scans** (Section 3.4, Figure 16): a segmented ``max-scan`` appends
the segment number to each value before an unsegmented ``max-scan``; a
segmented ``+-scan`` subtracts a copied segment-head offset from an
unsegmented ``+-scan``.  The functions in this module compute results with
vectorized NumPy using exactly that construction (with the bit-append
replaced by a rank encoding so arbitrary signed/float values cannot
overflow), dispatched through the machine's execution backend
(:meth:`repro.machine.Machine.execute`), and charge the machine the
construction's primitive cost.
The bit-literal constructions are in :mod:`repro.core.simulate` and are
tested to agree element-for-element.
"""
from __future__ import annotations

import numpy as np

from ..machine.model import Machine
from . import scans
from .vector import Vector

__all__ = [
    "SegmentError",
    "check_segment_flags",
    "check_flags_only",
    "segment_ids",
    "segment_heads",
    "segment_lengths",
    "flags_from_lengths",
    "seg_plus_scan",
    "seg_max_scan",
    "seg_min_scan",
    "seg_or_scan",
    "seg_and_scan",
    "seg_back_plus_scan",
    "seg_back_max_scan",
    "seg_back_min_scan",
    "seg_copy",
    "seg_back_copy",
    "seg_enumerate",
    "seg_index",
    "seg_plus_distribute",
    "seg_max_distribute",
    "seg_min_distribute",
    "seg_or_distribute",
    "seg_and_distribute",
    "seg_split",
    "seg_split3",
    "seg_flag_from_neighbor_change",
]


# --------------------------------------------------------------------- #
# Structure helpers
# --------------------------------------------------------------------- #

class SegmentError(ValueError, TypeError):
    """A segment descriptor violated its invariants: flags not boolean, a
    length mismatch with the values, or a first element that does not begin
    a segment.  Every segmented entry point raises this one type (it
    subclasses both ``ValueError`` and ``TypeError``, so pre-existing
    handlers of either keep working)."""


def check_segment_flags(values: Vector, seg_flags: Vector) -> None:
    """Validate a (values, segment-flags) pair: same machine, same length,
    boolean flags, and the first element starts a segment.  Violations
    raise :class:`SegmentError`; every segmented entry point calls this
    (or :func:`check_flags_only` when there is no values vector) before
    charging any steps."""
    if seg_flags.machine is not values.machine:
        raise SegmentError("values and segment flags live on different machines")
    if len(seg_flags) != len(values):
        raise SegmentError(
            f"segment flags length {len(seg_flags)} != values length {len(values)}"
        )
    _check_flag_invariants(seg_flags)


def check_flags_only(seg_flags: Vector) -> None:
    """Validate a bare segment-flag vector (entry points like
    :func:`segment_ids` that take no values vector)."""
    _check_flag_invariants(seg_flags)


def _check_flag_invariants(seg_flags: Vector) -> None:
    if seg_flags.dtype != np.bool_:
        raise SegmentError("segment flags must be boolean")
    if len(seg_flags) and not seg_flags.data[0]:
        raise SegmentError("the first element must begin a segment (flags[0] is False)")


def _charge(machine: Machine, n: int, *, n_scans: int, n_ew: int) -> None:
    """Charge the cost of a segmented operation's Section-3.4 construction."""
    for _ in range(n_scans):
        machine.charge_scan(n)
    for _ in range(n_ew):
        machine.charge_elementwise(n)


def _charge_distribute(machine: Machine, n: int) -> None:
    """Charge one per-segment reduce-and-spread.

    On the scan model this is the Section-3.4 scan construction; on an
    extended CRCW it is one combining write into the segment's cell plus a
    concurrent read back (the O(1) step Table 1's CRCW column uses); plain
    P-RAMs pay the scan tree.
    """
    caps = machine.capabilities
    if caps.combining_write and caps.concurrent_read:
        machine.counter.charge("combine_write", machine._block(n))
        machine.charge_broadcast(n)
        machine.charge_elementwise(n)
    else:
        _charge(machine, n, n_scans=4, n_ew=5)


def _charge_copy(machine: Machine, n: int) -> None:
    """Charge one per-segment head broadcast: a write plus a concurrent
    read on CREW/CRCW, the segmented max-scan construction elsewhere."""
    if machine.capabilities.concurrent_read:
        machine.counter.charge("memory", machine._block(n))
        machine.charge_broadcast(n)
    else:
        _charge(machine, n, n_scans=2, n_ew=3)


def segment_ids(seg_flags: Vector) -> Vector:
    """The segment number of each element (one scan + one elementwise step)."""
    check_flags_only(seg_flags)
    m = seg_flags.machine
    _charge(m, len(seg_flags), n_scans=1, n_ew=1)
    return Vector._adopt(m, m.execute("segment_ids", seg_flags.data))


def segment_heads(seg_flags: Vector) -> np.ndarray:
    """Indices of segment heads (host-side helper; no steps charged)."""
    check_flags_only(seg_flags)
    return np.flatnonzero(seg_flags.data)


def segment_lengths(seg_flags: Vector) -> np.ndarray:
    """Length of each segment (host-side helper; no steps charged)."""
    check_flags_only(seg_flags)
    heads = np.flatnonzero(seg_flags.data)
    return np.diff(np.append(heads, len(seg_flags)))


def flags_from_lengths(machine: Machine, lengths) -> Vector:
    """Build segment flags for segments of the given lengths.

    This is the allocation pattern of Section 2.4 / Figure 8: a ``+-scan`` of
    the lengths gives head pointers, and a flag is permuted to each head.
    Charged as one scan plus one permute.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    if (lengths < 0).any():
        raise ValueError("segment lengths must be non-negative")
    total = int(lengths.sum())
    machine.charge_scan(max(len(lengths), 1))
    machine.charge_permute(max(total, 1))
    heads = (np.cumsum(lengths) - lengths)[lengths > 0]
    flags = machine.execute("permute", np.ones(len(heads), dtype=bool),
                            heads, total, False)
    return Vector._adopt(machine, flags)


# --------------------------------------------------------------------- #
# Core segmented scans
# --------------------------------------------------------------------- #

def seg_plus_scan(values: Vector, seg_flags: Vector) -> Vector:
    """Segmented exclusive ``+-scan`` (Figure 4).

    Construction (Section 3.4): unsegmented ``+-scan``, copy the scan value
    at each segment head across the segment, subtract.  Charged as three
    scans (the copy is itself a segmented max-scan) plus elementwise steps.
    """
    check_segment_flags(values, seg_flags)
    m = values.machine
    _charge(m, len(values), n_scans=3, n_ew=4)
    v = values.data
    if v.dtype == np.bool_:
        v = v.astype(np.int64)
    return Vector._adopt(m, m.execute("seg_plus_scan", v, seg_flags.data))


def seg_max_scan(values: Vector, seg_flags: Vector, identity=None) -> Vector:
    """Segmented exclusive ``max-scan`` (Figure 4 / Figure 16).

    Charged as the paper's construction: one scan to number the segments,
    one unsegmented ``max-scan`` on the appended keys, plus the append /
    extract elementwise steps.
    """
    check_segment_flags(values, seg_flags)
    m = values.machine
    _charge(m, len(values), n_scans=2, n_ew=3)
    if identity is None:
        identity = scans.max_identity(values.dtype)
    out = m.execute("seg_extreme_scan", values.data, seg_flags.data,
                    identity, is_max=True)
    return Vector._adopt(m, out)


def seg_min_scan(values: Vector, seg_flags: Vector, identity=None) -> Vector:
    """Segmented exclusive ``min-scan`` (inverted segmented ``max-scan``)."""
    check_segment_flags(values, seg_flags)
    m = values.machine
    _charge(m, len(values), n_scans=2, n_ew=5)
    if identity is None:
        identity = scans.min_identity(values.dtype)
    out = m.execute("seg_extreme_scan", values.data, seg_flags.data,
                    identity, is_max=False)
    return Vector._adopt(m, out)


def seg_or_scan(values: Vector, seg_flags: Vector) -> Vector:
    """Segmented exclusive ``or-scan`` (one-bit segmented ``max-scan``)."""
    check_segment_flags(values, seg_flags)
    v = scans._one_bit(values)
    return seg_max_scan(v, seg_flags, identity=0) > 0


def seg_and_scan(values: Vector, seg_flags: Vector) -> Vector:
    """Segmented exclusive ``and-scan`` (one-bit segmented ``min-scan``)."""
    check_segment_flags(values, seg_flags)
    v = scans._one_bit(values)
    return seg_min_scan(v, seg_flags, identity=1) > 0


# --------------------------------------------------------------------- #
# Backward segmented scans
# --------------------------------------------------------------------- #

def _reverse_segment_flags(sf: np.ndarray) -> np.ndarray:
    """Segment-begin flags of the reversed vector: an element begins a
    reversed segment iff it *ends* a segment in the forward order."""
    n = len(sf)
    ends = np.empty(n, dtype=bool)
    if n:
        ends[:-1] = sf[1:]
        ends[-1] = True
    return ends[::-1]


def seg_back_plus_scan(values: Vector, seg_flags: Vector) -> Vector:
    """Segmented exclusive ``+-scan`` running from each segment's end to its
    start (two extra permute steps for the reversals)."""
    check_segment_flags(values, seg_flags)
    m = values.machine
    m.charge_permute(len(values))
    rsf = Vector._adopt(m, _reverse_segment_flags(seg_flags.data))
    rv = Vector._adopt(m, m.execute("reverse", values.data))
    out = seg_plus_scan(rv, rsf)
    m.charge_permute(len(values))
    return Vector._adopt(m, m.execute("reverse", out.data))


def seg_back_max_scan(values: Vector, seg_flags: Vector, identity=None) -> Vector:
    """Backward segmented ``max-scan``."""
    check_segment_flags(values, seg_flags)
    m = values.machine
    m.charge_permute(len(values))
    rsf = Vector._adopt(m, _reverse_segment_flags(seg_flags.data))
    rv = Vector._adopt(m, m.execute("reverse", values.data))
    out = seg_max_scan(rv, rsf, identity=identity)
    m.charge_permute(len(values))
    return Vector._adopt(m, m.execute("reverse", out.data))


def seg_back_min_scan(values: Vector, seg_flags: Vector, identity=None) -> Vector:
    """Backward segmented ``min-scan``."""
    check_segment_flags(values, seg_flags)
    m = values.machine
    m.charge_permute(len(values))
    rsf = Vector._adopt(m, _reverse_segment_flags(seg_flags.data))
    rv = Vector._adopt(m, m.execute("reverse", values.data))
    out = seg_min_scan(rv, rsf, identity=identity)
    m.charge_permute(len(values))
    return Vector._adopt(m, m.execute("reverse", out.data))


# --------------------------------------------------------------------- #
# Segmented copy / enumerate / distribute (Section 2.2 within segments)
# --------------------------------------------------------------------- #

def seg_copy(values: Vector, seg_flags: Vector) -> Vector:
    """Copy each segment's first element across its segment (the segmented
    ``copy`` of Section 2.3.1, built on a segmented ``max-scan``)."""
    check_segment_flags(values, seg_flags)
    m = values.machine
    _charge_copy(m, len(values))
    return Vector._adopt(m, m.execute("seg_copy", values.data, seg_flags.data))


def seg_back_copy(values: Vector, seg_flags: Vector) -> Vector:
    """Copy each segment's *last* element across its segment (a backward
    segmented copy, as used by ``+-distribute``)."""
    check_segment_flags(values, seg_flags)
    m = values.machine
    _charge_copy(m, len(values))
    return Vector._adopt(m, m.execute("seg_back_copy", values.data,
                                      seg_flags.data))


def seg_enumerate(flags: Vector, seg_flags: Vector) -> Vector:
    """Number the ``True`` elements within each segment, starting at 0
    (segmented version of Figure 1's ``enumerate``)."""
    check_segment_flags(flags, seg_flags)
    return seg_plus_scan(flags.astype(np.int64), seg_flags)


def seg_index(seg_flags: Vector) -> Vector:
    """Each element's offset within its segment (a segmented ``+-scan`` of
    all ones)."""
    check_flags_only(seg_flags)
    ones = Vector._adopt(seg_flags.machine,
                         np.ones(len(seg_flags), dtype=np.int64))
    seg_flags.machine.charge_elementwise(len(seg_flags))
    return seg_plus_scan(ones, seg_flags)


def _seg_distribute(values: Vector, seg_flags: Vector, op: str) -> Vector:
    """Per-segment reduction distributed to every element of the segment:
    one segmented scan + one segmented copy worth of steps."""
    check_segment_flags(values, seg_flags)
    m = values.machine
    _charge_distribute(m, len(values))
    out = m.execute("seg_distribute", values.data, seg_flags.data, op)
    return Vector._adopt(m, out)


def seg_plus_distribute(values: Vector, seg_flags: Vector) -> Vector:
    """Every element receives the sum of its segment."""
    return _seg_distribute(values, seg_flags, "sum")


def seg_max_distribute(values: Vector, seg_flags: Vector) -> Vector:
    """Every element receives the maximum of its segment."""
    return _seg_distribute(values, seg_flags, "max")


def seg_min_distribute(values: Vector, seg_flags: Vector) -> Vector:
    """Every element receives the minimum of its segment (used by the MST's
    ``min-distribute`` over edge weights)."""
    return _seg_distribute(values, seg_flags, "min")


def seg_or_distribute(values: Vector, seg_flags: Vector) -> Vector:
    return _seg_distribute(values, seg_flags, "or")


def seg_and_distribute(values: Vector, seg_flags: Vector) -> Vector:
    """Every element receives the AND of its segment (used by quicksort's
    sortedness check)."""
    return _seg_distribute(values, seg_flags, "and")


# --------------------------------------------------------------------- #
# Segmented split (the engine of quicksort, Section 2.3.1)
# --------------------------------------------------------------------- #

def seg_split(values: Vector, flags: Vector, seg_flags: Vector) -> Vector:
    """Segmented ``split``: within each segment, pack ``False`` elements to
    the bottom and ``True`` elements to the top, stably (Section 2.3.1).

    Built from a segmented enumerate for each side, a segmented copy of each
    segment's offset, and one permute — all O(1) program steps.
    """
    check_segment_flags(values, seg_flags)
    m = values.machine
    not_flags = ~flags
    i_down = seg_enumerate(not_flags, seg_flags)
    # within-segment index of True elements, counted from the segment top
    n_false = seg_plus_distribute(not_flags.astype(np.int64), seg_flags)
    i_up_rank = seg_enumerate(flags, seg_flags)
    i_up = n_false + i_up_rank
    local = flags.where(i_up, i_down)
    # global offset of each segment start
    head_pos = seg_copy(Vector._adopt(m, np.arange(len(values), dtype=np.int64)),
                        seg_flags)
    index = local + head_pos
    return values.permute(index)


def seg_split3(values: Vector, lesser: Vector, equal: Vector, seg_flags: Vector) -> Vector:
    """Three-way segmented split: within each segment pack elements flagged
    ``lesser`` to the bottom, ``equal`` to the middle and the rest to the
    top, stably — the quicksort split of Section 2.3.1.

    A constant number of segmented enumerates / distributes / copies plus
    one permute.
    """
    check_segment_flags(values, seg_flags)
    m = values.machine
    greater = ~(lesser | equal)
    n_less = seg_plus_distribute(lesser.astype(np.int64), seg_flags)
    n_eq = seg_plus_distribute(equal.astype(np.int64), seg_flags)
    i_less = seg_enumerate(lesser, seg_flags)
    i_eq = seg_enumerate(equal, seg_flags) + n_less
    i_gt = seg_enumerate(greater, seg_flags) + n_less + n_eq
    local = lesser.where(i_less, equal.where(i_eq, i_gt))
    head_pos = seg_copy(Vector._adopt(m, np.arange(len(values), dtype=np.int64)),
                        seg_flags)
    return values.permute(local + head_pos)


def seg_flag_from_neighbor_change(values: Vector, seg_flags: Vector) -> Vector:
    """New segment flags marking positions whose value differs from the
    previous element's (within a segment) — Step 4 of quicksort: knowing the
    pivot comparison class of each element, a new segment begins wherever the
    class changes.  Old segment boundaries are kept."""
    check_segment_flags(values, seg_flags)
    m = values.machine
    m.charge_permute(len(values))  # shift by one: a send to the right neighbor
    m.charge_elementwise(len(values))
    changed = m.execute("adjacent_ne", values.data)
    out = m.execute("elementwise", np.logical_or, changed, seg_flags.data)
    return Vector._adopt(m, out)
