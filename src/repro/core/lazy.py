"""The lazy expression DAG behind :class:`~repro.core.vector.Vector`.

With fusion enabled (see :class:`repro.machine.Machine`), elementwise
vector operations do not materialize: they build one immutable
:class:`LazyNode` per operation — a small DAG whose leaves are already
materialized arrays and scalar immediates — and defer computation until an
*observable boundary* forces the chain (``.data``, a scan, a permute, a
reduction, ``repr``; see ``docs/fusion.md`` for the full forcing rules).

Two invariants make laziness undetectable from the cost model's side:

* **Charges are logical and eager.**  The machine is charged for an
  elementwise op when its node is *built*, in exactly the order eager
  execution would charge it, so step counters — and anything listening to
  them, like the span profiler — are bit-identical whether fusion is on
  or off, even for chains that are never forced.
* **Dtypes are NumPy's own.**  Each node's result dtype is probed at
  build time by evaluating the operation on zero-length slices of its
  operands, so promotion decisions are made by NumPy itself and match
  eager execution exactly (including NEP-50 scalar behavior).

Forcing compiles the reachable, not-yet-materialized subgraph into a
:class:`~repro.backends.plan.FusedPlan` and executes it through the
machine's single dispatch point as one ``fused_pipeline`` primitive; the
root node caches its result, so forcing is idempotent and a node shared
by several consumers is an input leaf to any plan compiled after it was
forced.
"""
from __future__ import annotations

from typing import Optional

import numpy as np

from ..backends.plan import FusedPlan, PlanStep

__all__ = ["LazyNode", "compile_plan", "probe_dtype"]


class LazyNode:
    """One deferred elementwise operation (immutable except for the
    result cache).

    ``args`` holds the operands in call order: other :class:`LazyNode`
    instances, read-only leaf ``ndarray`` operands, or scalar immediates.
    ``kind`` / ``fn`` follow the :class:`~repro.backends.plan.PlanStep`
    vocabulary.
    """

    __slots__ = ("kind", "fn", "args", "n", "dtype", "result")

    def __init__(self, kind: str, fn, args: tuple, n: int,
                 dtype: np.dtype) -> None:
        self.kind = kind
        self.fn = fn
        self.args = args
        self.n = n
        self.dtype = dtype
        #: the materialized result once any plan containing this node as
        #: root has executed (None while pending)
        self.result: Optional[np.ndarray] = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        op = self.fn.__name__ if self.kind == "ufunc" else self.kind
        state = "cached" if self.result is not None else "pending"
        return f"LazyNode({op}, n={self.n}, dtype={self.dtype}, {state})"


def probe_dtype(kind: str, fn, args: tuple) -> np.dtype:
    """The operation's result dtype, decided by NumPy itself.

    Evaluates the op on zero-length slices of its array/node operands
    (scalars stay scalars, so NEP-50 promotion applies exactly as it will
    at execution time).  Value-dependent failures — a Python int that
    does not fit any common dtype, a bad ``where`` operand — surface here,
    at build time, where eager execution would have raised too.
    """
    probe = []
    for a in args:
        if isinstance(a, LazyNode):
            probe.append(np.empty(0, dtype=a.dtype))
        elif isinstance(a, np.ndarray):
            probe.append(a[:0])
        else:
            probe.append(a)
    if kind == "where":
        return np.where(*probe).dtype
    return fn(*probe).dtype


def compile_plan(root: LazyNode, *, terminal: Optional[str] = None,
                 terminal_args: tuple = ()) -> FusedPlan:
    """Flatten the pending subgraph under ``root`` into a
    :class:`~repro.backends.plan.FusedPlan`.

    Nodes with a cached result, and raw arrays, become plan inputs;
    pending nodes become steps in topological order with the root last.
    The walk deduplicates by node identity, so a diamond-shaped DAG
    evaluates each shared node once per plan.
    """
    inputs: list = []
    input_index: dict[int, int] = {}   # id(array) -> input slot
    step_index: dict[int, int] = {}    # id(node)  -> step slot
    steps: list[PlanStep] = []

    def leaf(arr: np.ndarray) -> tuple:
        slot = input_index.get(id(arr))
        if slot is None:
            slot = len(inputs)
            input_index[id(arr)] = slot
            inputs.append(arr)
        return ("in", slot)

    def ref_of(operand):
        """The plan reference for an already-visited operand."""
        if isinstance(operand, LazyNode):
            if operand.result is not None:
                return leaf(operand.result)
            return ("step", step_index[id(operand)])
        if isinstance(operand, np.ndarray):
            return leaf(operand)
        return ("const", operand)

    # iterative post-order walk: chains can be thousands of nodes deep
    # (one node per loop iteration), far past the recursion limit
    stack: list[tuple[LazyNode, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if id(node) in step_index or node.result is not None:
            continue
        if expanded:
            refs = tuple(ref_of(a) for a in node.args)
            step_index[id(node)] = len(steps)
            steps.append(PlanStep(kind=node.kind, fn=node.fn,
                                  dtype=node.dtype, args=refs))
            continue
        stack.append((node, True))
        for a in node.args:
            if isinstance(a, LazyNode) and id(a) not in step_index \
                    and a.result is None:
                stack.append((a, False))
    return FusedPlan(inputs=tuple(inputs), steps=tuple(steps), n=root.n,
                     terminal=terminal, terminal_args=terminal_args)
