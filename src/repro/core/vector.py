"""The machine-owned ``Vector``: the paper's unit of parallel data.

All algorithm data lives in vectors (one-dimensional arrays) in the shared
memory, with one (virtual) processor per element (Section 2.1).  A
:class:`Vector` couples a NumPy array to the :class:`~repro.machine.Machine`
it lives on; every operation *charges* the machine the program steps the
operation would cost on that model and *computes* the result through the
machine's execution backend (:mod:`repro.backends`) via the single
dispatch point :meth:`repro.machine.Machine.execute`.

Vectors are immutable: operations return new vectors, and the underlying
buffer is marked read-only, so accidental aliasing cannot corrupt step
accounting or results.
"""
from __future__ import annotations

from typing import Callable, Optional, Union

import numpy as np

from ..machine.model import CapabilityError, Machine

__all__ = ["Vector"]

Scalar = Union[int, float, bool, np.integer, np.floating, np.bool_]


class Vector:
    """A one-dimensional parallel vector owned by a machine.

    Parameters
    ----------
    machine:
        The machine charged for operations on this vector.
    data:
        Any 1-D array-like.  The public constructor always copies, so a
        caller's array can never be aliased by an immutable vector.
        Arrays freshly produced by an execution backend are adopted
        in place — no copy — through the internal :meth:`_adopt` path,
        which every primitive uses for its result.
    """

    __slots__ = ("machine", "_data")

    def __init__(self, machine: Machine, data) -> None:
        arr = np.array(data, copy=True)
        if arr.ndim != 1:
            raise ValueError(f"Vector must be 1-D, got shape {arr.shape}")
        arr.setflags(write=False)
        self.machine = machine
        self._data = arr

    @classmethod
    def _adopt(cls, machine: Machine, arr: np.ndarray) -> "Vector":
        """Internal no-copy constructor: wrap an array the caller owns —
        one freshly allocated by a backend, or a view of an already
        immutable buffer — saving one allocation per primitive.  Never
        pass an array someone else may still write through."""
        if arr.ndim != 1:
            raise ValueError(f"Vector must be 1-D, got shape {arr.shape}")
        arr.setflags(write=False)
        self = object.__new__(cls)
        self.machine = machine
        self._data = arr
        return self

    # ------------------------------------------------------------------ #
    # Introspection (free: no machine steps)
    # ------------------------------------------------------------------ #

    @property
    def data(self) -> np.ndarray:
        """The read-only underlying array (no copy)."""
        return self._data

    @property
    def dtype(self) -> np.dtype:
        return self._data.dtype

    def __len__(self) -> int:
        return len(self._data)

    def to_array(self) -> np.ndarray:
        """A mutable copy of the contents."""
        return self._data.copy()

    def to_list(self) -> list:
        return self._data.tolist()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Vector({self._data.tolist()!r})"

    def __eq__(self, other) -> "Vector":  # type: ignore[override]
        return self._binary(other, np.equal, dtype=bool)

    def __ne__(self, other) -> "Vector":  # type: ignore[override]
        return self._binary(other, np.not_equal, dtype=bool)

    def __hash__(self):  # vectors are containers, not keys
        raise TypeError("Vector is unhashable")

    def _wrap(self, arr: np.ndarray) -> "Vector":
        return Vector._adopt(self.machine, arr)

    def _check_same_machine(self, other: "Vector") -> None:
        if other.machine is not self.machine:
            raise ValueError("vectors live on different machines")
        if len(other) != len(self):
            raise ValueError(f"length mismatch: {len(self)} vs {len(other)}")

    # ------------------------------------------------------------------ #
    # Elementwise operations (one program step each)
    # ------------------------------------------------------------------ #

    def _binary(self, other, func: Callable, dtype=None) -> "Vector":
        if isinstance(other, Vector):
            self._check_same_machine(other)
            rhs = other._data
        else:
            rhs = other  # an immediate constant held in the instruction: free
        self.machine.charge_elementwise(len(self))
        fn = func if dtype is None else (lambda *a: func(*a).astype(dtype))
        out = self.machine.execute("elementwise", fn, self._data, rhs,
                                   inject="elementwise")
        return self._wrap(out)

    def _unary(self, func: Callable, dtype=None) -> "Vector":
        self.machine.charge_elementwise(len(self))
        fn = func if dtype is None else (lambda a: func(a).astype(dtype))
        out = self.machine.execute("elementwise", fn, self._data,
                                   inject="elementwise")
        return self._wrap(out)

    def __add__(self, other) -> "Vector":
        return self._binary(other, np.add)

    def __radd__(self, other) -> "Vector":
        return self._binary(other, lambda a, b: np.add(b, a))

    def __sub__(self, other) -> "Vector":
        return self._binary(other, np.subtract)

    def __rsub__(self, other) -> "Vector":
        return self._binary(other, lambda a, b: np.subtract(b, a))

    def __mul__(self, other) -> "Vector":
        return self._binary(other, np.multiply)

    def __rmul__(self, other) -> "Vector":
        return self._binary(other, lambda a, b: np.multiply(b, a))

    def __truediv__(self, other) -> "Vector":
        return self._binary(other, np.true_divide)

    def __floordiv__(self, other) -> "Vector":
        return self._binary(other, np.floor_divide)

    def __mod__(self, other) -> "Vector":
        return self._binary(other, np.mod)

    def __neg__(self) -> "Vector":
        return self._unary(np.negative)

    def __abs__(self) -> "Vector":
        return self._unary(np.abs)

    def __lt__(self, other) -> "Vector":
        return self._binary(other, np.less, dtype=bool)

    def __le__(self, other) -> "Vector":
        return self._binary(other, np.less_equal, dtype=bool)

    def __gt__(self, other) -> "Vector":
        return self._binary(other, np.greater, dtype=bool)

    def __ge__(self, other) -> "Vector":
        return self._binary(other, np.greater_equal, dtype=bool)

    def __and__(self, other) -> "Vector":
        if self.dtype == np.bool_:
            return self._binary(other, np.logical_and, dtype=bool)
        return self._binary(other, np.bitwise_and)

    def __or__(self, other) -> "Vector":
        if self.dtype == np.bool_:
            return self._binary(other, np.logical_or, dtype=bool)
        return self._binary(other, np.bitwise_or)

    def __xor__(self, other) -> "Vector":
        if self.dtype == np.bool_:
            return self._binary(other, np.logical_xor, dtype=bool)
        return self._binary(other, np.bitwise_xor)

    def __invert__(self) -> "Vector":
        if self.dtype == np.bool_:
            return self._unary(np.logical_not, dtype=bool)
        return self._unary(np.bitwise_not)

    def __rshift__(self, other) -> "Vector":
        return self._binary(other, np.right_shift)

    def __lshift__(self, other) -> "Vector":
        return self._binary(other, np.left_shift)

    def minimum(self, other) -> "Vector":
        """Elementwise minimum with a vector or scalar."""
        return self._binary(other, np.minimum)

    def maximum(self, other) -> "Vector":
        """Elementwise maximum with a vector or scalar."""
        return self._binary(other, np.maximum)

    def bit(self, i: int) -> "Vector":
        """The paper's ``A<i>``: extract bit ``i`` of each element as a flag."""
        return self._unary(lambda a: (a >> i) & 1, dtype=bool)

    def astype(self, dtype) -> "Vector":
        """Convert element type (e.g. flags to 0/1 integers); one step."""
        return self._unary(lambda a: a.astype(dtype))

    def where(self, if_true: Union["Vector", Scalar], if_false: Union["Vector", Scalar]) -> "Vector":
        """``if self then if_true else if_false`` elementwise; ``self`` must
        be a flag vector.  One program step."""
        if self.dtype != np.bool_:
            raise TypeError("where() requires a boolean flag vector")
        t = if_true._data if isinstance(if_true, Vector) else if_true
        f = if_false._data if isinstance(if_false, Vector) else if_false
        if isinstance(if_true, Vector):
            self._check_same_machine(if_true)
        if isinstance(if_false, Vector):
            self._check_same_machine(if_false)
        self.machine.charge_elementwise(len(self))
        out = self.machine.execute("elementwise", np.where, self._data, t, f,
                                   inject="elementwise")
        return self._wrap(out)

    # ------------------------------------------------------------------ #
    # Communication operations
    # ------------------------------------------------------------------ #

    def permute(self, index: "Vector", *, length: Optional[int] = None,
                default: Scalar = 0) -> "Vector":
        """``permute(A, I)``: write each element to position ``index[i]``.

        Indices must be unique (an exclusive write; Section 2.1).  The
        destination may be longer than the source (``length``), in which case
        unwritten cells hold ``default``.  One program step.
        """
        self._check_same_machine(index)
        idx = index._data
        n_out = length if length is not None else len(self)
        if len(idx) and (idx.min() < 0 or idx.max() >= n_out):
            raise IndexError(
                f"permute index out of range [0, {n_out}): "
                f"[{idx.min() if len(idx) else ''}, {idx.max() if len(idx) else ''}]"
            )
        if len(np.unique(idx)) != len(idx):
            raise CapabilityError(
                "permute requires unique indices (exclusive write); use "
                "combine_write for colliding destinations"
            )
        self.machine.charge_permute(max(len(self), n_out))
        out = self.machine.execute("permute", self._data, idx, n_out, default,
                                   inject="permute")
        return self._wrap(out)

    def gather(self, index: "Vector") -> "Vector":
        """``A[I]``: each processor reads the cell named by its index.

        Duplicate indices are a concurrent read — illegal on EREW and scan
        machines (a :class:`CapabilityError`).  One program step.
        """
        self._check_same_machine_any_length(index)
        idx = index._data
        if len(idx) and (idx.min() < 0 or idx.max() >= len(self)):
            raise IndexError("gather index out of range")
        unique = len(np.unique(idx)) == len(idx)
        self.machine.charge_gather(max(len(self), len(idx)), unique=unique)
        return self._wrap(self.machine.execute("gather", self._data, idx))

    def _check_same_machine_any_length(self, other: "Vector") -> None:
        if other.machine is not self.machine:
            raise ValueError("vectors live on different machines")

    def combine_write(self, index: "Vector", *, length: int, op: str = "min",
                      default: Scalar = 0) -> "Vector":
        """Scatter with colliding destinations, combining with ``op``.

        ``op`` is ``"min"``, ``"max"``, ``"sum"`` or ``"any"`` (the paper's
        "one of the values gets written").  This is the extended-CRCW write;
        on other models it raises unless the machine was created with
        ``allow_concurrent_write=True``.  One program step.
        """
        self._check_same_machine_any_length(index)
        idx = index._data
        if len(idx) != len(self):
            raise ValueError("index vector must match data vector length")
        if len(idx) and (idx.min() < 0 or idx.max() >= length):
            raise IndexError("combine_write index out of range")
        self.machine.charge_combine_write(max(len(self), length))
        out = self.machine.execute("combine_write", self._data, idx, length,
                                   op, default)
        return self._wrap(out)

    def reverse(self) -> "Vector":
        """Read the vector in reverse processor order (used for backward
        scans, Section 3.4).  One permutation step."""
        self.machine.charge_permute(len(self))
        return self._wrap(self.machine.execute("reverse", self._data))

    def shift(self, k: int, fill: Scalar = 0) -> "Vector":
        """Shift the vector ``k`` places toward higher indices (``k < 0``
        shifts down); vacated cells hold ``fill``.

        A shift is each processor sending its value to a fixed neighbor —
        one permutation step.  This is the "look at the previous element"
        idiom of the paper's quicksort sortedness check and segment-flag
        insertion.
        """
        self.machine.charge_permute(len(self))
        return self._wrap(self.machine.execute("shift", self._data, k, fill))

    # ------------------------------------------------------------------ #
    # Single-cell access (one memory reference)
    # ------------------------------------------------------------------ #

    def get(self, i: int):
        """Read one cell (a single memory reference; one step)."""
        self.machine.counter.charge("memory", 1)
        return self._data[int(i)].item()

    def first(self):
        """Read the first element (one memory reference)."""
        return self.get(0)

    def last(self):
        """Read the last element (one memory reference)."""
        return self.get(len(self) - 1)
