"""The machine-owned ``Vector``: the paper's unit of parallel data.

All algorithm data lives in vectors (one-dimensional arrays) in the shared
memory, with one (virtual) processor per element (Section 2.1).  A
:class:`Vector` couples a NumPy array to the :class:`~repro.machine.Machine`
it lives on; every operation *charges* the machine the program steps the
operation would cost on that model and *computes* the result through the
machine's execution backend (:mod:`repro.backends`) via the single
dispatch point :meth:`repro.machine.Machine.execute`.

Vectors are immutable: operations return new vectors, and the underlying
buffer is marked read-only, so accidental aliasing cannot corrupt step
accounting or results.

With fusion enabled on the machine (the default; see
:class:`~repro.machine.Machine` and ``docs/fusion.md``), elementwise
operations are **lazy**: they charge their program steps immediately — in
exactly eager order, so step counts are bit-identical either way — but
defer computation into a small expression DAG
(:class:`~repro.core.lazy.LazyNode`).  Any observable boundary (``.data``,
``to_array``, a scan, a permute, a reduction, ``repr``, single-cell reads)
*forces* the pending chain: the DAG is compiled to one
:class:`~repro.backends.plan.FusedPlan` and executed by the backend as a
single ``fused_pipeline`` primitive.  ``len()`` and ``.dtype`` never
force — shape and type are known at build time.
"""
from __future__ import annotations

from typing import Callable, Optional, Union

import numpy as np

from ..machine.model import CapabilityError, Machine
from .lazy import LazyNode, compile_plan, probe_dtype

__all__ = ["Vector"]

Scalar = Union[int, float, bool, np.integer, np.floating, np.bool_]


class Vector:
    """A one-dimensional parallel vector owned by a machine.

    Parameters
    ----------
    machine:
        The machine charged for operations on this vector.
    data:
        Any 1-D array-like.  The public constructor always copies, so a
        caller's array can never be aliased by an immutable vector.
        Arrays freshly produced by an execution backend are adopted
        in place — no copy — through the internal :meth:`_adopt` path,
        which every primitive uses for its result.
    """

    __slots__ = ("machine", "_storage", "_expr")

    def __init__(self, machine: Machine, data) -> None:
        arr = np.array(data, copy=True)
        if arr.ndim != 1:
            raise ValueError(f"Vector must be 1-D, got shape {arr.shape}")
        arr.setflags(write=False)
        self.machine = machine
        self._storage = arr
        self._expr = None

    @classmethod
    def _adopt(cls, machine: Machine, arr: np.ndarray) -> "Vector":
        """Internal no-copy constructor: wrap an array the caller owns —
        one freshly allocated by a backend, or a view of an already
        immutable buffer — saving one allocation per primitive.  Never
        pass an array someone else may still write through."""
        if arr.ndim != 1:
            raise ValueError(f"Vector must be 1-D, got shape {arr.shape}")
        arr.setflags(write=False)
        self = object.__new__(cls)
        self.machine = machine
        self._storage = arr
        self._expr = None
        return self

    @classmethod
    def _defer(cls, machine: Machine, node: LazyNode) -> "Vector":
        """Internal lazy constructor: wrap a pending expression node whose
        value materializes on first observation (see :attr:`_data`)."""
        self = object.__new__(cls)
        self.machine = machine
        self._storage = None
        self._expr = node
        return self

    # ------------------------------------------------------------------ #
    # Introspection (free: no machine steps)
    # ------------------------------------------------------------------ #

    @property
    def _data(self) -> np.ndarray:
        """The underlying array, **forcing** any pending lazy expression.

        Every observable boundary reads through here: the pending DAG is
        compiled into one :class:`~repro.backends.plan.FusedPlan` and
        executed by the backend as a single ``fused_pipeline`` primitive.
        No steps are charged — the machine was charged op by op when the
        expression was built.  Forcing is idempotent (the node caches its
        result)."""
        node = self._expr
        if node is not None:
            if node.result is None:
                plan = compile_plan(node)
                out = self.machine.execute_fused(plan)
                out.setflags(write=False)
                node.result = out
            self._storage = node.result
            self._expr = None
        return self._storage

    def _operand(self):
        """This vector as a lazy-DAG operand: its pending node while
        deferred, its materialized array otherwise."""
        return self._expr if self._expr is not None else self._storage

    def _pending_node(self) -> Optional[LazyNode]:
        """The pending expression node, or ``None`` once materialized
        (used by scans to fuse a terminal onto the chain)."""
        node = self._expr
        return node if node is not None and node.result is None else None

    @property
    def data(self) -> np.ndarray:
        """The read-only underlying array (no copy; forces)."""
        return self._data

    @property
    def dtype(self) -> np.dtype:
        """Element dtype (known at build time; never forces)."""
        if self._expr is not None:
            return self._expr.dtype
        return self._storage.dtype

    def __len__(self) -> int:
        if self._expr is not None:
            return self._expr.n
        return len(self._storage)

    def to_array(self) -> np.ndarray:
        """A mutable copy of the contents."""
        return self._data.copy()

    def to_list(self) -> list:
        return self._data.tolist()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Vector({self._data.tolist()!r})"

    def __eq__(self, other) -> "Vector":  # type: ignore[override]
        return self._binary(other, np.equal, dtype=bool)

    def __ne__(self, other) -> "Vector":  # type: ignore[override]
        return self._binary(other, np.not_equal, dtype=bool)

    def __hash__(self):  # vectors are containers, not keys
        raise TypeError("Vector is unhashable")

    def _wrap(self, arr: np.ndarray) -> "Vector":
        return Vector._adopt(self.machine, arr)

    def _check_same_machine(self, other: "Vector") -> None:
        if other.machine is not self.machine:
            raise ValueError("vectors live on different machines")
        if len(other) != len(self):
            raise ValueError(f"length mismatch: {len(self)} vs {len(other)}")

    # ------------------------------------------------------------------ #
    # Elementwise operations (one program step each)
    # ------------------------------------------------------------------ #

    @staticmethod
    def _snapshot(operand):
        """A safe leaf for a lazy DAG: writable caller-owned arrays are
        copied and frozen so a later mutation cannot change the deferred
        value (vector storage is already read-only and passes through)."""
        if isinstance(operand, np.ndarray) and operand.flags.writeable:
            operand = operand.copy()
            operand.setflags(write=False)
        return operand

    def _defer_op(self, func, operands: tuple, dtype=None,
                  kind: Optional[str] = None) -> "Vector":
        """Build one pending expression node (the lazy twin of an eager
        ``execute("elementwise", ...)``).  The caller has already charged
        the machine.  The node's result dtype is probed on zero-length
        operand slices so NumPy's own promotion rules decide it, exactly
        as eager execution would; an explicit ``dtype`` that differs from
        the natural one folds the eager path's ``astype`` into the node's
        callable, keeping values bit-identical."""
        operands = tuple(self._snapshot(a) for a in operands)
        if kind is None:
            kind = "ufunc" if isinstance(func, np.ufunc) else "custom"
        if dtype is not None:
            want = np.dtype(dtype)
            if kind == "ufunc" and probe_dtype(kind, func, operands) == want:
                node_dtype = want
            else:
                base, kind = func, "custom"
                func = lambda *a: base(*a).astype(want)  # noqa: E731 - eager twin
                node_dtype = probe_dtype(kind, func, operands)
        else:
            node_dtype = probe_dtype(kind, func, operands)
        node = LazyNode(kind, func, operands, len(self), node_dtype)
        return Vector._defer(self.machine, node)

    def _binary(self, other, func: Callable, dtype=None) -> "Vector":
        if isinstance(other, Vector):
            self._check_same_machine(other)
        self.machine.charge_elementwise(len(self))
        if self.machine.fusion_enabled:
            rhs = other._operand() if isinstance(other, Vector) else other
            return self._defer_op(func, (self._operand(), rhs), dtype)
        rhs = other._data if isinstance(other, Vector) else other
        fn = func if dtype is None else (lambda *a: func(*a).astype(dtype))
        out = self.machine.execute("elementwise", fn, self._data, rhs,
                                   inject="elementwise")
        return self._wrap(out)

    def _rbinary(self, other, func: Callable) -> "Vector":
        """Reflected arithmetic: ``other op self`` with ``other`` a scalar
        immediate (Python dispatches Vector operands to the forward
        method), so the operand order swaps and the charge is the same
        one elementwise step."""
        self.machine.charge_elementwise(len(self))
        if self.machine.fusion_enabled:
            return self._defer_op(func, (other, self._operand()))
        out = self.machine.execute("elementwise", func, other, self._data,
                                   inject="elementwise")
        return self._wrap(out)

    def _unary(self, func: Callable, dtype=None) -> "Vector":
        self.machine.charge_elementwise(len(self))
        if self.machine.fusion_enabled:
            return self._defer_op(func, (self._operand(),), dtype)
        fn = func if dtype is None else (lambda a: func(a).astype(dtype))
        out = self.machine.execute("elementwise", fn, self._data,
                                   inject="elementwise")
        return self._wrap(out)

    def __add__(self, other) -> "Vector":
        return self._binary(other, np.add)

    def __radd__(self, other) -> "Vector":
        return self._rbinary(other, np.add)

    def __sub__(self, other) -> "Vector":
        return self._binary(other, np.subtract)

    def __rsub__(self, other) -> "Vector":
        return self._rbinary(other, np.subtract)

    def __mul__(self, other) -> "Vector":
        return self._binary(other, np.multiply)

    def __rmul__(self, other) -> "Vector":
        return self._rbinary(other, np.multiply)

    def __truediv__(self, other) -> "Vector":
        return self._binary(other, np.true_divide)

    def __rtruediv__(self, other) -> "Vector":
        return self._rbinary(other, np.true_divide)

    def __floordiv__(self, other) -> "Vector":
        return self._binary(other, np.floor_divide)

    def __rfloordiv__(self, other) -> "Vector":
        return self._rbinary(other, np.floor_divide)

    def __mod__(self, other) -> "Vector":
        return self._binary(other, np.mod)

    def __rmod__(self, other) -> "Vector":
        return self._rbinary(other, np.mod)

    def __neg__(self) -> "Vector":
        return self._unary(np.negative)

    def __abs__(self) -> "Vector":
        return self._unary(np.abs)

    def __lt__(self, other) -> "Vector":
        return self._binary(other, np.less, dtype=bool)

    def __le__(self, other) -> "Vector":
        return self._binary(other, np.less_equal, dtype=bool)

    def __gt__(self, other) -> "Vector":
        return self._binary(other, np.greater, dtype=bool)

    def __ge__(self, other) -> "Vector":
        return self._binary(other, np.greater_equal, dtype=bool)

    def __and__(self, other) -> "Vector":
        if self.dtype == np.bool_:
            return self._binary(other, np.logical_and, dtype=bool)
        return self._binary(other, np.bitwise_and)

    def __or__(self, other) -> "Vector":
        if self.dtype == np.bool_:
            return self._binary(other, np.logical_or, dtype=bool)
        return self._binary(other, np.bitwise_or)

    def __xor__(self, other) -> "Vector":
        if self.dtype == np.bool_:
            return self._binary(other, np.logical_xor, dtype=bool)
        return self._binary(other, np.bitwise_xor)

    def __invert__(self) -> "Vector":
        if self.dtype == np.bool_:
            return self._unary(np.logical_not, dtype=bool)
        return self._unary(np.bitwise_not)

    def __rshift__(self, other) -> "Vector":
        return self._binary(other, np.right_shift)

    def __lshift__(self, other) -> "Vector":
        return self._binary(other, np.left_shift)

    def minimum(self, other) -> "Vector":
        """Elementwise minimum with a vector or scalar."""
        return self._binary(other, np.minimum)

    def maximum(self, other) -> "Vector":
        """Elementwise maximum with a vector or scalar."""
        return self._binary(other, np.maximum)

    def bit(self, i: int) -> "Vector":
        """The paper's ``A<i>``: extract bit ``i`` of each element as a flag."""
        return self._unary(lambda a: (a >> i) & 1, dtype=bool)

    def astype(self, dtype) -> "Vector":
        """Convert element type (e.g. flags to 0/1 integers); one step."""
        if self.machine.fusion_enabled:
            self.machine.charge_elementwise(len(self))
            node = LazyNode("cast", None, (self._operand(),), len(self),
                            np.dtype(dtype))
            return Vector._defer(self.machine, node)
        return self._unary(lambda a: a.astype(dtype))

    def where(self, if_true: Union["Vector", Scalar], if_false: Union["Vector", Scalar]) -> "Vector":
        """``if self then if_true else if_false`` elementwise; ``self`` must
        be a flag vector.  One program step."""
        if self.dtype != np.bool_:
            raise TypeError("where() requires a boolean flag vector")
        if isinstance(if_true, Vector):
            self._check_same_machine(if_true)
        if isinstance(if_false, Vector):
            self._check_same_machine(if_false)
        self.machine.charge_elementwise(len(self))
        if self.machine.fusion_enabled:
            t = if_true._operand() if isinstance(if_true, Vector) else if_true
            f = (if_false._operand() if isinstance(if_false, Vector)
                 else if_false)
            return self._defer_op(np.where, (self._operand(), t, f),
                                  kind="where")
        t = if_true._data if isinstance(if_true, Vector) else if_true
        f = if_false._data if isinstance(if_false, Vector) else if_false
        out = self.machine.execute("elementwise", np.where, self._data, t, f,
                                   inject="elementwise")
        return self._wrap(out)

    # ------------------------------------------------------------------ #
    # Communication operations
    # ------------------------------------------------------------------ #

    def permute(self, index: "Vector", *, length: Optional[int] = None,
                default: Scalar = 0) -> "Vector":
        """``permute(A, I)``: write each element to position ``index[i]``.

        Indices must be unique (an exclusive write; Section 2.1).  The
        destination may be longer than the source (``length``), in which case
        unwritten cells hold ``default``.  One program step.
        """
        self._check_same_machine(index)
        idx = index._data
        n_out = length if length is not None else len(self)
        if len(idx) and (idx.min() < 0 or idx.max() >= n_out):
            raise IndexError(
                f"permute index out of range [0, {n_out}): "
                f"[{idx.min() if len(idx) else ''}, {idx.max() if len(idx) else ''}]"
            )
        if len(np.unique(idx)) != len(idx):
            raise CapabilityError(
                "permute requires unique indices (exclusive write); use "
                "combine_write for colliding destinations"
            )
        self.machine.charge_permute(max(len(self), n_out))
        out = self.machine.execute("permute", self._data, idx, n_out, default,
                                   inject="permute")
        return self._wrap(out)

    def gather(self, index: "Vector") -> "Vector":
        """``A[I]``: each processor reads the cell named by its index.

        Duplicate indices are a concurrent read — illegal on EREW and scan
        machines (a :class:`CapabilityError`).  One program step.
        """
        self._check_same_machine_any_length(index)
        idx = index._data
        if len(idx) and (idx.min() < 0 or idx.max() >= len(self)):
            raise IndexError("gather index out of range")
        unique = len(np.unique(idx)) == len(idx)
        self.machine.charge_gather(max(len(self), len(idx)), unique=unique)
        return self._wrap(self.machine.execute("gather", self._data, idx))

    def _check_same_machine_any_length(self, other: "Vector") -> None:
        if other.machine is not self.machine:
            raise ValueError("vectors live on different machines")

    def combine_write(self, index: "Vector", *, length: int, op: str = "min",
                      default: Scalar = 0) -> "Vector":
        """Scatter with colliding destinations, combining with ``op``.

        ``op`` is ``"min"``, ``"max"``, ``"sum"`` or ``"any"`` (the paper's
        "one of the values gets written").  This is the extended-CRCW write;
        on other models it raises unless the machine was created with
        ``allow_concurrent_write=True``.  One program step.
        """
        self._check_same_machine_any_length(index)
        idx = index._data
        if len(idx) != len(self):
            raise ValueError("index vector must match data vector length")
        if len(idx) and (idx.min() < 0 or idx.max() >= length):
            raise IndexError("combine_write index out of range")
        self.machine.charge_combine_write(max(len(self), length))
        out = self.machine.execute("combine_write", self._data, idx, length,
                                   op, default)
        return self._wrap(out)

    def reverse(self) -> "Vector":
        """Read the vector in reverse processor order (used for backward
        scans, Section 3.4).  One permutation step."""
        self.machine.charge_permute(len(self))
        return self._wrap(self.machine.execute("reverse", self._data))

    def shift(self, k: int, fill: Scalar = 0) -> "Vector":
        """Shift the vector ``k`` places toward higher indices (``k < 0``
        shifts down); vacated cells hold ``fill``.

        A shift is each processor sending its value to a fixed neighbor —
        one permutation step.  This is the "look at the previous element"
        idiom of the paper's quicksort sortedness check and segment-flag
        insertion.
        """
        self.machine.charge_permute(len(self))
        return self._wrap(self.machine.execute("shift", self._data, k, fill))

    # ------------------------------------------------------------------ #
    # Single-cell access (one memory reference)
    # ------------------------------------------------------------------ #

    def get(self, i: int):
        """Read one cell (a single memory reference; one step)."""
        self.machine.counter.charge("memory", 1)
        return self._data[int(i)].item()

    def first(self):
        """Read the first element (one memory reference)."""
        return self.get(0)

    def last(self):
        """Read the last element (one memory reference)."""
        return self.get(len(self) - 1)
