"""Simple scan-built operations (Sections 2.2, 2.4, 2.5).

These are the constant-step building blocks Table 3 cross-references:
enumerating, copying, distributing sums, splitting, allocating, packing and
load balancing.  Each is a short composition of the scan primitives plus
elementwise steps and permutes, so the costs flow through the machine's
cost model automatically.
"""
from __future__ import annotations

import numpy as np

from ..machine.model import Machine
from . import scans
from .vector import Vector

__all__ = [
    "concat",
    "enumerate_",
    "back_enumerate",
    "count",
    "copy_",
    "split",
    "split3",
    "pack",
    "pack_index",
    "allocate",
    "distribute_to_segments",
    "load_balance",
]


def concat(a: Vector, b: Vector) -> Vector:
    """View two vectors as one longer vector (the processors of ``b`` are
    relabeled after those of ``a``; no data moves, so no steps are charged).
    """
    if a.machine is not b.machine:
        raise ValueError("vectors live on different machines")
    dtype = np.result_type(a.dtype, b.dtype) if len(a) and len(b) else (
        a.dtype if len(a) else b.dtype)
    return Vector._adopt(a.machine, np.concatenate(
        (a.data.astype(dtype, copy=False), b.data.astype(dtype, copy=False))))


def enumerate_(flags: Vector) -> Vector:
    """Return the integer ``i`` to the ``i``-th ``True`` element (Figure 1).

    Implemented by converting the flags to 0/1 and executing a ``+-scan``.
    """
    return scans.plus_scan(flags.astype(np.int64))


def back_enumerate(flags: Vector) -> Vector:
    """Enumerate ``True`` elements starting from the *top* of the vector
    (used to compute the upward indices of ``split``)."""
    return scans.back_plus_scan(flags.astype(np.int64))


def count(flags: Vector) -> int:
    """How many elements are ``True`` (a ``+-reduce`` of the flags)."""
    return scans.plus_reduce(flags.astype(np.int64))


def copy_(v: Vector) -> Vector:
    """Copy the first element across the whole vector (Figure 1).

    Implemented with one broadcast-shaped step (the paper implements it by
    scanning a vector holding the identity everywhere but position 0).
    """
    m = v.machine
    m.charge_broadcast(len(v))
    if len(v) == 0:
        return Vector._adopt(m, v.data.copy())
    return Vector._adopt(m, m.execute("full", len(v), v.data[0], v.dtype))


def split(v: Vector, flags: Vector) -> Vector:
    """The ``split`` operation of Figure 3: pack elements whose flag is
    ``False`` to the bottom of the vector and elements whose flag is ``True``
    to the top, preserving order within both groups.

    ::

        I-down <- enumerate(not(Flags))
        I-up   <- n - back-enumerate(Flags) - 1
        Index  <- if Flags then I-up else I-down
        permute(A, Index)
    """
    if flags.dtype != np.bool_:
        raise TypeError("split flags must be boolean")
    n = len(v)
    i_down = enumerate_(~flags)
    i_up = (n - 1) - back_enumerate(flags)
    index = flags.where(i_up, i_down)
    return v.permute(index)


def split3(v: Vector, lesser: Vector, equal: Vector) -> Vector:
    """Three-way split: elements flagged ``lesser`` go to the bottom,
    ``equal`` to the middle, and the rest to the top, stably (the quicksort
    split of Section 2.3.1, unsegmented form)."""
    n = len(v)
    greater = ~(lesser | equal)
    i_less = enumerate_(lesser)
    n_less = count(lesser)
    i_eq = enumerate_(equal) + n_less
    i_gt = (n - 1) - back_enumerate(greater)
    index = lesser.where(i_less, equal.where(i_eq, i_gt))
    return v.permute(index)


def pack_index(flags: Vector) -> tuple[Vector, int]:
    """Destination index of each ``True`` element when packing, and the
    packed length (one enumerate plus one reduce)."""
    idx = enumerate_(flags)
    m = count(flags)
    return idx, m


def pack(v: Vector, flags: Vector) -> Vector:
    """Pack the flagged elements into a vector of their own (Figure 11's
    ``pack``, the basis of load balancing and the halving merge)."""
    if flags.dtype != np.bool_:
        raise TypeError("pack flags must be boolean")
    idx, m = pack_index(flags)
    if m == 0:
        return Vector._adopt(v.machine, np.empty(0, dtype=v.dtype))
    # Only flagged processors write; the permute is still one step.
    v.machine.charge_permute(len(v))
    out = v.machine.execute("pack", v.data, flags.data, idx.data, m)
    return Vector._adopt(v.machine, out)


def allocate(machine: Machine, counts: Vector) -> tuple[Vector, Vector]:
    """Processor allocation (Section 2.4, Figure 8).

    Given a vector of non-negative integers ``counts``, allocate a contiguous
    segment of ``counts[i]`` new elements to each position ``i``.  Returns
    ``(seg_flags, hpointers)``: the segment flags of the new vector of length
    ``sum(counts)`` and the head pointer of each segment.
    """
    if counts.machine is not machine:
        raise ValueError("counts vector belongs to a different machine")
    c = counts.data
    if len(c) and c.min() < 0:
        raise ValueError("allocation counts must be non-negative")
    hpointers = scans.plus_scan(counts)
    total = scans.plus_reduce(counts)
    machine.charge_permute(max(total, 1))  # permute a flag to each head
    heads = hpointers.data[c > 0]
    flags = machine.execute("permute", np.ones(len(heads), dtype=bool),
                            heads, total, False)
    return Vector._adopt(machine, flags), hpointers


def distribute_to_segments(values: Vector, counts: Vector) -> tuple[Vector, Vector]:
    """Allocate ``counts[i]`` elements per position and give every new
    element the value of its source position (Figure 8's ``distribute``).

    Returns ``(distributed_values, seg_flags)``.
    """
    from . import segmented

    m = values.machine
    seg_flags, hpointers = allocate(m, counts)
    total = len(seg_flags)
    nonempty = counts.data > 0
    m.charge_permute(max(total, 1))  # permute each value to its segment head
    at_heads = m.execute("permute", values.data[nonempty],
                         hpointers.data[nonempty], total,
                         values.dtype.type(0))
    head_vec = Vector._adopt(m, at_heads)
    if total == 0:
        return head_vec, seg_flags
    return segmented.seg_copy(head_vec, seg_flags), seg_flags


def load_balance(v: Vector, keep: Vector) -> Vector:
    """Drop the un-flagged elements and pack the survivors into a dense
    vector so each of the machine's processors owns an equal block
    (Section 2.5, Figure 11).  With ``m`` survivors on ``p`` processors this
    is ``O(m/p + lg p)`` steps on an EREW machine and ``O(m/p)``-plus-a-
    constant on the scan model; here it is one pack."""
    return pack(v, keep)
