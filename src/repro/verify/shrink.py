"""Minimal-counterexample shrinking (delta debugging over cases).

A raw fuzzer counterexample is usually dozens of elements of boundary
noise hiding a two-element trigger.  :func:`shrink` reduces it with a
ddmin-style loop — drop ever-smaller chunks of elements (keeping the
segment layout consistent), then collapse the segment layout, simplify the
auxiliary flags, and pull surviving values toward 0/1 — re-running the
differential check after every candidate edit and keeping the edit only if
the case **still diverges**.  The result is what gets committed to
``tests/corpus/verify/`` as a regression case, so smaller is better but
determinism matters more: the loop is purely structural, no randomness.
"""
from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from .corpus import Case
from .runner import DEFAULT_ENGINES, run_case

__all__ = ["shrink"]


def _element_segment_ids(case: Case) -> list[int]:
    ids: list[int] = []
    for s, length in enumerate(case.seg_lengths):
        ids.extend([s] * length)
    return ids


def _drop(case: Case, keep: Sequence[bool]) -> Case:
    """``case`` with only the ``keep``-marked elements, layout preserved."""
    values = tuple(v for v, k in zip(case.values, keep) if k)
    seg = None
    if case.seg_lengths is not None:
        kept_per = [0] * len(case.seg_lengths)
        for i, sid in enumerate(_element_segment_ids(case)):
            if keep[i]:
                kept_per[sid] += 1
        seg = tuple(n for n in kept_per if n > 0)
        if not seg and not values:
            seg = ()
    flags = (tuple(f for f, k in zip(case.flags, keep) if k)
             if case.flags is not None else None)
    flags2 = (tuple(f for f, k in zip(case.flags2, keep) if k)
              if case.flags2 is not None else None)
    return Case(op=case.op, dtype=case.dtype, values=values,
                seg_lengths=seg, flags=flags, flags2=flags2, note=case.note)


def _replace(case: Case, field: str, new: tuple) -> Case:
    kw = dict(op=case.op, dtype=case.dtype, values=case.values,
              seg_lengths=case.seg_lengths, flags=case.flags,
              flags2=case.flags2, note=case.note)
    kw[field] = new
    return Case(**kw)


def _simple_candidates(dtype: str):
    if np.dtype(dtype) == np.bool_:
        return [False, True]
    if np.dtype(dtype).kind == "f":
        return [0.0, 1.0]
    return [0, 1]


def shrink(case: Case,
           engines: Sequence[str] = DEFAULT_ENGINES,
           still_fails: Optional[Callable[[Case], bool]] = None,
           max_evals: int = 500) -> Case:
    """The smallest variant of ``case`` that still diverges.

    ``still_fails`` overrides the failure predicate (the corpus tests use
    it to shrink against a single buggy engine); the default re-runs the
    full differential check.  ``max_evals`` bounds total predicate calls
    so pathological cases cannot stall the CLI.
    """
    if still_fails is None:
        def still_fails(c: Case) -> bool:
            return not run_case(c, engines).ok

    evals = [0]

    def check(c: Case) -> bool:
        if evals[0] >= max_evals:
            return False
        evals[0] += 1
        try:
            return still_fails(c)
        except Exception:
            # a candidate edit that crashes the harness is not a valid
            # reduction; keep looking
            return False

    # ------ phase 1: ddmin element removal ------ #
    n = len(case.values)
    chunk = max(n // 2, 1)
    while n > 0 and chunk >= 1:
        shrunk_this_pass = False
        start = 0
        while start < n:
            keep = [True] * n
            for i in range(start, min(start + chunk, n)):
                keep[i] = False
            candidate = _drop(case, keep)
            if check(candidate):
                case = candidate
                n = len(case.values)
                shrunk_this_pass = True
                # do not advance: the window now holds new elements
            else:
                start += chunk
        if not shrunk_this_pass:
            chunk //= 2

    # ------ phase 2: collapse the segment layout ------ #
    if case.seg_lengths is not None and len(case.seg_lengths) > 1:
        candidate = _replace(case, "seg_lengths", (len(case.values),))
        if check(candidate):
            case = candidate

    # ------ phase 3: simplify auxiliary flags ------ #
    for field in ("flags", "flags2"):
        current = getattr(case, field)
        if current is not None and any(current):
            candidate = _replace(case, field, tuple([False] * len(current)))
            if check(candidate):
                case = candidate

    # ------ phase 4: pull values toward 0/1 ------ #
    simple = _simple_candidates(case.dtype)
    for i in range(len(case.values)):
        if case.values[i] in simple:
            continue
        for replacement in simple:
            new_values = (case.values[:i] + (replacement,)
                          + case.values[i + 1:])
            candidate = _replace(case, "values", new_values)
            if check(candidate):
                case = candidate
                break

    return case
