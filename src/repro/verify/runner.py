"""The differential executor: one case, every engine, one oracle.

For each :class:`~repro.verify.corpus.Case` the runner materializes the
inputs once, computes the serial-oracle answer, then runs the operation on
a **fresh machine per engine and fusion mode** — vectorized NumPy, the
blocked backend at two chunk sizes (chunk boundaries are where
carry-propagation bugs live), the per-element reference backend, and the
two-phase native backend at the default and a tiny block size (block
boundaries are its chunk boundaries), each once eager and once with the
lazy fused-pipeline path — and demands:

* every engine's *result* matches the oracle (bit-identical for integer
  and bool vectors; NaN-aware bit equality for non-additive float ops;
  a 1e-12 relative tolerance for the float +-family, whose association
  the blocked schedule legitimately changes), and
* every engine's *step charges* are identical, kind for kind, across
  backends **and** fusion modes — the cost model is host-side and must
  leak neither backend details nor whether execution was deferred.

One carve-out: for ops whose NaN handling is a *documented* departure
from sequential semantics (``nan_ok=False`` in the opset — the segmented
extreme scans order NaN as a largest value), the serial oracle abstains
when the inputs actually contain NaN, and the engines are instead held to
**each other**: the first engine's result becomes the expectation every
other engine must match bit for bit.  That keeps hand-written NaN
counterexamples (the chunk-boundary carry crop) on the cross-engine
surface without pretending the oracle's NaN-propagating answer applies.

Anything else is a :class:`Divergence`.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from ..machine.model import Machine
from .corpus import Case
from .opset import OPS, OpSpec

__all__ = ["DEFAULT_ENGINES", "Divergence", "CaseOutcome", "run_case",
           "run_cases", "results_equal"]

#: engines every case runs on (blocked twice: chunk edges at 32 and 7;
#: native twice: the default block and a tiny block-7 two-phase schedule)
DEFAULT_ENGINES = ("numpy", "blocked", "blocked:7", "reference",
                   "native", "native:0:7")

#: tolerance for float results of additive (+-family) operations.  The
#: blocked schedule and the segmented subtract-offset construction change
#: the association of IEEE addition; with the tame additive corpus
#: (magnitudes <= ~1e3, lengths <= ~130) honest rounding differences stay
#: below ~1e-10 while any logic bug is off by >= the pool's 1e-3 grain.
ADDITIVE_RTOL = 1e-9
ADDITIVE_ATOL = 1e-9


@dataclass(frozen=True)
class Divergence:
    """One conformance violation: an engine disagreed with the oracle
    (``kind="result"``), engines disagreed on step charges
    (``kind="steps"``), or an engine raised (``kind="error"``)."""

    case: Case
    kind: str                    #: "result" | "steps" | "error"
    engine: str
    expected: object
    actual: object

    def describe(self) -> str:
        return (f"[{self.kind}] {self.case.op} dtype={self.case.dtype} "
                f"engine={self.engine}: expected {self.expected!r}, "
                f"got {self.actual!r} — {self.case.describe()}")


@dataclass(frozen=True)
class CaseOutcome:
    """One case's verdict across all engines."""

    case: Case
    divergences: tuple = ()

    @property
    def ok(self) -> bool:
        return not self.divergences


def _is_float(a) -> bool:
    return np.asarray(a).dtype.kind == "f"


def results_equal(spec: OpSpec, expected, actual) -> bool:
    """The comparison contract (see module docstring)."""
    e, a = np.asarray(expected), np.asarray(actual)
    if e.shape != a.shape:
        return False
    if _is_float(e) or _is_float(a):
        if spec.additive:
            return bool(np.allclose(a, e, rtol=ADDITIVE_RTOL,
                                    atol=ADDITIVE_ATOL, equal_nan=True))
        return bool(np.array_equal(e, a, equal_nan=True))
    if e.ndim and e.dtype.kind != a.dtype.kind:
        # a bool vector must not come back as ints, or vice versa
        return False
    return bool(np.array_equal(e, a))


def _portable(value):
    """A divergence payload that prints cleanly (arrays become lists)."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    return value


def run_case(case: Case,
             engines: Sequence[str] = DEFAULT_ENGINES) -> CaseOutcome:
    """Run one case on every engine; return its verdict."""
    spec = OPS.get(case.op)
    if spec is None:
        raise ValueError(f"unknown op {case.op!r}; known: {sorted(OPS)}")
    mat = case.materialize()
    with np.errstate(all="ignore"):  # inf-inf etc. is the point of the corpus
        return _run_materialized(spec, case, mat, engines)


def _oracle_abstains(spec: OpSpec, mat) -> bool:
    """Whether the serial oracle's answer does not bind (documented NaN
    departure: ``nan_ok=False`` ops with NaN actually present)."""
    if spec.nan_ok:
        return False
    values = np.asarray(mat.values)
    return values.dtype.kind == "f" and bool(np.isnan(values).any())


def _run_materialized(spec: OpSpec, case: Case, mat, engines) -> "CaseOutcome":
    # None means "cross-engine mode": the first engine result below
    # becomes the expectation (see module docstring)
    expected = None if _oracle_abstains(spec, mat) else spec.oracle(mat)
    expected_from = "oracle"

    divergences = []
    baseline_steps = None
    baseline_engine = None
    for engine in engines:
        for fusion in (False, True):
            label = f"{engine}[{'fused' if fusion else 'eager'}]"
            m = Machine(spec.model, backend=engine, fusion=fusion)
            try:
                actual = spec.run(m, mat)
            except Exception as exc:  # an engine crashing IS a finding
                divergences.append(Divergence(
                    case=case, kind="error", engine=label,
                    expected=_portable(expected),
                    actual=f"{type(exc).__name__}: {exc}"))
                continue
            if expected is None:
                expected, expected_from = actual, label
            elif not results_equal(spec, expected, actual):
                divergences.append(Divergence(
                    case=case, kind="result",
                    engine=f"{label} (vs {expected_from})",
                    expected=_portable(expected), actual=_portable(actual)))
            steps = dict(m.counter.by_kind)
            if baseline_steps is None:
                baseline_steps, baseline_engine = steps, label
            elif steps != baseline_steps:
                divergences.append(Divergence(
                    case=case, kind="steps", engine=label,
                    expected=f"{baseline_engine}: {baseline_steps}",
                    actual=steps))
    return CaseOutcome(case=case, divergences=tuple(divergences))


def run_cases(cases: Sequence[Case],
              engines: Sequence[str] = DEFAULT_ENGINES,
              on_outcome: Optional[Callable[[CaseOutcome], None]] = None,
              ) -> list[CaseOutcome]:
    """Run a whole corpus; ``on_outcome`` (if given) sees each verdict as
    it lands (the CLI uses it for progress and early reporting)."""
    outcomes = []
    for case in cases:
        outcome = run_case(case, engines)
        outcomes.append(outcome)
        if on_outcome is not None:
            on_outcome(outcome)
    return outcomes
