"""Cross-backend differential conformance fuzzing (``repro.verify``).

The trust story for the execution backends: generate seeded, adversarial
inputs (:mod:`.corpus`), run every exported operation on every backend
(:mod:`.runner`, engines from :data:`~repro.verify.runner.DEFAULT_ENGINES`)
against a pure-serial oracle (:mod:`.oracle`), demand bit-identical
results and identical step charges, shrink anything that diverges to a
minimal counterexample (:mod:`.shrink`), and report the per-op ×
per-dtype pass matrix (:mod:`.report`).  ``python -m repro verify`` is
the CLI face; shrunken counterexamples live in ``tests/corpus/verify/``
and are replayed by the test suite and CI forever after.

See ``docs/verification.md`` for the comparison contract (when "equal"
means bit-equal vs. NaN-aware vs. tolerance) and the bug crop this
fuzzer surfaced.
"""
from .corpus import CORPUS_DIR, Case, Materialized, generate_cases, load_corpus
from .opset import DTYPES_FULL, OPS, OpSpec
from .report import ConformanceReport
from .runner import (DEFAULT_ENGINES, CaseOutcome, Divergence, results_equal,
                     run_case, run_cases)
from .shrink import shrink

__all__ = [
    "CORPUS_DIR",
    "Case",
    "Materialized",
    "generate_cases",
    "load_corpus",
    "OPS",
    "OpSpec",
    "DTYPES_FULL",
    "ConformanceReport",
    "DEFAULT_ENGINES",
    "CaseOutcome",
    "Divergence",
    "results_equal",
    "run_case",
    "run_cases",
    "shrink",
]
