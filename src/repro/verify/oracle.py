"""The serial-semantics oracle: what every operation *means*.

Each function here computes an exported operation's result with the most
direct serial loop that expresses its definition — an exclusive
``min-scan`` is a running minimum, full stop.  The oracle never uses the
Section 3.4 *constructions* (``min-scan`` as an inverted ``max-scan``,
``or-scan`` as a one-bit ``max-scan``, segmented scans as rank-encoded
unsegmented scans): those constructions are exactly what the execution
backends run, so a construction bug — a negation that overflows at
``iinfo.min``, a sign lost in an integer cast — shows up as a divergence
between backends and oracle even when all three backends agree with each
other.  This is the same oracle role LightScan's serial reference plays
for its SIMD scans.

Dtype contract (shared with the backends, checked by the fuzzer):

* arithmetic accumulates **in the vector's dtype** — narrow integer sums
  wrap modulo ``2**width`` (associative, hence backend-independent);
* reductions promote like ``np.sum`` (bool and narrow ints widen to the
  platform word) because :func:`repro.core.scans.plus_reduce` documents
  that behavior;
* comparisons use ``np.maximum`` / ``np.minimum`` semantics (NaN
  propagates), matching ``np.maximum.accumulate`` on the vectorized
  backend;
* truth tests are nonzero tests (NaN is truthy), matching Python.
"""
from __future__ import annotations

import numpy as np

from ..core.scans import max_identity, min_identity
from .corpus import Materialized

__all__ = ["ORACLES"]


def _exclusive_scan(values: np.ndarray, start, combine) -> np.ndarray:
    out = np.empty_like(values)
    acc = start
    with np.errstate(over="ignore"):
        for i in range(len(values)):
            out[i] = acc
            acc = combine(acc, values[i])
    return out


def _backward(fn):
    def back(mat: Materialized) -> np.ndarray:
        rev = Materialized(mat.values[::-1], None, None, None)
        return fn(rev)[::-1]
    return back


def _ident(kind: str, dtype: np.dtype):
    if kind == "max":
        return np.asarray(max_identity(dtype), dtype=dtype)[()]
    return np.asarray(min_identity(dtype), dtype=dtype)[()]


# --------------------------------------------------------------------- #
# Unsegmented scans
# --------------------------------------------------------------------- #

def plus_scan(mat: Materialized) -> np.ndarray:
    v = mat.values
    if v.dtype == np.bool_:
        v = v.astype(np.int64)
    return _exclusive_scan(v, v.dtype.type(0), lambda a, x: a + x)


def max_scan(mat: Materialized) -> np.ndarray:
    v = mat.values
    return _exclusive_scan(v, _ident("max", v.dtype), np.maximum)


def min_scan(mat: Materialized) -> np.ndarray:
    v = mat.values
    return _exclusive_scan(v, _ident("min", v.dtype), np.minimum)


def or_scan(mat: Materialized) -> np.ndarray:
    out = np.empty(len(mat.values), dtype=bool)
    acc = False
    for i in range(len(mat.values)):
        out[i] = acc
        acc = acc or bool(mat.values[i])
    return out


def and_scan(mat: Materialized) -> np.ndarray:
    out = np.empty(len(mat.values), dtype=bool)
    acc = True
    for i in range(len(mat.values)):
        out[i] = acc
        acc = acc and bool(mat.values[i])
    return out


back_plus_scan = _backward(plus_scan)
back_max_scan = _backward(max_scan)
back_min_scan = _backward(min_scan)
back_or_scan = _backward(or_scan)
back_and_scan = _backward(and_scan)


# --------------------------------------------------------------------- #
# Reductions (promotion mirrors np.sum / np.max, as the API documents)
# --------------------------------------------------------------------- #

def _sum_accumulator(dtype: np.dtype):
    if dtype == np.bool_:
        return np.int64(0)
    if dtype.kind == "i" and dtype.itemsize < 8:
        return np.int64(0)
    if dtype.kind == "u" and dtype.itemsize < 8:
        return np.uint64(0)
    return dtype.type(0)


def plus_reduce(mat: Materialized):
    if len(mat.values) == 0:
        return 0
    acc = _sum_accumulator(mat.values.dtype)
    with np.errstate(over="ignore"):
        for x in mat.values:
            acc = acc + x
    return acc.item()


def max_reduce(mat: Materialized):
    v = mat.values
    if len(v) == 0:
        return max_identity(v.dtype)
    acc = v[0]
    for x in v[1:]:
        acc = np.maximum(acc, x)
    return acc.item()


def min_reduce(mat: Materialized):
    v = mat.values
    if len(v) == 0:
        return min_identity(v.dtype)
    acc = v[0]
    for x in v[1:]:
        acc = np.minimum(acc, x)
    return acc.item()


def or_reduce(mat: Materialized) -> bool:
    return any(bool(x) for x in mat.values)


def and_reduce(mat: Materialized) -> bool:
    return all(bool(x) for x in mat.values)


# --------------------------------------------------------------------- #
# Distributes: every element receives the reduction, cast to the dtype
# --------------------------------------------------------------------- #

def _distribute(mat: Materialized, reducer):
    v = mat.values
    if len(v) == 0:
        return v.copy()
    # the reduction may be promoted (np.sum semantics); the broadcast casts
    # it back into the vector's dtype, wrapping like the backends do
    fill = np.asarray(reducer(mat)).astype(v.dtype)
    return np.full(len(v), fill, dtype=v.dtype)


def plus_distribute(mat): return _distribute(mat, plus_reduce)
def max_distribute(mat): return _distribute(mat, max_reduce)
def min_distribute(mat): return _distribute(mat, min_reduce)
def or_distribute(mat): return _distribute(mat, or_reduce)
def and_distribute(mat): return _distribute(mat, and_reduce)


# --------------------------------------------------------------------- #
# Segmented operations
# --------------------------------------------------------------------- #

def _segments(mat: Materialized):
    """Yield (start, end) of each segment, in order."""
    sf = mat.seg_flags
    n = len(sf)
    start = 0
    for i in range(1, n + 1):
        if i == n or sf[i]:
            yield start, i
            start = i


def segment_ids(mat: Materialized) -> np.ndarray:
    out = np.empty(len(mat.values), dtype=np.int64)
    sid = -1
    for i in range(len(mat.values)):
        if mat.seg_flags[i]:
            sid += 1
        out[i] = sid
    return out


def _seg_exclusive(mat: Materialized, values: np.ndarray, start_of,
                   combine) -> np.ndarray:
    out = np.empty_like(values)
    acc = None
    with np.errstate(over="ignore"):
        for i in range(len(values)):
            if mat.seg_flags[i]:
                acc = start_of(values.dtype)
            out[i] = acc
            acc = combine(acc, values[i])
    return out


def seg_plus_scan(mat: Materialized) -> np.ndarray:
    v = mat.values
    if v.dtype == np.bool_:
        v = v.astype(np.int64)
    return _seg_exclusive(mat, v, lambda dt: dt.type(0), lambda a, x: a + x)


def seg_max_scan(mat: Materialized) -> np.ndarray:
    return _seg_exclusive(mat, mat.values, lambda dt: _ident("max", dt),
                          np.maximum)


def seg_min_scan(mat: Materialized) -> np.ndarray:
    return _seg_exclusive(mat, mat.values, lambda dt: _ident("min", dt),
                          np.minimum)


def seg_or_scan(mat: Materialized) -> np.ndarray:
    out = np.empty(len(mat.values), dtype=bool)
    acc = False
    for i in range(len(mat.values)):
        if mat.seg_flags[i]:
            acc = False
        out[i] = acc
        acc = acc or bool(mat.values[i])
    return out


def seg_and_scan(mat: Materialized) -> np.ndarray:
    out = np.empty(len(mat.values), dtype=bool)
    acc = True
    for i in range(len(mat.values)):
        if mat.seg_flags[i]:
            acc = True
        out[i] = acc
        acc = acc and bool(mat.values[i])
    return out


def _seg_backward(forward):
    """Run ``forward`` on each segment reversed, element by element."""
    def back(mat: Materialized) -> np.ndarray:
        out = np.empty_like(forward(mat))
        for s, e in _segments(mat):
            seg = mat.values[s:e][::-1]
            sf = np.zeros(len(seg), dtype=bool)
            if len(sf):
                sf[0] = True
            sub = forward(Materialized(seg, sf, None, None))
            out[s:e] = sub[::-1]
        return out
    return back


seg_back_plus_scan = _seg_backward(seg_plus_scan)
seg_back_max_scan = _seg_backward(seg_max_scan)
seg_back_min_scan = _seg_backward(seg_min_scan)


def seg_copy(mat: Materialized) -> np.ndarray:
    out = np.empty_like(mat.values)
    for s, e in _segments(mat):
        out[s:e] = mat.values[s]
    return out


def seg_back_copy(mat: Materialized) -> np.ndarray:
    out = np.empty_like(mat.values)
    for s, e in _segments(mat):
        out[s:e] = mat.values[e - 1]
    return out


def seg_enumerate(mat: Materialized) -> np.ndarray:
    """Within-segment exclusive count of set flags (values are the flags)."""
    out = np.empty(len(mat.values), dtype=np.int64)
    acc = 0
    for i in range(len(mat.values)):
        if mat.seg_flags[i]:
            acc = 0
        out[i] = acc
        acc += 1 if bool(mat.values[i]) else 0
    return out


def seg_index(mat: Materialized) -> np.ndarray:
    out = np.empty(len(mat.values), dtype=np.int64)
    for s, e in _segments(mat):
        out[s:e] = np.arange(e - s)
    return out


def _seg_distribute(mat: Materialized, reducer) -> np.ndarray:
    v = mat.values
    out = np.empty_like(v)
    for s, e in _segments(mat):
        out[s:e] = np.asarray(reducer(Materialized(v[s:e], None, None, None))
                              ).astype(v.dtype)
    return out


def seg_plus_distribute(mat): return _seg_distribute(mat, plus_reduce)
def seg_max_distribute(mat): return _seg_distribute(mat, max_reduce)
def seg_min_distribute(mat): return _seg_distribute(mat, min_reduce)
def seg_or_distribute(mat): return _seg_distribute(mat, or_reduce)
def seg_and_distribute(mat): return _seg_distribute(mat, and_reduce)


def seg_split(mat: Materialized) -> np.ndarray:
    out = np.empty_like(mat.values)
    for s, e in _segments(mat):
        low = [mat.values[i] for i in range(s, e) if not mat.flags[i]]
        high = [mat.values[i] for i in range(s, e) if mat.flags[i]]
        out[s:e] = np.array(low + high, dtype=mat.values.dtype)
    return out


def seg_split3(mat: Materialized) -> np.ndarray:
    out = np.empty_like(mat.values)
    for s, e in _segments(mat):
        less = [mat.values[i] for i in range(s, e) if mat.flags[i]]
        eq = [mat.values[i] for i in range(s, e)
              if mat.flags2[i] and not mat.flags[i]]
        rest = [mat.values[i] for i in range(s, e)
                if not mat.flags[i] and not mat.flags2[i]]
        out[s:e] = np.array(less + eq + rest, dtype=mat.values.dtype)
    return out


def seg_flag_from_neighbor_change(mat: Materialized) -> np.ndarray:
    v = mat.values
    out = np.empty(len(v), dtype=bool)
    for i in range(len(v)):
        out[i] = (i == 0 or bool(mat.seg_flags[i])
                  or bool(v[i] != v[i - 1]))
    return out


# --------------------------------------------------------------------- #
# Batched heterogeneous segmented scans (the serving mega-op shape).
# The case's auxiliary flag vector marks *request* boundaries; each
# request carries its own segment layout (its slice of seg_flags, head
# forced on).  The oracle answers each request independently with the
# serial segmented oracle and concatenates — the meaning a client sees —
# while the opset runs the whole thing as the one fused mega-op the
# server executes (repro.serve.batching.assemble).
# --------------------------------------------------------------------- #

def _request_parts(mat: Materialized) -> list:
    n = len(mat.values)
    bounds = [0] + [i for i in range(1, n) if mat.flags[i]] + [n]
    parts = []
    for s, e in zip(bounds, bounds[1:]):
        sub = np.asarray(mat.seg_flags[s:e], dtype=bool).copy()
        if len(sub):
            sub[0] = True
        parts.append((mat.values[s:e], sub))
    return parts


def _batched_seg(seg_oracle):
    def batched(mat: Materialized) -> np.ndarray:
        outs = [seg_oracle(Materialized(vals, flags, None, None))
                for vals, flags in _request_parts(mat)]
        return np.concatenate(outs)
    return batched


batched_seg_plus_scan = _batched_seg(seg_plus_scan)
batched_seg_max_scan = _batched_seg(seg_max_scan)


# --------------------------------------------------------------------- #
# Fused elementwise chains (the eager-vs-lazy differential surface).
# Each oracle computes the chain with whole-array NumPy calls — the same
# ufuncs in the same order the Vector operators issue, so the expected
# values are exact — then defers to the serial scan oracle for the
# terminal.
# --------------------------------------------------------------------- #

def _chain(mat: Materialized, w: np.ndarray) -> Materialized:
    return Materialized(w, mat.seg_flags, mat.flags, mat.flags2)


def fused_square_plus_scan(mat: Materialized) -> np.ndarray:
    v = mat.values
    with np.errstate(all="ignore"):
        w = np.add(np.multiply(v, v), v)
    return plus_scan(_chain(mat, w))


def fused_where_max_scan(mat: Materialized) -> np.ndarray:
    f = np.asarray(mat.flags, dtype=bool)
    w = np.where(f, mat.values, 0)
    return max_scan(_chain(mat, w))


def fused_compare_chain(mat: Materialized) -> np.ndarray:
    v = mat.values
    with np.errstate(all="ignore"):
        return np.logical_and(np.greater_equal(np.multiply(v, 2), v),
                              np.not_equal(v, 0))


def fused_reflected_plus_scan(mat: Materialized) -> np.ndarray:
    v = mat.values
    with np.errstate(all="ignore"):
        w = np.add(np.multiply(np.subtract(10, v), 2), np.add(5, v))
    return plus_scan(_chain(mat, w))


def fused_cast_plus_scan(mat: Materialized) -> np.ndarray:
    return plus_scan(_chain(mat, mat.values.astype(np.float64)))


# ------------------------------ codecs -------------------------------- #

def delta_encode(mat: Materialized) -> np.ndarray:
    v = mat.values
    out = v.copy()
    with np.errstate(all="ignore"):
        out[1:] = v[1:] - v[:-1]
    return out


def delta_round_trip(mat: Materialized) -> np.ndarray:
    return mat.values.copy()


def _serial_rle(values: np.ndarray) -> tuple[list, list]:
    vals: list = []
    lens: list = []
    with np.errstate(all="ignore"):
        for x in values:
            # NaN != NaN starts a new run, matching adjacent_ne semantics
            if lens and bool(x == vals[-1]):
                lens[-1] += 1
            else:
                vals.append(x)
                lens.append(1)
    return vals, lens


def rle_encode_values(mat: Materialized) -> np.ndarray:
    vals, _ = _serial_rle(mat.values)
    return np.array(vals, dtype=mat.values.dtype)


def rle_encode_lengths(mat: Materialized) -> np.ndarray:
    _, lens = _serial_rle(mat.values)
    return np.array(lens, dtype=np.int64)


def rle_round_trip(mat: Materialized) -> np.ndarray:
    return mat.values.copy()


#: oracle function per operation name (keys match ``opset.OPS``)
ORACLES = {
    name: fn for name, fn in list(globals().items())
    if callable(fn) and not name.startswith("_")
    and name not in ("Materialized", "max_identity", "min_identity")
}
