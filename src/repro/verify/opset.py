"""The operation registry: every exported operation the fuzzer covers.

One :class:`OpSpec` per public operation of :mod:`repro.core.scans` and
:mod:`repro.core.segmented` — the two primitive scans, every derived and
backward scan, the reduces and distributes, and the full segmented
surface.  A spec bundles how to *run* the operation on a machine (``run``)
with what it *means* (``oracle``, a serial loop from
:mod:`repro.verify.oracle`) and the shape of its inputs, so the runner and
the corpus generator never special-case operation names.

Dtype grids:

* most operations run over the full adversarial grid — signed and
  unsigned, narrow and wide, bool, float64;
* ``segment_ids`` / ``seg_index`` / ``seg_enumerate`` take flag vectors by
  contract, so they fuzz over ``bool`` only;
* the four segmented extreme scans exclude NaN (``nan_ok=False``): their
  rank-encoding construction orders NaN like a largest value, which is a
  *documented* departure from NaN-propagating sequential semantics, not a
  conformance bug (see ``docs/verification.md``).

``additive=True`` marks the +-family: on floats their result depends on
association, so the blocked backend's chunked partial sums differ from the
whole-vector ``cumsum`` in the last ulp.  The runner compares those with a
tight tolerance instead of bit equality; integer sums wrap modulo
``2**width`` and stay exact everywhere.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core import scans, segmented
from . import oracle as _oracle
from .corpus import Materialized

__all__ = ["OpSpec", "OPS", "DTYPES_FULL"]

#: the full adversarial dtype grid
DTYPES_FULL = ("int8", "int16", "uint8", "uint32", "int64", "bool",
               "float64")
_BOOL_ONLY = ("bool",)
#: NumPy defines no boolean subtract, so reflected-arithmetic chains
#: fuzz over the numeric grid only
_DTYPES_NO_BOOL = tuple(d for d in DTYPES_FULL if d != "bool")


@dataclass(frozen=True)
class OpSpec:
    """How to run, check, and generate inputs for one exported operation."""

    name: str
    family: str                  #: "scan" | "reduce" | "distribute" | "segmented" | "fused"
    run: Callable                #: (Machine, Materialized) -> ndarray | scalar
    oracle: Callable             #: (Materialized) -> ndarray | scalar
    dtypes: tuple
    segmented: bool = False      #: needs a segment layout
    n_flags: int = 0             #: auxiliary boolean vectors (seg_split...)
    nan_ok: bool = True          #: NaN admitted in generated float values
    additive: bool = False       #: float results compared with tolerance
    model: str = "scan"          #: cost model the runner builds Machines on


OPS: dict[str, OpSpec] = {}


def _register(spec: OpSpec) -> None:
    if spec.name in OPS:
        raise ValueError(f"duplicate op {spec.name!r}")
    OPS[spec.name] = spec


def _plain(fn):
    """Run an unsegmented vector->vector operation."""
    def run(m, mat: Materialized):
        return fn(m.vector(mat.values)).data
    return run


def _plain_scalar(fn):
    """Run an unsegmented vector->scalar operation (the reduces)."""
    def run(m, mat: Materialized):
        return fn(m.vector(mat.values))
    return run


def _seg(fn):
    """Run a (values, seg_flags) operation."""
    def run(m, mat: Materialized):
        return fn(m.vector(mat.values), m.vector(mat.seg_flags)).data
    return run


def _flags_only(fn):
    """Run an operation taking only the segment-flag vector."""
    def run(m, mat: Materialized):
        return fn(m.vector(mat.seg_flags)).data
    return run


def _seg_split(m, mat: Materialized):
    return segmented.seg_split(m.vector(mat.values), m.vector(mat.flags),
                               m.vector(mat.seg_flags)).data


def _seg_split3(m, mat: Materialized):
    return segmented.seg_split3(m.vector(mat.values), m.vector(mat.flags),
                                m.vector(mat.flags2),
                                m.vector(mat.seg_flags)).data


def _orc(name: str) -> Callable:
    return _oracle.ORACLES[name]


# ----------------------------- scans --------------------------------- #

for _name, _additive in [("plus_scan", True), ("max_scan", False),
                         ("min_scan", False), ("or_scan", False),
                         ("and_scan", False), ("back_plus_scan", True),
                         ("back_max_scan", False), ("back_min_scan", False),
                         ("back_or_scan", False), ("back_and_scan", False)]:
    _register(OpSpec(name=_name, family="scan",
                     run=_plain(getattr(scans, _name)), oracle=_orc(_name),
                     dtypes=DTYPES_FULL, additive=_additive))

# ---------------------- reduces and distributes ----------------------- #

for _kind in ("plus", "max", "min", "or", "and"):
    _register(OpSpec(name=f"{_kind}_reduce", family="reduce",
                     run=_plain_scalar(getattr(scans, f"{_kind}_reduce")),
                     oracle=_orc(f"{_kind}_reduce"),
                     dtypes=DTYPES_FULL, additive=(_kind == "plus")))
    _register(OpSpec(name=f"{_kind}_distribute", family="distribute",
                     run=_plain(getattr(scans, f"{_kind}_distribute")),
                     oracle=_orc(f"{_kind}_distribute"),
                     dtypes=DTYPES_FULL, additive=(_kind == "plus")))

# --------------------------- segmented -------------------------------- #

for _name in ("segment_ids", "seg_index"):
    _register(OpSpec(name=_name, family="segmented",
                     run=_flags_only(getattr(segmented, _name)),
                     oracle=_orc(_name), dtypes=_BOOL_ONLY, segmented=True))

_register(OpSpec(name="seg_enumerate", family="segmented",
                 run=_seg(segmented.seg_enumerate),
                 oracle=_orc("seg_enumerate"),
                 dtypes=_BOOL_ONLY, segmented=True))

for _name, _nan_ok, _additive in [
    ("seg_plus_scan", True, True),
    ("seg_max_scan", False, False),
    ("seg_min_scan", False, False),
    ("seg_or_scan", True, False),
    ("seg_and_scan", True, False),
    ("seg_back_plus_scan", True, True),
    ("seg_back_max_scan", False, False),
    ("seg_back_min_scan", False, False),
    ("seg_copy", True, False),
    ("seg_back_copy", True, False),
    ("seg_plus_distribute", True, True),
    ("seg_max_distribute", True, False),
    ("seg_min_distribute", True, False),
    ("seg_or_distribute", True, False),
    ("seg_and_distribute", True, False),
    ("seg_flag_from_neighbor_change", True, False),
]:
    _register(OpSpec(name=_name, family="segmented",
                     run=_seg(getattr(segmented, _name)), oracle=_orc(_name),
                     dtypes=DTYPES_FULL, segmented=True,
                     nan_ok=_nan_ok, additive=_additive))

_register(OpSpec(name="seg_split", family="segmented", run=_seg_split,
                 oracle=_orc("seg_split"), dtypes=DTYPES_FULL,
                 segmented=True, n_flags=1))

_register(OpSpec(name="seg_split3", family="segmented", run=_seg_split3,
                 oracle=_orc("seg_split3"), dtypes=DTYPES_FULL,
                 segmented=True, n_flags=2))

# ------------------ batched heterogeneous segmented scans -------------- #
# The serving mega-op shape (repro.serve.batching): the auxiliary flag
# vector splits the case into pseudo-requests, each carrying its own
# segment layout, and the whole batch executes as ONE segmented scan over
# the assembled flag vector.  The oracle answers each request
# independently, so this is the server's batching-invisibility claim on
# the cross-backend differential surface.


def _batched_seg(seg_fn):
    def run(m, mat: Materialized):
        from ..serve.batching import assemble

        values, flags, _ = assemble(_oracle._request_parts(mat))
        return seg_fn(m.vector(values), m.flags(flags)).data
    return run


_register(OpSpec(name="batched_seg_plus_scan", family="segmented",
                 run=_batched_seg(segmented.seg_plus_scan),
                 oracle=_orc("batched_seg_plus_scan"),
                 dtypes=DTYPES_FULL, segmented=True, n_flags=1,
                 additive=True))

_register(OpSpec(name="batched_seg_max_scan", family="segmented",
                 run=_batched_seg(segmented.seg_max_scan),
                 oracle=_orc("batched_seg_max_scan"),
                 dtypes=DTYPES_FULL, segmented=True, n_flags=1,
                 nan_ok=False))

# ------------------------- fused pipelines ----------------------------- #
# Elementwise chains ending (or not) in a primitive scan, exercised
# through the public Vector operators so the lazy DAG / fused-plan path is
# on the differential surface: the runner executes every op under both
# fusion settings on every engine and demands identical results *and*
# charges (see runner._run_materialized).


def _fused_square_plus_scan(m, mat: Materialized):
    v = m.vector(mat.values)
    return scans.plus_scan(v * v + v).data


def _fused_where_max_scan(m, mat: Materialized):
    v = m.vector(mat.values)
    return scans.max_scan(m.flags(mat.flags).where(v, 0)).data


def _fused_compare_chain(m, mat: Materialized):
    v = m.vector(mat.values)
    return ((v * 2 >= v) & (v != 0)).data


def _fused_reflected_plus_scan(m, mat: Materialized):
    v = m.vector(mat.values)
    return scans.plus_scan((10 - v) * 2 + (5 + v)).data


def _fused_cast_plus_scan(m, mat: Materialized):
    v = m.vector(mat.values)
    return scans.plus_scan(v.astype(np.float64)).data


_register(OpSpec(name="fused_square_plus_scan", family="fused",
                 run=_fused_square_plus_scan,
                 oracle=_orc("fused_square_plus_scan"),
                 dtypes=DTYPES_FULL, additive=True))

_register(OpSpec(name="fused_where_max_scan", family="fused",
                 run=_fused_where_max_scan,
                 oracle=_orc("fused_where_max_scan"),
                 dtypes=DTYPES_FULL, n_flags=1))

_register(OpSpec(name="fused_compare_chain", family="fused",
                 run=_fused_compare_chain,
                 oracle=_orc("fused_compare_chain"),
                 dtypes=DTYPES_FULL))

_register(OpSpec(name="fused_reflected_plus_scan", family="fused",
                 run=_fused_reflected_plus_scan,
                 oracle=_orc("fused_reflected_plus_scan"),
                 dtypes=_DTYPES_NO_BOOL, additive=True))

# int64 is excluded: its extremes round when cast to float64, and the
# scan's catastrophic cancellation then exceeds any honest tolerance on
# the blocked schedule (eager and fused alike); the remaining dtypes sum
# exactly in float64 at corpus lengths
_register(OpSpec(name="fused_cast_plus_scan", family="fused",
                 run=_fused_cast_plus_scan,
                 oracle=_orc("fused_cast_plus_scan"),
                 dtypes=("int8", "int16", "uint8", "uint32", "bool",
                         "float64"),
                 additive=True))

# ----------------------------- codecs ---------------------------------- #
# The compression workloads (repro.algorithms.codecs) on the differential
# surface: RLE is exact for every dtype (NaN is always its own run), delta
# is arithmetic so it skips bool, and the delta round trip is additive (a
# float decode re-sums the diffs, so blocked partial sums differ in the
# last ulp).


def _delta_encode(m, mat: Materialized):
    from ..algorithms import codecs

    return codecs.delta_encode(m.vector(mat.values)).data


def _delta_round_trip(m, mat: Materialized):
    from ..algorithms import codecs

    return codecs.delta_decode(codecs.delta_encode(m.vector(mat.values))).data


def _rle_encode_values(m, mat: Materialized):
    from ..algorithms import codecs

    return codecs.rle_encode(m.vector(mat.values))[0].data


def _rle_encode_lengths(m, mat: Materialized):
    from ..algorithms import codecs

    return codecs.rle_encode(m.vector(mat.values))[1].data


def _rle_round_trip(m, mat: Materialized):
    from ..algorithms import codecs

    values, lengths = codecs.rle_encode(m.vector(mat.values))
    return codecs.rle_decode(values, lengths).data


_register(OpSpec(name="delta_encode", family="codec", run=_delta_encode,
                 oracle=_orc("delta_encode"), dtypes=_DTYPES_NO_BOOL))

_register(OpSpec(name="delta_round_trip", family="codec",
                 run=_delta_round_trip, oracle=_orc("delta_round_trip"),
                 dtypes=_DTYPES_NO_BOOL, additive=True))

_register(OpSpec(name="rle_encode_values", family="codec",
                 run=_rle_encode_values, oracle=_orc("rle_encode_values"),
                 dtypes=DTYPES_FULL))

_register(OpSpec(name="rle_encode_lengths", family="codec",
                 run=_rle_encode_lengths, oracle=_orc("rle_encode_lengths"),
                 dtypes=DTYPES_FULL))

_register(OpSpec(name="rle_round_trip", family="codec",
                 run=_rle_round_trip, oracle=_orc("rle_round_trip"),
                 dtypes=DTYPES_FULL))

# ------------------------- binary-forking ------------------------------ #
# The same public operations fuzzed on Machine(model="binary-forking"):
# results and cross-engine step charges must match exactly as on the scan
# model (only the per-step costs differ), and the fork ledger must
# reconcile after every case — spawn/sync imbalance is a divergence the
# type system can't see, so the runner gets it as an assertion.


def _forked(run_fn):
    def run(m, mat: Materialized):
        out = run_fn(m, mat)
        assert m.fork_counters.reconciles(), (
            f"fork ledger unbalanced: {m.fork_counters.summary()}")
        return out
    return run


_register(OpSpec(name="forking_plus_scan", family="scan",
                 run=_forked(_plain(scans.plus_scan)),
                 oracle=_orc("plus_scan"), dtypes=DTYPES_FULL,
                 additive=True, model="binary-forking"))

_register(OpSpec(name="forking_seg_plus_scan", family="segmented",
                 run=_forked(_seg(segmented.seg_plus_scan)),
                 oracle=_orc("seg_plus_scan"), dtypes=DTYPES_FULL,
                 segmented=True, additive=True, model="binary-forking"))

_register(OpSpec(name="forking_delta_round_trip", family="codec",
                 run=_forked(_delta_round_trip),
                 oracle=_orc("delta_round_trip"), dtypes=_DTYPES_NO_BOOL,
                 additive=True, model="binary-forking"))
