"""Conformance reporting: the per-op × per-dtype pass matrix.

A :class:`ConformanceReport` aggregates a run's
:class:`~repro.verify.runner.CaseOutcome` stream into the matrix the CLI
prints (operations down, dtypes across, ``pass/total`` per cell), exports
to JSON for CI artifacts, and feeds the :mod:`repro.observe` metrics
registry (``verify.cases``, ``verify.divergences``) so fuzzer runs show up
in the same exporters as everything else.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..observe.metrics import registry as _metrics
from .runner import CaseOutcome, Divergence

__all__ = ["ConformanceReport"]


@dataclass
class ConformanceReport:
    """Mutable aggregate over one verification run."""

    engines: tuple = ()
    #: (op, dtype) -> [cases run, cases diverged]
    cells: dict = field(default_factory=dict)
    divergences: list = field(default_factory=list)

    def record(self, outcome: CaseOutcome) -> None:
        key = (outcome.case.op, outcome.case.dtype)
        cell = self.cells.setdefault(key, [0, 0])
        cell[0] += 1
        _metrics.counter("verify.cases").inc()
        if not outcome.ok:
            cell[1] += 1
            self.divergences.extend(outcome.divergences)
            _metrics.counter("verify.divergences").inc(len(outcome.divergences))

    def record_all(self, outcomes: Iterable[CaseOutcome]) -> None:
        for outcome in outcomes:
            self.record(outcome)

    # ------------------------------ stats ------------------------------ #

    @property
    def total_cases(self) -> int:
        return sum(run for run, _ in self.cells.values())

    @property
    def total_failures(self) -> int:
        return sum(bad for _, bad in self.cells.values())

    @property
    def ok(self) -> bool:
        return not self.divergences

    # ---------------------------- rendering ---------------------------- #

    def render_table(self) -> str:
        """The matrix: ops down, dtypes across, ``pass/total`` per cell
        (a cell is blank when the op's dtype grid excludes that dtype)."""
        ops = sorted({op for op, _ in self.cells})
        dtypes = sorted({dt for _, dt in self.cells})
        if not ops:
            return "(no cases run)"
        op_w = max(len("op"), *(len(o) for o in ops))
        col_w = {dt: max(len(dt), 5) for dt in dtypes}
        lines = ["  ".join(["op".ljust(op_w)]
                           + [dt.rjust(col_w[dt]) for dt in dtypes])]
        for op in ops:
            row = [op.ljust(op_w)]
            for dt in dtypes:
                cell = self.cells.get((op, dt))
                if cell is None:
                    row.append("-".rjust(col_w[dt]))
                else:
                    run, bad = cell
                    mark = f"{run - bad}/{run}" + ("!" if bad else "")
                    row.append(mark.rjust(col_w[dt]))
            lines.append("  ".join(row))
        lines.append("")
        status = ("all engines agree" if self.ok
                  else f"{self.total_failures} divergent case(s), "
                       f"{len(self.divergences)} divergence(s)")
        lines.append(f"{self.total_cases} cases x {len(self.engines)} "
                     f"engines ({', '.join(self.engines)}): {status}")
        return "\n".join(lines)

    def to_json_dict(self) -> dict:
        return {
            "engines": list(self.engines),
            "total_cases": self.total_cases,
            "total_failures": self.total_failures,
            "ok": self.ok,
            "cells": [
                {"op": op, "dtype": dt, "cases": run, "failed": bad}
                for (op, dt), (run, bad) in sorted(self.cells.items())
            ],
            "divergences": [self._divergence_dict(d)
                            for d in self.divergences],
        }

    @staticmethod
    def _divergence_dict(d: Divergence) -> dict:
        return {
            "kind": d.kind,
            "engine": d.engine,
            "case": d.case.to_json_dict(),
            "expected": repr(d.expected),
            "actual": repr(d.actual),
        }
