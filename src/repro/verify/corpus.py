"""Adversarial test-case corpora for the differential conformance fuzzer.

A :class:`Case` is one replayable input to one exported operation: the
operation's name, an element dtype, the raw values, and — for segmented
operations — a segment layout plus any auxiliary flag vectors.  Cases are
plain data (JSON-serializable, no machine or backend state), so a case
that once exposed a divergence can be committed to the regression corpus
(``tests/corpus/verify/``) and replayed forever.

Generation is **seeded and deterministic**: :func:`generate_cases` walks
the (operation × dtype) grid round-robin so every pair is exercised, and
draws shapes and values from a single ``numpy.random.Generator``.  The
value pools are deliberately adversarial — dtype boundary values
(``iinfo.min``/``max`` and their neighbors), unsigned and small-width
integers, float specials (``±inf``, ``±0.0``, subnormals, NaN where the
operation's ordering contract admits it), empty vectors, length-1
vectors, all-equal vectors, and degenerate segment layouts (one segment,
all-singleton segments) — because blocked/carry-propagating schedules
diverge silently at exactly those points.
"""
from __future__ import annotations

import json
import math
import pathlib
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

__all__ = ["Case", "Materialized", "generate_cases", "load_corpus",
           "CORPUS_DIR"]

#: the committed regression corpus (shrunken counterexamples of every bug
#: the fuzzer has found); replayed by ``python -m repro verify`` and CI
CORPUS_DIR = (pathlib.Path(__file__).resolve().parents[3]
              / "tests" / "corpus" / "verify")


# --------------------------------------------------------------------- #
# The case record
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class Materialized:
    """A case's vectors as concrete NumPy arrays (built per engine run)."""

    values: np.ndarray
    seg_flags: Optional[np.ndarray]
    flags: Optional[np.ndarray]
    flags2: Optional[np.ndarray]


def _encode_value(x):
    """JSON-safe encoding of one element (float specials become strings)."""
    if isinstance(x, float):
        if math.isnan(x):
            return "nan"
        if math.isinf(x):
            return "inf" if x > 0 else "-inf"
        if x == 0.0 and math.copysign(1.0, x) < 0:
            return "-0.0"
    return x


def _decode_value(x):
    if isinstance(x, str):
        return float(x)
    return x


@dataclass(frozen=True)
class Case:
    """One replayable fuzzer input.

    ``seg_lengths`` (segment layout, summing to ``len(values)``) is
    present exactly for segmented operations; ``flags`` / ``flags2`` are
    the auxiliary boolean vectors some operations take (``seg_split``'s
    partition flags, ``seg_split3``'s lesser/equal pair).
    """

    op: str
    dtype: str
    values: tuple = ()
    seg_lengths: Optional[tuple] = None
    flags: Optional[tuple] = None
    flags2: Optional[tuple] = None
    note: str = ""

    # -------------------------- materialize --------------------------- #

    def materialize(self) -> Materialized:
        dt = np.dtype(self.dtype)
        vals = np.array([_decode_value(v) for v in self.values], dtype=dt)
        seg = None
        if self.seg_lengths is not None:
            seg = np.zeros(len(vals), dtype=bool)
            pos = 0
            for length in self.seg_lengths:
                seg[pos] = True
                pos += length
            if pos != len(vals):
                raise ValueError(
                    f"case {self.op}: seg_lengths sum {pos} != {len(vals)}")
        f1 = None if self.flags is None else np.array(self.flags, dtype=bool)
        f2 = None if self.flags2 is None else np.array(self.flags2, dtype=bool)
        return Materialized(vals, seg, f1, f2)

    # ------------------------- serialization -------------------------- #

    def to_json_dict(self) -> dict:
        d = {"op": self.op, "dtype": self.dtype,
             "values": [_encode_value(v) for v in self.values]}
        if self.seg_lengths is not None:
            d["seg_lengths"] = list(self.seg_lengths)
        if self.flags is not None:
            d["flags"] = list(self.flags)
        if self.flags2 is not None:
            d["flags2"] = list(self.flags2)
        if self.note:
            d["note"] = self.note
        return d

    @classmethod
    def from_json_dict(cls, d: dict) -> "Case":
        return cls(
            op=d["op"], dtype=d["dtype"],
            values=tuple(d.get("values", ())),
            seg_lengths=(tuple(d["seg_lengths"])
                         if "seg_lengths" in d else None),
            flags=tuple(d["flags"]) if "flags" in d else None,
            flags2=tuple(d["flags2"]) if "flags2" in d else None,
            note=d.get("note", ""),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_json_dict(), indent=2)

    def describe(self) -> str:
        parts = [f"op={self.op}", f"dtype={self.dtype}",
                 f"values={list(self.values)!r}"]
        if self.seg_lengths is not None:
            parts.append(f"seg_lengths={list(self.seg_lengths)!r}")
        if self.flags is not None:
            parts.append(f"flags={list(self.flags)!r}")
        if self.flags2 is not None:
            parts.append(f"flags2={list(self.flags2)!r}")
        if self.note:
            parts.append(f"note={self.note!r}")
        return "Case(" + ", ".join(parts) + ")"


def load_corpus(directory=None) -> list[Case]:
    """Load every committed ``*.json`` counterexample, sorted by name."""
    directory = pathlib.Path(directory) if directory else CORPUS_DIR
    if not directory.is_dir():
        return []
    cases = []
    for path in sorted(directory.glob("*.json")):
        cases.append(Case.from_json_dict(json.loads(path.read_text())))
    return cases


# --------------------------------------------------------------------- #
# Adversarial generation
# --------------------------------------------------------------------- #

def _int_pool(dt: np.dtype) -> list[int]:
    info = np.iinfo(dt)
    pool = [info.min, info.min + 1, 0, 1, info.max - 1, info.max, 2, 7]
    if info.min < 0:
        pool += [-1, -2, info.min // 2]
    return pool


def _float_pool(nan_ok: bool, additive: bool) -> list[float]:
    if additive:
        # the +-family's float conformance is specified over finite values
        # whose partial sums stay finite and of moderate magnitude: inf/NaN
        # leak across segment boundaries in the subtract-offset
        # construction, and IEEE addition is only approximately
        # associative (see docs/verification.md)
        return [0.0, -0.0, 1.0, -1.0, 0.5, -2.5, 0.1, 3.7, 256.0, -1024.0,
                1e-3]
    pool = [0.0, -0.0, 1.0, -1.0, 0.5, -2.5, float("inf"), float("-inf"),
            1e308, -1e308, 2.2250738585072014e-308, 5e-324, 3.0e15]
    if nan_ok:
        pool += [float("nan")]
    return pool


def _sample_length(rng: np.random.Generator) -> int:
    bucket = rng.choice(5, p=[0.25, 0.35, 0.2, 0.1, 0.1])
    if bucket == 0:
        return int(rng.integers(0, 4))          # empty / tiny
    if bucket == 1:
        return int(rng.integers(4, 18))
    if bucket == 2:
        return int(rng.integers(30, 35))        # around chunk multiples
    if bucket == 3:
        return int(rng.integers(63, 71))
    return int(rng.integers(120, 131))


def _sample_values(rng: np.random.Generator, dtype: str, n: int,
                   nan_ok: bool, additive: bool = False) -> tuple:
    if n == 0:
        return ()
    dt = np.dtype(dtype)
    if dt == np.bool_:
        mode = rng.choice(3, p=[0.7, 0.15, 0.15])
        if mode == 1:
            return tuple([True] * n)
        if mode == 2:
            return tuple([False] * n)
        return tuple(bool(b) for b in rng.integers(0, 2, n))
    if np.issubdtype(dt, np.integer):
        pool = _int_pool(dt)
    else:
        pool = _float_pool(nan_ok, additive)
    if rng.random() < 0.12:                      # all-equal vector
        return tuple([pool[int(rng.integers(len(pool)))]] * n)
    out = []
    for _ in range(n):
        if rng.random() < 0.6:
            out.append(pool[int(rng.integers(len(pool)))])
        elif np.issubdtype(dt, np.integer):
            info = np.iinfo(dt)
            out.append(int(rng.integers(max(info.min, -50),
                                        min(info.max, 50) + 1)))
        else:
            out.append(float(np.round(rng.normal() * 4, 3)))
    return tuple(out)


def _sample_seg_lengths(rng: np.random.Generator, n: int) -> tuple:
    """A degenerate-heavy partition of ``n`` into positive segment lengths."""
    if n == 0:
        return ()
    mode = rng.choice(4, p=[0.2, 0.2, 0.45, 0.15])
    if mode == 0 or n == 1:
        return (n,)                              # one big segment
    if mode == 1:
        return tuple([1] * n)                    # all singletons
    if mode == 3:                                # one huge + tiny tail
        head = int(rng.integers(n // 2, n))
        lengths = [head]
        n -= head
    else:
        lengths = []
    while n > 0:
        length = int(rng.integers(1, max(2, n // 2 + 1)))
        lengths.append(min(length, n))
        n -= lengths[-1]
    return tuple(lengths)


def _sample_flags(rng: np.random.Generator, n: int) -> tuple:
    mode = rng.choice(3, p=[0.7, 0.15, 0.15])
    if mode == 1:
        return tuple([True] * n)
    if mode == 2:
        return tuple([False] * n)
    return tuple(bool(b) for b in rng.integers(0, 2, n))


def generate_cases(seed: int, count: int, ops: Optional[Sequence[str]] = None,
                   dtypes: Optional[Iterable[str]] = None) -> list[Case]:
    """``count`` seeded cases cycling round-robin over (op × dtype) pairs.

    ``ops`` / ``dtypes`` restrict the grid (names as in
    :data:`repro.verify.opset.OPS` and NumPy dtype names); the default is
    every exported operation over its full dtype set.
    """
    from .opset import OPS

    names = list(ops) if ops is not None else sorted(OPS)
    unknown = [n for n in names if n not in OPS]
    if unknown:
        raise ValueError(f"unknown operation(s) {unknown}; "
                         f"known: {sorted(OPS)}")
    allowed = set(dtypes) if dtypes is not None else None
    combos = []
    for name in names:
        spec = OPS[name]
        for dt in spec.dtypes:
            if allowed is None or dt in allowed:
                combos.append((spec, dt))
    if not combos:
        raise ValueError("the op/dtype restriction selected an empty grid")
    rng = np.random.default_rng(seed)
    cases = []
    for i in range(count):
        spec, dt = combos[i % len(combos)]
        n = _sample_length(rng)
        values = _sample_values(rng, dt, n, nan_ok=spec.nan_ok,
                                additive=spec.additive)
        seg = _sample_seg_lengths(rng, n) if spec.segmented else None
        f1 = f2 = None
        if spec.n_flags >= 1:
            f1 = _sample_flags(rng, n)
        if spec.n_flags >= 2:
            # seg_split3's (lesser, equal) must be disjoint to be a
            # well-formed three-way partition request
            f2 = tuple(b and not a for a, b in zip(f1, _sample_flags(rng, n)))
        cases.append(Case(op=spec.name, dtype=dt, values=values,
                          seg_lengths=seg, flags=f1, flags2=f2))
    return cases
