"""Logic-level hardware simulation: the paper's scan circuit and its
comparison partners.

* :mod:`repro.hardware.unit` — the Figure 15 sum state machine and FIFO.
* :mod:`repro.hardware.tree` — the bit-pipelined tree scan (Figures 13–14).
* :mod:`repro.hardware.bitonic_net` — a bit-serial bitonic sorting network.
* :mod:`repro.hardware.router` — a bit-serial hypercube router (the cost of
  an arbitrary memory reference).
* :mod:`repro.hardware.selfcheck` — the streaming checksum-checked scan.
* :mod:`repro.hardware.tmr` — the triple-modular-redundant voted scan.
* :mod:`repro.hardware.analysis` — Tables 2 and 4 and the §3.3 example
  system, from the circuits above.
"""
from .analysis import (
    ExampleSystem,
    bitonic_on_hypercube_cycles,
    example_system,
    scan_vs_memory,
    sort_comparison,
    split_radix_cycles,
    wormhole_route_cycles,
)
from .bitonic_net import BitonicNetwork, bitonic_depth, bitonic_network_cycles
from .router import HypercubeRouter, RouteStats, route_cycles_model
from .segmented_tree import (
    SegmentedTreeScanCircuit,
    segmented_scan_cycles,
    simulated_segmented_scan_cycles,
)
from .selfcheck import (
    CHECK_EXTRA_CYCLES,
    ChecksumTreeScanCircuit,
    checksum_scan_cycles,
)
from .tmr import TMRStats, TMRTreeScanCircuit, tmr_scan_cycles
from .tree import MAX, PLUS, TreeScanCircuit, tree_scan_cycles
from .unit import GateLevelSumStateMachine, ShiftRegister, SumStateMachine

__all__ = [
    "BitonicNetwork",
    "CHECK_EXTRA_CYCLES",
    "ChecksumTreeScanCircuit",
    "ExampleSystem",
    "GateLevelSumStateMachine",
    "HypercubeRouter",
    "MAX",
    "PLUS",
    "RouteStats",
    "SegmentedTreeScanCircuit",
    "ShiftRegister",
    "SumStateMachine",
    "TMRStats",
    "TMRTreeScanCircuit",
    "TreeScanCircuit",
    "bitonic_depth",
    "bitonic_network_cycles",
    "bitonic_on_hypercube_cycles",
    "checksum_scan_cycles",
    "example_system",
    "route_cycles_model",
    "scan_vs_memory",
    "segmented_scan_cycles",
    "simulated_segmented_scan_cycles",
    "sort_comparison",
    "split_radix_cycles",
    "tmr_scan_cycles",
    "tree_scan_cycles",
    "wormhole_route_cycles",
]
