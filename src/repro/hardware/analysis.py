"""Closed-form and simulated circuit comparisons: Tables 2 and 4 and the
Section 3.3 example system.

The paper's hardware claims come in two flavors:

* **theoretical** — asymptotic depth/size/area of a scan circuit versus a
  memory-reference (routing/sorting) network;
* **actual** — bit-cycle counts on the Connection Machine.

We do not have a CM-1/CM-2, so the "actual" numbers here come from the
logic-level simulators in this package (:mod:`repro.hardware.tree`,
:mod:`repro.hardware.bitonic_net`, :mod:`repro.hardware.router`) — the
same circuits the paper describes, at the same sizes (closed forms where
64K-leaf cycle-by-cycle simulation would be pointless busywork).  The
*shape* of each comparison — scans no slower than memory references and far
cheaper in hardware; split radix sort and bitonic sort within a small
factor at CM scale — is what the benchmarks assert.
"""
from __future__ import annotations

from dataclasses import dataclass

from .._util import ceil_log2
from .bitonic_net import bitonic_depth, bitonic_network_cycles
from .router import route_cycles_model
from .tree import tree_scan_cycles

__all__ = [
    "wormhole_route_cycles",
    "scan_vs_memory",
    "split_radix_cycles",
    "bitonic_on_hypercube_cycles",
    "sort_comparison",
    "example_system",
    "ExampleSystem",
]


def wormhole_route_cycles(n: int, width: int, congestion: float = 2.0) -> int:
    """Cut-through routing estimate for one permutation: path latency plus
    the serial message, inflated by a congestion factor."""
    lg = ceil_log2(max(n, 2))
    return int(congestion * lg + (lg + width))


# --------------------------------------------------------------------- #
# Table 2: memory reference vs scan operation
# --------------------------------------------------------------------- #

def scan_vs_memory(n: int, width: int) -> dict[str, dict[str, float]]:
    """Table 2's rows for an ``n``-processor machine and ``width``-bit
    operands: theoretical scaling forms and the measured/modeled cycles and
    hardware of our simulated circuits."""
    lg = ceil_log2(max(n, 2))
    scan_cycles = tree_scan_cycles(n, width)
    mem_cycles_sf = route_cycles_model(n, width)
    mem_cycles_wh = wormhole_route_cycles(n, width)
    # hardware: the scan tree is n-1 units (2 state machines + a FIFO);
    # the router is n·lg n single-bit links each with serial buffers
    scan_hw = (n - 1) * (2 * 8 + 2 * lg)  # ~8 gates/SM + FIFO bits
    router_hw = n * lg * (width + lg)     # per-link serial buffering
    return {
        "memory_reference": {
            "vlsi_time": lg,                      # O(lg n) [29]
            "vlsi_area": n * n / max(lg, 1),      # O(n^2 / lg n)
            "circuit_depth": lg,                  # O(lg n) [1]
            "circuit_size": n * lg,               # O(n lg n)
            "bit_cycles_store_forward": mem_cycles_sf,
            "bit_cycles_wormhole": mem_cycles_wh,
            "hardware_units": router_hw,
        },
        "scan_operation": {
            "vlsi_time": lg,                      # O(lg n) [30]
            "vlsi_area": n,                       # O(n)
            "circuit_depth": lg,                  # O(lg n) [15]
            "circuit_size": n,                    # O(n)
            "bit_cycles": scan_cycles,
            "hardware_units": scan_hw,
            "hardware_fraction_of_router": scan_hw / router_hw,
        },
    }


# --------------------------------------------------------------------- #
# Table 4: split radix sort vs bitonic sort
# --------------------------------------------------------------------- #

def split_radix_cycles(n: int, d: int) -> int:
    """Bit cycles for the split radix sort on the simulated machine:
    ``d`` passes, each two scan-circuit enumerates over ``lg n``-bit
    indices plus one wormhole permutation route of the ``d``-bit keys
    (+ ``lg n`` address bits)."""
    lg = ceil_log2(max(n, 2))
    per_pass = 2 * tree_scan_cycles(n, lg) + wormhole_route_cycles(n, d)
    return d * per_pass


def bitonic_on_hypercube_cycles(n: int, d: int) -> int:
    """Bit cycles for the bitonic sort run the way the CM-1 ran it: each of
    the ``lg n (lg n + 1)/2`` stages is a neighbor exchange of ``d``-bit
    keys along one hypercube dimension (no dedicated comparator network)."""
    return bitonic_depth(n) * (d + 2)


def sort_comparison(n: int, d: int) -> dict[str, dict[str, int]]:
    """Table 4 for ``n`` keys of ``d`` bits."""
    lg = ceil_log2(max(n, 2))
    return {
        "split_radix": {
            "theory_bit_time": d * lg,                      # O(d lg n)
            "simulated_cycles": split_radix_cycles(n, d),
        },
        "bitonic": {
            "theory_bit_time": d + lg * lg,                 # O(d + lg^2 n)
            "simulated_cycles": bitonic_on_hypercube_cycles(n, d),
            "dedicated_network_cycles": bitonic_network_cycles(n, d),
        },
    }


# --------------------------------------------------------------------- #
# Section 3.3: the example system
# --------------------------------------------------------------------- #

@dataclass
class ExampleSystem:
    """The paper's 4096-processor example machine."""

    processors: int
    boards: int
    per_board_chip_state_machines: int
    per_board_chip_shift_registers: int
    scan_cycles_32bit: int
    scan_time_at_100ns: float   # seconds
    scan_time_at_10ns: float    # seconds


def example_system(processors: int = 4096, per_board: int = 64,
                   width: int = 32) -> ExampleSystem:
    """Reproduce Section 3.3's arithmetic: a 64-leaf board chip is six tree
    levels = 126 sum state machines + 63 shift registers; a 32-bit scan on
    4096 processors takes ``~m + 2 lg n`` cycles — about 5 µs at a 100 ns
    clock and 0.5 µs at the Monarch's 10 ns."""
    chip_units = per_board - 1
    cycles = tree_scan_cycles(processors, width)
    return ExampleSystem(
        processors=processors,
        boards=processors // per_board,
        per_board_chip_state_machines=2 * chip_units,
        per_board_chip_shift_registers=chip_units,
        scan_cycles_32bit=cycles,
        scan_time_at_100ns=cycles * 100e-9,
        scan_time_at_10ns=cycles * 10e-9,
    )
