"""The sum state machine of Figure 15 and the shift-register FIFO of
Figure 14 — the two building blocks of the bit-pipelined tree scan unit.

The state machine holds three D-type flip-flops (Q1, Q2 and an output
register S) and a five-input combinational circuit.  With ``op = PLUS`` it
is a serial adder consuming least-significant bits first (Q1 is the carry);
with ``op = MAX`` it is a serial comparator consuming most-significant bits
first (Q1 latches "A is greater", Q2 "B is greater", and while neither is
set the inputs have been equal so either may be passed through).

Outputs are *registered*: the bit produced by the logic appears on the
output wire one clock later, which is what makes the tree pipeline run at
one level per clock.
"""
from __future__ import annotations

__all__ = ["SumStateMachine", "GateLevelSumStateMachine", "ShiftRegister",
           "PLUS", "MAX"]

PLUS = 0
MAX = 1


class SumStateMachine:
    """One serial combine element (Figure 15)."""

    __slots__ = ("op", "q1", "q2", "s")

    def __init__(self, op: int) -> None:
        if op not in (PLUS, MAX):
            raise ValueError(f"op must be PLUS or MAX, got {op}")
        self.op = op
        self.clear()

    def clear(self) -> None:
        """The global clear signal: reset all three flip-flops."""
        self.q1 = 0
        self.q2 = 0
        self.s = 0

    def step(self, a: int, b: int) -> int:
        """One clock edge: consume input bits ``a`` and ``b``, latch and
        return the new output-register value (callers model the register's
        one-cycle visibility delay by reading the previous cycle's wires)."""
        a &= 1
        b &= 1
        if self.op == PLUS:
            # serial adder: S = A ^ B ^ Q1, carry D1 = AB + AQ1 + BQ1
            self.s = a ^ b ^ self.q1
            self.q1 = (a & b) | (a & self.q1) | (b & self.q1)
        else:
            # serial maximum (MSB first):
            #   S  = Q1·A + Q2·B + (Q̄1 Q̄2)(A + B)
            #   D1 = Q1 + Q̄2·A·B̄        (A proved greater)
            #   D2 = Q2 + Q̄1·Ā·B        (B proved greater)
            if self.q1:
                self.s = a
            elif self.q2:
                self.s = b
            else:
                self.s = a | b
            q1, q2 = self.q1, self.q2
            self.q1 = q1 | ((not q2) and a and not b)
            self.q2 = q2 | ((not q1) and b and not a)
            self.q1 = int(self.q1)
            self.q2 = int(self.q2)
        return self.s


class GateLevelSumStateMachine:
    """Figure 15 as written: three D flip-flops fed by a five-input
    combinational circuit, with the ``Op`` signal selecting between the
    serial adder and the serial comparator.

    The printed equations in our source of the paper are OCR-garbled, so
    these are the standard forms the prose describes, written as pure
    gates (no branches — every output is a boolean expression of
    ``Op, A, B, Q1, Q2``)::

        S  = Op·(Q1·A + Q2·B + Q̄1·Q̄2·(A + B)) + Ōp·(A ⊕ B ⊕ Q1)
        D1 = Op·(Q1 + Q̄2·A·B̄)                 + Ōp·(A·B + A·Q1 + B·Q1)
        D2 = Op·(Q2 + Q̄1·Ā·B)

    Exhaustively equivalent to :class:`SumStateMachine` (the test suite
    checks all 2⁵ input/state combinations for both ops).
    """

    __slots__ = ("op", "q1", "q2", "s")

    #: two-input gate count of the combinational cloud above (AND/OR/XOR/NOT
    #: counted individually) — the "simple unit" claim of Section 3.2
    GATE_COUNT = 21

    def __init__(self, op: int) -> None:
        if op not in (PLUS, MAX):
            raise ValueError(f"op must be PLUS or MAX, got {op}")
        self.op = op
        self.clear()

    def clear(self) -> None:
        self.q1 = 0
        self.q2 = 0
        self.s = 0

    def step(self, a: int, b: int) -> int:
        op = self.op & 1
        nop = op ^ 1
        a &= 1
        b &= 1
        q1, q2 = self.q1, self.q2
        nq1, nq2 = q1 ^ 1, q2 ^ 1
        na, nb = a ^ 1, b ^ 1

        s_max = (q1 & a) | (q2 & b) | (nq1 & nq2 & (a | b))
        s_add = a ^ b ^ q1
        d1_max = q1 | (nq2 & a & nb)
        d1_add = (a & b) | (a & q1) | (b & q1)
        d2_max = q2 | (nq1 & na & b)

        self.s = (op & s_max) | (nop & s_add)
        self.q1 = (op & d1_max) | (nop & d1_add)
        self.q2 = op & d2_max
        return self.s


class ShiftRegister:
    """A first-in-first-out single-bit shift register of fixed length.

    Length 0 is a plain wire (the root's register in Figure 13: values
    reaching the root reflect straight back down).
    """

    __slots__ = ("length", "bits")

    def __init__(self, length: int) -> None:
        if length < 0:
            raise ValueError("shift register length must be >= 0")
        self.length = length
        self.bits = [0] * length

    def clear(self) -> None:
        self.bits = [0] * self.length

    def shift(self, bit_in: int) -> int:
        """One clock: push ``bit_in``, emit the bit pushed ``length`` clocks
        ago (or ``bit_in`` itself when the register has length zero)."""
        if self.length == 0:
            return bit_in & 1
        out = self.bits[-1]
        self.bits = [bit_in & 1] + self.bits[:-1]
        return out
