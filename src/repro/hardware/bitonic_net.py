"""A bit-serial bitonic sorting network (Batcher), simulated clock by
clock — the comparator-level counterpart of Table 4's bitonic column.

Each comparator consumes two key streams most-significant-bit first,
decides min/max on the first differing bit (two flip-flops of state, like
the ``max-scan`` element of Figure 15), and drives registered outputs, so
the whole network is a pipeline of ``lg n (lg n + 1)/2`` comparator layers:
sorting ``n`` keys of ``d`` bits takes ``d + depth`` clocks — the paper's
``O(d + lg² n)`` bit time for the bitonic sort.
"""
from __future__ import annotations

import numpy as np

from .._util import ceil_log2

__all__ = ["BitonicNetwork", "bitonic_network_cycles", "bitonic_depth"]


def bitonic_depth(n: int) -> int:
    """Comparator layers in the bitonic sorting network for ``n`` keys."""
    lg = ceil_log2(max(n, 2))
    return lg * (lg + 1) // 2


def bitonic_network_cycles(n: int, width: int) -> int:
    """Clock cycles to sort ``n`` keys of ``width`` bits: pipeline depth
    plus the bits streamed through."""
    return width + bitonic_depth(n)


class _Comparator:
    """MSB-first serial compare-exchange with registered outputs."""

    __slots__ = ("a_wins", "b_wins")

    def __init__(self) -> None:
        self.a_wins = False  # a proved greater
        self.b_wins = False

    def step(self, a: int, b: int) -> tuple[int, int]:
        """Returns ``(min_bit, max_bit)`` for this clock."""
        if self.a_wins:
            return b, a
        if self.b_wins:
            return a, b
        if a == b:
            return a, a
        if a > b:
            self.a_wins = True
            return b, a
        self.b_wins = True
        return a, b


class BitonicNetwork:
    """The full sorting network for ``n`` (a power of two) keys."""

    def __init__(self, n: int, width: int) -> None:
        if n < 2 or (n & (n - 1)) != 0:
            raise ValueError("n must be a power of two >= 2")
        self.n = n
        self.width = width
        self.lg = ceil_log2(n)
        # each layer: list of (low_wire, high_wire, ascending)
        self.layers: list[list[tuple[int, int, bool]]] = []
        idx = np.arange(n)
        for k_exp in range(1, self.lg + 1):
            k = 1 << k_exp
            for j_exp in range(k_exp - 1, -1, -1):
                j = 1 << j_exp
                layer = []
                for i in range(n):
                    partner = i ^ j
                    if i < partner:
                        ascending = (i & k) == 0
                        layer.append((i, partner, ascending))
                self.layers.append(layer)

    @property
    def depth(self) -> int:
        return len(self.layers)

    def num_comparators(self) -> int:
        return sum(len(layer) for layer in self.layers)

    def sort(self, values) -> tuple[np.ndarray, int]:
        """Sort ``values`` (non-negative, < 2^width) ascending; returns
        ``(sorted_values, clock_cycles)``."""
        vals = np.asarray(values, dtype=np.int64)
        if len(vals) != self.n:
            raise ValueError(f"expected {self.n} values, got {len(vals)}")
        if len(vals) and (vals.min() < 0 or vals.max() >= (1 << self.width)):
            raise ValueError(f"values must lie in [0, 2^{self.width})")
        n, w, depth = self.n, self.width, self.depth
        comparators = [[_Comparator() for _ in layer] for layer in self.layers]
        # registered wire values between layers; wires[s] feeds layer s
        wires = np.zeros((depth + 1, n), dtype=np.int64)
        out_bits = np.zeros((n, w), dtype=np.int64)
        total = w + depth

        for t in range(total):
            prev = wires.copy()
            # stage 0 inputs: the key bits, MSB first
            if t < w:
                wires[0] = (vals >> (w - 1 - t)) & 1
            else:
                wires[0] = 0
            for s, layer in enumerate(self.layers):
                inp = prev[s]
                out = inp.copy()
                for c, (lo, hi, asc) in enumerate(layer):
                    mn, mx = comparators[s][c].step(int(inp[lo]), int(inp[hi]))
                    if asc:
                        out[lo], out[hi] = mn, mx
                    else:
                        out[lo], out[hi] = mx, mn
                wires[s + 1] = out
            bit_idx = t - depth
            if 0 <= bit_idx < w:
                out_bits[:, bit_idx] = wires[depth]

        weights = 1 << np.arange(w - 1, -1, -1, dtype=np.int64)
        return out_bits @ weights, total
