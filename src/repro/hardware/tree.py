"""The bit-pipelined tree scan circuit (Section 3.1–3.2, Figures 13–14),
simulated clock by clock at the logic level.

``n`` leaves are served by ``n - 1`` identical units arranged in a balanced
binary tree.  Each unit holds two :class:`SumStateMachine` elements (one
for the up sweep, one for the down sweep), a variable-length FIFO
(:class:`ShiftRegister`, length ``2·depth`` — zero at the root, which is
what reflects the sweep back down automatically), and registered outputs.
Operand bits stream in one per clock — least-significant first for
``+-scan``, most-significant first for ``max-scan`` — and after
``width + 2·lg n - 1`` clocks the exclusive-scan results have streamed back
out of the leaves: the paper's ``m + 2 lg n`` bit-cycle count, measured
here rather than assumed.

Total hardware: ``n - 1`` shift registers and ``2(n - 1)`` sum state
machines (Section 3.2) — the O(n) size/area row of Table 2.
"""
from __future__ import annotations

import numpy as np

from .._util import ceil_log2
from .unit import MAX, PLUS, ShiftRegister, SumStateMachine

__all__ = ["TreeScanCircuit", "tree_scan_cycles", "PLUS", "MAX"]


def tree_scan_cycles(n_leaves: int, width: int) -> int:
    """Closed-form clock count for one scan: ``width + 2·lg n - 2`` — the
    paper's ``m + 2 lg n`` pipeline fill/drain, measured exactly (our
    register placement saves two cycles of the bound)."""
    lg = ceil_log2(max(n_leaves, 2))
    return width + 2 * lg - 2


class TreeScanCircuit:
    """A reusable scan circuit over ``n_leaves`` (a power of two >= 2)
    bit-serial inputs of ``width`` bits.

    ``injector`` (a :class:`repro.faults.FaultInjector`, settable after
    construction) flips scheduled state bits mid-scan — see
    :data:`repro.faults.CIRCUIT_FIELDS` for the addressable state.  With
    no injector the simulation is bit-identical to the unfaulted circuit.
    ``replica_id`` selects which faults apply when the circuit is one
    copy of a TMR triple (:class:`repro.hardware.TMRTreeScanCircuit`).
    """

    def __init__(self, n_leaves: int, width: int, op: int, *,
                 injector=None, replica_id: int = 0) -> None:
        if n_leaves < 2 or (n_leaves & (n_leaves - 1)) != 0:
            raise ValueError("n_leaves must be a power of two >= 2")
        if width < 1:
            raise ValueError("width must be >= 1")
        if op not in (PLUS, MAX):
            raise ValueError("op must be PLUS or MAX")
        self.n = n_leaves
        self.width = width
        self.op = op
        self.lg = ceil_log2(n_leaves)
        # heap-indexed units 1 .. n-1; unit u sits at depth floor(lg2 u)
        self.up_sm = {u: SumStateMachine(op) for u in range(1, n_leaves)}
        self.down_sm = {u: SumStateMachine(op) for u in range(1, n_leaves)}
        self.fifo = {u: ShiftRegister(2 * (u.bit_length() - 1))
                     for u in range(1, n_leaves)}
        self.cycles_run = 0
        self.injector = injector
        self.replica_id = replica_id
        # the root's up-sweep output per cycle: the reduction streams out
        # here for free, which is what the checksum checker taps
        self.last_root_stream: list[int] = []

    # ------------------------------------------------------------------ #

    def _clear(self) -> None:
        for u in range(1, self.n):
            self.up_sm[u].clear()
            self.down_sm[u].clear()
            self.fifo[u].clear()

    def scan(self, values) -> tuple[np.ndarray, int]:
        """Run one exclusive scan.  Returns ``(results, clock_cycles)``.

        Values must lie in ``[0, 2^width)``.  ``+-scan`` results are
        reported modulo ``2^width`` (the circuit emits exactly the bits that
        were clocked through; widen the circuit to avoid truncation).
        """
        vals = np.asarray(values, dtype=np.int64)
        if len(vals) != self.n:
            raise ValueError(f"expected {self.n} values, got {len(vals)}")
        if len(vals) and (vals.min() < 0 or vals.max() >= (1 << self.width)):
            raise ValueError(f"values must lie in [0, 2^{self.width})")
        self._clear()

        n, lg, w = self.n, self.lg, self.width
        msb_first = self.op == MAX
        total_cycles = w + 2 * lg - 2

        # registered wires, read as previous-cycle values
        up_out = {u: 0 for u in range(1, n)}
        left_out = {u: 0 for u in range(1, n)}
        right_out = {u: 0 for u in range(1, n)}

        out_bits = np.zeros((n, w), dtype=np.int64)
        deepest = range(n // 2, n)  # units whose children are the leaves
        root_stream: list[int] = []

        for t in range(total_cycles):
            # snapshot previous outputs (synchronous update)
            prev_up = dict(up_out)
            prev_left = dict(left_out)
            prev_right = dict(right_out)

            for u in range(1, n):
                # up-sweep inputs
                if u >= n // 2:
                    leaf_l = 2 * u - n
                    leaf_r = leaf_l + 1
                    a = self._input_bit(vals[leaf_l], t, msb_first)
                    b = self._input_bit(vals[leaf_r], t, msb_first)
                else:
                    a = prev_up[2 * u]
                    b = prev_up[2 * u + 1]
                up_out[u] = self.up_sm[u].step(a, b)
                delayed = self.fifo[u].shift(a)
                # down-sweep input: the root's parent wire is tied low
                if u == 1:
                    p = 0
                elif u % 2 == 0:
                    p = prev_left[u // 2]
                else:
                    p = prev_right[u // 2]
                left_out[u] = p
                right_out[u] = self.down_sm[u].step(p, delayed)

            if self.injector is not None:
                self._apply_faults(t, up_out, left_out, right_out)
            root_stream.append(up_out[1])

            # leaf results appear after the pipeline delay
            bit_idx = t - (2 * lg - 2)
            if 0 <= bit_idx < w:
                for u in deepest:
                    leaf_l = 2 * u - n
                    out_bits[leaf_l, bit_idx] = left_out[u]
                    out_bits[leaf_l + 1, bit_idx] = right_out[u]

        self.cycles_run += total_cycles
        self.last_root_stream = root_stream
        results = self._assemble(out_bits, msb_first)
        return results, total_cycles

    # ------------------------------------------------------------------ #
    # Fault hooks (repro.faults)
    # ------------------------------------------------------------------ #

    def _apply_faults(self, t: int, up_out: dict, left_out: dict,
                      right_out: dict) -> None:
        """Flip the state bits the injector schedules at cycle ``t``.

        Output-register flips (``up_s``/``down_s``/``down_left``) are
        applied to both the flip-flop and its wire so this cycle's readers
        and next cycle's snapshot see the same (faulty) value, exactly as
        a latched upset would behave.
        """
        for f in self.injector.circuit_faults_at(t, self.replica_id):
            u = f.unit
            if not 1 <= u < self.n:
                raise ValueError(f"fault unit {u} outside [1, {self.n})")
            if f.field == "up_s":
                self.up_sm[u].s ^= 1
                up_out[u] ^= 1
            elif f.field == "up_q1":
                self.up_sm[u].q1 ^= 1
            elif f.field == "up_q2":
                self.up_sm[u].q2 ^= 1
            elif f.field == "down_s":
                self.down_sm[u].s ^= 1
                right_out[u] ^= 1
            elif f.field == "down_q1":
                self.down_sm[u].q1 ^= 1
            elif f.field == "down_q2":
                self.down_sm[u].q2 ^= 1
            elif f.field == "down_left":
                left_out[u] ^= 1
            elif f.field == "fifo":
                fifo = self.fifo[u]
                if fifo.length == 0:  # the root's FIFO is a plain wire
                    continue
                fifo.bits[f.bit % fifo.length] ^= 1
            else:
                raise ValueError(f"unknown tree-circuit fault field "
                                 f"{f.field!r}")
            self.injector.record_injected()

    def last_reduction(self) -> int:
        """The reduction of the most recent scan, assembled from the
        root's up-sweep output stream (bit ``i`` of the total reaches the
        root at cycle ``i + lg n - 1``).  This is the circuit's *own*
        total — a fault on the up sweep corrupts it too, which is exactly
        the exposure the checksum check has in real hardware."""
        lg, w = self.lg, self.width
        bits = self.last_root_stream[lg - 1:lg - 1 + w]
        if len(bits) != w:
            raise RuntimeError("no scan has been run yet")
        if self.op == MAX:  # MSB first
            value = 0
            for b in bits:
                value = (value << 1) | (b & 1)
            return value
        return sum((b & 1) << i for i, b in enumerate(bits))

    def _input_bit(self, value: int, t: int, msb_first: bool) -> int:
        """Bit ``t`` of the serial input stream for ``value`` (zero once all
        ``width`` bits have been clocked in)."""
        if t >= self.width:
            return 0
        pos = self.width - 1 - t if msb_first else t
        return (int(value) >> pos) & 1

    def _assemble(self, out_bits: np.ndarray, msb_first: bool) -> np.ndarray:
        w = self.width
        if msb_first:
            weights = 1 << np.arange(w - 1, -1, -1, dtype=np.int64)
        else:
            weights = 1 << np.arange(w, dtype=np.int64)
        return out_bits @ weights

    # --- hardware inventory (Table 2 / Section 3.2) --------------------- #

    def num_state_machines(self) -> int:
        return 2 * (self.n - 1)

    def num_shift_registers(self) -> int:
        return self.n - 1

    def total_shift_register_bits(self) -> int:
        return sum(f.length for f in self.fifo.values())
