"""A bit-serial hypercube router: the cost model for an arbitrary parallel
memory reference (Table 2's comparison partner).

Every practical P-RAM realization routes memory references through a
network; the Connection Machine used a hypercube router whose wires the
scan circuit shared.  This module simulates dimension-ordered (e-cube)
store-and-forward routing of one message per processor, bit-serially:
a hop transmits ``lg n`` address bits plus ``width`` payload bits over a
single-bit link, one message at a time per link, and queueing is modeled
exactly by per-link busy times.

For a random permutation the total time is Θ(lg n · (lg n + m)) cycles —
compare the scan circuit's ``m + 2 lg n`` (:mod:`repro.hardware.tree`), the
paper's point that a scan is *cheaper* than a memory reference in practice
as well as in theory.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import ceil_log2

__all__ = ["HypercubeRouter", "RouteStats", "route_cycles_model"]


def route_cycles_model(n: int, width: int) -> int:
    """Zero-congestion lower bound: ``lg n`` store-and-forward hops of
    ``lg n + width`` serial bits each."""
    lg = ceil_log2(max(n, 2))
    return lg * (lg + width)


@dataclass
class RouteStats:
    """Outcome of routing one message set."""

    cycles: int
    total_hops: int
    max_queue_delay: int
    messages: int
    #: messages that reached their intended destination
    delivered: int = 0
    #: messages lost to an injected ``drop`` fault
    dropped: int = 0
    #: messages that arrived at the *wrong* node (injected address
    #: corruption); delivered + dropped + misrouted == messages
    misrouted: int = 0


class HypercubeRouter:
    """An ``n``-node hypercube (``n`` a power of two) with single-bit
    bidirectional links and dimension-ordered routing."""

    def __init__(self, n: int, width: int, *, injector=None) -> None:
        if n < 2 or (n & (n - 1)) != 0:
            raise ValueError("n must be a power of two >= 2")
        self.n = n
        self.width = width
        self.lg = ceil_log2(n)
        self.hop_cost = self.lg + width  # address + payload, bit serial
        #: optional :class:`repro.faults.FaultInjector`; its
        #: :class:`~repro.faults.RouterFault` entries address hops by
        #: ``(dimension, message)`` and either drop the flit or corrupt a
        #: destination-address bit in flight
        self.injector = injector

    def route(self, destinations) -> RouteStats:
        """Route one message from every node ``i`` to ``destinations[i]``.

        Returns cycle statistics.  Destinations need not form a permutation
        (concurrent references queue at the links, which is exactly the
        behavior being costed).  With a fault injector attached, dropped
        messages vanish at the faulty hop; address corruption flips a bit
        of the in-flight destination register, so a still-pending address
        bit sends the message to the wrong node (e-cube never revisits a
        dimension, so it is never repaired), while a bit whose dimension
        was already routed leaves the path unchanged.  The stats report
        ``delivered`` / ``dropped`` / ``misrouted``.
        """
        dest = np.asarray(destinations, dtype=np.int64).copy()
        if len(dest) != self.n:
            raise ValueError(f"expected {self.n} destinations")
        if len(dest) and (dest.min() < 0 or dest.max() >= self.n):
            raise ValueError("destination out of range")
        intended = dest.copy()

        # per-link busy-until times: link key = (node, dimension)
        busy = np.zeros((self.n, self.lg), dtype=np.int64)
        arrival = np.zeros(self.n, dtype=np.int64)  # message ready times
        node = np.arange(self.n, dtype=np.int64)    # current node per message
        alive = np.ones(self.n, dtype=bool)
        total_hops = 0
        max_queue = 0

        for d in range(self.lg):
            needs = (((node ^ dest) >> d) & 1).astype(bool) & alive
            movers = np.flatnonzero(needs)
            # serialize per link in arrival order (FIFO queueing)
            order = movers[np.argsort(arrival[movers], kind="stable")]
            for mi in order:
                fault = (self.injector.router_fault_at(d, int(mi))
                         if self.injector is not None else None)
                if fault is not None:
                    self.injector.record_injected()
                    if fault.kind == "drop":
                        alive[mi] = False  # lost before the link fires
                        continue
                    dest[mi] ^= 1 << (fault.bit % self.lg)
                    if not (((node[mi] ^ dest[mi]) >> d) & 1):
                        continue  # the corrupted address no longer needs d
                src = node[mi]
                start = max(arrival[mi], busy[src, d])
                max_queue = max(max_queue, int(start - arrival[mi]))
                finish = start + self.hop_cost
                busy[src, d] = finish
                arrival[mi] = finish
                node[mi] ^= 1 << d
                total_hops += 1

        at_target = alive & (node == intended)
        return RouteStats(
            cycles=int(arrival.max()) if self.n else 0,
            total_hops=total_hops,
            max_queue_delay=max_queue,
            messages=self.n,
            delivered=int(np.count_nonzero(at_target)),
            dropped=int(np.count_nonzero(~alive)),
            misrouted=int(np.count_nonzero(alive & (node != intended))),
        )

    def random_permutation_cycles(self, rng: np.random.Generator,
                                  trials: int = 3) -> int:
        """Median routing time over random permutations — the paper's
        'arbitrary memory reference' cost."""
        results = []
        for _ in range(trials):
            results.append(self.route(rng.permutation(self.n)).cycles)
        return int(np.median(results))
