"""A direct segmented-scan circuit (the paper's Section 3 remark that
"some of the other scan operations, such as the segmented scan operations,
can be implemented directly with little additional hardware" [7]).

The tree of Figure 13 is reused; each unit additionally latches one *flag*
bit per child.  The operand streams send the segment flag first, then the
value bits, so the flag is latched before the serial adder/comparator
starts and the combine rule can switch on it:

* up sweep:    ``(vl, fl) ⊕ (vr, fr) = (vr if fr else vl ∘ vr,  fl | fr)``
* down sweep:  the left child receives the incoming carry; the right child
  receives ``vl`` if the left child's latched flag is set, otherwise
  ``carry ∘ vl``; a leaf whose own flag is set outputs the identity.

Hardware cost over the plain circuit: two flag flip-flops and a mux per
unit.  Cycle cost: one extra cycle for the flag, i.e. ``(m + 1) + 2 lg n``
versus the two-primitive simulation's two full scans over ``m + lg n``-bit
appended operands — the ablation `bench_ablation_segmented.py` quantifies
the gap.

This module simulates the tree sweep unit by unit (the combine rules run
exactly as wired) while reporting the bit-pipelined cycle count that the
flag-first framing permits.
"""
from __future__ import annotations

import numpy as np

from .._util import ceil_log2
from .tree import tree_scan_cycles

__all__ = ["SegmentedTreeScanCircuit", "segmented_scan_cycles",
           "simulated_segmented_scan_cycles"]


def segmented_scan_cycles(n_leaves: int, width: int) -> int:
    """Cycles for a direct segmented scan: the plain pipeline plus one
    leading flag bit."""
    return tree_scan_cycles(n_leaves, width + 1)


def simulated_segmented_scan_cycles(n_leaves: int, width: int) -> int:
    """Cycles for the Section 3.4 two-primitive simulation: an unsegmented
    ``+-scan`` to number the segments, then a ``max-scan`` over operands
    widened by the segment-number field (Figure 16)."""
    lg = ceil_log2(max(n_leaves, 2))
    return tree_scan_cycles(n_leaves, lg) + tree_scan_cycles(n_leaves, width + lg)


class SegmentedTreeScanCircuit:
    """Word-level simulation of the segmented tree scan, ``op`` in
    ``{"plus", "max"}``."""

    def __init__(self, n_leaves: int, width: int, op: str = "plus", *,
                 injector=None) -> None:
        if n_leaves < 2 or (n_leaves & (n_leaves - 1)) != 0:
            raise ValueError("n_leaves must be a power of two >= 2")
        if op not in ("plus", "max"):
            raise ValueError("op must be 'plus' or 'max'")
        self.n = n_leaves
        self.width = width
        self.op = op
        self.lg = ceil_log2(n_leaves)
        #: optional :class:`repro.faults.FaultInjector`; this simulator is
        #: sweep-level, so faults address ``(unit, field, bit)`` with the
        #: ``seg_*`` fields (the ``cycle`` coordinate is ignored)
        self.injector = injector

    def _identity(self):
        return 0 if self.op == "plus" else 0  # unsigned max identity

    def _combine(self, a: int, b: int) -> int:
        if self.op == "plus":
            return (a + b) & ((1 << self.width) - 1)
        return max(a, b)

    def scan(self, values, flags) -> tuple[np.ndarray, int]:
        """Exclusive segmented scan; returns ``(results, cycles)``."""
        vals = np.asarray(values, dtype=np.int64)
        segf = np.asarray(flags, dtype=bool)
        if len(vals) != self.n or len(segf) != self.n:
            raise ValueError(f"expected {self.n} values and flags")
        if len(vals) and (vals.min() < 0 or vals.max() >= (1 << self.width)):
            raise ValueError(f"values must lie in [0, 2^{self.width})")
        if self.n and not segf[0]:
            raise ValueError("the first leaf must start a segment")

        n = self.n
        faults = self._faults_by_unit()
        # up sweep: heap-indexed summaries (value, flag) per node
        sum_v = np.zeros(2 * n, dtype=np.int64)
        sum_f = np.zeros(2 * n, dtype=bool)
        stored_v = np.zeros(n, dtype=np.int64)   # left-child latch per unit
        stored_f = np.zeros(n, dtype=bool)
        sum_v[n:] = vals
        sum_f[n:] = segf
        for u in range(n - 1, 0, -1):
            lv, lf = sum_v[2 * u], sum_f[2 * u]
            rv, rf = sum_v[2 * u + 1], sum_f[2 * u + 1]
            stored_v[u], stored_f[u] = lv, lf
            sum_v[u] = rv if rf else self._combine(lv, rv)
            sum_f[u] = lf | rf
            for f in faults.get(u, ()):
                if f.field == "seg_up":
                    sum_v[u] ^= 1 << (f.bit % self.width)
                elif f.field == "seg_flag":
                    sum_f[u] = not sum_f[u]
                elif f.field == "seg_stored":
                    stored_v[u] ^= 1 << (f.bit % self.width)
                else:
                    continue  # seg_carry applies on the down sweep
                self.injector.record_injected()

        # down sweep: carries flow from the root (tied to the identity)
        carry = np.zeros(2 * n, dtype=np.int64)
        carry[1] = self._identity()
        for u in range(1, n):
            c = carry[u]
            carry[2 * u] = c
            lv, lf = stored_v[u], stored_f[u]
            carry[2 * u + 1] = lv if lf else self._combine(c, lv)
            for child in (2 * u, 2 * u + 1):
                for f in faults.get(child, ()):
                    if f.field == "seg_carry":
                        carry[child] ^= 1 << (f.bit % self.width)
                        self.injector.record_injected()

        # a leaf that starts a segment sees the identity, not the carry
        out = np.where(segf, self._identity(), carry[n:])
        return out, segmented_scan_cycles(self.n, self.width)

    def _faults_by_unit(self) -> dict:
        """Word-level fault schedule, grouped by heap node index."""
        if self.injector is None:
            return {}
        by_unit: dict[int, list] = {}
        for f in self.injector.segmented_faults():
            if not 1 <= f.unit < 2 * self.n:
                raise ValueError(
                    f"segmented fault unit {f.unit} outside [1, {2 * self.n})")
            by_unit.setdefault(f.unit, []).append(f)
        return by_unit
