"""Triple-modular-redundant tree scan: three replicas and a bitwise
majority voter.

The three :class:`~repro.hardware.TreeScanCircuit` replicas run in
lock-step (same clock, same operand streams), so the voted scan costs the
same cycles as one circuit plus one voter register — the price is paid in
hardware: 3x the state machines and FIFO bits plus a few gates per voted
output bit (``maj(a,b,c) = ab + ac + bc``).

Any fault confined to a single replica is *masked*: the two healthy
replicas out-vote it bit by bit.  The voter also reports whether the
replicas disagreed at all, which doubles as a detection signal (a
disagreeing-but-correctly-voted scan means a replica is failing and
should be serviced).  Combined with the per-replica checksum check
(``checksum=True``) this is the top of the detection lattice measured in
``benchmarks/bench_fault_tolerance.py``.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .selfcheck import CHECK_EXTRA_CYCLES, ChecksumTreeScanCircuit
from .tree import TreeScanCircuit, tree_scan_cycles

__all__ = ["TMRTreeScanCircuit", "TMRStats", "tmr_scan_cycles"]

#: one extra clock to latch the voted output bits
VOTE_EXTRA_CYCLES = 1


def tmr_scan_cycles(n_leaves: int, width: int, *,
                    checksum: bool = False) -> int:
    """Cycles for one TMR-voted scan (replicas run concurrently)."""
    base = tree_scan_cycles(n_leaves, width) + VOTE_EXTRA_CYCLES
    return base + (CHECK_EXTRA_CYCLES if checksum else 0)


@dataclass(frozen=True)
class TMRStats:
    """Voter observations for one scan."""

    #: number of output elements on which the replicas disagreed
    disagreements: int
    #: per-replica checksum verdicts (all True when ``checksum=False``)
    checks_ok: tuple[bool, bool, bool]

    @property
    def unanimous(self) -> bool:
        return self.disagreements == 0

    @property
    def flagged(self) -> bool:
        """True when the voter or any replica checksum raised a flag."""
        return self.disagreements > 0 or not all(self.checks_ok)


class TMRTreeScanCircuit:
    """Three tree scan replicas behind a bitwise majority voter.

    Faults address replicas through :class:`repro.faults.CircuitFault`'s
    ``replica`` field (0, 1 or 2); the single shared ``injector`` is
    consulted by all three replicas, each filtering on its own id.  With
    ``checksum=True`` every replica also runs the streaming checksum
    check of :class:`~repro.hardware.ChecksumTreeScanCircuit`.
    """

    def __init__(self, n_leaves: int, width: int, op: int, *,
                 injector=None, checksum: bool = False) -> None:
        self.n = n_leaves
        self.width = width
        self.op = op
        self.checksum = checksum
        if checksum:
            self.replicas = [ChecksumTreeScanCircuit(n_leaves, width, op)
                             for _ in range(3)]
            for r, c in enumerate(self.replicas):
                c.circuit.replica_id = r
                c.record_detections = False  # the voter classifies instead
        else:
            self.replicas = [TreeScanCircuit(n_leaves, width, op,
                                             replica_id=r)
                             for r in range(3)]
        self.injector = injector

    @property
    def injector(self):
        return self._injector

    @injector.setter
    def injector(self, value) -> None:
        self._injector = value
        for c in self.replicas:
            if self.checksum:
                c.circuit.injector = value
            else:
                c.injector = value

    def scan(self, values) -> tuple[np.ndarray, int, TMRStats]:
        """One voted scan: ``(voted_results, cycles, stats)``.

        A masked fault (vote disagreement with a correct majority) is
        recorded in the injector's fault counters; a failed per-replica
        checksum records a detection.
        """
        outs = []
        checks = []
        for c in self.replicas:
            if self.checksum:
                out, _, ok = c.scan(values)
            else:
                out, _ = c.scan(values)
                ok = True
            outs.append(np.asarray(out, dtype=np.int64))
            checks.append(bool(ok))
        a, b, c3 = outs
        voted = (a & b) | (a & c3) | (b & c3)
        disagreements = int(np.count_nonzero((a != b) | (a != c3)))
        if self._injector is not None:
            # one ledger entry per scan: a fault the vote out-voted is
            # masked; a checksum flag with unanimous replicas is a detection
            if disagreements:
                self._injector.counters.masked += 1
            elif not all(checks):
                self._injector.counters.detected += 1
        cycles = tmr_scan_cycles(self.n, self.width, checksum=self.checksum)
        return voted, cycles, TMRStats(disagreements=disagreements,
                                       checks_ok=tuple(checks))

    # --- hardware inventory -------------------------------------------- #

    def num_state_machines(self) -> int:
        return 3 * self.replicas[0].num_state_machines()

    def total_shift_register_bits(self) -> int:
        return 3 * self.replicas[0].total_shift_register_bits()