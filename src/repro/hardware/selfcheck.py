"""A streaming checksum checker for the tree scan circuit.

For an exclusive scan the last output and last input reassemble the
reduction::

    +-scan :  out[n-1] + in[n-1] == +-reduce(in)        (mod 2^width)
    max-scan: max(out[n-1], in[n-1]) == max-reduce(in)

The reduction itself streams out of the *root* of the scan tree for free
during the up sweep (Figure 13: the value reaching the root is the total),
so the checker hardware is tiny: a ``2 lg n - 1``-bit delay line to align
the root stream with the leaf outputs, one extra
:class:`~repro.hardware.unit.SumStateMachine` to combine ``out[n-1]`` with
``in[n-1]`` bit-serially, and a one-bit comparator flip-flop.  Cost:
:data:`CHECK_EXTRA_CYCLES` extra clocks to drain the comparator, ``+1``
state machine, ``2 lg n - 1`` FIFO bits.

Coverage is deliberately partial — this is the *cheap* rung of the
detection lattice.  A fault that corrupts a middle element of the down
sweep leaves both ``out[n-1]`` and the root total intact and slips
through; a fault on the up sweep usually breaks the identity and is
caught.  :class:`~repro.hardware.TMRTreeScanCircuit` provides the masking
rung above it, and the machine-level self-checking scans
(:func:`repro.core.simulate.sim_verify_plus_scan`) the complete one.
``benchmarks/bench_fault_tolerance.py`` measures all three.
"""
from __future__ import annotations

import numpy as np

from .tree import MAX, TreeScanCircuit, tree_scan_cycles

__all__ = ["ChecksumTreeScanCircuit", "CHECK_EXTRA_CYCLES",
           "checksum_scan_cycles"]

#: extra clocks after the last output bit: one for the combining state
#: machine, one to latch the comparator verdict
CHECK_EXTRA_CYCLES = 2


def checksum_scan_cycles(n_leaves: int, width: int) -> int:
    """Cycles for one checksum-checked scan: the plain pipeline plus the
    comparator drain."""
    return tree_scan_cycles(n_leaves, width) + CHECK_EXTRA_CYCLES


class ChecksumTreeScanCircuit:
    """A :class:`TreeScanCircuit` with the streaming end-to-end check."""

    def __init__(self, n_leaves: int, width: int, op: int, *,
                 injector=None) -> None:
        self.circuit = TreeScanCircuit(n_leaves, width, op,
                                       injector=injector)
        self.n = n_leaves
        self.width = width
        self.op = op
        #: set False when a wrapper (e.g. the TMR voter) classifies
        #: outcomes itself, to keep the fault ledger single-entry
        self.record_detections = True

    @property
    def injector(self):
        return self.circuit.injector

    @injector.setter
    def injector(self, value) -> None:
        self.circuit.injector = value

    def scan(self, values) -> tuple[np.ndarray, int, bool]:
        """Run one checked scan: ``(results, cycles, ok)``.

        ``ok`` is the checker's verdict — ``False`` means the scan-identity
        checksum failed and the result must not be trusted.  A detection
        is recorded in the injector's fault counters when one is attached.
        """
        results, cycles = self.circuit.scan(values)
        vals = np.asarray(values, dtype=np.int64)
        total = self.circuit.last_reduction()
        if len(vals) == 0:
            return results, cycles + CHECK_EXTRA_CYCLES, True
        if self.op == MAX:
            ok = max(int(results[-1]), int(vals[-1])) == total
        else:
            mask = (1 << self.width) - 1
            ok = (int(results[-1]) + int(vals[-1])) & mask == total
        if not ok and self.record_detections and self.injector is not None:
            self.injector.counters.detected += 1
        return results, cycles + CHECK_EXTRA_CYCLES, ok

    # --- hardware inventory -------------------------------------------- #

    def num_state_machines(self) -> int:
        return self.circuit.num_state_machines() + 1

    def total_shift_register_bits(self) -> int:
        return self.circuit.total_shift_register_bits() + 2 * self.circuit.lg - 1
