"""Tree contraction: parallel expression-tree evaluation (Table 5).

Rake-and-compress contraction of a rooted binary expression tree whose
internal nodes apply ``+`` or ``*`` and whose leaves hold constants:

* **rake** — a leaf whose sibling is also a leaf collapses its parent to a
  constant; a leaf whose sibling is internal turns its parent into a *unary*
  node carrying the affine function ``x -> a·x + b`` (affine maps are closed
  under composition for ``{+, *}`` expressions, the standard trick);
* **compress** — every unary node whose child is unary composes with it
  (one synchronous pointer-jumping step, halving every unary chain).

Both happen each round on every eligible node, the finished nodes are
packed away (load balancing, Section 2.5), and the tree contracts to its
root in O(lg n) rounds.  Each round costs O(⌈active/p⌉) program steps under
the long-vector cost model, so total work is O(n) with ``p = n / lg n``
processors — the Table 5 processor-step reduction.

Arithmetic is carried modulo a prime (default ``2^31 - 1``) so coefficient
growth cannot overflow; pass ``modulus=None`` for exact evaluation of small
trees.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine.model import Machine

__all__ = ["ExpressionTree", "tree_contract", "DEFAULT_MODULUS"]

DEFAULT_MODULUS = (1 << 31) - 1

_LEAF, _BINARY, _UNARY = 0, 1, 2
OP_ADD, OP_MUL = 0, 1


@dataclass
class ExpressionTree:
    """A rooted binary expression tree in array form.

    ``left``/``right`` are child indices (``-1`` on leaves), ``op`` is
    ``OP_ADD`` or ``OP_MUL`` on internal nodes, ``value`` holds leaf
    constants.  ``root`` is the root index.
    """

    left: np.ndarray
    right: np.ndarray
    op: np.ndarray
    value: np.ndarray
    root: int

    @property
    def n(self) -> int:
        return len(self.left)

    def eval_serial(self, modulus: int | None = DEFAULT_MODULUS) -> int:
        """Reference bottom-up evaluation (host-side, iterative)."""
        order = []
        stack = [self.root]
        seen = np.zeros(self.n, dtype=bool)
        while stack:
            v = stack.pop()
            order.append(v)
            if self.left[v] >= 0:
                stack.append(self.left[v])
                stack.append(self.right[v])
        val = {}
        for v in reversed(order):
            if self.left[v] < 0:
                val[v] = int(self.value[v])
            else:
                a, b = val[self.left[v]], val[self.right[v]]
                val[v] = a + b if self.op[v] == OP_ADD else a * b
            if modulus:
                val[v] %= modulus
        return val[self.root]

    @staticmethod
    def random(rng: np.random.Generator, n_leaves: int, *, max_value: int = 1000,
               skew: float = 0.5) -> "ExpressionTree":
        """A random binary tree with ``n_leaves`` leaves; ``skew`` near 1
        produces vine-like (deep) trees, near 0 balanced ones."""
        n = 2 * n_leaves - 1
        left = np.full(n, -1, dtype=np.int64)
        right = np.full(n, -1, dtype=np.int64)
        op = rng.integers(0, 2, size=n).astype(np.int64)
        value = rng.integers(0, max_value, size=n).astype(np.int64)
        # grow by splitting a random current leaf into an internal node
        next_id = 1
        leaves = [0]
        while next_id < n:
            pick = -1 if rng.random() < skew else rng.integers(0, len(leaves))
            v = leaves.pop(pick)
            left[v], right[v] = next_id, next_id + 1
            leaves.extend((next_id, next_id + 1))
            next_id += 2
        return ExpressionTree(left=left, right=right, op=op, value=value, root=0)


def tree_contract(machine: Machine, tree: ExpressionTree,
                  *, modulus: int | None = DEFAULT_MODULUS,
                  max_rounds: int | None = None) -> tuple[int, int]:
    """Evaluate ``tree`` by rake-and-compress.  Returns ``(value, rounds)``."""
    n = tree.n
    mod = modulus or 0
    left = tree.left.copy()
    right = tree.right.copy()
    kind = np.where(left < 0, _LEAF, _BINARY).astype(np.int8)
    value = tree.value.astype(np.int64).copy()
    if mod:
        value %= mod
    # unary nodes carry f(x) = a*x + b and a single child pointer
    fa = np.ones(n, dtype=np.int64)
    fb = np.zeros(n, dtype=np.int64)
    child = np.full(n, -1, dtype=np.int64)
    op = tree.op
    parent = np.full(n, -1, dtype=np.int64)
    internal = left >= 0
    parent[left[internal]] = np.flatnonzero(internal)
    parent[right[internal]] = np.flatnonzero(internal)
    alive = np.ones(n, dtype=bool)

    if max_rounds is None:
        max_rounds = 8 * (int(n).bit_length() + 2) + 16
    rounds = 0

    def _mul(a, b):
        return (a * b) % mod if mod else a * b

    def _add(a, b):
        return (a + b) % mod if mod else a + b

    while kind[tree.root] != _LEAF:
        if rounds >= max_rounds:
            raise RuntimeError(f"tree contraction exceeded {max_rounds} rounds")
        rounds += 1
        active = int(alive.sum())
        # each phase below is a constant number of parallel primitives over
        # the live nodes (reads go child->parent or parent->single-child,
        # both exclusive)
        for _ in range(6):
            machine.charge_elementwise(active)
        machine.counter.charge("gather", machine._block(active))
        machine.counter.charge("gather", machine._block(active))

        k = kind.copy()
        # --- rake ----------------------------------------------------- #
        binary = k == _BINARY
        lk = np.where(binary, k[np.clip(left, 0, n - 1)], -1)
        rk = np.where(binary, k[np.clip(right, 0, n - 1)], -1)
        both = binary & (lk == _LEAF) & (rk == _LEAF)
        if both.any():
            li, ri = left[both], right[both]
            res = np.where(op[both] == OP_ADD,
                           _add(value[li], value[ri]),
                           _mul(value[li], value[ri]))
            value[both] = res
            kind[both] = _LEAF
            alive[li] = alive[ri] = False
        one_leaf = binary & ((lk == _LEAF) ^ (rk == _LEAF))
        if one_leaf.any():
            leaf_is_left = one_leaf & (lk == _LEAF)
            leaf_is_right = one_leaf & (rk == _LEAF)
            for mask, leaf_side, other_side in (
                (leaf_is_left, left, right),
                (leaf_is_right, right, left),
            ):
                if not mask.any():
                    continue
                li = leaf_side[mask]
                c = value[li]
                is_add = op[mask] == OP_ADD
                fa[mask] = np.where(is_add, 1, c)
                fb[mask] = np.where(is_add, c, 0)
                child[mask] = other_side[mask]
                kind[mask] = _UNARY
                alive[li] = False
        # --- compress / apply ------------------------------------------ #
        k = kind.copy()
        unary = k == _UNARY
        ck = np.where(unary, k[np.clip(child, 0, n - 1)], -1)
        # unary over leaf: finish
        fin = unary & (ck == _LEAF)
        if fin.any():
            ci = child[fin]
            value[fin] = _add(_mul(fa[fin], value[ci]), fb[fin])
            kind[fin] = _LEAF
            alive[ci] = False
        # unary over unary: compose and jump (synchronous snapshot)
        jump = unary & (ck == _UNARY)
        if jump.any():
            ci = child[jump]
            fa2, fb2, c2 = fa[ci].copy(), fb[ci].copy(), child[ci].copy()
            fb[jump] = _add(_mul(fa[jump], fb2), fb[jump])
            fa[jump] = _mul(fa[jump], fa2)
            child[jump] = c2
            alive[ci] = False  # composed away once its parent absorbs it
        # the composed-away child may itself still be someone's child; keep
        # any node that is still referenced
        referenced = np.zeros(n, dtype=bool)
        live_u = kind == _UNARY
        referenced[child[live_u]] = True
        live_b = kind == _BINARY
        referenced[left[live_b]] = True
        referenced[right[live_b]] = True
        referenced[tree.root] = True
        alive = referenced
        # load balance the survivors (a pack)
        machine.counter.charge("permute", machine._block(active))

    return int(value[tree.root]), rounds
