"""Sparse matrix–vector multiply by segmented sums.

The canonical segmented-scan application from the scan-vector line of
work: store a sparse matrix with one segment per row (the nonzeros of
that row), and ``y = A @ x`` becomes

1. gather ``x[col]`` into every nonzero slot (one exclusive gather when
   each column index appears once; a charged concurrent read otherwise —
   on EREW/scan machines the duplicates are served by a sort-and-copy
   simulation costing an extra ``lg n`` on that single step);
2. multiply elementwise;
3. one segmented ``+-distribute`` and a pack of the segment heads.

O(1) program steps per multiply on the scan model regardless of the
sparsity pattern — the irregularity that breaks dense-array parallelism
is exactly what segments absorb.  Rows with no nonzeros are handled by
tracking the nonempty-row ids (the representation cannot hold an empty
segment).
"""
from __future__ import annotations

import numpy as np

from .._util import ceil_log2
from ..core import ops, segmented
from ..core.vector import Vector
from ..machine.model import Machine

__all__ = ["SparseMatrix"]


class SparseMatrix:
    """A CSR-like sparse matrix over a machine, rows as segments."""

    def __init__(self, machine: Machine, dense=None, *, shape=None,
                 rows=None, cols=None, vals=None) -> None:
        """Build from a dense array, or from COO triples (``rows``,
        ``cols``, ``vals``) plus ``shape``."""
        self.machine = machine
        if dense is not None:
            d = np.asarray(dense, dtype=np.float64)
            if d.ndim != 2:
                raise ValueError("dense matrix must be 2-D")
            rows, cols = np.nonzero(d)
            vals = d[rows, cols]
            shape = d.shape
        else:
            if shape is None:
                raise ValueError("shape is required with COO input")
            rows = np.asarray(rows, dtype=np.int64)
            cols = np.asarray(cols, dtype=np.int64)
            vals = np.asarray(vals, dtype=np.float64)
            if not (len(rows) == len(cols) == len(vals)):
                raise ValueError("rows/cols/vals length mismatch")
        self.shape = (int(shape[0]), int(shape[1]))
        if len(rows) and (rows.min() < 0 or rows.max() >= self.shape[0]
                          or cols.min() < 0 or cols.max() >= self.shape[1]):
            raise ValueError("index out of range")

        order = np.lexsort((cols, rows))
        rows, cols, vals = rows[order], cols[order], vals[order]
        self.nnz = len(vals)
        self.row_of_slot = rows
        self.col = Vector(machine, cols) if self.nnz else machine.vector([])
        self.val = Vector(machine, vals) if self.nnz else \
            machine.vector([], dtype=np.float64)
        sf = np.zeros(self.nnz, dtype=bool)
        if self.nnz:
            sf[0] = True
            sf[1:] = rows[1:] != rows[:-1]
        self.seg_flags = Vector(machine, sf)
        self.nonempty_rows = np.unique(rows)

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape)
        out[self.row_of_slot, self.col.data] = self.val.data
        return out

    def matvec(self, x) -> Vector:
        """``A @ x`` in O(1) scan-model program steps."""
        m = self.machine
        xv = x if isinstance(x, Vector) else m.vector(
            np.asarray(x, dtype=np.float64), dtype=np.float64)
        if len(xv) != self.shape[1]:
            raise ValueError(
                f"length mismatch: {self.shape[1]} columns vs {len(xv)}")
        out = np.zeros(self.shape[0])
        if self.nnz == 0:
            return Vector(m, out)

        # 1. x values at the nonzero slots.  Duplicate column indices make
        # this a concurrent read; EREW-family machines simulate it with a
        # sort-and-segmented-copy, charged as lg n extra on this one step.
        idx = self.col.data
        if len(np.unique(idx)) == len(idx):
            xs = xv.gather(self.col)
        else:
            if m.capabilities.concurrent_read:
                m.charge_gather(max(self.nnz, self.shape[1]), unique=False)
            else:
                for _ in range(2 * ceil_log2(max(self.nnz, 2))):
                    m.charge_elementwise(self.nnz)
            xs = Vector(m, xv.data[idx])

        # 2. multiply, 3. per-row sums
        prod = self.val * xs
        sums = segmented.seg_plus_distribute(prod, self.seg_flags)
        heads = ops.pack(sums, self.seg_flags)
        m.counter.charge("permute", m._block(self.shape[0]))
        out[self.nonempty_rows] = heads.data
        return Vector(m, out)

    def row_sums(self) -> Vector:
        """Per-row sums of the stored values (one distribute + pack)."""
        m = self.machine
        out = np.zeros(self.shape[0])
        if self.nnz:
            sums = segmented.seg_plus_distribute(self.val, self.seg_flags)
            heads = ops.pack(sums, self.seg_flags)
            m.counter.charge("permute", m._block(self.shape[0]))
            out[self.nonempty_rows] = heads.data
        return Vector(m, out)

    def scale_rows(self, factors) -> "SparseMatrix":
        """Multiply each row by a factor: distribute the factors over the
        segments (O(1) steps) and rebuild."""
        m = self.machine
        f = np.asarray(factors, dtype=np.float64)
        if len(f) != self.shape[0]:
            raise ValueError("need one factor per row")
        if self.nnz == 0:
            return self
        fv = Vector(m, f[self.nonempty_rows])
        heads_idx = Vector(m, np.flatnonzero(self.seg_flags.data).astype(np.int64))
        at_heads = fv.permute(heads_idx, length=self.nnz)
        spread = segmented.seg_copy(at_heads, self.seg_flags)
        new_vals = self.val * spread
        return SparseMatrix(m, shape=self.shape, rows=self.row_of_slot,
                            cols=self.col.data, vals=new_vals.data)
