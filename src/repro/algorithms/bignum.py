"""The appendix's historical scan applications, made executable.

* **Ofman (1963): binary addition as a scan.**  Adding two n-bit numbers
  is a carry-resolution problem: position i generates a carry when both
  bits are 1 and propagates one when exactly one is.  The appendix gives
  the one-liner::

      (A xor B) xor seg-or-scan(A and B,  not (A xor B))

  — an or-scan over the generate bits, segmented so that a run of
  propagate positions forwards a carry and anything else blocks it.  The
  segment flags are the *non-propagate* positions (each starts a new
  carry region).  One scan: O(1) program steps to add arbitrarily long
  binary numbers with one processor per bit.

* **Stone (1971): polynomial evaluation as a scan.**  The appendix
  evaluates a polynomial with coefficient vector A at x by::

      A * mult-scan(copy(X))

  — copy x across the vector, take the exclusive product scan (yielding
  [1, x, x², …]), multiply by the coefficients and sum.  The product
  scan is not one of the paper's two primitives, so it is charged as a
  programmed tree scan (2·lg n steps on every model) via
  :func:`generic_scan`.
"""
from __future__ import annotations

import numpy as np

from .._util import ceil_log2
from ..core import ops, scans, segmented
from ..core.vector import Vector
from ..machine.model import Machine

__all__ = ["scan_add", "big_add", "powers_of", "evaluate_polynomial",
           "generic_scan"]


def scan_add(a_bits: Vector, b_bits: Vector) -> Vector:
    """Add two binary numbers given as boolean vectors, LSB first,
    returning the (n+1)-bit sum — Ofman's construction, O(1) steps.

    ``carry_in[i]`` must be 1 exactly when some position ``j < i``
    generates a carry and every position between propagates it.  With
    segments starting wherever the propagate bit is 0, a segmented or-scan
    of the generate bits computes precisely that.
    """
    if a_bits.dtype != np.bool_ or b_bits.dtype != np.bool_:
        raise TypeError("scan_add takes boolean bit vectors (LSB first)")
    if len(a_bits) != len(b_bits):
        raise ValueError("operand lengths differ")
    m = a_bits.machine
    n = len(a_bits)
    if n == 0:
        return Vector(m, np.zeros(1, dtype=bool))
    generate = a_bits & b_bits
    propagate = a_bits ^ b_bits
    # a carry region restarts after each *kill* position (neither bit set:
    # no carry crosses it); generate positions inject carries and propagate
    # positions forward them, so within a region "some generate before me"
    # is exactly the incoming carry — one segmented or-scan
    kill = ~(a_bits | b_bits)
    m.charge_permute(n)  # shift: position i looks at kill[i-1]
    seg_arr = np.empty(n, dtype=bool)
    seg_arr[0] = True
    seg_arr[1:] = kill.data[:-1]
    carry_in = segmented.seg_or_scan(generate, Vector(m, seg_arr))
    total = propagate ^ carry_in
    # the (n+1)-th bit: carry out of the top position
    m.charge_elementwise(n)
    carry_out = bool(generate.data[-1] | (propagate.data[-1] & carry_in.data[-1]))
    return ops.concat(total, Vector(m, np.array([carry_out])))


def big_add(machine: Machine, a: int, b: int) -> int:
    """Add two arbitrary-precision non-negative integers through
    :func:`scan_add` (convenience wrapper; conversion is host-side)."""
    if a < 0 or b < 0:
        raise ValueError("big_add takes non-negative integers")
    n = max(a.bit_length(), b.bit_length(), 1)
    a_bits = machine.flags([(a >> i) & 1 for i in range(n)])
    b_bits = machine.flags([(b >> i) & 1 for i in range(n)])
    out = scan_add(a_bits, b_bits)
    return int(sum(int(bit) << i for i, bit in enumerate(out.data)))


def generic_scan(v: Vector, op: str = "mul") -> Vector:
    """Exclusive scan under an arbitrary associative operator, computed by
    the tree algorithm and charged ``2·lg n`` steps on *every* model (it
    is a programmed loop of memory operations, not a primitive).

    Supported operators: ``"mul"`` (identity 1) for Stone's polynomial
    trick; ``"xor"`` (identity 0).
    """
    m = v.machine
    n = len(v)
    cost = max(1, 2 * ceil_log2(max(n, 2)))
    for _ in range(cost):
        m.charge_elementwise(n)
    if op == "mul":
        out = np.ones(n, dtype=v.dtype)
        if n > 1:
            out[1:] = np.cumprod(v.data[:-1])
    elif op == "xor":
        out = np.zeros(n, dtype=v.dtype)
        if n:
            out[1:] = np.bitwise_xor.accumulate(v.data[:-1])
    else:
        raise ValueError(f"unsupported operator {op!r}")
    return Vector(m, out)


def powers_of(machine: Machine, x, n: int, dtype=np.float64) -> Vector:
    """``[1, x, x², …, x^(n-1)]`` via Stone's mult-scan of ``copy(x)``."""
    xs = Vector(machine, np.full(n, x, dtype=dtype))
    machine.charge_broadcast(n)  # the copy
    return generic_scan(xs, "mul")


def evaluate_polynomial(machine: Machine, coefficients, x) -> float:
    """Evaluate ``sum(c_i x^i)`` — the appendix's ``A * mult-scan(copy(X))``
    followed by a +-reduce."""
    coeffs = np.asarray(coefficients, dtype=np.float64)
    pw = powers_of(machine, float(x), len(coeffs))
    terms = Vector(machine, coeffs) * pw
    return float(scans.plus_reduce(terms))
