"""String / CSV field splitting with segmented scans.

Splitting text on a delimiter is the canonical irregular-segment workload:
field boundaries are data-dependent, yet the whole split is a constant
number of program steps on the scan model.  The pipeline per delimiter
class is

1. flag delimiter bytes (elementwise),
2. field ids = how many delimiters precede each byte (one ``+-scan``),
3. pack the non-delimiter bytes and the delimiter positions,
4. field lengths = adjacent differences of the padded delimiter
   positions (shift + subtract), which keeps *empty* fields — exactly
   Python's ``str.split`` semantics.

:func:`parse_csv` runs the same pipeline once over both delimiter classes
(newline and comma) and recovers the per-row field counts with a run-length
encode of the fields' row ids — the codecs module doing structural work.
Everything charges through the machine, so the splitter runs on every
backend and model unchanged.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import scans
from ..core.ops import concat, pack
from ..core.vector import Vector
from ..machine.model import Machine

__all__ = ["CsvSplit", "FieldSplit", "parse_csv", "split_fields"]


@dataclass(frozen=True)
class FieldSplit:
    """Result of :func:`split_fields`.

    ``chars`` holds the surviving bytes (delimiters removed), ``lengths``
    one entry per field *including empty fields*, in order.  ``fields()``
    reassembles the Python-semantics split for verification.
    """

    chars: Vector
    lengths: Vector
    n_fields: int

    def fields(self) -> list[bytes]:
        lengths = self.lengths.data
        bounds = np.cumsum(lengths)
        data = self.chars.data.tobytes()
        return [data[hi - ln:hi] for hi, ln in zip(bounds, lengths)]


@dataclass(frozen=True)
class CsvSplit:
    """Result of :func:`parse_csv`: the flat field split plus the number
    of fields in each row."""

    fields: FieldSplit
    fields_per_row: Vector
    n_rows: int

    def rows(self) -> list[list[bytes]]:
        flat = self.fields.fields()
        out, at = [], 0
        for count in self.fields_per_row.to_list():
            out.append(flat[at:at + count])
            at += count
        return out


def _codes(machine: Machine, text: str | bytes) -> Vector:
    data = text.encode("utf-8") if isinstance(text, str) else bytes(text)
    return machine.vector(np.frombuffer(data, dtype=np.uint8))


def _split_on(codes: Vector, is_delim: Vector) -> FieldSplit:
    """Split ``codes`` wherever ``is_delim`` holds, keeping empty fields."""
    m = codes.machine
    n = len(codes)
    if n == 0:
        return FieldSplit(chars=codes,
                          lengths=m.vector(np.zeros(1, dtype=np.int64)),
                          n_fields=1)
    chars = pack(codes, ~is_delim)
    delim_pos = pack(m.arange(n), is_delim)
    # pad with a virtual delimiter at n: field k spans
    # (pos[k-1], pos[k]) exclusive, so lengths fall out of one shift
    bounds = concat(delim_pos, m.vector(np.array([n], dtype=np.int64)))
    lengths = bounds - bounds.shift(1, fill=-1) - 1
    return FieldSplit(chars=chars, lengths=lengths,
                      n_fields=len(delim_pos) + 1)


def split_fields(machine: Machine, text: str | bytes,
                 *, delimiter: str | bytes = ",") -> FieldSplit:
    """Split ``text`` on a single-byte delimiter; matches
    ``text.split(delimiter)`` including empty and trailing fields."""
    delim = (delimiter.encode("utf-8")
             if isinstance(delimiter, str) else bytes(delimiter))
    if len(delim) != 1:
        raise ValueError(f"delimiter must be one byte, got {delim!r}")
    codes = _codes(machine, text)
    is_delim = codes == delim[0]
    return _split_on(codes, is_delim)


def parse_csv(machine: Machine, text: str | bytes) -> CsvSplit:
    """Split ``text`` into rows (on ``\\n``) of fields (on ``,``); matches
    ``[row.split(b",") for row in text.split(b"\\n")]``."""
    from .codecs import rle_encode

    codes = _codes(machine, text)
    n = len(codes)
    is_nl = codes == ord("\n")
    is_comma = codes == ord(",")
    is_break = is_nl | is_comma
    split = _split_on(codes, is_break)
    if n == 0:
        one = machine.vector(np.ones(1, dtype=np.int64))
        return CsvSplit(fields=split, fields_per_row=one, n_rows=1)
    # row of field k = newlines among the first k breaks: an inclusive
    # +-scan of the break classes, prefixed with row 0 for field 0
    nl_at_break = pack(is_nl.astype(np.int64), is_break)
    row_after = scans.plus_scan(nl_at_break) + nl_at_break
    row_of_field = concat(machine.vector(np.zeros(1, dtype=np.int64)),
                          row_after)
    # row ids are sorted, every row has >= 1 field: run lengths of the
    # row-id vector are exactly the per-row field counts
    _, fields_per_row = rle_encode(row_of_field)
    n_rows = len(fields_per_row)
    return CsvSplit(fields=split, fields_per_row=fields_per_row,
                    n_rows=n_rows)
