"""Rootfix on a forest via Euler tours — O(lg n) program steps.

Connected components needs a final step the paper delegates to its tree
machinery [7]: given the *merge forest* (each contracted vertex points to
the vertex that absorbed it), every original vertex must learn its root.
Naive pointer jumping on parent pointers is not EREW-legal (siblings read
the same parent cell concurrently), so we do it the scan-model way:

1. build the segmented graph of the forest (radix sort: O(lg n) steps);
2. form the Euler tour as a linked list of edge slots — the successor of a
   slot is the cross-pointer of the next slot in its segment (O(1) steps,
   and the successor function is a permutation, so every later read of it
   is exclusive);
3. break each tree's tour cycle at the root's head slot, seed the terminal
   slot with the root's id, and propagate it backward along the list by
   pointer jumping (O(lg n) steps, unique gathers only).

Every slot of a tree lies on that tree's tour, so after propagation each
vertex reads its root off any of its slots.
"""
from __future__ import annotations

import numpy as np

from .._util import ceil_log2
from ..core import segmented
from ..core.vector import Vector
from ..graph.build import from_edges
from ..machine.model import Machine

__all__ = ["rootfix"]


def rootfix(machine: Machine, parent: np.ndarray) -> np.ndarray:
    """Return, for each node of a forest, the id of its root.

    ``parent[v]`` is ``v``'s parent, or ``v`` itself for roots.  Charged as
    the scan-model construction described in the module docstring.
    """
    parent = np.asarray(parent, dtype=np.int64)
    n = len(parent)
    labels = np.arange(n, dtype=np.int64)
    child = np.flatnonzero(parent != labels)
    if len(child) == 0:
        return labels
    # Compact to the nodes that participate in edges; pure roots of
    # single-node trees keep their own label.
    involved = np.unique(np.concatenate((child, parent[child])))
    remap = np.full(n, -1, dtype=np.int64)
    remap[involved] = np.arange(len(involved))
    machine.charge_elementwise(max(len(involved), 1))
    edges = np.column_stack((remap[child], remap[parent[child]]))
    g = from_edges(machine, len(involved), edges)

    sf = g.seg_flags.data
    cp = g.cross_pointers.data
    ns = g.num_slots
    idx = np.arange(ns, dtype=np.int64)

    # the slot after me in my segment, cyclically (O(1) segmented steps)
    head_pos = segmented.seg_copy(Vector(machine, idx), g.seg_flags).data
    seg_len = segmented.seg_plus_distribute(
        Vector(machine, np.ones(ns, dtype=np.int64)), g.seg_flags).data
    machine.charge_elementwise(ns)
    last_in_seg = idx - head_pos + 1 == seg_len
    nxt_in_seg = np.where(last_in_seg, head_pos, idx + 1)
    machine.counter.charge("gather", machine._block(ns))  # cp at unique indices
    succ = cp[nxt_in_seg]

    # break each tour at its root's head slot and seed the terminal with
    # the root id
    seg_id = np.cumsum(sf) - 1
    vertex_node = g.vertex_reps  # compact-vertex -> involved index
    node_of_slot = involved[vertex_node[seg_id]]
    is_root_node = parent[node_of_slot] == node_of_slot
    machine.charge_elementwise(ns)
    root_head = sf & is_root_node
    machine.counter.charge("gather", machine._block(ns))
    terminal = root_head[succ]
    machine.counter.charge("gather", machine._block(ns))
    seed_root = node_of_slot[succ]

    lab = np.where(terminal, seed_root, -1)
    ptr = np.where(terminal, -1, succ)

    rounds = ceil_log2(ns) if ns > 1 else 0
    for _ in range(rounds + 1):
        live = ptr >= 0
        if not live.any() and (lab >= 0).all():
            break
        machine.counter.charge("gather", machine._block(ns))
        machine.counter.charge("gather", machine._block(ns))
        machine.charge_elementwise(ns)
        tgt = np.clip(ptr, 0, ns - 1)
        lab = np.where((lab < 0) & (ptr >= 0), lab[tgt], lab)
        ptr = np.where(ptr >= 0, ptr[tgt], -1)

    if (lab < 0).any():  # pragma: no cover - defensive
        raise RuntimeError("rootfix propagation did not converge")

    # every slot of a vertex carries the same root; read it off the heads
    machine.counter.charge("permute", machine._block(ns))
    labels[node_of_slot[sf]] = lab[sf]
    # non-head slots belong to the same vertices; also cover leaf nodes that
    # appear only as children (they have slots too, so already covered)
    labels[node_of_slot] = lab
    return labels
