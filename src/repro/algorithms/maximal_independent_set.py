"""Maximal independent set in O(lg n) expected program steps (Table 1).

Luby's algorithm on the segmented graph representation: every round, each
vertex draws a random priority; a vertex whose priority beats the minimum
over its neighbors (one O(1) ``neighbor_reduce``) joins the set, its
neighbors are knocked out, and the survivors' subgraph is rebuilt with one
pack (``SegmentedGraph.subgraph``).  An expected constant fraction of the
*edges* disappears each round, so O(lg n) rounds.

Table 1 lists MIS at O(lg² n) on both pure P-RAM models and O(lg n) on the
scan model — exactly the per-round O(lg n) → O(1) reduction the segmented
neighbor operations buy.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import ceil_log2
from ..core.vector import Vector
from ..graph.build import from_edges
from ..machine.model import Machine

__all__ = ["maximal_independent_set", "MISResult"]


@dataclass
class MISResult:
    """``in_set[v]`` — membership flags; ``rounds`` — Luby rounds run."""

    in_set: np.ndarray
    rounds: int


def maximal_independent_set(machine: Machine, n_vertices: int, edges,
                            *, max_rounds: int | None = None) -> MISResult:
    """Compute a maximal independent set of an undirected graph."""
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    in_set = np.zeros(n_vertices, dtype=bool)
    excluded = np.zeros(n_vertices, dtype=bool)

    if len(edges) == 0:
        in_set[:] = True
        return MISResult(in_set=in_set, rounds=0)

    present = np.zeros(n_vertices, dtype=bool)
    present[edges.ravel()] = True
    machine.charge_scan(n_vertices)
    remap = np.cumsum(present) - 1
    g = from_edges(machine, int(present.sum()), remap[edges])
    g.vertex_reps = np.flatnonzero(present)[g.vertex_reps]
    in_set[~present] = True  # isolated vertices are free wins

    if max_rounds is None:
        max_rounds = 8 * (ceil_log2(max(n_vertices, 2)) + 2) + 20

    rounds = 0
    while g.num_slots > 0:
        if rounds >= max_rounds:
            raise RuntimeError(f"MIS did not converge in {max_rounds} rounds")
        rounds += 1
        nv = g.num_vertices
        machine.charge_elementwise(nv)
        # unique priorities: random draw refined by vertex id
        raw = machine.rng.integers(0, nv * 4 + 1, size=nv, dtype=np.int64)
        pri = Vector(machine, raw * nv + np.arange(nv, dtype=np.int64))
        nbr_min = g.neighbor_reduce(pri, "min")
        winner = pri < nbr_min
        # losers adjacent to a winner leave the graph with the winners
        knocked = g.neighbor_reduce(winner.astype(np.int64), "max") > 0
        w_mask, k_mask = winner.data, knocked.data
        in_set[g.vertex_reps[w_mask]] = True
        excluded[g.vertex_reps[k_mask]] = True
        survive = ~(winner | knocked)
        before_reps = g.vertex_reps
        g = g.subgraph(survive)
        # surviving vertices that lost every edge have no live neighbors
        # left: they join the set
        stayed = before_reps[survive.data]
        dropped = np.setdiff1d(stayed, g.vertex_reps, assume_unique=True)
        in_set[dropped] = True

    assert not (in_set & excluded).any()
    return MISResult(in_set=in_set, rounds=rounds)
