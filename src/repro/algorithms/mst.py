"""Probabilistic minimum spanning tree / forest (Section 2.3.3).

Sollin/Borůvka with *random mate* star formation: every tree (a contracted
vertex of the segmented graph) flips a coin; each child tree finds its
minimum-weight incident edge with one segmented ``min-distribute``, and if
that edge leads to a parent tree it becomes a star edge.  All stars merge in
O(1) program steps (:func:`repro.graph.star_merge`).  An expected quarter of
the trees disappear each round, so O(lg n) rounds — and O(lg n) program
steps on the scan model, versus the Θ(lg² n) the same code costs under EREW
charging (Table 1's graph rows).

Ties are broken by edge id (the comparison key is ``weight · 2m + edge_id``),
which makes every tree's minimum unique; the selected edges then form a
minimum spanning forest for the original weights.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import ceil_log2
from ..core import segmented
from ..core.vector import Vector
from ..graph.build import from_edges
from ..graph.star_merge import star_merge
from ..machine.model import Machine
from ..observe.spans import span

__all__ = ["minimum_spanning_tree", "MSTResult"]


@dataclass
class MSTResult:
    """Result of :func:`minimum_spanning_tree`.

    Attributes
    ----------
    edge_ids:
        Indices (into the input edge list) of the selected edges.
    total_weight:
        Sum of the selected edges' weights.
    rounds:
        Star-merge rounds executed.
    """

    edge_ids: np.ndarray
    total_weight: int
    rounds: int


def minimum_spanning_tree(machine: Machine, n_vertices: int, edges, weights,
                          *, max_rounds: int | None = None) -> MSTResult:
    """Compute a minimum spanning forest of an undirected weighted graph.

    Every vertex must have degree >= 1 (see
    :func:`repro.graph.from_edges`); the graph need not be connected — the
    result is then a minimum spanning forest.
    """
    edges = np.asarray(edges, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.int64)
    g = from_edges(machine, n_vertices, edges, weights=weights)
    n_edges = len(edges)
    if max_rounds is None:
        max_rounds = 12 * (ceil_log2(max(n_vertices, 2)) + 2) + 20

    selected: list[np.ndarray] = []
    rounds = 0
    while g.num_slots > 0:
        if rounds >= max_rounds:
            raise RuntimeError(
                f"MST did not contract within {max_rounds} rounds "
                f"({g.num_vertices} vertices remain)"
            )
        rounds += 1
        with span(f"round[{rounds}]"):
            nv = g.num_vertices
            m = machine

            # coin flip: parent or child (one elementwise step over the
            # vertices)
            m.charge_elementwise(nv)
            coin_parent = Vector(m, m.rng.integers(0, 2, size=nv).astype(bool))

            # each tree's minimum incident edge, keyed uniquely
            w = g.slot_data["weight"]
            eid = g.slot_data["edge_id"]
            key = w * (2 * n_edges) + eid
            mn = segmented.seg_min_distribute(key, g.seg_flags)
            candidate = key == mn

            # a child's candidate edge is a star edge iff the other end is
            # a parent tree
            parent_slot = g.vertex_to_slots(coin_parent)
            other_is_parent = parent_slot.permute(g.cross_pointers)
            child_star = candidate & ~parent_slot & other_is_parent

            # trees that failed to mate stay put this round: treat as
            # parents
            has_star = g.slots_to_vertex(
                segmented.seg_or_distribute(child_star, g.seg_flags))
            merging_parent = coin_parent | ~has_star

            if not child_star.data.any():
                continue  # unlucky coins; try again

            # the chosen edges are MST edges (cut property); record them
            machine.counter.charge("permute", machine._block(g.num_slots))
            selected.append(eid.data[child_star.data].copy())

            star = child_star | child_star.permute(g.cross_pointers)
            result = star_merge(g, star, merging_parent, validate=False)
            g = result.graph

    edge_ids = (np.unique(np.concatenate(selected))
                if selected else np.empty(0, dtype=np.int64))
    total = int(weights[edge_ids].sum()) if len(edge_ids) else 0
    return MSTResult(edge_ids=edge_ids, total_weight=total, rounds=rounds)
