"""Segmented parallel quicksort (Section 2.3.1, Figure 5).

Every segment is an independent subproblem: pick a pivot within each
segment, compare, three-way split within the segment, insert new segment
flags at the class boundaries, repeat until globally sorted.  Each
iteration is a constant number of scan-model primitives, and with random
pivots the expected number of iterations is O(lg n), so the expected step
complexity is O(lg n).

The paper reports that this sort ran in about twice the time of the split
radix sort on the Connection Machine; the step-count benchmark in
``benchmarks/bench_table1_sorting.py`` reproduces that relationship.
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core import scans, segmented
from ..core.vector import Vector

__all__ = ["quicksort", "QuicksortTrace"]


@dataclass
class QuicksortTrace:
    """Per-iteration snapshots for reproducing Figure 5."""

    keys: list[list] = field(default_factory=list)
    seg_flags: list[list[bool]] = field(default_factory=list)
    pivots: list[list] = field(default_factory=list)

    @property
    def iterations(self) -> int:
        return len(self.keys)


def _is_sorted(v: Vector) -> bool:
    """Step 1: each processor checks its left neighbor, then an
    ``and-distribute`` tells every processor (and the host) the verdict."""
    m = v.machine
    if len(v) <= 1:
        m.charge_reduce(len(v))
        return True
    m.charge_permute(len(v))  # fetch the previous element (a shift)
    prev_ok = Vector(m, np.concatenate(([True], v.data[:-1] <= v.data[1:])))
    m.charge_elementwise(len(v))
    return scans.and_reduce(prev_ok)


def _pick_pivots(v: Vector, sf: Vector, how: str) -> Vector:
    """Step 2: within each segment, pick a pivot and distribute it."""
    m = v.machine
    if how == "first":
        return segmented.seg_copy(v, sf)
    if how == "random":
        # Each element draws a random tag; the segment minimum tag marks the
        # pivot holder (ties broken by index via a combined unique key), and
        # a segmented max-distribute spreads the pivot's key.  A constant
        # number of primitives, matching the paper's sketch.
        n = len(v)
        m.charge_elementwise(n)  # draw the random numbers
        tags = Vector(m, m.rng.integers(0, n * 4 + 1, size=n, dtype=np.int64))
        unique_tags = tags * n + m.arange(n)
        mn = segmented.seg_min_distribute(unique_tags, sf)
        holder = unique_tags == mn
        # spread the holder's key across the segment (non-holders carry the
        # max identity so the holder's key wins the distribute)
        masked = holder.where(v, scans.max_identity(v.dtype))
        return segmented.seg_max_distribute(masked, sf)
    raise ValueError(f"unknown pivot rule {how!r}")


def quicksort(v: Vector, *, pivot: str = "random", trace: QuicksortTrace | None = None,
              max_iterations: int | None = None) -> Vector:
    """Sort ``v`` (any comparable dtype) on the scan model.

    Parameters
    ----------
    pivot:
        ``"random"`` (default, the paper's expected-O(lg n) analysis) or
        ``"first"`` (Figure 5's deterministic illustration).
    trace:
        Optional :class:`QuicksortTrace` to fill with per-iteration state.
    max_iterations:
        Safety bound; defaults to ``4 * (lg n + 2)`` for random pivots.
    """
    m = v.machine
    n = len(v)
    if n == 0:
        return v
    sf_arr = np.zeros(n, dtype=bool)
    sf_arr[0] = True
    sf = Vector(m, sf_arr)
    if max_iterations is None:
        max_iterations = 60 if pivot == "random" else 4 * n + 8
        max_iterations = max(max_iterations, 8 * (int(n).bit_length() + 2))

    for _ in range(max_iterations):
        if _is_sorted(v):
            return v
        pivots = _pick_pivots(v, sf, pivot)
        lesser = v < pivots
        equal = v == pivots
        if trace is not None:
            trace.keys.append(v.to_list())
            trace.seg_flags.append(sf.to_list())
            trace.pivots.append(pivots.to_list())
        # Step 3: split within segments; the class labels ride along so the
        # new segment boundaries can be read off neighbor changes (Step 4).
        label = lesser.where(0, equal.where(1, 2)).astype(np.int64)
        order = _seg_split3_index(v, lesser, equal, sf)
        v = v.permute(order)
        label = label.permute(order)
        sf = segmented.seg_flag_from_neighbor_change(label, sf)
    raise RuntimeError(f"quicksort did not converge in {max_iterations} iterations")


def _seg_split3_index(v: Vector, lesser: Vector, equal: Vector, sf: Vector) -> Vector:
    """The permutation used by the segmented three-way split (so several
    vectors can ride through the same reordering)."""
    m = v.machine
    greater = ~(lesser | equal)
    n_less = segmented.seg_plus_distribute(lesser.astype(np.int64), sf)
    n_eq = segmented.seg_plus_distribute(equal.astype(np.int64), sf)
    i_less = segmented.seg_enumerate(lesser, sf)
    i_eq = segmented.seg_enumerate(equal, sf) + n_less
    i_gt = segmented.seg_enumerate(greater, sf) + n_less + n_eq
    local = lesser.where(i_less, equal.where(i_eq, i_gt))
    head_pos = segmented.seg_copy(m.arange(len(v)), sf)
    return local + head_pos
