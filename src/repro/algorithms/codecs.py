"""Run-length and delta compression codecs on scan primitives.

Two classic codecs, each a constant number of program steps on the scan
model (and therefore a workload where Table 1's gap shows up directly):

* **RLE** — run heads are a neighbor-change flag, run values a pack, run
  lengths a difference of packed head positions; decoding is Figure 8's
  ``distribute`` (allocate + permute-to-heads + segmented copy).  Exact
  round trip for every dtype, including NaN floats (NaN never equals its
  neighbor, so a NaN is always its own run).
* **Delta** — encoding is one shift and one subtract, decoding one
  ``+-scan`` and one add (inclusive scan).  Exact for integers (wraparound
  cancels); floats round-trip only to rounding error, which is why the
  fuzzer registers it as an additive op.

Both directions charge through the machine like every other algorithm, so
they run — and are differentially tested — on all backends and models.
"""
from __future__ import annotations

import numpy as np

from ..core import scans
from ..core.ops import distribute_to_segments, pack
from ..core.vector import Vector

__all__ = ["delta_decode", "delta_encode", "rle_decode", "rle_encode"]


def _run_heads(v: Vector) -> Vector:
    from ..core.segmented import seg_flag_from_neighbor_change

    m = v.machine
    m.charge_elementwise(len(v))
    unit = m.flags(np.arange(len(v)) == 0)
    return seg_flag_from_neighbor_change(v, unit)


def rle_encode(v: Vector) -> tuple[Vector, Vector]:
    """Run-length encode: returns ``(values, lengths)`` with one entry per
    maximal run of equal elements.  O(1) program steps."""
    m = v.machine
    n = len(v)
    if n == 0:
        return v, m.vector(np.empty(0, dtype=np.int64))
    heads = _run_heads(v)
    values = pack(v, heads)
    starts = pack(m.arange(n), heads)
    lengths = starts.shift(-1, fill=n) - starts
    return values, lengths


def rle_decode(values: Vector, lengths: Vector) -> Vector:
    """Invert :func:`rle_encode`: expand each value to its run length
    (Figure 8's ``distribute``).  Zero-length runs are legal and vanish."""
    if len(values) != len(lengths):
        raise ValueError(
            f"values/lengths disagree: {len(values)} != {len(lengths)}")
    if len(lengths) and bool(np.any(lengths.data < 0)):
        raise ValueError("run lengths must be non-negative")
    out, _ = distribute_to_segments(values, lengths)
    return out


def delta_encode(v: Vector) -> Vector:
    """Difference from the previous element (``d[0] = v[0]``): one shift
    plus one subtract."""
    if v.dtype == np.bool_:
        raise TypeError("delta coding is arithmetic; cast bools first")
    return v - v.shift(1)


def delta_decode(d: Vector) -> Vector:
    """Invert :func:`delta_encode` with an inclusive ``+-scan``."""
    if d.dtype == np.bool_:
        raise TypeError("delta coding is arithmetic; cast bools first")
    return scans.plus_scan(d) + d
